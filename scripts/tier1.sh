#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, in one command.
#
#   ./scripts/tier1.sh
#
# Runs from the workspace root regardless of the caller's cwd.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: cargo build --release =="
cargo build --release

echo "== tier1: cargo test -q =="
cargo test -q

echo "== tier1: cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== tier1: OK =="
