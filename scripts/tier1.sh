#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, in one command.
#
#   ./scripts/tier1.sh
#
# Runs from the workspace root regardless of the caller's cwd.
set -euo pipefail
cd "$(dirname "$0")/.."

# Pin the property-based tests to one reproducible random sequence: the
# vendored proptest shim folds this seed into every per-test RNG, so a tier-1
# failure on one box replays identically on any other.
export PROPTEST_RNG_SEED="${PROPTEST_RNG_SEED:-20260805}"
echo "== tier1: PROPTEST_RNG_SEED=$PROPTEST_RNG_SEED =="

echo "== tier1: cargo build --release =="
cargo build --release

# Examples are not covered by `cargo build`/`cargo test` (they only build on
# an explicit request), so a broken example otherwise ships silently.
echo "== tier1: cargo build --release --examples =="
cargo build --release --examples

echo "== tier1: cargo test -q =="
cargo test -q

echo "== tier1: cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== tier1: OK =="
