#!/usr/bin/env bash
# Tier-2 gate: the golden-reference conformance suite plus a smoke run of
# both benchmark binaries. Slower than tier-1 (minutes, not seconds) and
# meant for pre-merge validation rather than the inner edit loop.
#
#   ./scripts/tier2.sh
#
# Runs from the workspace root regardless of the caller's cwd.
set -euo pipefail
cd "$(dirname "$0")/.."

export PROPTEST_RNG_SEED="${PROPTEST_RNG_SEED:-20260805}"

echo "== tier2: golden-reference conformance suite =="
cargo test --release -p mako-integration-tests --test golden

# Smoke runs write to scratch paths so they never clobber the committed
# full-workload BENCH_*.json artifacts.
echo "== tier2: host_fock_bench (smoke: reduced workload, 1/2 threads) =="
MAKO_BENCH_MAX_QUARTETS=2000 MAKO_THREADS=1,2 \
    MAKO_BENCH_OUT=target/BENCH_fock_smoke.json \
    cargo run --release -p mako-bench --bin host_fock_bench

echo "== tier2: gemm_microbench (smoke: spliced into the smoke BENCH doc) =="
MAKO_SMOKE=1 MAKO_BENCH_OUT=target/BENCH_fock_smoke.json \
    cargo run --release -p mako-bench --bin gemm_microbench
grep -q '"gemm":' target/BENCH_fock_smoke.json \
    || { echo "gemm_microbench did not splice a gemm section" >&2; exit 1; }

echo "== tier2: microkernel determinism (full linalg suite under MAKO_KERNEL=generic) =="
MAKO_KERNEL=generic cargo test --release -q -p mako-linalg

echo "== tier2: incremental_scf_bench (smoke: water4, 1/2 threads) =="
MAKO_SMOKE=1 MAKO_THREADS=1,2 \
    MAKO_BENCH_OUT=target/BENCH_scf_smoke.json \
    cargo run --release -p mako-bench --bin incremental_scf_bench

echo "== tier2: chaos_scf_bench (smoke: water2, 2 ranks, seeded faults) =="
MAKO_SMOKE=1 MAKO_THREADS=2 MAKO_FAULT_SEED=6 \
    MAKO_BENCH_OUT=target/BENCH_chaos_smoke.json \
    cargo run --release -p mako-bench --bin chaos_scf_bench

echo "== tier2: rescue_scf_bench (smoke: healthy inertness + stretched-water ladder, traced) =="
MAKO_SMOKE=1 MAKO_THREADS=1,2 \
    MAKO_BENCH_OUT=target/BENCH_rescue_smoke.json \
    MAKO_TRACE=target/rescue_trace_smoke.jsonl \
    cargo run --release -p mako-bench --bin rescue_scf_bench
cargo run --release -p mako-bench --bin trace_validate -- target/rescue_trace_smoke.jsonl
grep -q '"cat":"scf","name":"rescue"' target/rescue_trace_smoke.jsonl \
    || { echo "rescue trace is missing scf.rescue spans" >&2; exit 1; }

echo "== tier2: ensemble_bench (smoke: 6 perturbed waters, batched vs solo, traced) =="
MAKO_SMOKE=1 MAKO_THREADS=1,2 \
    MAKO_BENCH_OUT=target/BENCH_batch_smoke.json \
    MAKO_TRACE=target/ensemble_trace_smoke.jsonl \
    cargo run --release -p mako-bench --bin ensemble_bench
# The ensemble.* events must validate against the documented schema AND
# actually appear — the fleet instrumentation is part of the contract.
cargo run --release -p mako-bench --bin trace_validate -- target/ensemble_trace_smoke.jsonl \
    --require ensemble.run --require ensemble.iteration \
    --require ensemble.launch --require ensemble.member
grep -q '"bitwise_identical_all": true' target/BENCH_batch_smoke.json \
    || { echo "ensemble smoke lost per-molecule bitwise identity" >&2; exit 1; }

echo "== tier2: server_bench (smoke: admission + starvation + chaos serve, traced) =="
MAKO_SMOKE=1 MAKO_FAULT_SEED=11 \
    MAKO_BENCH_OUT=target/BENCH_serve_smoke.json \
    MAKO_TRACE=target/serve_trace_smoke.jsonl \
    cargo run --release -p mako-bench --bin server_bench
# The serving events must validate against the documented schema AND
# actually appear — admission decisions, quanta, and typed outcomes are
# part of the serving contract.
cargo run --release -p mako-bench --bin trace_validate -- target/serve_trace_smoke.jsonl \
    --require server.run --require server.admission --require server.quantum \
    --require job.submit --require job.start --require job.outcome
grep -q '"completed_bitwise_vs_solo": true' target/BENCH_serve_smoke.json \
    || { echo "server smoke lost the chaos bitwise invariant" >&2; exit 1; }
grep -q '"threads_bitwise_identical": true' target/BENCH_serve_smoke.json \
    || { echo "server smoke lost cross-thread determinism" >&2; exit 1; }

echo "== tier2: rij_bench (smoke: water2 fit + scale, adaptive tiles, traced) =="
MAKO_SMOKE=1 MAKO_THREADS=1,2 \
    MAKO_BENCH_OUT=target/BENCH_rij_smoke.json \
    MAKO_TRACE=target/rij_trace_smoke.jsonl \
    cargo run --release -p mako-bench --bin rij_bench
# The rij.* events must validate against the documented schema AND actually
# appear — the build/pick/solve/contract spans are part of the contract.
cargo run --release -p mako-bench --bin trace_validate -- target/rij_trace_smoke.jsonl \
    --require rij.build --require rij.pick --require rij.solve --require rij.contract
grep -q '"bitwise_identical_all": true' target/BENCH_rij_smoke.json \
    || { echo "rij smoke lost cross-thread bitwise identity" >&2; exit 1; }

echo "== tier2: durability_bench (smoke: strided crash-point sweep + corruption, traced) =="
MAKO_SMOKE=1 MAKO_FAULT_SEED=23 \
    MAKO_BENCH_OUT=target/BENCH_durability_smoke.json \
    MAKO_TRACE=target/durability_trace_smoke.jsonl \
    cargo run --release -p mako-bench --bin durability_bench
# The store.* / recover.* events must validate against the documented
# schema AND actually appear — journaling, crash resolution, quarantine,
# and recovery replay are the durability contract.
cargo run --release -p mako-bench --bin trace_validate -- target/durability_trace_smoke.jsonl \
    --require store.append --require store.crash --require store.quarantine \
    --require recover.replay --require recover.salvage --require recover.serve
grep -q '"recovered_bitwise_vs_quiet": true' target/BENCH_durability_smoke.json \
    || { echo "durability smoke lost crash-recovery bitwise identity" >&2; exit 1; }
grep -q '"double_recovery_idempotent": true' target/BENCH_durability_smoke.json \
    || { echo "durability smoke lost double-recovery idempotence" >&2; exit 1; }

echo "== tier2: trace smoke (host_fock_bench under MAKO_TRACE + schema check) =="
MAKO_BENCH_MAX_QUARTETS=2000 MAKO_THREADS=1,2 \
    MAKO_BENCH_OUT=target/BENCH_fock_trace_smoke.json \
    MAKO_TRACE=target/trace_smoke.jsonl \
    cargo run --release -p mako-bench --bin host_fock_bench
cargo run --release -p mako-bench --bin trace_validate -- target/trace_smoke.jsonl

echo "== tier2: OK =="
