//! Offline drop-in subset of the [proptest](https://docs.rs/proptest)
//! property-testing API.
//!
//! This workspace must build without network access, so the slice of
//! proptest the test suite uses is reimplemented here: the `proptest!` /
//! `prop_assert!` macros, the [`Strategy`] trait with `prop_map`, numeric
//! range and tuple strategies, `any::<T>()`, `prop::collection::vec`, and
//! `prop::num::f64::NORMAL`.
//!
//! Unlike full proptest there is no shrinking: a failing case panics with
//! the sampled inputs' case number. Sampling is deterministic per test
//! (seeded from the test's module path and name), so failures reproduce
//! across runs.

#![deny(rust_2018_idioms)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Per-test configuration: number of random cases to run.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Failure raised by `prop_assert!`; carries the formatted message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// `Result` alias used by generated property bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 RNG, seeded from the test's name so every run
/// of a given property replays the same case sequence. The environment
/// variable `PROPTEST_RNG_SEED` (a `u64`) is mixed into the seed when set,
/// letting CI pin (or sweep) the case sequence explicitly without changing
/// per-test decorrelation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary label (FNV-1a over the bytes), mixed with
    /// `PROPTEST_RNG_SEED` when the environment provides one.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        if let Some(seed) = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
        {
            // Same FNV-1a fold over the seed bytes keeps the mix cheap and
            // the name-decorrelation intact.
            for &b in &seed.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        Self { state: h | 1 }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A generator of random values; the core proptest abstraction (sans
/// shrinking).
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<R, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> R,
    {
        MapStrategy { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug)]
pub struct MapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S, F, R> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> R,
{
    type Value = R;
    fn sample(&self, rng: &mut TestRng) -> R {
        (self.f)(self.base.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = u128::from(rng.next_u64()) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
#[derive(Debug)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy for `Vec`s with element strategy `S` and length drawn from
    /// a range.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Numeric strategies (`prop::num`).
pub mod num {
    /// `f64` strategies.
    #[allow(non_snake_case)]
    pub mod f64 {
        use crate::{Strategy, TestRng};

        /// Strategy over all *normal* `f64`s: both signs, full exponent
        /// range, never zero / subnormal / infinite / NaN.
        #[derive(Debug, Clone, Copy)]
        pub struct NormalF64;

        impl Strategy for NormalF64 {
            type Value = f64;
            fn sample(&self, rng: &mut TestRng) -> f64 {
                let sign = rng.next_u64() & (1 << 63);
                // Biased exponent in [1, 2046] — the normal band.
                let exp = 1 + rng.below(2046);
                let mantissa = rng.next_u64() & ((1u64 << 52) - 1);
                f64::from_bits(sign | (exp << 52) | mantissa)
            }
        }

        /// All normal `f64` values.
        pub const NORMAL: NormalF64 = NormalF64;
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Assert inside a property body; failure aborts the current case with the
/// formatted message (no shrinking in this shim — it panics immediately).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Define property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, y in any::<u64>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expands each `#[test] fn` item of a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let outcome: $crate::TestCaseResult =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property {} failed at case {}: {}", stringify!($name), case, e);
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

    /// Mirrors the `prop` module alias from proptest's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let x = Strategy::sample(&(-18..18i32), &mut rng);
            assert!((-18..18).contains(&x));
            let u = Strategy::sample(&(1usize..7), &mut rng);
            assert!((1..7).contains(&u));
            let f = Strategy::sample(&(0.2f64..6.0), &mut rng);
            assert!((0.2..6.0).contains(&f));
        }
    }

    #[test]
    fn env_seed_changes_and_pins_the_sequence() {
        // The harness (e.g. scripts/tier1.sh) may already export a seed;
        // run the checks from a clean slate and restore it afterwards.
        let saved = std::env::var("PROPTEST_RNG_SEED").ok();
        std::env::remove_var("PROPTEST_RNG_SEED");
        let base = crate::TestRng::from_name("seeded").next_u64();
        std::env::set_var("PROPTEST_RNG_SEED", "12345");
        let seeded_a = crate::TestRng::from_name("seeded").next_u64();
        let seeded_b = crate::TestRng::from_name("seeded").next_u64();
        std::env::remove_var("PROPTEST_RNG_SEED");
        let back = crate::TestRng::from_name("seeded").next_u64();
        if let Some(v) = saved {
            std::env::set_var("PROPTEST_RNG_SEED", v);
        }
        assert_ne!(base, seeded_a, "seed must perturb the sequence");
        assert_eq!(seeded_a, seeded_b, "same seed must pin the sequence");
        assert_eq!(base, back, "unsetting must restore the default");
    }

    #[test]
    fn normal_f64_is_always_normal() {
        let mut rng = crate::TestRng::from_name("normal");
        for _ in 0..1000 {
            let x = Strategy::sample(&prop::num::f64::NORMAL, &mut rng);
            assert!(x.is_normal(), "{x} not normal");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(v in prop::collection::vec(0.0f64..1.0, 1..16), s in any::<u64>()) {
            prop_assert!(!v.is_empty() && v.len() < 16);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)), "out of range: {v:?} (seed {s})");
        }
    }
}
