//! Offline drop-in subset of the [parking_lot](https://docs.rs/parking_lot)
//! API, backed by `std::sync`. Only the pieces this workspace uses are
//! provided: `Mutex` and `RwLock` with parking_lot's panic-free guard-
//! returning signatures (poisoning is transparently ignored, matching
//! parking_lot's no-poisoning semantics).

#![deny(rust_2018_idioms)]

use std::sync;

/// Read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Reader-writer lock with parking_lot's unpoisonable API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a fresh lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Acquire a shared read guard (blocks; never errors).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard (blocks; never errors).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Mutual-exclusion lock with parking_lot's unpoisonable API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a fresh mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquire the lock (blocks; never errors).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write_roundtrip() {
        let lock = RwLock::new(1usize);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
        assert_eq!(lock.into_inner(), 42);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(m.into_inner(), "ab");
    }
}
