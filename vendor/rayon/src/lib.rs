//! Offline drop-in subset of the [rayon](https://docs.rs/rayon) API.
//!
//! This workspace must build with no network access, so the handful of rayon
//! entry points the codebase actually uses are reimplemented here on top of
//! `std::thread::scope`. The semantic contract matches rayon where it
//! matters to callers:
//!
//! - `par_iter()` / `par_iter_mut()` / `par_chunks_mut()` over slices and
//!   vectors, with the `map` / `filter_map` / `zip` / `enumerate` /
//!   `for_each` / `collect` adapters;
//! - **indexed collect preserves order**: `collect::<Vec<_>>()` yields
//!   elements in the source order regardless of thread interleaving (for
//!   `filter_map`, survivors keep their relative order);
//! - `ThreadPoolBuilder::new().num_threads(n).build()?.install(f)` scopes the
//!   worker count seen by `current_num_threads()` and by every parallel
//!   consumer invoked inside `f`.
//!
//! Work is split into one contiguous index range per worker; each item is
//! evaluated exactly once, on exactly one thread. With one worker (or one
//! item) everything runs inline on the caller's thread, so single-threaded
//! runs have zero synchronization overhead.

#![deny(rust_2018_idioms)]

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::OnceLock;

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator, ParallelSliceMut,
    };
}

// ---------------------------------------------------------------------------
// Thread-count plumbing
// ---------------------------------------------------------------------------

thread_local! {
    /// Worker count installed by `ThreadPool::install`; 0 = no pool active.
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_num_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Number of worker threads parallel consumers will use at this call site:
/// the innermost `install`ed pool's size, else `RAYON_NUM_THREADS`, else the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed > 0 {
        installed
    } else {
        default_num_threads()
    }
}

/// A logical pool: a worker count scoped over `install`. Threads are spawned
/// per parallel call (scoped, joined before the call returns), not pinned.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's worker count visible to
    /// `current_num_threads` and to all nested parallel consumers.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(INSTALLED_THREADS.with(|c| c.replace(self.threads)));
        op()
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Pool construction error (never produced by this shim; kept for API parity).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Fresh builder with the default (auto) worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `n` workers; 0 means "use the default".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Materialize the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

// ---------------------------------------------------------------------------
// Core trait: indexed evaluation
// ---------------------------------------------------------------------------

/// A finite, indexed parallel iterator. `eval(i)` produces element `i`
/// (`None` when an upstream `filter_map` dropped it); each index is evaluated
/// exactly once, on exactly one worker thread.
pub trait ParallelIterator: Sized + Sync {
    /// Element type.
    type Item: Send;

    /// Number of indices in the iteration space.
    fn par_len(&self) -> usize;

    /// Evaluate element `i`.
    fn eval(&self, i: usize) -> Option<Self::Item>;

    /// Map each element through `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Map-and-filter each element through `f`.
    fn filter_map<F, R>(self, f: F) -> FilterMap<Self, F>
    where
        F: Fn(Self::Item) -> Option<R> + Sync,
        R: Send,
    {
        FilterMap { base: self, f }
    }

    /// Pair elements positionally with `other` (length = shorter side).
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Attach each element's index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Consume every element in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        drive(&self, |_, item| f(item));
    }

    /// Collect into `C`, preserving source order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

/// Values collectable from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    /// Order-preserving parallel collect.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let n = iter.par_len();
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        {
            let ptr = SendPtr(slots.as_mut_ptr());
            // Each index is written by exactly one worker, so the raw
            // writes target disjoint slots of a live allocation. (The
            // method call captures the whole `SendPtr` — closure capture
            // of the bare field would lose the Sync wrapper.)
            drive(&iter, move |i, item| unsafe { *ptr.get().add(i) = Some(item) });
        }
        slots.into_iter().flatten().collect()
    }
}

struct SendPtr<T>(*mut T);
impl<T> SendPtr<T> {
    fn get(self) -> *mut T {
        self.0
    }
}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Evaluate every index of `iter`, feeding `(index, item)` to `sink`.
/// Splits `0..n` into one contiguous range per worker; runs inline when a
/// single worker (or a single item) makes spawning pointless.
fn drive<I, F>(iter: &I, sink: F)
where
    I: ParallelIterator,
    F: Fn(usize, I::Item) + Sync,
{
    let n = iter.par_len();
    let workers = current_num_threads().min(n).max(1);
    if workers <= 1 {
        for i in 0..n {
            if let Some(item) = iter.eval(i) {
                sink(i, item);
            }
        }
        return;
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|s| {
        let (iter, sink) = (&iter, &sink);
        for w in 0..workers {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            s.spawn(move || {
                for i in lo..hi {
                    if let Some(item) = iter.eval(i) {
                        sink(i, item);
                    }
                }
            });
        }
    });
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Shared-slice source (`par_iter`).
#[derive(Debug)]
pub struct SliceIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for SliceIter<'data, T> {
    type Item = &'data T;
    fn par_len(&self) -> usize {
        self.slice.len()
    }
    fn eval(&self, i: usize) -> Option<Self::Item> {
        Some(&self.slice[i])
    }
}

/// Mutable-slice source (`par_iter_mut`). Holds a raw base pointer so
/// disjoint `&mut` element borrows can be handed to different workers.
#[derive(Debug)]
pub struct SliceIterMut<'data, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'data mut T>,
}

unsafe impl<T: Send> Send for SliceIterMut<'_, T> {}
unsafe impl<T: Send> Sync for SliceIterMut<'_, T> {}

impl<'data, T: Send> ParallelIterator for SliceIterMut<'data, T> {
    type Item = &'data mut T;
    fn par_len(&self) -> usize {
        self.len
    }
    fn eval(&self, i: usize) -> Option<Self::Item> {
        assert!(i < self.len);
        // Sound: the driver hands each index to exactly one worker, so the
        // &mut borrows created here are pairwise disjoint.
        Some(unsafe { &mut *self.ptr.add(i) })
    }
}

/// Mutable-chunks source (`par_chunks_mut`).
#[derive(Debug)]
pub struct ChunksMut<'data, T> {
    ptr: *mut T,
    len: usize,
    chunk: usize,
    _marker: PhantomData<&'data mut T>,
}

unsafe impl<T: Send> Send for ChunksMut<'_, T> {}
unsafe impl<T: Send> Sync for ChunksMut<'_, T> {}

impl<'data, T: Send> ParallelIterator for ChunksMut<'data, T> {
    type Item = &'data mut [T];
    fn par_len(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }
    fn eval(&self, i: usize) -> Option<Self::Item> {
        let lo = i * self.chunk;
        assert!(lo < self.len);
        let hi = (lo + self.chunk).min(self.len);
        // Sound: chunks tile the slice without overlap and each index goes
        // to exactly one worker.
        Some(unsafe { std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo) })
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// See [`ParallelIterator::map`].
#[derive(Debug)]
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Sync,
    R: Send,
{
    type Item = R;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn eval(&self, i: usize) -> Option<R> {
        self.base.eval(i).map(&self.f)
    }
}

/// See [`ParallelIterator::filter_map`].
#[derive(Debug)]
pub struct FilterMap<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for FilterMap<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> Option<R> + Sync,
    R: Send,
{
    type Item = R;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn eval(&self, i: usize) -> Option<R> {
        self.base.eval(i).and_then(&self.f)
    }
}

/// See [`ParallelIterator::zip`].
#[derive(Debug)]
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    fn par_len(&self) -> usize {
        self.a.par_len().min(self.b.par_len())
    }
    fn eval(&self, i: usize) -> Option<Self::Item> {
        match (self.a.eval(i), self.b.eval(i)) {
            (Some(a), Some(b)) => Some((a, b)),
            _ => None,
        }
    }
}

/// See [`ParallelIterator::enumerate`].
#[derive(Debug)]
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn eval(&self, i: usize) -> Option<Self::Item> {
        self.base.eval(i).map(|item| (i, item))
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits
// ---------------------------------------------------------------------------

/// `.par_iter()` on shared collections.
pub trait IntoParallelRefIterator<'data> {
    /// Element type.
    type Item: Send + 'data;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing parallel iterator over `&self`.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = SliceIter<'data, T>;
    fn par_iter(&'data self) -> Self::Iter {
        SliceIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = SliceIter<'data, T>;
    fn par_iter(&'data self) -> Self::Iter {
        SliceIter { slice: self }
    }
}

/// `.par_iter_mut()` on mutable collections.
pub trait IntoParallelRefMutIterator<'data> {
    /// Element type.
    type Item: Send + 'data;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing parallel iterator over `&mut self`.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = &'data mut T;
    type Iter = SliceIterMut<'data, T>;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        SliceIterMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: PhantomData,
        }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = &'data mut T;
    type Iter = SliceIterMut<'data, T>;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.as_mut_slice().par_iter_mut()
    }
}

/// `.par_chunks_mut()` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of length
    /// `chunk` (last one may be shorter).
    fn par_chunks_mut(&mut self, chunk: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk: usize) -> ChunksMut<'_, T> {
        assert!(chunk > 0, "chunk size must be non-zero");
        ChunksMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            chunk,
            _marker: PhantomData,
        }
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<usize> = pool.install(|| v.par_iter().map(|&x| x * 2).collect());
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_keeps_relative_order() {
        let v: Vec<usize> = (0..257).collect();
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let out: Vec<usize> = pool.install(|| {
            v.par_iter()
                .filter_map(|&x| (x % 3 == 0).then_some(x))
                .collect()
        });
        assert_eq!(out, (0..257).filter(|x| x % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_zip_touches_every_element_once() {
        let mut out = vec![0usize; 513];
        let src: Vec<usize> = (0..513).map(|x| x + 7).collect();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| {
            out.par_iter_mut()
                .zip(src.par_iter())
                .for_each(|(o, &s)| *o += s);
        });
        assert_eq!(out, src);
    }

    #[test]
    fn chunks_mut_tiles_without_overlap() {
        let mut v = vec![1.0f64; 130];
        v.par_chunks_mut(64)
            .enumerate()
            .for_each(|(band, chunk)| {
                for x in chunk {
                    *x += band as f64;
                }
            });
        assert_eq!(v[0], 1.0);
        assert_eq!(v[64], 2.0);
        assert_eq!(v[128], 3.0);
        assert_eq!(v.len(), 130);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 5);
        let calls = AtomicUsize::new(0);
        let v = vec![(); 100];
        pool.install(|| {
            v.par_iter().for_each(|()| {
                calls.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
    }
}
