//! Offline drop-in subset of the [criterion](https://docs.rs/criterion)
//! benchmark API.
//!
//! This workspace must build with no network access, so the criterion
//! surface the bench targets use is reimplemented here as a minimal
//! wall-clock harness: each `Bencher::iter` call warms up briefly, then
//! times batches of iterations until the configured measurement window (or
//! sample count) is exhausted and reports the mean time per iteration.
//! There are no statistics, plots, or baselines — just honest timings to
//! stderr-free stdout, which is all a single-core CI box can support.

#![deny(rust_2018_idioms)]

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level harness state; mirrors `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Set the target number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up window per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let (sample_size, measurement, warm_up) =
            (self.sample_size, self.measurement_time, self.warm_up_time);
        run_one(name, sample_size, measurement, warm_up, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Time `f` under `id` within this group.
    pub fn bench_function(&mut self, id: impl fmt::Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.measurement_time,
            self.criterion.warm_up_time,
            f,
        );
        self
    }

    /// Time `f` under `id`, handing it `input` (parameterized benchmark).
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (report separator; kept for API parity).
    pub fn finish(self) {
        println!();
    }
}

/// A function-plus-parameter benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` label.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only label.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Hands out timed iteration loops; mirrors `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    mean_ns: Option<f64>,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, recording the mean wall-clock per call.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm up: run until the warm-up window elapses (at least once).
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Estimate per-call cost from the warm-up to size timed batches.
        let per_call = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement_time.as_secs_f64();
        let target = ((budget / per_call.max(1e-9)) as u64)
            .clamp(1, self.sample_size as u64 * 1000);
        let start = Instant::now();
        let mut done = 0u64;
        while done < target {
            black_box(routine());
            done += 1;
            if start.elapsed().as_secs_f64() > budget * 1.5 {
                break;
            }
        }
        self.iters = done;
        self.mean_ns = Some(start.elapsed().as_secs_f64() * 1e9 / done as f64);
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        sample_size,
        measurement_time,
        warm_up_time,
        mean_ns: None,
        iters: 0,
    };
    f(&mut b);
    match b.mean_ns {
        Some(ns) => println!("{label:<40} time: {} ({} iterations)", fmt_ns(ns), b.iters),
        None => println!("{label:<40} (no measurement: Bencher::iter never called)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Define a benchmark group function; mirrors `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench binary's `main`; mirrors `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_harness_times_a_closure() {
        let mut c = Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
