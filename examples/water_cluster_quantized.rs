//! Water clusters with and without QuantMako: accuracy and device-time
//! comparison on a compact, globular workload (the paper's (H₂O)ₙ family).
//!
//! ```sh
//! cargo run --release -p mako --example water_cluster_quantized
//! ```

use mako::prelude::*;

fn main() {
    println!("QuantMako on water clusters — FP64 vs quantized SCF");
    println!(
        "{:<10} {:>5} {:>16} {:>16} {:>12} {:>9} {:>9}",
        "system", "nao", "E(FP64)/Ha", "E(quant)/Ha", "|ΔE|/mHa", "quant%", "speedup"
    );

    for n in [1usize, 2, 3] {
        let mol = mako::chem::builders::water_cluster(n);
        let fp64 = MakoEngine::new().run_rhf(&mol, BasisFamily::Sto3g).expect("scf run");
        let quant = MakoEngine::new()
            .with_quantization(true)
            .run_rhf(&mol, BasisFamily::Sto3g).expect("scf run");
        let total_q = quant.stats.fp64_quartets + quant.stats.quantized_quartets;
        let quant_frac = if total_q > 0 {
            100.0 * quant.stats.quantized_quartets as f64 / total_q as f64
        } else {
            0.0
        };
        println!(
            "{:<10} {:>5} {:>16.8} {:>16.8} {:>12.4} {:>8.1}% {:>8.2}x",
            mol.name,
            fp64.density.rows(),
            fp64.energy,
            quant.energy,
            (quant.energy - fp64.energy).abs() * 1e3,
            quant_frac,
            fp64.avg_iteration_seconds / quant.avg_iteration_seconds,
        );
        assert!(
            (quant.energy - fp64.energy).abs() < 1e-3,
            "chemical accuracy must hold"
        );
    }

    println!("\nAll quantized energies agree with FP64 within 1 mHartree —");
    println!("the paper's accuracy criterion (Table 3) — while the quantized");
    println!("iterations run faster on the simulated tensor cores.");
}
