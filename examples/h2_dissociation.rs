//! H₂ dissociation curve with RHF and MP2 — a property-style workload using
//! the full stack (integrals → SCF → AO→MO transformation), plus the dipole
//! machinery on water for good measure.
//!
//! ```sh
//! cargo run --release -p mako --example h2_dissociation
//! ```

use mako::chem::basis::sto3g::sto3g;
use mako::linalg::{eigh, gemm, sym_inv_sqrt, Transpose};
use mako::prelude::*;
use mako::scf::mp2::mp2_from_orbitals;
use mako::scf::properties::dipole_moment;

fn h2(r: f64) -> Molecule {
    let mut m = Molecule::new(format!("H2 r={r:.2}"));
    m.atoms.push(mako::chem::Atom {
        element: Element::H,
        position: [0.0, 0.0, 0.0],
    });
    m.atoms.push(mako::chem::Atom {
        element: Element::H,
        position: [0.0, 0.0, r],
    });
    m
}

fn main() {
    println!("H2 dissociation, RHF + MP2 / STO-3G (distances in Bohr)\n");
    println!("{:>6} {:>14} {:>12} {:>14}", "r", "E(RHF)/Ha", "E(2)/Ha", "E(MP2)/Ha");
    let engine = MakoEngine::new();
    let basis = sto3g();
    let mut min = (0.0f64, f64::INFINITY);
    for step in 0..12 {
        let r = 0.9 + 0.2 * step as f64;
        let mol = h2(r);
        let res = engine.run_rhf(&mol, BasisFamily::Sto3g).expect("scf run");
        // MO coefficients from one clean rediagonalization of H_core-based
        // machinery at the converged density (small dense system).
        let shells = basis.shells_for(&mol);
        let (s, t, v) = mako::eri::one_electron_matrices(&shells, &mol);
        let h = t.add(&v);
        let x = sym_inv_sqrt(&s, 1e-10).unwrap();
        // Dense Fock from the converged density.
        let layout = mako::chem::AoLayout::new(&shells);
        let n = layout.nao;
        let mut f = h.clone();
        for (si, sh_i) in shells.iter().enumerate() {
            for (sj, sh_j) in shells.iter().enumerate() {
                let pab = mako::eri::shell_pair(sh_i, sh_j);
                for (sk, sh_k) in shells.iter().enumerate() {
                    for (sl, sh_l) in shells.iter().enumerate() {
                        let pcd = mako::eri::shell_pair(sh_k, sh_l);
                        let tq = mako::eri::eri_quartet_mmd(&pab, &pcd);
                        let (oi, oj, ok, ol) = (
                            layout.shell_offsets[si],
                            layout.shell_offsets[sj],
                            layout.shell_offsets[sk],
                            layout.shell_offsets[sl],
                        );
                        for a in 0..tq.dims[0] {
                            for b in 0..tq.dims[1] {
                                for c in 0..tq.dims[2] {
                                    for d in 0..tq.dims[3] {
                                        let val = tq.get(a, b, c, d);
                                        f[(oi + a, oj + b)] +=
                                            2.0 * res.density[(ok + c, ol + d)] * val;
                                        f[(oi + a, ok + c)] -=
                                            res.density[(oj + b, ol + d)] * val;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        f.symmetrize();
        let fp = gemm(&gemm(&x, Transpose::Yes, &f, Transpose::No), Transpose::No, &x, Transpose::No);
        let ed = eigh(&fp).unwrap();
        let c = gemm(&x, Transpose::No, &ed.vectors, Transpose::No);
        let mp2 = mp2_from_orbitals(&shells, &mol, &c, &ed.values);
        let total = res.energy + mp2.e_corr;
        if total < min.1 {
            min = (r, total);
        }
        println!("{r:>6.2} {:>14.8} {:>12.6} {:>14.8}", res.energy, mp2.e_corr, total);
        let _ = n;
    }
    println!("\nMP2 minimum near r = {:.2} Bohr (experimental r_e ≈ 1.40)", min.0);

    let water = mako::chem::builders::water();
    let shells = basis.shells_for(&water);
    let res = engine.run_rhf(&water, BasisFamily::Sto3g).expect("scf run");
    let mu = dipole_moment(&water, &shells, &res.density);
    println!(
        "\nbonus property: μ(H2O, RHF/STO-3G) = {:.3} D (literature ≈ 1.71 D)",
        mu.debye()
    );
}
