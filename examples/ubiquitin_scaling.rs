//! The Figure 10 experiment: strong scaling of an SCF iteration on the
//! 1,231-atom synthetic ubiquitin with the def2-TZVP-like basis, 1–64
//! simulated A100 GPUs on the Azure ND A100 v4 cluster model.
//!
//! ```sh
//! cargo run --release -p mako --example ubiquitin_scaling
//! ```

use mako::accel::cluster::ClusterSpec;
use mako::accel::{CostModel, DeviceSpec};
use mako::chem::{builders, BasisFamily};
use mako::compiler::KernelCache;
use mako::precision::Precision;
use mako::scf::parallel::{batch_costs, build_workload, replicated_serial_seconds, scaling_curve};

fn main() {
    let mol = builders::ubiquitin_like();
    let basis = BasisFamily::Def2TzvpLike.basis_for(&mol.elements());
    println!("system : {} ", mol.name);
    println!("basis  : {}", basis.name);

    let workload = build_workload(&mol, &basis);
    println!("AOs    : {}", workload.nao);
    println!("pairs  : {} significant shell pairs", workload.n_pairs);

    let model = CostModel::new(DeviceSpec::a100());
    let cache = KernelCache::new();
    let costs = batch_costs(&workload, &model, &cache, Precision::Fp16, 200_000);
    let serial = replicated_serial_seconds(workload.nao, &model);
    println!("batches: {} (ERI total {:.1} s on one GPU)", costs.len(), costs.iter().sum::<f64>());

    let curve = scaling_curve(
        &costs,
        workload.nao,
        serial,
        &[1, 2, 4, 8, 16, 32, 64],
        &ClusterSpec::azure_nd_a100_v4(),
    );

    println!(
        "\n{:>5} {:>7} {:>14} {:>12} {:>10} {:>10}",
        "GPUs", "nodes", "t_iter/s", "efficiency", "comm/s", "serial/s"
    );
    for p in &curve {
        println!(
            "{:>5} {:>7} {:>14.3} {:>11.1}% {:>10.3} {:>10.3}",
            p.ranks,
            p.ranks.div_ceil(8),
            p.iteration_seconds,
            p.efficiency * 100.0,
            p.timing.comm,
            p.timing.serial
        );
    }

    let scf_iterations = 15.0;
    let t64 = curve.last().unwrap().iteration_seconds;
    println!(
        "\nfull SCF estimate on 64 GPUs: {:.1} minutes ({} iterations)",
        scf_iterations * t64 / 60.0,
        scf_iterations as usize
    );
    println!("paper: >90% efficiency on 8 GPUs, 70% on 64 GPUs, ubiquitin in 58 min.");
}
