//! Polyglycine chains across basis families: the linear-workload half of
//! the paper's Figure 8, produced with the statistical workload model and
//! the architecture-tuned kernels (real per-class costs on the simulated
//! A100).
//!
//! ```sh
//! cargo run --release -p mako --example polyglycine_dft
//! ```

use mako::accel::{CostModel, DeviceSpec};
use mako::chem::{builders, BasisFamily};
use mako::compiler::KernelCache;
use mako::kernels::gpu4pyscf_like_cost;
use mako::precision::Precision;
use mako::scf::parallel::{batch_costs, build_workload};

fn main() {
    let model = CostModel::new(DeviceSpec::a100());
    let cache = KernelCache::new();

    println!("Polyglycine (gly)_n — modeled SCF-iteration ERI device time on A100");
    for family in [BasisFamily::Def2TzvpLike, BasisFamily::Def2QzvpLike] {
        println!("\nbasis: {} (max l = {})", family.name(), family.heavy_max_l());
        println!(
            "{:<8} {:>6} {:>8} {:>14} {:>14} {:>9}",
            "system", "nao", "pairs", "Mako(quant)/s", "GPU4PySCF/s", "speedup"
        );
        for n in [1usize, 2, 4, 6, 8] {
            let mol = builders::polyglycine(n);
            let basis = family.basis_for(&mol.elements());
            let w = build_workload(&mol, &basis);

            let mako: f64 = batch_costs(&w, &model, &cache, Precision::Fp16, 200_000)
                .iter()
                .sum();
            let baseline: f64 = w
                .classes
                .iter()
                .map(|&(class, count)| gpu4pyscf_like_cost(&class, count.round() as usize, &model))
                .sum();
            println!(
                "(gly){:<3} {:>6} {:>8} {:>14.4} {:>14.4} {:>8.1}x",
                n,
                w.nao,
                w.n_pairs,
                mako,
                baseline,
                baseline / mako
            );
        }
    }
    println!("\nThe Mako advantage widens with the basis set's angular momentum —");
    println!("the Figure 8/9 trend: tensor-core GEMM share grows with l.");
}
