//! Quickstart: compute the Hartree–Fock and B3LYP energies of water.
//!
//! ```sh
//! cargo run --release -p mako --example quickstart
//! ```

use mako::prelude::*;

fn main() {
    let water = mako::chem::builders::water();
    println!("molecule: {} ({} atoms, {} electrons)", water.name, water.natoms(), water.n_electrons());
    println!("nuclear repulsion: {:.6} Ha\n", water.nuclear_repulsion());

    let engine = MakoEngine::new();

    let rhf = engine.run_rhf(&water, BasisFamily::Sto3g).expect("scf run");
    println!("RHF/STO-3G");
    println!("  converged        : {} ({} iterations)", rhf.converged, rhf.iterations);
    println!("  total energy     : {:>14.8} Ha   (textbook ≈ −74.963)", rhf.energy);
    println!("  HOMO / LUMO      : {:>9.5} / {:.5} Ha", rhf.orbital_energies[4], rhf.orbital_energies[5]);
    println!("  avg iteration    : {:.3} ms simulated A100 time\n", rhf.avg_iteration_seconds * 1e3);

    let dft = engine.run_b3lyp(&water, BasisFamily::Sto3g).expect("scf run");
    println!("B3LYP/STO-3G");
    println!("  converged        : {} ({} iterations)", dft.converged, dft.iterations);
    println!("  total energy     : {:>14.8} Ha", dft.energy);
    println!("  correlation gain : {:>9.5} Ha below RHF", dft.energy - rhf.energy);

    let quant = engine.with_quantization(true).run_rhf(&water, BasisFamily::Sto3g).expect("scf run");
    println!("\nQuantMako RHF/STO-3G (FP16 tensor kernels, convergence-aware scheduling)");
    println!("  total energy     : {:>14.8} Ha", quant.energy);
    println!("  |ΔE| vs FP64     : {:>12.3e} Ha (chemical accuracy = 1e-3)", (quant.energy - rhf.energy).abs());
    println!(
        "  quartets         : {} FP64 / {} quantized / {} pruned",
        quant.stats.fp64_quartets, quant.stats.quantized_quartets, quant.stats.pruned_quartets
    );
    println!(
        "  device speedup   : {:.2}× vs FP64 iterations",
        rhf.avg_iteration_seconds / quant.avg_iteration_seconds
    );
}
