//! Property-based tests (proptest) on the core invariants of the Mako
//! stack: quantization round trips, swizzle bijectivity, eigensolver
//! reconstruction, ERI symmetries, screening conservativeness, the
//! permutational-scatter arrangement tables, and the incremental (ΔD) Fock
//! accumulation identity.

use proptest::prelude::*;

use mako::accel::{swizzle_xor, CostModel, DeviceSpec, SmemLayout};
use mako::chem::basis::sto3g::sto3g;
use mako::chem::basis::ShellDef;
use mako::chem::{builders, AoLayout};
use mako::eri::batch::batch_quartets;
use mako::eri::screening::build_screened_pairs;
use mako::eri::{eri_quartet_mmd, schwarz_bound, shell_pair};
use mako::kernels::pipeline::PipelineConfig;
use mako::linalg::{eigh, gemm, Matrix, Transpose};
use mako::precision::{GroupQuantizer, Precision, ScalePolicy};
use mako::quant::QuantSchedule;
use mako::scf::fock::{
    arrangement_tables, build_jk_with_configs, slot_axes, symmetry_case, FockEngineOptions,
};
use std::collections::HashSet;

fn small_f64() -> impl Strategy<Value = f64> {
    // Magnitudes spanning many decades, both signs, no zeros/NaNs.
    (prop::num::f64::NORMAL, -18..18i32).prop_map(|(m, e)| {
        let mantissa = if m.abs() < 1.0 { m + 1.1 } else { m % 10.0 + 0.1 };
        mantissa.signum() * mantissa.abs().min(9.9) * 10f64.powi(e)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantize_dequantize_relative_error_bounded(block in prop::collection::vec(small_f64(), 1..64)) {
        // Per-group scaling guarantees every element of a block round-trips
        // through FP16 with relative error ≤ 2^-11 + ε of the block max.
        let q = GroupQuantizer::fp16_gemm(ScalePolicy::PerGroup);
        let max = block.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        let back = q.roundtrip(&block, max);
        for (orig, rec) in block.iter().zip(&back) {
            let err = (orig - rec).abs();
            prop_assert!(err <= max * 6e-4 + 1e-300, "orig {orig} rec {rec} max {max}");
        }
    }

    #[test]
    fn precision_round_is_monotone(a in small_f64(), b in small_f64()) {
        // Rounding preserves order (weakly) for every format.
        for p in [Precision::Fp32, Precision::Tf32, Precision::Bf16, Precision::Fp16] {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(p.round(lo) <= p.round(hi), "{p} broke order on ({lo}, {hi})");
        }
    }

    #[test]
    fn swizzle_bijective_any_pow2_width(log_w in 1usize..7) {
        let w = 1usize << log_w;
        let mut seen = vec![false; w * w];
        for y in 0..w {
            for x in 0..w {
                let (xp, yp) = swizzle_xor(x, y, w);
                prop_assert!(xp < w && yp < w);
                let idx = yp * w + xp;
                prop_assert!(!seen[idx], "collision at ({x},{y})");
                seen[idx] = true;
            }
        }
    }

    #[test]
    fn eigensolver_reconstructs_random_symmetric(n in 1usize..12, seed in any::<u64>()) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let ed = eigh(&a).unwrap();
        let recon = ed.reconstruct();
        prop_assert!(recon.sub(&a).max_abs() < 1e-9 * (1.0 + a.max_abs()));
        let vtv = gemm(&ed.vectors, Transpose::Yes, &ed.vectors, Transpose::No);
        prop_assert!(vtv.sub(&Matrix::identity(n)).max_abs() < 1e-10);
    }

    #[test]
    fn eri_braket_symmetry_random_shells(
        la in 0usize..3, lc in 0usize..3,
        ax in -1.0f64..1.0, cy in -1.0f64..1.0,
        ea in 0.3f64..2.5, ec in 0.3f64..2.5,
    ) {
        let sa = ShellDef { l: la, exps: vec![ea], coefs: vec![1.0] }.at(0, [ax, 0.1, -0.2]);
        let sc = ShellDef { l: lc, exps: vec![ec], coefs: vec![1.0] }.at(0, [0.4, cy, 0.3]);
        let pab = shell_pair(&sa, &sa);
        let pcd = shell_pair(&sc, &sc);
        let t1 = eri_quartet_mmd(&pab, &pcd);
        let t2 = eri_quartet_mmd(&pcd, &pab);
        for a in 0..t1.dims[0] {
            for b in 0..t1.dims[1] {
                for c in 0..t1.dims[2] {
                    for d in 0..t1.dims[3] {
                        prop_assert!((t1.get(a, b, c, d) - t2.get(c, d, a, b)).abs() < 1e-11);
                    }
                }
            }
        }
    }

    #[test]
    fn schwarz_bound_dominates_cross_integrals(
        r in 0.2f64..6.0,
        ea in 0.3f64..2.0, eb in 0.3f64..2.0,
        la in 0usize..3, lb in 0usize..3,
    ) {
        let sa = ShellDef { l: la, exps: vec![ea], coefs: vec![1.0] }.at(0, [0.0; 3]);
        let sb = ShellDef { l: lb, exps: vec![eb], coefs: vec![1.0] }.at(1, [0.0, 0.0, r]);
        let paa = shell_pair(&sa, &sa);
        let pbb = shell_pair(&sb, &sb);
        let pab = shell_pair(&sa, &sb);
        let q_aa = schwarz_bound(&paa);
        let q_bb = schwarz_bound(&pbb);
        let q_ab = schwarz_bound(&pab);
        // Cauchy-Schwarz on the pair metric: Q_ab² ≤ Q_aa Q_bb.
        prop_assert!(q_ab * q_ab <= q_aa * q_bb * (1.0 + 1e-9));
        // And every cross quartet obeys its product bound.
        let t = eri_quartet_mmd(&pab, &pab);
        prop_assert!(t.max_abs() <= q_ab * q_ab * (1.0 + 1e-9));
    }

    #[test]
    fn density_idempotency_through_scf_machinery(n in 2usize..8, seed in any::<u64>()) {
        // For any symmetric "Fock" matrix, the density built from its
        // lowest orbitals is idempotent in the orthonormal metric:
        // (DS)² = DS with S = I here.
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut f = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = next();
                f[(i, j)] = v;
                f[(j, i)] = v;
            }
        }
        let ed = eigh(&f).unwrap();
        let nocc = n / 2;
        let mut d = Matrix::zeros(n, n);
        for mu in 0..n {
            for nu in 0..n {
                let mut s = 0.0;
                for o in 0..nocc {
                    s += ed.vectors[(mu, o)] * ed.vectors[(nu, o)];
                }
                d[(mu, nu)] = s;
            }
        }
        let dd = gemm(&d, Transpose::No, &d, Transpose::No);
        prop_assert!(dd.sub(&d).max_abs() < 1e-10, "D² ≠ D");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arrangement_table_matches_hashset_oracle(
        sa in 0usize..6, sb in 0usize..6, sc in 0usize..6, sd in 0usize..6,
    ) {
        // The engine's 16-case permutation tables are built once from
        // *representative* shell assignments; the scatter then trusts that
        // any quartet of the same symmetry case dedups identically. Oracle:
        // re-run the original HashSet dedup (first occurrence wins, same
        // enumeration order) on the random assignment itself. This is
        // exactly the claim that stray coincidences (e.g. sa == sc alone)
        // never collapse arrangements.
        let shells = [sa, sb, sc, sd];
        let mut seen: HashSet<[usize; 4]> = HashSet::new();
        let mut expect: Vec<[usize; 4]> = Vec::new();
        for braket in [false, true] {
            for s_ab in [false, true] {
                for s_cd in [false, true] {
                    let axes = slot_axes(s_ab, s_cd, braket);
                    let tuple = [shells[axes[0]], shells[axes[1]], shells[axes[2]], shells[axes[3]]];
                    if seen.insert(tuple) {
                        expect.push(axes);
                    }
                }
            }
        }
        let table = &arrangement_tables()[symmetry_case(sa, sb, sc, sd)];
        prop_assert_eq!(table, &expect);
    }
}

/// Deterministic symmetric matrix from a seed, entries in `[-scale, scale]`.
fn seeded_symmetric(n: usize, seed: u64, scale: f64) -> Matrix {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0) * scale
    };
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let v = next();
            m[(i, j)] = v;
            m[(j, i)] = v;
        }
    }
    m
}

proptest! {
    // Each case runs ~k+2 full Fock builds on water/STO-3G; keep the case
    // count modest so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn incremental_fock_accumulation_matches_from_scratch(
        k in 1usize..5, seed in any::<u64>(), with_tau in any::<bool>(),
    ) {
        // The incremental-SCF identity: after k density perturbations, the
        // accumulated Σ G(ΔD_i) equals the from-scratch G(D_k) — exactly
        // (to FP addition reordering, ≤ 1e-12) when τ = 0, and within the
        // engine's accumulated analytic skip bound when τ > 0.
        let shells = sto3g().shells_for(&builders::water());
        let layout = AoLayout::new(&shells);
        let pairs = build_screened_pairs(&shells, 1e-12);
        let batches = batch_quartets(&pairs, 1e-14);
        let model = CostModel::new(DeviceSpec::a100());
        let cfg = PipelineConfig::kernel_mako_fp64();
        let schedule = QuantSchedule::fp64_reference(0.0);
        let tau = if with_tau { 1e-9 } else { 0.0 };
        let build = |density: &Matrix, tau: f64| {
            build_jk_with_configs(
                density,
                &pairs,
                &batches,
                &layout,
                &schedule,
                |_| (cfg, cfg),
                &model,
                FockEngineOptions { chunk_quartets: None, delta_tau: Some(tau) },
            )
        };

        let n = layout.nao;
        let mut d = seeded_symmetric(n, seed, 0.4);
        let mut d_ref = Matrix::zeros(n, n);
        let mut j_acc = Matrix::zeros(n, n);
        let mut k_acc = Matrix::zeros(n, n);
        let mut bound = 0.0f64;
        for step in 0..k {
            // Shrinking perturbations, like a converging SCF's ΔD.
            let scale = 0.05 * 0.1f64.powi(step as i32);
            d.axpy(1.0, &seeded_symmetric(n, seed ^ (step as u64 + 1), scale));
            let mut delta = d.clone();
            delta.axpy(-1.0, &d_ref);
            let (jk, st) = build(&delta, tau);
            j_acc.axpy(1.0, &jk.j);
            k_acc.axpy(1.0, &jk.k);
            d_ref = d.clone();
            bound += st.skipped_bound;
        }

        let (full, _) = build(&d, 0.0);
        let dj = full.j.sub(&j_acc).max_abs();
        let dk = full.k.sub(&k_acc).max_abs();
        let tol = if with_tau { bound + 1e-12 } else { 1e-12 };
        prop_assert!(
            dj <= tol && dk <= tol,
            "accumulated J/K drifted: ΔJ {dj:e}, ΔK {dk:e}, bound {bound:e}, τ {tau:e}, k {k}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn smem_footprint_is_monotone_in_tile(
        la in 0usize..5, lb in 0usize..5, lc in 0usize..5, ld in 0usize..5,
        kab in 1usize..6, kcd in 1usize..6,
        strategy in 0usize..4, fp16 in any::<bool>(),
        t1 in 1usize..96, t2 in 1usize..96,
    ) {
        // A larger N-dim tile edge can only grow (weakly) the live-tensor
        // footprint — the invariant the Eq. 13 admissibility checks in the
        // tuner and `best_config_cost` lean on when they sweep tiles.
        use mako::kernels::pipeline::{smem_footprint, FusionStrategy};
        let class = mako::eri::batch::EriClass { la, lb, lc, ld, kab, kcd };
        let fusion = [
            FusionStrategy::Unfused,
            FusionStrategy::FuseRPq,
            FusionStrategy::FuseAll,
            FusionStrategy::FuseAllCoalesced,
        ][strategy];
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let cfg = |tile| PipelineConfig {
            fusion,
            tile,
            precision: if fp16 { Precision::Fp16 } else { Precision::Fp64 },
            ..PipelineConfig::kernel_mako_fp64()
        };
        let (s_lo, s_hi) = (smem_footprint(&class, &cfg(lo)), smem_footprint(&class, &cfg(hi)));
        prop_assert!(
            s_lo <= s_hi,
            "footprint shrank as the tile grew: tile {lo} → {s_lo} B, tile {hi} → {s_hi} B \
             ({fusion:?}, class l=({la},{lb},{lc},{ld}) K=({kab},{kcd}))"
        );
    }

    #[test]
    fn best_config_cost_never_returns_an_eq13_violator(
        l in 0usize..5, k in 0usize..2, device in 0usize..4, fp16 in any::<bool>(),
    ) {
        // `best_config_cost` shared the tuner's flaw: it scored candidates
        // whose footprint busts the half-SM budget (finite cost, degraded
        // occupancy) instead of rejecting them. Pin the fixed contract on
        // every device kind.
        use mako::accel::DeviceKind;
        use mako::kernels::pipeline::{best_config_cost, smem_footprint};
        let kab = [1usize, 5][k];
        let class = mako::eri::batch::EriClass { la: l, lb: l, lc: l, ld: l, kab, kcd: kab };
        let kind = [
            DeviceKind::V100,
            DeviceKind::A100_40G,
            DeviceKind::A100_80G,
            DeviceKind::H100,
        ][device];
        let model = CostModel::new(DeviceSpec::new(kind));
        let (precision, policy) = if fp16 {
            (Precision::Fp16, ScalePolicy::PerGroup)
        } else {
            (Precision::Fp64, ScalePolicy::Unscaled)
        };
        let (cfg, cost) = best_config_cost(&class, 20_000, precision, policy, &model);
        let smem = smem_footprint(&class, &cfg);
        prop_assert!(
            smem <= model.device.smem_per_sm / 2,
            "{kind:?} l={l} K={kab} {precision:?}: winner footprint {smem} B > budget {} B",
            model.device.smem_per_sm / 2
        );
        prop_assert!(cost.is_finite());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn watchdog_never_fires_on_monotone_convergence(
        e0 in -100.0f64..0.0,
        drops in prop::collection::vec(1e-9f64..0.5, 3..30),
        r0 in 1e-2f64..10.0,
        shrink in prop::collection::vec(0.05f64..0.95, 3..30),
    ) {
        // The inertness half of the classifier contract: a trajectory whose
        // energy never rises and whose residual sheds at least 5% per
        // iteration is Healthy at EVERY prefix — the watchdog may never
        // perturb a run that is already converging.
        use mako::scf::{classify, RescueConfig, TrajectoryClass};
        let cfg = RescueConfig::default();
        let e_tol = 1e-8;
        let n = drops.len().min(shrink.len());
        let mut energies = vec![e0];
        let mut residuals = vec![r0];
        for i in 0..n {
            energies.push(energies[i] - drops[i]);
            residuals.push(residuals[i] * shrink[i]);
        }
        for k in 1..=energies.len() {
            let class = classify(&energies[..k], &residuals[..k], &cfg, e_tol);
            prop_assert!(
                class == TrajectoryClass::Healthy,
                "watchdog fired ({class:?}) at step {k} of a monotonically converging trajectory"
            );
        }
    }

    #[test]
    fn watchdog_flags_residual_divergence_within_one_window(
        e0 in -100.0f64..0.0,
        r0 in 1e-3f64..1.0,
        growth in 1.5f64..3.0,
        e_step in -1e-4f64..1e-4,
    ) {
        // The liveness half: sustained residual growth (≥1.5× per step) is
        // flagged as Diverging within one window of history, for any
        // starting point above the convergence basin.
        use mako::scf::{classify, RescueConfig, TrajectoryClass};
        let cfg = RescueConfig::default();
        let e_tol = 1e-8;
        let mut energies = Vec::new();
        let mut residuals = Vec::new();
        let mut fired = None;
        for k in 0..10usize {
            energies.push(e0 + k as f64 * e_step);
            residuals.push(r0 * growth.powi(k as i32));
            let class = classify(&energies, &residuals, &cfg, e_tol);
            if class != TrajectoryClass::Healthy {
                fired = Some((k, class));
                break;
            }
        }
        prop_assert!(fired.is_some(), "watchdog never fired on a 1.5×/step divergent residual");
        let (k, class) = fired.unwrap();
        prop_assert!(class == TrajectoryClass::Diverging, "fired with the wrong class: {class:?}");
        prop_assert!(k < cfg.window + cfg.min_history, "fired only at step {k}");
    }

    #[test]
    fn watchdog_flags_sustained_oscillation_within_one_window(
        e_base in -100.0f64..0.0,
        amp in 1e-3f64..0.4,
        r in 1e-3f64..1.0,
    ) {
        // Constant-amplitude ΔE alternation with a flat residual is the
        // classic DIIS two-cycle; it must be flagged within one window.
        use mako::scf::{classify, RescueConfig, TrajectoryClass};
        let cfg = RescueConfig::default();
        let e_tol = 1e-8;
        let mut energies = Vec::new();
        let mut residuals = Vec::new();
        let mut fired = None;
        for k in 0..10usize {
            energies.push(e_base + if k % 2 == 0 { amp } else { -amp });
            residuals.push(r);
            let class = classify(&energies, &residuals, &cfg, e_tol);
            if class != TrajectoryClass::Healthy {
                fired = Some((k, class));
                break;
            }
        }
        prop_assert!(fired.is_some(), "watchdog never fired on a constant-amplitude oscillation");
        let (k, class) = fired.unwrap();
        prop_assert!(class == TrajectoryClass::Oscillating, "fired with the wrong class: {class:?}");
        prop_assert!(k < cfg.window + cfg.min_history, "fired only at step {k}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn int8_roundtrip_error_bounded_by_half_scale(
        block in prop::collection::vec(small_f64(), 1..256),
    ) {
        // Symmetric per-tile quantization: every element round-trips within
        // half a quantization step of the tile max.
        use mako::precision::Int8Tile;
        let t = Int8Tile::quantize(&block);
        let max = block.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        prop_assert!((t.scale - max / 127.0).abs() <= 1e-15 * max);
        for (x, xh) in block.iter().zip(t.dequantize()) {
            prop_assert!(
                (x - xh).abs() <= t.scale / 2.0 + 1e-300,
                "x={x} xh={xh} scale={}", t.scale
            );
        }
    }

    #[test]
    fn int8_dot_is_integer_exact(
        pair in prop::collection::vec((small_f64(), small_f64()), 1..256),
    ) {
        // The i32 accumulation is exact, so the tile dot must equal the
        // FP64 dot of the dequantized payloads up to the final two scale
        // multiplies — and the raw i32 sum must match an i64 recomputation
        // (no silent wraparound at any size the quantizer admits).
        use mako::precision::{dot_i8, Int8Tile};
        let (a, b): (Vec<f64>, Vec<f64>) = pair.into_iter().unzip();
        let qa = Int8Tile::quantize(&a);
        let qb = Int8Tile::quantize(&b);
        let raw = dot_i8(&qa.data, &qb.data);
        let raw64: i64 = qa.data.iter().zip(&qb.data)
            .map(|(&x, &y)| x as i64 * y as i64)
            .sum();
        prop_assert!(raw as i64 == raw64, "i32 accumulator wrapped: {raw} vs {raw64}");
        let via_deq: f64 = qa.dequantize().iter().zip(qb.dequantize())
            .map(|(x, y)| x * y)
            .sum();
        let via_dot = qa.dot(&qb);
        prop_assert!(
            (via_dot - via_deq).abs() <= 1e-12 * via_deq.abs().max(1.0),
            "dot {via_dot} vs dequantized {via_deq}"
        );
    }

    #[test]
    fn rij_picker_is_monotone_in_the_budget(
        norm in small_f64().prop_map(f64::abs),
        l1 in small_f64().prop_map(f64::abs),
        vmax in small_f64().prop_map(f64::abs),
        len in 1usize..512,
        b_lo in -14i32..4, db in 0i32..10,
    ) {
        // Tightening the budget can never pick a *cheaper* tier for the
        // same tile, and the picked tier's rigorous bound always fits the
        // tile's share of the budget (FP64 excepted — it is the
        // unconditional fallback, not a budget-holder).
        use mako::precision::TilePrecision;
        use mako::quant::{tile_error_bound, RijSchedule, TileStats};
        let s = TileStats {
            block_norm: norm,
            vec_l1: l1.max(vmax),
            vec_max: vmax.min(l1.max(vmax)),
            vec_len: len,
        };
        let loose = 10f64.powi(b_lo + db);
        let tight = 10f64.powi(b_lo);
        let t_loose = RijSchedule::with_budget(loose).pick(&s, 7);
        let t_tight = RijSchedule::with_budget(tight).pick(&s, 7);
        prop_assert!(
            t_tight.rank() >= t_loose.rank(),
            "budget {tight:e} picked {t_tight} but {loose:e} picked {t_loose}"
        );
        for (budget, tier) in [(loose, t_loose), (tight, t_tight)] {
            if tier != TilePrecision::Fp64 {
                prop_assert!(
                    tile_error_bound(tier, &s) <= budget / 7.0,
                    "{tier} bound exceeds its share of budget {budget:e}"
                );
            }
        }
    }
}

#[test]
fn smem_layout_enum_is_exported() {
    // The prelude-level re-exports stay wired.
    let _ = SmemLayout::Swizzled;
}
