//! Property-based tests (proptest) on the core invariants of the Mako
//! stack: quantization round trips, swizzle bijectivity, eigensolver
//! reconstruction, ERI symmetries and screening conservativeness.

use proptest::prelude::*;

use mako::accel::{swizzle_xor, SmemLayout};
use mako::chem::basis::ShellDef;
use mako::eri::{eri_quartet_mmd, schwarz_bound, shell_pair};
use mako::linalg::{eigh, gemm, Matrix, Transpose};
use mako::precision::{GroupQuantizer, Precision, ScalePolicy};

fn small_f64() -> impl Strategy<Value = f64> {
    // Magnitudes spanning many decades, both signs, no zeros/NaNs.
    (prop::num::f64::NORMAL, -18..18i32).prop_map(|(m, e)| {
        let mantissa = if m.abs() < 1.0 { m + 1.1 } else { m % 10.0 + 0.1 };
        mantissa.signum() * mantissa.abs().min(9.9) * 10f64.powi(e)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantize_dequantize_relative_error_bounded(block in prop::collection::vec(small_f64(), 1..64)) {
        // Per-group scaling guarantees every element of a block round-trips
        // through FP16 with relative error ≤ 2^-11 + ε of the block max.
        let q = GroupQuantizer::fp16_gemm(ScalePolicy::PerGroup);
        let max = block.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        let back = q.roundtrip(&block, max);
        for (orig, rec) in block.iter().zip(&back) {
            let err = (orig - rec).abs();
            prop_assert!(err <= max * 6e-4 + 1e-300, "orig {orig} rec {rec} max {max}");
        }
    }

    #[test]
    fn precision_round_is_monotone(a in small_f64(), b in small_f64()) {
        // Rounding preserves order (weakly) for every format.
        for p in [Precision::Fp32, Precision::Tf32, Precision::Bf16, Precision::Fp16] {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(p.round(lo) <= p.round(hi), "{p} broke order on ({lo}, {hi})");
        }
    }

    #[test]
    fn swizzle_bijective_any_pow2_width(log_w in 1usize..7) {
        let w = 1usize << log_w;
        let mut seen = vec![false; w * w];
        for y in 0..w {
            for x in 0..w {
                let (xp, yp) = swizzle_xor(x, y, w);
                prop_assert!(xp < w && yp < w);
                let idx = yp * w + xp;
                prop_assert!(!seen[idx], "collision at ({x},{y})");
                seen[idx] = true;
            }
        }
    }

    #[test]
    fn eigensolver_reconstructs_random_symmetric(n in 1usize..12, seed in any::<u64>()) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let ed = eigh(&a).unwrap();
        let recon = ed.reconstruct();
        prop_assert!(recon.sub(&a).max_abs() < 1e-9 * (1.0 + a.max_abs()));
        let vtv = gemm(&ed.vectors, Transpose::Yes, &ed.vectors, Transpose::No);
        prop_assert!(vtv.sub(&Matrix::identity(n)).max_abs() < 1e-10);
    }

    #[test]
    fn eri_braket_symmetry_random_shells(
        la in 0usize..3, lc in 0usize..3,
        ax in -1.0f64..1.0, cy in -1.0f64..1.0,
        ea in 0.3f64..2.5, ec in 0.3f64..2.5,
    ) {
        let sa = ShellDef { l: la, exps: vec![ea], coefs: vec![1.0] }.at(0, [ax, 0.1, -0.2]);
        let sc = ShellDef { l: lc, exps: vec![ec], coefs: vec![1.0] }.at(0, [0.4, cy, 0.3]);
        let pab = shell_pair(&sa, &sa);
        let pcd = shell_pair(&sc, &sc);
        let t1 = eri_quartet_mmd(&pab, &pcd);
        let t2 = eri_quartet_mmd(&pcd, &pab);
        for a in 0..t1.dims[0] {
            for b in 0..t1.dims[1] {
                for c in 0..t1.dims[2] {
                    for d in 0..t1.dims[3] {
                        prop_assert!((t1.get(a, b, c, d) - t2.get(c, d, a, b)).abs() < 1e-11);
                    }
                }
            }
        }
    }

    #[test]
    fn schwarz_bound_dominates_cross_integrals(
        r in 0.2f64..6.0,
        ea in 0.3f64..2.0, eb in 0.3f64..2.0,
        la in 0usize..3, lb in 0usize..3,
    ) {
        let sa = ShellDef { l: la, exps: vec![ea], coefs: vec![1.0] }.at(0, [0.0; 3]);
        let sb = ShellDef { l: lb, exps: vec![eb], coefs: vec![1.0] }.at(1, [0.0, 0.0, r]);
        let paa = shell_pair(&sa, &sa);
        let pbb = shell_pair(&sb, &sb);
        let pab = shell_pair(&sa, &sb);
        let q_aa = schwarz_bound(&paa);
        let q_bb = schwarz_bound(&pbb);
        let q_ab = schwarz_bound(&pab);
        // Cauchy-Schwarz on the pair metric: Q_ab² ≤ Q_aa Q_bb.
        prop_assert!(q_ab * q_ab <= q_aa * q_bb * (1.0 + 1e-9));
        // And every cross quartet obeys its product bound.
        let t = eri_quartet_mmd(&pab, &pab);
        prop_assert!(t.max_abs() <= q_ab * q_ab * (1.0 + 1e-9));
    }

    #[test]
    fn density_idempotency_through_scf_machinery(n in 2usize..8, seed in any::<u64>()) {
        // For any symmetric "Fock" matrix, the density built from its
        // lowest orbitals is idempotent in the orthonormal metric:
        // (DS)² = DS with S = I here.
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut f = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = next();
                f[(i, j)] = v;
                f[(j, i)] = v;
            }
        }
        let ed = eigh(&f).unwrap();
        let nocc = n / 2;
        let mut d = Matrix::zeros(n, n);
        for mu in 0..n {
            for nu in 0..n {
                let mut s = 0.0;
                for o in 0..nocc {
                    s += ed.vectors[(mu, o)] * ed.vectors[(nu, o)];
                }
                d[(mu, nu)] = s;
            }
        }
        let dd = gemm(&d, Transpose::No, &d, Transpose::No);
        prop_assert!(dd.sub(&d).max_abs() < 1e-10, "D² ≠ D");
    }
}

#[test]
fn smem_layout_enum_is_exported() {
    // The prelude-level re-exports stay wired.
    let _ = SmemLayout::Swizzled;
}
