//! Self-healing SCF integration suite: non-finite containment with typed
//! failure attribution, linear-dependence-safe orthogonalization
//! diagnostics, and the `scf.rescue` / `scf.setup` / `scf.non_finite`
//! trace contract (DESIGN.md §12).
//!
//! The inertness and recovery *golden* pins live in `golden.rs`; the
//! classifier's property contract lives in `properties.rs`. This file
//! covers the failure-containment surfaces.

use mako::chem::basis::sto3g::sto3g;
use mako::chem::molecule::{Atom, Molecule};
use mako::chem::{builders, Element};
use mako::scf::{
    NonFiniteStage, RescueConfig, RescueStage, ScfConfig, ScfDriver, ScfError, ScfRunOptions,
    TrajectoryClass,
};

/// H₂ at equilibrium with every atom doubled at 1e-4 Å separation: a
/// deterministic near-linear-dependent basis (two overlap eigenvalues
/// collapse toward zero) that canonical orthogonalization must survive.
fn doubled_h2() -> Molecule {
    let mut m = Molecule::new("H2-doubled");
    m.atoms.push(Atom::new_angstrom(Element::H, [0.0, 0.0, 0.0]));
    m.atoms.push(Atom::new_angstrom(Element::H, [0.0, 0.0, 1e-4]));
    m.atoms.push(Atom::new_angstrom(Element::H, [0.0, 0.0, 0.74]));
    m.atoms.push(Atom::new_angstrom(Element::H, [0.0, 0.0, 0.74 + 1e-4]));
    m
}

#[test]
fn nan_poison_without_rescue_fails_with_typed_attribution() {
    // A NaN injected into the Coulomb matrix at iteration 3 must surface as
    // the typed error naming the iteration and the assembly stage — never
    // as a silent garbage energy.
    let err = ScfDriver::new(&builders::water(), &sto3g(), ScfConfig::default())
        .run_with(ScfRunOptions {
            poison_fock: Some(3),
            ..ScfRunOptions::default()
        })
        .expect_err("poisoned run without rescue must fail");
    assert_eq!(
        err,
        ScfError::NonFinite {
            iteration: 3,
            stage: NonFiniteStage::Coulomb,
        },
        "wrong attribution: {err}"
    );
}

#[test]
fn nan_poison_with_rescue_rolls_back_and_converges() {
    // Same poison, rescue enabled: containment jumps straight to the
    // rollback stage, restores the best healthy snapshot, and the run
    // still converges onto the clean answer.
    let clean = ScfDriver::new(&builders::water(), &sto3g(), ScfConfig::default())
        .run()
        .expect("clean scf run");
    let res = ScfDriver::new(
        &builders::water(),
        &sto3g(),
        ScfConfig {
            rescue: Some(RescueConfig::default()),
            ..ScfConfig::default()
        },
    )
    .run_with(ScfRunOptions {
        poison_fock: Some(3),
        ..ScfRunOptions::default()
    })
    .expect("poisoned run with rescue must recover");
    assert!(res.converged, "contained run failed to converge");
    assert!(
        (res.energy - clean.energy).abs() < 1e-6,
        "contained run landed away from the clean energy: {:.12} vs {:.12}",
        res.energy,
        clean.energy
    );
    let events = res.rescue.events();
    assert_eq!(events.len(), 1, "expected exactly one containment event: {}", res.rescue.summary());
    assert_eq!(events[0].iteration, 3);
    assert_eq!(events[0].classification, TrajectoryClass::NonFinite);
    assert_eq!(events[0].stage, RescueStage::Rollback);
}

#[test]
fn near_linear_dependence_is_dropped_and_reported() {
    // Canonical orthogonalization must shed the two collapsed overlap
    // directions, report them through the typed diagnostics, and converge.
    // The keep-everything run (threshold far below the collapsed
    // eigenvalues) demonstrates WHY the guard exists: amplifying the
    // near-null directions by λ^{-1/2} ≈ 3×10³ wrecks the iteration, and
    // plain SCF stalls on the very same molecule.
    let config = |orth_threshold: f64| ScfConfig {
        orth_threshold,
        ..ScfConfig::default()
    };
    let unguarded = ScfDriver::new(&doubled_h2(), &sto3g(), config(1e-12))
        .run()
        .expect("keep-everything run");
    assert_eq!(unguarded.orth.n_dropped, 0, "1e-12 threshold must drop nothing");
    assert!(
        unguarded.orth.smallest_kept.is_finite() && unguarded.orth.smallest_kept > 0.0,
        "smallest kept eigenvalue must be reported"
    );
    assert!(
        !unguarded.converged,
        "ill-conditioned basis unexpectedly converged without the guard (E = {:.8}); \
         the fixture no longer exercises linear dependence",
        unguarded.energy
    );

    let res = ScfDriver::new(&doubled_h2(), &sto3g(), config(1e-4))
        .run()
        .expect("projected run");
    assert!(res.converged, "linear-dependent basis failed to converge with the guard");
    assert!(res.energy.is_finite());
    assert_eq!(
        res.orth.n_dropped, 2,
        "expected both duplicated directions dropped (smallest kept {:.3e})",
        res.orth.smallest_kept
    );
    assert!((res.orth.threshold - 1e-4).abs() < 1e-18);
    assert!(
        res.orth.smallest_kept > res.orth.threshold,
        "smallest kept eigenvalue {:.3e} is not above the threshold",
        res.orth.smallest_kept
    );
    assert!(
        res.orth.smallest_kept > unguarded.orth.smallest_kept,
        "dropping must improve the conditioning of the surviving basis"
    );
}

#[test]
fn rescue_emits_schema_valid_spans() {
    // The observability half of the tentpole: a rescued pathological run
    // must emit `scf.setup` (with the orthogonalization diagnostics), one
    // `scf.rescue` span per ladder stage, and `scf.non_finite` instants for
    // contained poisoning — all registered event names, all schema-valid.
    mako::trace::enable_with_capacity(1 << 18);

    let res = ScfDriver::new(
        &builders::stretched_water(3.0),
        &sto3g(),
        ScfConfig {
            e_tol: 1e-8,
            max_iterations: 60,
            rescue: Some(RescueConfig::default()),
            ..ScfConfig::default()
        },
    )
    .run()
    .expect("rescued pathological run");
    assert!(res.converged && !res.rescue.is_empty());

    let poisoned = ScfDriver::new(
        &builders::water(),
        &sto3g(),
        ScfConfig {
            rescue: Some(RescueConfig::default()),
            ..ScfConfig::default()
        },
    )
    .run_with(ScfRunOptions {
        poison_fock: Some(3),
        ..ScfRunOptions::default()
    })
    .expect("contained poisoned run");
    assert!(poisoned.converged);

    let dump = mako::trace::drain();
    assert!(dump.recorded > 0, "no events recorded");
    let jsonl = dump.to_jsonl();
    let summary = mako::trace::schema::validate_jsonl(&jsonl)
        .unwrap_or_else(|e| panic!("rescue trace violates its own schema: {e}"));
    for name in ["scf.setup", "scf.rescue", "scf.non_finite"] {
        assert!(
            summary.names.contains(name),
            "expected event {name} missing; saw {:?}",
            summary.names
        );
        assert!(
            mako::trace::schema::is_known_event(name),
            "{name} is not in the KNOWN_EVENTS registry"
        );
    }
    // One scf.rescue span per recorded intervention (both runs together).
    let rescue_spans = jsonl
        .lines()
        .filter(|l| l.contains("\"cat\":\"scf\",\"name\":\"rescue\""))
        .count();
    assert!(
        rescue_spans >= res.rescue.len() + poisoned.rescue.len(),
        "expected ≥{} scf.rescue spans, saw {rescue_spans}",
        res.rescue.len() + poisoned.rescue.len()
    );
}
