//! Chaos suite: property-based fault injection over the fault-tolerant
//! distributed Fock build, and checkpoint/restart of the SCF driver.
//!
//! The two contracts under test (DESIGN.md §10):
//!
//! * **Determinism under recovery** — for *any* seeded fault plan
//!   (transient launch failures, stragglers, permanent loss of up to
//!   ranks−1 ranks), the recovered J/K, per-rank device seconds, and
//!   scheduler statistics are bitwise identical to the fault-free build.
//!   Faults may only change *who executes* and the degraded timeline, never
//!   the numbers.
//! * **Bitwise replay across restart** — an SCF trajectory killed
//!   mid-flight and resumed from its latest checkpoint converges to the
//!   same final energy, iteration count, and device clock to the bit as the
//!   uninterrupted run.

use proptest::prelude::*;

use mako::accel::fault::{FaultConfig, FaultPlan};
use mako::accel::{CostModel, DeviceSpec};
use mako::chem::basis::sto3g::sto3g;
use mako::chem::{builders, AoLayout};
use mako::eri::batch::batch_quartets;
use mako::eri::screening::build_screened_pairs;
use mako::kernels::pipeline::PipelineConfig;
use mako::linalg::Matrix;
use mako::quant::QuantSchedule;
use mako::scf::fock::{FockEngineOptions, JkMatrices};
use mako::scf::{
    build_jk_distributed, build_jk_distributed_ft, CheckpointError, CheckpointPolicy,
    DistributedScf, FaultToleranceOptions, ScfCheckpoint, ScfConfig, ScfDriver, ScfError,
    ScfRunOptions,
};
use std::path::PathBuf;

/// Water-monomer Fock fixture with a synthetic (non-idempotent) density —
/// cheap enough to rebuild inside every proptest case.
fn fock_fixture() -> (
    Matrix,
    Vec<mako::eri::ScreenedPair>,
    Vec<mako::eri::QuartetBatch>,
    AoLayout,
    QuantSchedule,
    PipelineConfig,
    CostModel,
) {
    let mol = builders::water();
    let shells = sto3g().shells_for(&mol);
    let layout = AoLayout::new(&shells);
    let pairs = build_screened_pairs(&shells, 1e-12);
    let batches = batch_quartets(&pairs, 1e-14);
    let d = Matrix::from_fn(layout.nao, layout.nao, |i, j| {
        0.4 / (1.0 + (i as f64 - j as f64).abs())
    });
    let model = CostModel::new(DeviceSpec::a100());
    let cfg = PipelineConfig::kernel_mako_fp64();
    let schedule = QuantSchedule::fp64_reference(0.0);
    (d, pairs, batches, layout, schedule, cfg, model)
}

fn assert_bitwise_jk(a: &JkMatrices, b: &JkMatrices, what: &str) {
    assert!(
        a.j.as_slice()
            .iter()
            .zip(b.j.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "{what}: J not bitwise identical"
    );
    assert!(
        a.k.as_slice()
            .iter()
            .zip(b.k.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "{what}: K not bitwise identical"
    );
}

/// Scratch checkpoint path unique to this test process.
fn scratch_ckpt(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mako_chaos_{tag}_{}.ckpt", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole invariant, quantified: ANY seeded fault plan —
    /// transients, stragglers, and up to ranks−1 permanent losses — yields
    /// bitwise-identical J/K, per-rank seconds, and stats, with a
    /// consistent recovery ledger.
    #[test]
    fn any_seeded_fault_plan_recovers_bitwise(
        seed in any::<u64>(),
        ranks in 2usize..5,
        transient_rate in 0.0f64..0.5,
        straggler_rate in 0.0f64..1.0,
        loss_rate in 0.0f64..0.9,
    ) {
        let (d, pairs, batches, layout, schedule, cfg, model) = fock_fixture();
        let (ff, ff_seconds, ff_stats) = build_jk_distributed(
            &d, &pairs, &batches, &layout, &schedule, &cfg, &cfg, &model, ranks,
        )
        .expect("fault-free build");

        let plan = FaultPlan::seeded(
            seed,
            ranks,
            &FaultConfig {
                transient_rate,
                straggler_rate,
                straggler_slowdown: (1.5, 6.0),
                loss_rate,
                ..FaultConfig::default()
            },
        );
        let dead = (0..ranks)
            .filter(|&r| plan.rank(r).death_fraction.is_some())
            .count();
        prop_assert!(dead < ranks, "seeded plan must leave a survivor");

        let ft = build_jk_distributed_ft(
            &d,
            &pairs,
            &batches,
            &layout,
            &schedule,
            &|_| (cfg, cfg),
            &model,
            ranks,
            FockEngineOptions::default(),
            &FaultToleranceOptions::new(plan),
        )
        .expect("ft build");

        assert_bitwise_jk(&ft.jk, &ff, "seeded plan");
        prop_assert_eq!(&ft.rank_seconds, &ff_seconds);
        prop_assert_eq!(&ft.stats, &ff_stats);
        prop_assert_eq!(ft.recovery.ranks_lost, dead);
        prop_assert!(
            ft.recovery.degraded_seconds >= ft.recovery.fault_free_seconds,
            "faults cannot make the cluster faster: {:?}",
            ft.recovery
        );
        if dead == 0 && transient_rate == 0.0 {
            prop_assert_eq!(ft.recovery.transient_retries, 0);
        }
    }

    /// Replaying the same seed gives the same ledger — the fault engine is
    /// a pure function of (seed, topology).
    #[test]
    fn fault_replay_is_deterministic(seed in any::<u64>(), ranks in 2usize..5) {
        let (d, pairs, batches, layout, schedule, cfg, model) = fock_fixture();
        let mk = || FaultPlan::seeded(seed, ranks, &FaultConfig::chaotic());
        let run = |plan: FaultPlan| {
            build_jk_distributed_ft(
                &d,
                &pairs,
                &batches,
                &layout,
                &schedule,
                &|_| (cfg, cfg),
                &model,
                ranks,
                FockEngineOptions::default(),
                &FaultToleranceOptions::new(plan),
            )
            .expect("ft build")
        };
        let a = run(mk());
        let b = run(mk());
        assert_bitwise_jk(&a.jk, &b.jk, "replay");
        prop_assert_eq!(a.recovery, b.recovery);
        prop_assert_eq!(
            a.recovery.degraded_seconds.to_bits(),
            b.recovery.degraded_seconds.to_bits()
        );
    }
}

#[test]
fn targeted_loss_of_all_but_one_rank_recovers_bitwise() {
    // The issue's strongest acceptance case as a targeted (non-sampled)
    // pin: 3 of 4 ranks die at different points of their shares.
    let (d, pairs, batches, layout, schedule, cfg, model) = fock_fixture();
    let ranks = 4;
    let (ff, ff_seconds, ff_stats) =
        build_jk_distributed(&d, &pairs, &batches, &layout, &schedule, &cfg, &cfg, &model, ranks)
            .expect("fault-free build");
    let plan = FaultPlan::quiet(ranks)
        .kill_rank(0, 0.0)
        .kill_rank(2, 0.5)
        .kill_rank(3, 0.99);
    let ft = build_jk_distributed_ft(
        &d,
        &pairs,
        &batches,
        &layout,
        &schedule,
        &|_| (cfg, cfg),
        &model,
        ranks,
        FockEngineOptions::default(),
        &FaultToleranceOptions::new(plan),
    )
    .expect("ft build");
    assert_bitwise_jk(&ft.jk, &ff, "3-of-4 loss");
    assert_eq!(ft.rank_seconds, ff_seconds);
    assert_eq!(ft.stats, ff_stats);
    assert_eq!(ft.recovery.ranks_lost, 3);
    assert!(ft.recovery.rerun_batches > 0);
}

#[test]
fn scf_under_faults_matches_quiet_scf_bitwise() {
    // End-to-end: a full SCF trajectory on a faulted 2-rank cluster
    // converges to the bit-identical energy of the quiet 2-rank cluster,
    // while the recovery ledgers record the injected anomalies.
    let mol = builders::water();
    let mk_cfg = |plan: Option<FaultPlan>| ScfConfig {
        e_tol: 1e-8,
        distributed: Some(DistributedScf {
            fault_plan: plan,
            ..DistributedScf::new(2)
        }),
        ..ScfConfig::default()
    };
    let quiet = ScfDriver::new(&mol, &sto3g(), mk_cfg(None))
        .run()
        .expect("quiet distributed scf");
    assert!(quiet.converged);

    let plan = FaultPlan::quiet(2).kill_rank(1, 0.4).with_transients(0.15);
    let chaos = ScfDriver::new(&mol, &sto3g(), mk_cfg(Some(plan)))
        .run()
        .expect("faulted distributed scf");
    assert!(chaos.converged);
    assert_eq!(
        chaos.energy.to_bits(),
        quiet.energy.to_bits(),
        "faults changed the converged energy: {:.15} vs {:.15}",
        chaos.energy,
        quiet.energy
    );
    assert_eq!(chaos.iterations, quiet.iterations);
    let recovered = chaos.clock.total_recovery();
    assert_eq!(recovered.ranks_lost, chaos.iterations, "one loss per iteration");
    assert!(recovered.transient_retries > 0);
    assert!(recovered.overhead_seconds() > 0.0);
    assert!(quiet.clock.total_recovery().quiet());
}

#[test]
fn killed_run_reports_killed_error() {
    let mol = builders::water();
    let driver = ScfDriver::new(&mol, &sto3g(), ScfConfig::default());
    let err = driver
        .run_with(ScfRunOptions {
            kill_after: Some(3),
            ..ScfRunOptions::default()
        })
        .expect_err("run must die at iteration 3");
    assert_eq!(err, ScfError::Killed { iterations: 3 });
}

#[test]
fn checkpoint_restart_reproduces_trajectory_bitwise() {
    // Kill the trajectory at several different depths; every resume must
    // land on the uninterrupted run's energy, iteration count, and device
    // clock to the bit (acceptance bar: 1e-12 Ha — bitwise is stricter).
    let mol = builders::water();
    let config = ScfConfig {
        e_tol: 1e-9,
        ..ScfConfig::default()
    };
    let driver = ScfDriver::new(&mol, &sto3g(), config);
    let full = driver.run().expect("uninterrupted run");
    assert!(full.converged);

    for kill_after in [1usize, 2, 5] {
        let path = scratch_ckpt(&format!("restart_{kill_after}"));
        let policy = CheckpointPolicy::new(1, path.clone());
        let err = driver
            .run_with(ScfRunOptions {
                checkpoint: Some(policy.clone()),
                kill_after: Some(kill_after),
                ..ScfRunOptions::default()
            })
            .expect_err("interrupted run must die");
        assert_eq!(err, ScfError::Killed { iterations: kill_after });

        let ck = ScfCheckpoint::load(&path).expect("load checkpoint");
        assert_eq!(ck.next_iteration, kill_after);
        let resumed = driver
            .run_with(ScfRunOptions {
                resume: Some(ck),
                ..ScfRunOptions::default()
            })
            .expect("resumed run");
        assert!(resumed.converged);
        assert_eq!(
            resumed.energy.to_bits(),
            full.energy.to_bits(),
            "kill@{kill_after}: resumed energy drifted: {:.15} vs {:.15} (Δ = {:.3e})",
            resumed.energy,
            full.energy,
            (resumed.energy - full.energy).abs()
        );
        assert_eq!(resumed.iterations, full.iterations, "kill@{kill_after}");
        assert_eq!(
            resumed.total_seconds.to_bits(),
            full.total_seconds.to_bits(),
            "kill@{kill_after}: device clock diverged across restart"
        );
        assert_eq!(resumed.clock.total_recovery().checkpoint_loads, 1);
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn checkpoint_restart_survives_repeated_kills() {
    // Crash → resume → crash again → resume again: the relay must still
    // finish on the uninterrupted energy, and each leg's checkpoints chain.
    let mol = builders::water();
    let driver = ScfDriver::new(&mol, &sto3g(), ScfConfig::default());
    let full = driver.run().expect("uninterrupted run");
    let path = scratch_ckpt("relay");
    let policy = CheckpointPolicy::new(2, path.clone());

    let mut resume: Option<ScfCheckpoint> = None;
    let mut finished = None;
    for kill_after in [2usize, 4, usize::MAX] {
        let opts = ScfRunOptions {
            checkpoint: Some(policy.clone()),
            resume: resume.take(),
            kill_after: (kill_after != usize::MAX).then_some(kill_after),
            poison_fock: None,
        };
        match driver.run_with(opts) {
            Ok(res) => {
                finished = Some(res);
                break;
            }
            Err(ScfError::Killed { iterations }) => {
                assert_eq!(iterations, kill_after);
                resume = Some(ScfCheckpoint::load(&path).expect("load checkpoint"));
            }
            Err(e) => panic!("unexpected SCF error: {e}"),
        }
    }
    let res = finished.expect("relay never finished");
    assert_eq!(res.energy.to_bits(), full.energy.to_bits());
    assert_eq!(res.iterations, full.iterations);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_rejects_wrong_problem() {
    // A checkpoint from one molecule must not resume another: the
    // fingerprint (nao, batches, quartets) check fails loudly instead of
    // silently producing garbage.
    let water = builders::water();
    let driver = ScfDriver::new(&water, &sto3g(), ScfConfig::default());
    let path = scratch_ckpt("fingerprint");
    let err = driver
        .run_with(ScfRunOptions {
            checkpoint: Some(CheckpointPolicy::new(1, path.clone())),
            kill_after: Some(2),
            ..ScfRunOptions::default()
        })
        .expect_err("interrupted run must die");
    assert_eq!(err, ScfError::Killed { iterations: 2 });

    let ck = ScfCheckpoint::load(&path).expect("load checkpoint");
    let methane = builders::methane();
    let other = ScfDriver::new(&methane, &sto3g(), ScfConfig::default());
    let err = other
        .run_with(ScfRunOptions {
            resume: Some(ck),
            ..ScfRunOptions::default()
        })
        .expect_err("fingerprint mismatch must be rejected");
    assert!(
        matches!(err, ScfError::Checkpoint(_)),
        "expected a checkpoint error, got: {err}"
    );
    let _ = std::fs::remove_file(&path);
}

/// Run `driver` with a checkpoint-every-iteration policy, kill it at
/// iteration 2, and hand back the checkpoint it left behind.
fn checkpoint_from(driver: &ScfDriver, tag: &str) -> ScfCheckpoint {
    let path = scratch_ckpt(tag);
    let err = driver
        .run_with(ScfRunOptions {
            checkpoint: Some(CheckpointPolicy::new(1, path.clone())),
            kill_after: Some(2),
            ..ScfRunOptions::default()
        })
        .expect_err("interrupted run must die");
    assert_eq!(err, ScfError::Killed { iterations: 2 });
    let ck = ScfCheckpoint::load(&path).expect("load checkpoint");
    let _ = std::fs::remove_file(&path);
    ck
}

#[test]
fn checkpoint_rejects_same_shape_different_geometry() {
    // The cross-tenant attack the shape triple cannot see: a perturbed
    // water has the same nao, batch count, and quartet count as the
    // pristine one, so only the v2 problem hash separates them. Resuming
    // tenant A's checkpoint on tenant B's near-identical molecule must fail
    // typed — not silently continue B's SCF from A's density.
    let water = ScfDriver::new(&builders::water(), &sto3g(), ScfConfig::default());
    let shifted = ScfDriver::new(
        &builders::perturbed_water(42, 1e-3),
        &sto3g(),
        ScfConfig::default(),
    );
    assert_eq!(water.nao(), shifted.nao());
    assert_eq!(water.nbatches(), shifted.nbatches());
    assert_eq!(water.nquartets(), shifted.nquartets());
    assert_ne!(
        water.problem_fingerprint(),
        shifted.problem_fingerprint(),
        "identical shapes must still hash as distinct problems"
    );

    let ck = checkpoint_from(&water, "geometry");
    assert_eq!(
        ck.validate(
            shifted.nao(),
            shifted.nbatches(),
            shifted.nquartets(),
            shifted.problem_fingerprint(),
        ),
        Err(CheckpointError::Mismatch { field: "problem" })
    );
    let err = shifted
        .run_with(ScfRunOptions {
            resume: Some(ck),
            ..ScfRunOptions::default()
        })
        .expect_err("cross-geometry resume must be rejected");
    assert_eq!(
        err,
        ScfError::Checkpoint(CheckpointError::Mismatch { field: "problem" })
    );
}

#[test]
fn checkpoint_rejects_same_molecule_different_device() {
    // Same molecule, same basis, different simulated device: the numbers
    // would even agree, but the device clock would not — a resumed
    // trajectory would splice A100 iteration timings into an H100 ledger
    // and silently break the bitwise-replay contract. The problem hash
    // covers the device kind, so the splice is refused up front.
    use mako::accel::DeviceKind;
    let mol = builders::water();
    let a100 = ScfDriver::new(&mol, &sto3g(), ScfConfig::default());
    let h100 = ScfDriver::new(
        &mol,
        &sto3g(),
        ScfConfig {
            device: DeviceSpec::new(DeviceKind::H100),
            ..ScfConfig::default()
        },
    );
    assert_eq!(a100.nao(), h100.nao());
    assert_ne!(a100.problem_fingerprint(), h100.problem_fingerprint());

    let ck = checkpoint_from(&a100, "device");
    let err = h100
        .run_with(ScfRunOptions {
            resume: Some(ck),
            ..ScfRunOptions::default()
        })
        .expect_err("cross-device resume must be rejected");
    assert_eq!(
        err,
        ScfError::Checkpoint(CheckpointError::Mismatch { field: "problem" })
    );
}
