//! Durability integration tests: the crash-consistency contract of the
//! store-backed server, end to end across the workspace crates.
//!
//! * **Prefix consistency** (proptest) — at any crash point, the valid
//!   bytes of the crashed journal are a *literal prefix* of the quiet
//!   run's journal, and recovery finishes the serve with every completed
//!   job's energy bitwise identical to the quiet run.
//! * **Double recovery** — recovering a recovered store changes nothing.
//! * **Checkpoint quarantine** — a salvaged checkpoint that fails
//!   validation is moved aside and the job re-runs; the rot is never
//!   consumed.
//! * **No temp residue** — the fsync-then-rename discipline leaves no
//!   `.tmp` files behind after a quiet serve.

use proptest::prelude::*;

use mako::chem::builders;
use mako::server::{
    JobSpec, Journal, JournalRecord, MakoServer, PriorityClass, ServeReport, ServerChaos,
    ServerConfig,
};
use mako::store::{read_all_framed, FaultProfile, FaultVfs, Vfs};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

const ROOT: &str = "/srv";
const SEED: u64 = 7;

fn workload() -> Vec<JobSpec> {
    vec![
        JobSpec::new("alice", PriorityClass::Interactive, builders::water()),
        JobSpec::new("bob", PriorityClass::Batch, builders::methane()).at(1e-4),
    ]
}

fn open_server(vfs: Arc<FaultVfs>) -> Result<MakoServer, mako::store::VfsError> {
    MakoServer::with_store(ServerConfig::default(), vfs as Arc<dyn Vfs>, PathBuf::from(ROOT))
}

fn energies(report: &ServeReport) -> Vec<Option<u64>> {
    report
        .outcomes
        .iter()
        .map(|o| o.report().map(|r| r.energy.to_bits()))
        .collect()
}

/// The quiet reference: journal bytes, energy bits, and the crash-point
/// domain — computed once and shared across proptest cases.
struct QuietRef {
    journal: Vec<u8>,
    energies: Vec<Option<u64>>,
    domain: u64,
}

fn quiet_ref() -> &'static QuietRef {
    static QUIET: OnceLock<QuietRef> = OnceLock::new();
    QUIET.get_or_init(|| {
        let vfs = Arc::new(FaultVfs::quiet());
        let server = open_server(vfs.clone()).expect("open");
        let report = server.serve_quiet(&workload());
        assert!(!report.crashed);
        assert_eq!(report.ledger.completed, 2);
        QuietRef {
            journal: vfs.raw(Path::new("/srv/serve.wal")).expect("quiet journal"),
            energies: energies(&report),
            domain: vfs.ops(),
        }
    })
}

/// Run one crash-point trial (startup crashes restart, like a real
/// process) and return `(vfs, server, crashed)` after the serve.
fn crashed_serve(crash_op: u64) -> (Arc<FaultVfs>, MakoServer, bool) {
    let vfs = Arc::new(FaultVfs::new(FaultProfile::crash_at(SEED, crash_op)));
    let (server, mut crashed) = match open_server(vfs.clone()) {
        Ok(server) => (server, false),
        Err(_) => {
            vfs.recover_crash();
            (open_server(vfs.clone()).expect("reopen after startup crash"), true)
        }
    };
    crashed |= server.serve_quiet(&workload()).crashed;
    (vfs, server, crashed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_crash_point_leaves_a_journal_prefix_and_recovers_bitwise(frac in 0.0f64..1.0) {
        let quiet = quiet_ref();
        let crash_op = ((frac * quiet.domain as f64) as u64).min(quiet.domain - 1);
        let (vfs, server, _crashed) = crashed_serve(crash_op);

        // Prefix consistency: every valid byte of the crashed journal is a
        // literal prefix of the quiet journal — a crash may lose the tail,
        // never reorder or invent records.
        if let Some(bytes) = vfs.raw(Path::new("/srv/serve.wal")) {
            let (_, _, valid_len) = read_all_framed(&bytes);
            prop_assert!(valid_len <= quiet.journal.len());
            prop_assert!(
                bytes[..valid_len] == quiet.journal[..valid_len],
                "crash point {}: journal diverged from the quiet run's",
                crash_op
            );
        }

        // Recovery finishes the serve bitwise.
        let recovered = server
            .recover(&workload(), &ServerChaos::quiet(server.config().workers))
            .expect("recover");
        prop_assert!(!recovered.crashed);
        prop_assert_eq!(recovered.ledger.completed, 2);
        prop_assert!(
            energies(&recovered) == quiet.energies,
            "crash point {}: recovered energies diverged",
            crash_op
        );
    }
}

#[test]
fn double_recovery_is_idempotent() {
    let quiet = quiet_ref();
    let (_vfs, server, crashed) = crashed_serve(quiet.domain / 2);
    assert!(crashed, "the mid-point crash must fire");
    let chaos = ServerChaos::quiet(server.config().workers);
    let first = server.recover(&workload(), &chaos).expect("first recovery");
    let second = server.recover(&workload(), &chaos).expect("second recovery");
    assert_eq!(energies(&first), quiet.energies);
    // The second recovery replays terminal records instead of re-running:
    // identical outcomes, identical reports, zero quanta executed.
    for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "recoveries disagree");
    }
    assert_eq!(second.ledger.quanta, 0, "a full journal leaves nothing to re-run");
}

/// Job ids with a terminal record in the journal at `path` — those are
/// replayed, never salvaged, so their checkpoints are out of scope for
/// the quarantine path.
fn terminal_jobs(vfs: &FaultVfs, path: &Path) -> Vec<u64> {
    let bytes = vfs.raw(path).unwrap_or_default();
    let (frames, _, _) = read_all_framed(&bytes);
    frames
        .iter()
        .filter_map(|f| JournalRecord::decode(f))
        .filter_map(|r| match r {
            JournalRecord::Completed { job, .. }
            | JournalRecord::Failed { job, .. }
            | JournalRecord::DeadlineExceeded { job, .. } => Some(job),
            _ => None,
        })
        .collect()
}

#[test]
fn a_corrupt_salvaged_checkpoint_is_quarantined_not_consumed() {
    let quiet = quiet_ref();
    // Find a crash point that leaves an on-disk checkpoint behind for a
    // job the journal has NOT resolved (the batch job yields at its
    // quantum boundary and persists one) — that checkpoint is exactly
    // what recovery will try to salvage.
    let mut found = None;
    for k in (0..quiet.domain).rev() {
        let (vfs, server, crashed) = crashed_serve(k);
        if !crashed {
            continue;
        }
        vfs.recover_crash();
        let done = terminal_jobs(&vfs, Path::new("/srv/serve.wal"));
        let ckpts: Vec<PathBuf> = vfs
            .list(Path::new(ROOT))
            .unwrap_or_default()
            .into_iter()
            .filter(|p| p.extension().is_some_and(|e| e == "ckpt"))
            .filter(|p| {
                p.file_stem()
                    .and_then(|s| s.to_string_lossy().strip_prefix("job")?.parse::<u64>().ok())
                    .is_some_and(|id| !done.contains(&id))
            })
            .collect();
        if !ckpts.is_empty() {
            found = Some((vfs, server, ckpts));
            break;
        }
    }
    let (vfs, server, ckpts) =
        found.expect("some crash point leaves a salvageable checkpoint");
    // Rot every surviving checkpoint mid-payload.
    for ckpt in &ckpts {
        let len = vfs.raw(ckpt).expect("ckpt bytes").len();
        assert!(vfs.corrupt(ckpt, len / 2, 0x08), "rot {ckpt:?}");
    }
    let recovered = server
        .recover(&workload(), &ServerChaos::quiet(server.config().workers))
        .expect("recover");
    assert_eq!(
        energies(&recovered),
        quiet.energies,
        "a rotted checkpoint leaked into the recovered numbers"
    );
    // The rot was moved aside as evidence, not silently deleted.
    let quarantined = vfs
        .list(Path::new(ROOT))
        .unwrap_or_default()
        .into_iter()
        .any(|p| p.to_string_lossy().ends_with(".quarantine"));
    assert!(quarantined, "rotted checkpoints must be quarantined");
}

#[test]
fn recovery_of_an_uncrashed_serve_replays_without_rerunning() {
    let quiet = quiet_ref();
    let vfs = Arc::new(FaultVfs::quiet());
    let server = open_server(vfs).expect("open");
    let report = server.serve_quiet(&workload());
    assert!(!report.crashed);
    let recovered = server
        .recover(&workload(), &ServerChaos::quiet(server.config().workers))
        .expect("recover");
    assert_eq!(energies(&recovered), quiet.energies);
    assert_eq!(recovered.ledger.quanta, 0, "nothing to re-run after ServeEnd");
}

#[test]
fn a_quiet_serve_leaves_no_temp_files() {
    let vfs = Arc::new(FaultVfs::quiet());
    let server = open_server(vfs.clone()).expect("open");
    let report = server.serve_quiet(&workload());
    assert!(!report.crashed);
    for dir in [ROOT, "/srv/artifacts"] {
        for path in vfs.list(Path::new(dir)).unwrap_or_default() {
            assert!(
                !path.to_string_lossy().ends_with(".tmp"),
                "temp residue after a quiet serve: {path:?}"
            );
        }
    }
}

#[test]
fn journal_replay_refuses_a_mismatched_workload_end_to_end() {
    let (_vfs, server, crashed) = crashed_serve(quiet_ref().domain / 2);
    assert!(crashed);
    let mut other = workload();
    other.push(JobSpec::new("mallory", PriorityClass::Batch, builders::ammonia()));
    assert!(
        server.recover(&other, &ServerChaos::quiet(2)).is_err(),
        "a journal must never replay against a different workload"
    );
    // Sanity: the journal type itself is reachable from the test (the
    // public surface the docs promise).
    let _ = (Journal::new(
        Arc::new(FaultVfs::quiet()) as Arc<dyn Vfs>,
        PathBuf::from("/x.wal"),
    ), JournalRecord::RecoveryMark { generation: 1 });
}
