//! Integration tests spanning the whole Mako workspace through the facade
//! crate: molecule → basis → screening → tuned kernels → SCF → energy.

use mako::prelude::*;

#[test]
fn water_rhf_full_stack() {
    let res = MakoEngine::new().run_rhf(&mako::chem::builders::water(), BasisFamily::Sto3g).expect("scf run");
    assert!(res.converged);
    assert!((res.energy - (-74.963)).abs() < 0.02, "E = {}", res.energy);
    // Energy decomposition sanity.
    assert!(res.e_nuclear > 0.0);
    assert!(res.energy - res.e_nuclear < -80.0, "electronic energy strongly negative");
}

#[test]
fn methane_and_ammonia_rhf() {
    // CH4/STO-3G ≈ −39.73 Ha, NH3/STO-3G ≈ −55.45 Ha (textbook values).
    let engine = MakoEngine::new();
    let ch4 = engine.run_rhf(&mako::chem::builders::methane(), BasisFamily::Sto3g).expect("scf run");
    assert!(ch4.converged);
    assert!((ch4.energy - (-39.73)).abs() < 0.05, "E(CH4) = {}", ch4.energy);

    let nh3 = engine.run_rhf(&mako::chem::builders::ammonia(), BasisFamily::Sto3g).expect("scf run");
    assert!(nh3.converged);
    assert!((nh3.energy - (-55.45)).abs() < 0.05, "E(NH3) = {}", nh3.energy);
}

#[test]
fn size_consistency_of_distant_waters() {
    // Two waters 100 Å apart must give twice the monomer energy.
    let engine = MakoEngine::new();
    let mono = engine.run_rhf(&mako::chem::builders::water(), BasisFamily::Sto3g).expect("scf run");

    let mut dimer = mako::chem::builders::water();
    let far = mako::chem::builders::water();
    for mut atom in far.atoms {
        atom.position[2] += 100.0 * mako::chem::BOHR_PER_ANGSTROM;
        dimer.atoms.push(atom);
    }
    dimer.name = "2 x H2O (far)".into();
    let res = engine.run_rhf(&dimer, BasisFamily::Sto3g).expect("scf run");
    assert!(res.converged);
    assert!(
        (res.energy - 2.0 * mono.energy).abs() < 1e-6,
        "size consistency violated: {} vs 2×{}",
        res.energy,
        mono.energy
    );
}

#[test]
fn quantized_path_is_chemically_accurate_on_dimer() {
    let mol = mako::chem::builders::water_cluster(2);
    let fp64 = MakoEngine::new().run_rhf(&mol, BasisFamily::Sto3g).expect("scf run");
    let quant = MakoEngine::new()
        .with_quantization(true)
        .run_rhf(&mol, BasisFamily::Sto3g).expect("scf run");
    assert!(fp64.converged && quant.converged);
    assert!(
        (fp64.energy - quant.energy).abs() < 1e-3,
        "Δ = {} Ha",
        (fp64.energy - quant.energy).abs()
    );
    assert!(quant.stats.quantized_quartets > 0);
}

#[test]
fn rotation_invariance_of_total_energy() {
    // Rigidly rotating the molecule must not change the energy — exercises
    // the solid-harmonic machinery across all shells.
    let engine = MakoEngine::new();
    let base = mako::chem::builders::ammonia();
    let e0 = engine.run_rhf(&base, BasisFamily::Sto3g).expect("scf run").energy;

    let (s, c) = (0.6f64.sin(), 0.6f64.cos());
    let mut rotated = base.clone();
    for atom in &mut rotated.atoms {
        let [x, y, z] = atom.position;
        atom.position = [c * x - s * y, s * x + c * y, z];
    }
    let e1 = engine.run_rhf(&rotated, BasisFamily::Sto3g).expect("scf run").energy;
    assert!((e0 - e1).abs() < 1e-9, "rotation changed E by {}", (e0 - e1).abs());
}

#[test]
fn virial_ratio_near_two() {
    // At the SCF minimum ⟨V⟩/⟨T⟩ ≈ −2 (virial theorem; basis-set error
    // keeps it within a few percent).
    let mol = mako::chem::builders::water();
    let basis = BasisFamily::Sto3g.basis_for(&mol.elements());
    let shells = basis.shells_for(&mol);
    let res = MakoEngine::new().run_rhf(&mol, BasisFamily::Sto3g).expect("scf run");
    let (_, t, _) = mako::eri::one_electron_matrices(&shells, &mol);
    let kinetic = 2.0 * res.density.dot(&t);
    let potential = res.energy - kinetic;
    let ratio = potential / kinetic;
    assert!((ratio + 2.0).abs() < 0.05, "virial ratio {ratio}");
}
