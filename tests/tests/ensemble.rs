//! Differential conformance suite for the lockstep ensemble driver.
//!
//! The ensemble's contract is that fusion is *pricing only*: every member of
//! a batched run must be **bitwise identical** — energy, density, iteration
//! count, rescue ledger — to the same molecule run one-at-a-time through
//! `ScfDriver::run`. Only the device clock (the thing the fusion improves)
//! is allowed to differ. This suite pins that contract:
//!
//! * batched vs solo bitwise identity at 1/2/4/8 threads and ensemble sizes
//!   1/2/7/16;
//! * a proptest over seeded geometry perturbations and shuffled ensemble
//!   order (member results are a function of the molecule, not of its
//!   neighbors or its slot);
//! * a golden 8-member pin where one stretched-water member climbs the
//!   rescue ladder while its seven healthy neighbors stay untouched;
//! * a chaos run (seeded transients + one rank loss) whose members are
//!   bitwise identical to the fault-free batched run, with all fault
//!   accounting on the ensemble ledger.

use mako::accel::fault::FaultPlan;
use mako::chem::basis::sto3g::sto3g;
use mako::chem::{builders, Molecule};
use mako::scf::{
    EnsembleConfig, EnsembleDriver, RescueConfig, ScfConfig, ScfDriver, ScfResult,
};

/// Perturbation magnitude (Å) for seeded water fixtures: large enough that
/// every member converges to a distinct energy, small enough that plain
/// DIIS converges without rescue.
const PERTURB: f64 = 0.02;

fn perturbed_waters(n: usize) -> Vec<Molecule> {
    (0..n as u64)
        .map(|seed| builders::perturbed_water(seed, PERTURB))
        .collect()
}

fn solo_reference(mol: &Molecule, config: &ScfConfig) -> ScfResult {
    ScfDriver::new(mol, &sto3g(), config.clone())
        .run()
        .expect("solo reference run")
}

/// Bitwise member comparison: everything *except* the device clock
/// (`total_seconds`, `iteration_seconds`, per-iteration ledger), which fused
/// pricing intentionally changes.
fn assert_member_bitwise(got: &ScfResult, want: &ScfResult, label: &str) {
    assert_eq!(
        got.energy.to_bits(),
        want.energy.to_bits(),
        "{label}: energy changed bits: {:.15} vs {:.15}",
        got.energy,
        want.energy
    );
    assert_eq!(got.converged, want.converged, "{label}: converged flag");
    assert_eq!(got.iterations, want.iterations, "{label}: iteration count");
    assert_eq!(
        got.density.as_slice().len(),
        want.density.as_slice().len(),
        "{label}: density shape"
    );
    assert!(
        got.density
            .as_slice()
            .iter()
            .zip(want.density.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "{label}: density matrix changed bits"
    );
    assert!(
        got.orbital_energies
            .iter()
            .zip(&want.orbital_energies)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "{label}: orbital energies changed bits"
    );
    assert_eq!(got.rescue, want.rescue, "{label}: rescue ledger diverged");
}

// ---------------------------------------------------------------------------
// Batched vs one-at-a-time, across thread counts and ensemble sizes.
// ---------------------------------------------------------------------------

#[test]
fn batched_members_bitwise_match_solo_across_threads_and_sizes() {
    let config = ScfConfig::default();
    let mols = perturbed_waters(16);
    let solo: Vec<ScfResult> = mols.iter().map(|m| solo_reference(m, &config)).collect();

    for size in [1usize, 2, 7, 16] {
        let driver = EnsembleDriver::try_new(
            &mols[..size],
            &sto3g(),
            config.clone(),
            EnsembleConfig::default(),
        )
        .expect("ensemble driver");
        for threads in [1usize, 2, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("build thread pool");
            let batch = pool.install(|| driver.run());
            assert!(batch.all_converged(), "size {size} at {threads} threads");
            for (m, member) in batch.members.iter().enumerate() {
                let got = member.as_ref().expect("member result");
                assert_member_bitwise(
                    got,
                    &solo[m],
                    &format!("member {m} of {size} at {threads} threads"),
                );
            }
        }
    }
}

#[test]
fn fusion_amortizes_launches_and_tuning() {
    // The whole point of the lockstep: fewer launches and tuner sweeps than
    // N solo runs, with the savings visible on the fleet ledger.
    let config = ScfConfig {
        quantized: true,
        ..ScfConfig::default()
    };
    let mols = perturbed_waters(4);
    let driver =
        EnsembleDriver::try_new(&mols, &sto3g(), config, EnsembleConfig::default())
            .expect("ensemble driver");
    // Identical basis + geometry class → every member past the first asks
    // the shared cache for kernels it already holds, so the fleet pays far
    // fewer tuner sweeps than four solo drivers would.
    assert!(
        driver.cache_hits() > 0,
        "shared KernelCache served no repeat requests"
    );
    let res = driver.run();
    assert!(res.all_converged());
    let ledger = &res.ledger;
    assert!(
        ledger.fused_launches < ledger.solo_launches,
        "fusion did not reduce launches: {} fused vs {} solo",
        ledger.fused_launches,
        ledger.solo_launches
    );
    assert!(
        ledger.fused_device_seconds < ledger.solo_device_seconds,
        "fused pricing did not beat per-molecule pricing"
    );
    assert!(ledger.fusion_savings_seconds() > 0.0);
    assert_eq!(
        ledger.launches_avoided(),
        ledger.solo_launches - ledger.fused_launches
    );
    // Member clocks are charged from the fused pricing (plus their own
    // diagonalization time), so the fleet total stays finite and positive.
    assert!(res.total_member_device_seconds() > 0.0);
    assert!(res.total_member_device_seconds().is_finite());
}

// ---------------------------------------------------------------------------
// Property: member results are a function of the molecule alone — not of
// the seed stream, the ensemble size, or the member's slot.
// ---------------------------------------------------------------------------

use proptest::prelude::*;

proptest! {
    // Each case runs `size` solo SCFs plus two ensemble runs on water
    // monomers; keep the case count modest so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn ensemble_order_invariance(
        seeds in prop::collection::vec(0u64..1_000_000, 2..5),
        rot in 1usize..4,
    ) {
        let config = ScfConfig::default();
        let mols: Vec<Molecule> = seeds
            .iter()
            .map(|&s| builders::perturbed_water(s, PERTURB))
            .collect();
        // A rotation is a simple seeded shuffle: deterministic under
        // PROPTEST_RNG_SEED and guaranteed to move every slot when
        // rot % len != 0.
        let rot = rot % mols.len();
        let shuffled: Vec<Molecule> = (0..mols.len())
            .map(|i| mols[(i + rot) % mols.len()].clone())
            .collect();

        let run = |set: &[Molecule]| {
            EnsembleDriver::try_new(set, &sto3g(), config.clone(), EnsembleConfig::default())
                .expect("ensemble driver")
                .run()
        };
        let original = run(&mols);
        let rotated = run(&shuffled);

        for (i, mol) in mols.iter().enumerate() {
            let solo = solo_reference(mol, &config);
            let a = original.members[i].as_ref().expect("member result");
            // The same molecule sits at slot (i - rot) mod n of the rotated
            // ensemble; its result must not notice the move.
            let j = (i + mols.len() - rot) % mols.len();
            let b = rotated.members[j].as_ref().expect("member result");
            assert_member_bitwise(a, &solo, &format!("member {i} (original order)"));
            assert_member_bitwise(b, &solo, &format!("member {i} (rotated to slot {j})"));
        }
    }
}

// ---------------------------------------------------------------------------
// Golden pin: one sick member climbs the rescue ladder, seven healthy
// neighbors are untouched, and the whole fleet is thread-bitwise.
// ---------------------------------------------------------------------------

/// Converged energies (Hartree) of the golden 8-member ensemble: seven
/// seeded ±0.02 Å perturbed water monomers plus one 3.5×-stretched water
/// that converges only through the rescue ladder. Produced by this
/// repository (solo runs, `e_tol = 1e-8`); member 7 matches
/// `E_STRETCH3_RESCUED` of the golden suite.
const GOLDEN_ENSEMBLE: [f64; 8] = [
    -74.962_695_076_664,
    -74.960_990_584_065,
    -74.958_789_467_689,
    -74.960_135_508_541,
    -74.958_818_829_020,
    -74.964_468_905_557,
    -74.963_996_169_008,
    -74.257_552_560_520,
];
const GOLDEN_TOL: f64 = 1e-9;

fn golden_ensemble_mols() -> Vec<Molecule> {
    let mut mols = perturbed_waters(7);
    mols.push(builders::stretched_water(3.5));
    mols
}

fn golden_ensemble_config() -> ScfConfig {
    ScfConfig {
        e_tol: 1e-8,
        max_iterations: 60,
        rescue: Some(RescueConfig::default()),
        ..ScfConfig::default()
    }
}

#[test]
fn golden_ensemble_with_rescued_member() {
    let mols = golden_ensemble_mols();
    let config = golden_ensemble_config();
    let driver =
        EnsembleDriver::try_new(&mols, &sto3g(), config.clone(), EnsembleConfig::default())
            .expect("ensemble driver");
    let base = driver.run();
    assert!(base.all_converged(), "golden ensemble failed to converge");

    for (m, member) in base.members.iter().enumerate() {
        let res = member.as_ref().expect("member result");
        assert!(
            (res.energy - GOLDEN_ENSEMBLE[m]).abs() < GOLDEN_TOL,
            "member {m} drifted from golden reference: {:.12} vs {:.12} (Δ = {:.3e} Ha)",
            res.energy,
            GOLDEN_ENSEMBLE[m],
            res.energy - GOLDEN_ENSEMBLE[m]
        );
        // Isolation: the stretched member's divergence must escalate through
        // ITS ladder only — healthy neighbors keep empty ledgers.
        if m == 7 {
            assert!(
                !res.rescue.is_empty(),
                "stretched member never exercised the rescue ladder"
            );
        } else {
            assert!(
                res.rescue.is_empty(),
                "healthy member {m} was perturbed by its sick neighbor: {}",
                res.rescue.summary()
            );
        }
        // The batched trajectory is the solo trajectory, rescue included.
        assert_member_bitwise(res, &solo_reference(&mols[m], &config), &format!("member {m}"));
    }

    // Thread sweep: the fleet, ladder and all, is bitwise reproducible.
    for threads in [1usize, 2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("build thread pool");
        let res = pool.install(|| driver.run());
        for (m, member) in res.members.iter().enumerate() {
            assert_member_bitwise(
                member.as_ref().expect("member result"),
                base.members[m].as_ref().expect("member result"),
                &format!("golden member {m} at {threads} threads"),
            );
        }
        assert_eq!(
            res.ledger.super_iterations, base.ledger.super_iterations,
            "super-iteration count changed at {threads} threads"
        );
        assert_eq!(
            res.ledger.fused_device_seconds.to_bits(),
            base.ledger.fused_device_seconds.to_bits(),
            "fleet clock changed bits at {threads} threads"
        );
    }
}

// ---------------------------------------------------------------------------
// Chaos: faults hit the fleet ledger, never the members.
// ---------------------------------------------------------------------------

#[test]
fn chaos_ensemble_members_bitwise_match_fault_free() {
    let config = ScfConfig::default();
    let mols = perturbed_waters(6);

    let quiet = EnsembleDriver::try_new(
        &mols,
        &sto3g(),
        config.clone(),
        EnsembleConfig {
            ranks: 4,
            fault_plan: None,
        },
    )
    .expect("ensemble driver");
    let baseline = quiet.run();
    assert!(baseline.all_converged());
    // A quiet plan injects nothing and loses nobody.
    let rq = &baseline.ledger.recovery;
    assert_eq!(rq.transient_retries, 0);
    assert_eq!(rq.ranks_lost, 0);
    assert_eq!(
        rq.degraded_seconds.to_bits(),
        rq.fault_free_seconds.to_bits(),
        "quiet run degraded clock must equal the fault-free clock"
    );

    // Seeded chaos: a transient storm plus one permanent rank loss, the
    // same shape `build_jk_distributed_ft`'s suite injects per-call.
    let chaotic = EnsembleDriver::try_new(
        &mols,
        &sto3g(),
        config.clone(),
        EnsembleConfig {
            ranks: 4,
            fault_plan: Some(FaultPlan::quiet(4).kill_rank(2, 0.5).with_transients(0.15)),
        },
    )
    .expect("ensemble driver");
    let stormy = chaotic.run();
    assert!(stormy.all_converged(), "faults leaked into member numerics");

    // Member isolation: every trajectory is bitwise identical to the
    // fault-free batched run (and hence to solo).
    for (m, member) in stormy.members.iter().enumerate() {
        assert_member_bitwise(
            member.as_ref().expect("member result"),
            baseline.members[m].as_ref().expect("member result"),
            &format!("member {m} under chaos"),
        );
    }

    // All fault accounting lands on the ensemble ledger.
    let rec = &stormy.ledger.recovery;
    assert!(rec.transient_retries > 0, "transient storm never fired");
    assert!(rec.backoff_seconds > 0.0, "retries charged no backoff");
    assert_eq!(rec.ranks_lost, 1, "exactly one rank should die");
    assert!(rec.rerun_batches > 0, "rank loss re-ran no launches");
    assert!(
        rec.degraded_seconds > rec.fault_free_seconds,
        "recovery cost vanished: degraded {} vs fault-free {}",
        rec.degraded_seconds,
        rec.fault_free_seconds
    );
    // The fused launch population is a function of the trajectories, which
    // chaos must not touch.
    assert_eq!(stormy.ledger.fused_launches, baseline.ledger.fused_launches);
    assert_eq!(
        stormy.ledger.super_iterations,
        baseline.ledger.super_iterations
    );
}

// ---------------------------------------------------------------------------
// Failure containment: a member that cannot be saved drains with its own
// error and the lockstep carries on.
// ---------------------------------------------------------------------------

#[test]
fn iteration_capped_member_drains_without_stalling_neighbors() {
    // The stretched water cannot converge in 10 iterations without rescue;
    // the perturbed monomers converge in 7. The sick member must drain at
    // the cap (converged = false) while its neighbors finish normally.
    let config = ScfConfig {
        max_iterations: 10,
        ..ScfConfig::default()
    };
    let mut mols = perturbed_waters(2);
    mols.push(builders::stretched_water(3.5));

    let res = EnsembleDriver::try_new(&mols, &sto3g(), config.clone(), EnsembleConfig::default())
        .expect("ensemble driver")
        .run();
    for (m, mol) in mols.iter().enumerate() {
        let got = res.members[m].as_ref().expect("member result");
        assert_member_bitwise(got, &solo_reference(mol, &config), &format!("member {m}"));
    }
    assert!(res.members[0].as_ref().expect("member").converged);
    assert!(res.members[1].as_ref().expect("member").converged);
    assert!(!res.members[2].as_ref().expect("member").converged);
}
