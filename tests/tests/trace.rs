//! Tracing inertness: `mako-trace` instrumentation must be provably
//! numerically inert. With the collector enabled, J/K matrices, the
//! scheduler stats, the simulated device clock, and the converged SCF
//! energy must be **bitwise identical** to an untraced run at any host
//! thread count — tracing only reads values the computation already
//! produced, never perturbs them.
//!
//! The trace global is process-wide state, so everything lives in ONE test
//! function with a strict phase order: all untraced baselines run first,
//! then the collector is switched on (it cannot be switched back off), then
//! the traced replicas run and the captured events are schema-validated.

use mako::accel::{CostModel, DeviceSpec};
use mako::chem::basis::sto3g::sto3g;
use mako::chem::AoLayout;
use mako::eri::batch::batch_quartets;
use mako::eri::screening::build_screened_pairs;
use mako::kernels::pipeline::PipelineConfig;
use mako::linalg::Matrix;
use mako::prelude::*;
use mako::quant::QuantSchedule;
use mako::scf::fock::{build_jk, JkMatrices};

fn bits_equal(a: &Matrix, b: &Matrix) -> bool {
    a.as_slice().len() == b.as_slice().len()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn two_electron_energy(d: &Matrix, jk: &JkMatrices) -> f64 {
    d.dot(&jk.j) - 0.5 * d.dot(&jk.k)
}

#[test]
fn tracing_is_numerically_inert_and_emits_the_documented_spans() {
    // ---- Shared Fock workload: a water dimer, mixed FP64/quantized. ----
    let mol = mako::chem::builders::water_cluster(2);
    let shells = sto3g().shells_for(&mol);
    let layout = AoLayout::new(&shells);
    let pairs = build_screened_pairs(&shells, 1e-6);
    let batches = batch_quartets(&pairs, 1e-10);
    let schedule = QuantSchedule::for_iteration(1.0, 1e-7);
    let model = CostModel::new(DeviceSpec::a100());
    let fp64_cfg = PipelineConfig::kernel_mako_fp64();
    let quant_cfg = PipelineConfig::quant_mako();
    let n = layout.nao;
    let mut density = Matrix::from_fn(n, n, |i, j| 0.3 / (1.0 + (i as f64 - j as f64).abs()));
    density.symmetrize();

    // ---- Phase 1: untraced baselines (collector still off). ----
    assert!(
        !mako::trace::enabled(),
        "trace collector must start disabled in this test binary"
    );
    let (jk_ref, st_ref) = build_jk(
        &density, &pairs, &batches, &layout, &schedule, &fp64_cfg, &quant_cfg, &model,
    );
    let e2_ref = two_electron_energy(&density, &jk_ref);
    let scf_ref = MakoEngine::new()
        .run_rhf(&mol, BasisFamily::Sto3g)
        .expect("untraced scf run");

    // ---- Phase 2: collector on; traced replicas at 1/2/4/8 threads. ----
    mako::trace::enable_with_capacity(1 << 18);
    for threads in [1usize, 2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("build thread pool");
        let (jk, st) = pool.install(|| {
            build_jk(
                &density, &pairs, &batches, &layout, &schedule, &fp64_cfg, &quant_cfg, &model,
            )
        });
        assert!(
            bits_equal(&jk.j, &jk_ref.j) && bits_equal(&jk.k, &jk_ref.k),
            "traced J/K drifted from the untraced baseline at {threads} threads"
        );
        assert_eq!(st, st_ref, "stats drifted at {threads} threads");
        assert_eq!(
            st.device_seconds.to_bits(),
            st_ref.device_seconds.to_bits(),
            "simulated device clock drifted at {threads} threads"
        );
        assert_eq!(
            two_electron_energy(&density, &jk).to_bits(),
            e2_ref.to_bits(),
            "two-electron energy drifted at {threads} threads"
        );
    }

    let scf_traced = MakoEngine::new()
        .run_rhf(&mol, BasisFamily::Sto3g)
        .expect("traced scf run");
    assert_eq!(
        scf_traced.energy.to_bits(),
        scf_ref.energy.to_bits(),
        "traced SCF energy is not bitwise identical to the untraced run"
    );
    assert_eq!(scf_traced.iterations, scf_ref.iterations);

    // ---- Phase 3: the captured events carry the documented schema. ----
    let dump = mako::trace::drain();
    assert!(dump.recorded > 0, "no events recorded");
    let jsonl = dump.to_jsonl();
    let summary = mako::trace::schema::validate_jsonl(&jsonl)
        .unwrap_or_else(|e| panic!("emitted JSONL violates its own schema: {e}"));
    for name in [
        "scf.iteration",
        "fock.screen",
        "fock.launch",
        "fock.assemble",
        "clock.iteration",
        "compiler.tune_class",
    ] {
        assert!(
            summary.names.contains(name),
            "expected event {name} missing; saw {:?}",
            summary.names
        );
    }
    assert!(summary.spans > 0 && summary.instants > 0);

    // Chrome export of the same dump must be valid JSON too.
    let chrome = dump.to_chrome();
    mako::trace::schema::parse_json(&chrome)
        .unwrap_or_else(|e| panic!("Chrome export is not valid JSON: {e}"));
}
