//! Golden-reference conformance suite: converged SCF energies pinned to
//! hard-coded reference values, and required to be **bitwise identical**
//! across thread counts.
//!
//! The pins protect two different things at once:
//!
//! * **Conformance** — any change anywhere in the stack (integrals,
//!   screening, scatter, DIIS, incremental engine) that shifts a converged
//!   total energy by more than 1e-9 Ha fails loudly, with the drift in the
//!   message. Intentional physics changes must update the constants.
//! * **Determinism** — the same run repeated inside 1/2/4-thread rayon
//!   pools must produce the same energy to the bit; the parallel assembly
//!   engine guarantees host parallelism never reorders an accumulation.
//!
//! The references were produced by this repository itself (serial run,
//! `e_tol = 1e-10`), so they pin today's behavior, not an external code's.

use mako::accel::fault::FaultPlan;
use mako::chem::basis::sto3g::sto3g;
use mako::chem::builders;
use mako::scf::{DistributedScf, RescueConfig, RescueStage, ScfConfig, ScfDriver, ScfResult};

/// Converged RHF/STO-3G total energy of the water monomer (Hartree).
const E_WATER: f64 = -74.962_928_418_750;
/// Converged RHF/STO-3G total energy of the water trimer (Hartree).
const E_WATER3: f64 = -224.883_558_801_398;
/// Converged RHF/STO-3G energy of 3.5×-stretched water, reachable only
/// through the full rescue ladder (`e_tol = 1e-8`). Re-pinned (3× → 3.5×)
/// when the packed-microkernel GEMM regrouped FP64 summation: the 1-ulp
/// Fock shifts nudged the 3× fixture off the edge of chaos and plain DIIS
/// started converging on it, so it no longer exercised the ladder.
const E_STRETCH3_RESCUED: f64 = -74.257_552_560_520;
/// Conformance window around the pinned references.
const TOL: f64 = 1e-9;

fn tight_config() -> ScfConfig {
    // Tight convergence so the pinned value sits on the converged plateau:
    // platform-level FP jitter that shifts the iteration count can then
    // move the energy by ~1e-10, well inside the 1e-9 window.
    ScfConfig {
        e_tol: 1e-10,
        ..ScfConfig::default()
    }
}

fn run(mol: &mako::chem::Molecule) -> ScfResult {
    let driver = ScfDriver::new(mol, &sto3g(), tight_config());
    let res = driver.run().expect("scf run");
    assert!(res.converged, "golden run failed to converge");
    res
}

#[test]
fn golden_water_monomer_energy() {
    let res = run(&builders::water());
    assert!(
        (res.energy - E_WATER).abs() < TOL,
        "water monomer drifted from golden reference: {:.12} vs {:.12} (Δ = {:.3e} Ha)",
        res.energy,
        E_WATER,
        res.energy - E_WATER
    );
}

#[test]
fn golden_water_trimer_energy() {
    let res = run(&builders::water_cluster(3));
    assert!(
        (res.energy - E_WATER3).abs() < TOL,
        "water trimer drifted from golden reference: {:.12} vs {:.12} (Δ = {:.3e} Ha)",
        res.energy,
        E_WATER3,
        res.energy - E_WATER3
    );
}

#[test]
fn golden_energies_identical_across_thread_counts() {
    for (mol, golden, label) in [
        (builders::water(), E_WATER, "water"),
        (builders::water_cluster(3), E_WATER3, "water trimer"),
    ] {
        let driver = ScfDriver::new(&mol, &sto3g(), tight_config());
        let base = driver.run().expect("scf run");
        assert!(base.converged);
        assert!((base.energy - golden).abs() < TOL, "{label} drifted");
        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("build thread pool");
            let res = pool.install(|| driver.run().expect("scf run"));
            assert_eq!(
                res.energy.to_bits(),
                base.energy.to_bits(),
                "{label} energy changed bits at {threads} threads: {:.15} vs {:.15}",
                res.energy,
                base.energy
            );
            assert_eq!(
                res.iterations, base.iterations,
                "{label} iteration count changed at {threads} threads"
            );
            assert_eq!(
                res.total_seconds.to_bits(),
                base.total_seconds.to_bits(),
                "{label} device clock changed bits at {threads} threads"
            );
        }
    }
}

#[test]
fn golden_trimer_energy_survives_rank_loss() {
    // Fault-tolerance conformance: the water trimer on a 2-rank cluster
    // that permanently loses rank 1 halfway through every iteration's Fock
    // build must converge inside the same golden window — and to the *bit*
    // of the fault-free distributed run (recovery re-executes, never
    // regroups, a floating-point sum).
    let mol = builders::water_cluster(3);
    let distributed_config = |fault_plan: Option<FaultPlan>| ScfConfig {
        distributed: Some(DistributedScf {
            fault_plan,
            ..DistributedScf::new(2)
        }),
        ..tight_config()
    };

    let quiet = ScfDriver::new(&mol, &sto3g(), distributed_config(None))
        .run()
        .expect("scf run");
    assert!(quiet.converged);
    assert!(
        (quiet.energy - E_WATER3).abs() < TOL,
        "distributed trimer drifted from golden reference: {:.12} (Δ = {:.3e} Ha)",
        quiet.energy,
        quiet.energy - E_WATER3
    );

    let plan = FaultPlan::quiet(2).kill_rank(1, 0.5);
    let lossy = ScfDriver::new(&mol, &sto3g(), distributed_config(Some(plan)))
        .run()
        .expect("scf run");
    assert!(lossy.converged);
    assert!(
        (lossy.energy - E_WATER3).abs() < TOL,
        "rank-loss trimer drifted from golden reference: {:.12} (Δ = {:.3e} Ha)",
        lossy.energy,
        lossy.energy - E_WATER3
    );
    assert_eq!(
        lossy.energy.to_bits(),
        quiet.energy.to_bits(),
        "rank loss changed the converged energy bits: {:.15} vs {:.15}",
        lossy.energy,
        quiet.energy
    );
    assert_eq!(lossy.iterations, quiet.iterations);
    let recovered = lossy.clock.total_recovery();
    assert_eq!(recovered.ranks_lost, lossy.iterations, "one loss per iteration");
    assert!(recovered.rerun_batches > 0);
}

#[test]
fn golden_rescue_is_bitwise_inert_on_healthy_trimer() {
    // The self-healing layer's inertness contract, at golden strength: on a
    // healthy trajectory the watchdog observes but never intervenes, and
    // the run with rescue ENABLED is bitwise identical — energy, converged
    // density, iteration count, and simulated device clock — to the run
    // with rescue DISABLED, at every host thread count.
    let mol = builders::water_cluster(3);
    let plain = ScfDriver::new(&mol, &sto3g(), tight_config());
    let rescued = ScfDriver::new(
        &mol,
        &sto3g(),
        ScfConfig {
            rescue: Some(RescueConfig::default()),
            ..tight_config()
        },
    );
    for threads in [1usize, 2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("build thread pool");
        let base = pool.install(|| plain.run().expect("plain scf run"));
        let res = pool.install(|| rescued.run().expect("rescued scf run"));
        assert!(base.converged && res.converged);
        assert!((base.energy - E_WATER3).abs() < TOL, "trimer drifted from golden reference");
        assert!(
            res.rescue.is_empty(),
            "watchdog intervened on a healthy trimer at {threads} threads: {}",
            res.rescue.summary()
        );
        assert_eq!(
            res.energy.to_bits(),
            base.energy.to_bits(),
            "rescue changed energy bits at {threads} threads: {:.15} vs {:.15}",
            res.energy,
            base.energy
        );
        assert_eq!(res.iterations, base.iterations, "iteration count changed at {threads} threads");
        assert_eq!(
            res.total_seconds.to_bits(),
            base.total_seconds.to_bits(),
            "device clock changed bits at {threads} threads"
        );
        assert!(
            res.density
                .as_slice()
                .iter()
                .zip(base.density.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "converged density changed bits at {threads} threads"
        );
    }
}

#[test]
fn golden_pathological_stretch_recovers_only_with_full_ladder() {
    // 3.5×-stretched water is the deterministic pathology: restricted SCF
    // with plain DIIS never converges in 60 iterations, while the rescue
    // ladder walks through ALL five stages — DIIS reset, density damping,
    // level shifting, quantization backoff, checkpoint rollback — and
    // lands on a pinned energy, bitwise reproducible across thread counts.
    let mol = builders::stretched_water(3.5);
    let config = |rescue: Option<RescueConfig>| ScfConfig {
        e_tol: 1e-8,
        max_iterations: 60,
        rescue,
        ..ScfConfig::default()
    };

    let plain = ScfDriver::new(&mol, &sto3g(), config(None)).run().expect("plain scf run");
    assert!(
        !plain.converged,
        "stretched water unexpectedly converged without rescue (E = {:.12}); \
         the pathological fixture no longer exercises the ladder",
        plain.energy
    );

    let driver = ScfDriver::new(&mol, &sto3g(), config(Some(RescueConfig::default())));
    let base = driver.run().expect("rescued scf run");
    assert!(base.converged, "rescue ladder failed to recover stretched water");
    assert!(
        (base.energy - E_STRETCH3_RESCUED).abs() < TOL,
        "rescued energy drifted from golden reference: {:.12} vs {:.12} (Δ = {:.3e} Ha)",
        base.energy,
        E_STRETCH3_RESCUED,
        base.energy - E_STRETCH3_RESCUED
    );
    assert_eq!(
        base.rescue.stage_sequence(),
        vec![
            RescueStage::DiisReset,
            RescueStage::Damp,
            RescueStage::LevelShift,
            RescueStage::QuantBackoff,
            RescueStage::Rollback,
        ],
        "rescue ladder fired a different stage sequence: {}",
        base.rescue.summary()
    );

    for threads in [2usize, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("build thread pool");
        let res = pool.install(|| driver.run().expect("rescued scf run"));
        assert_eq!(
            res.energy.to_bits(),
            base.energy.to_bits(),
            "rescued energy changed bits at {threads} threads: {:.15} vs {:.15}",
            res.energy,
            base.energy
        );
        assert_eq!(res.iterations, base.iterations);
        assert_eq!(
            res.rescue.stage_sequence(),
            base.rescue.stage_sequence(),
            "rescue ladder ran a different sequence at {threads} threads"
        );
    }
}

#[test]
fn golden_incremental_engine_stays_inside_window() {
    // The incremental (ΔD) engine with its default policy must land inside
    // the same golden window as the full-rebuild reference — screening
    // drift is capped below the conformance tolerance.
    let cfg = ScfConfig {
        e_tol: 1e-10,
        incremental: true,
        ..ScfConfig::default()
    };
    let res = ScfDriver::new(&builders::water_cluster(3), &sto3g(), cfg).run().expect("scf run");
    assert!(res.converged);
    assert!(
        (res.energy - E_WATER3).abs() < TOL,
        "incremental trimer drifted from golden reference: {:.12} (Δ = {:.3e} Ha)",
        res.energy,
        res.energy - E_WATER3
    );
}
