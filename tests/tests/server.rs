//! Serving-layer integration suite, exercised through the `mako` facade
//! (`mako::server` / `mako::prelude`) exactly as an embedding application
//! would use it.
//!
//! The contracts under test (DESIGN.md §15):
//!
//! * **Chaos invariant** — whatever seeded faults a serve survives (worker
//!   deaths, checkpoint-write failures, stragglers, poisoned Fock builds),
//!   every *completed* job's energy is bitwise identical to a quiet solo
//!   [`mako::scf::ScfDriver`] run of the same spec. Scheduling and fault
//!   recovery may change *when* chemistry happens, never *what* it computes.
//! * **Typed containment** — every anomaly surfaces as a [`JobOutcome`]
//!   variant; a tenant's job can never panic the server or poison a
//!   neighbouring tenant.
//! * **Determinism** — a serve is a pure function of
//!   `(specs, config, chaos)`: replaying it, on any host thread count,
//!   reproduces outcomes, ledger, and makespan to the bit.

use proptest::prelude::*;

use mako::chem::builders;
use mako::prelude::*;
use mako::server::{AdmissionConfig, RejectReason, ServeReport, ServerChaos, ServerConfig};

/// A serve digest for determinism checks: outcome labels, energy bits,
/// ledger, and makespan bits folded into one comparable value.
fn digest(report: &ServeReport) -> (Vec<String>, String, u64) {
    let outcomes = report
        .outcomes
        .iter()
        .map(|o| {
            let bits = o.energy().map(f64::to_bits).unwrap_or(0);
            format!("{}:{bits:016x}", o.label())
        })
        .collect();
    (
        outcomes,
        format!("{:?}", report.ledger),
        report.makespan.to_bits(),
    )
}

/// The standard three-tenant mixed workload used across this suite.
fn workload() -> Vec<JobSpec> {
    vec![
        JobSpec::new("alice", PriorityClass::Interactive, builders::water()),
        JobSpec::new("bob", PriorityClass::Batch, builders::methane()).at(1e-4),
        JobSpec::new("bob", PriorityClass::Batch, builders::ammonia()).at(2e-4),
        JobSpec::new("carol", PriorityClass::BestEffort, builders::perturbed_water(5, 2e-3))
            .at(3e-4),
    ]
}

#[test]
fn quiet_multi_tenant_serve_is_bitwise_vs_solo() {
    let server = MakoServer::default();
    let jobs = workload();
    let report = server.serve_quiet(&jobs);
    assert_eq!(report.ledger.admitted, jobs.len());
    assert_eq!(report.ledger.completed, jobs.len());
    for (spec, outcome) in jobs.iter().zip(&report.outcomes) {
        let solo = server.run_solo(spec).expect("solo run");
        let job = outcome.report().expect("quiet serve completes every job");
        assert_eq!(
            job.energy.to_bits(),
            solo.energy.to_bits(),
            "{}: served energy diverged from solo ({:.15} vs {:.15})",
            spec.tenant,
            job.energy,
            solo.energy
        );
        assert_eq!(job.iterations, solo.iterations);
        assert!(job.converged);
        assert!(job.finished_at >= job.started_at);
        assert!(job.started_at >= job.submitted_at);
    }
}

#[test]
fn admission_quota_and_shedding_through_facade() {
    // One worker, tiny caps: a burst from one tenant trips its quota, a
    // burst of distinct tenants walks the queue through Degraded into
    // Shedding — and interactive work is still admitted at peak pressure.
    let config = ServerConfig {
        workers: 1,
        admission: AdmissionConfig {
            queue_soft_cap: 2,
            queue_hard_cap: 4,
            default_tenant_quota: 2,
            tenant_quotas: Vec::new(),
        },
        ..ServerConfig::default()
    };
    let server = MakoServer::new(config);
    let mut jobs: Vec<JobSpec> = (0..4)
        .map(|i| {
            JobSpec::new("bob", PriorityClass::Batch, builders::water()).at(i as f64 * 1e-7)
        })
        .collect();
    for i in 0..6 {
        let class = if i % 2 == 0 { PriorityClass::Batch } else { PriorityClass::BestEffort };
        jobs.push(
            JobSpec::new(&format!("tenant{i}"), class, builders::water())
                .at(1e-6 + i as f64 * 1e-7),
        );
    }
    jobs.push(JobSpec::new("alice", PriorityClass::Interactive, builders::water()).at(2e-6));

    let report = server.serve_quiet(&jobs);
    let mut quota = 0;
    let mut shed = 0;
    for outcome in &report.outcomes {
        if let JobOutcome::Rejected { reason } = outcome {
            match reason {
                RejectReason::TenantQuotaExceeded { tenant, limit } => {
                    assert_eq!(tenant, "bob");
                    assert_eq!(*limit, 2);
                    quota += 1;
                }
                RejectReason::QueueFull { depth, cap } => {
                    assert!(depth >= cap, "queue-full below the cap: {depth} < {cap}");
                    shed += 1;
                }
                RejectReason::LoadShed { class } => {
                    assert_ne!(
                        *class,
                        PriorityClass::Interactive,
                        "interactive must never be load-shed"
                    );
                    shed += 1;
                }
            }
        }
    }
    assert!(quota >= 1, "tenant quota never fired");
    assert!(shed >= 1, "load shedding never fired");
    assert_eq!(report.ledger.rejected, quota + shed);
    assert!(
        matches!(report.outcomes.last(), Some(JobOutcome::Completed(_))),
        "the interactive job must be admitted and completed at peak pressure: {:?}",
        report.outcomes.last()
    );
    assert!(
        report.ledger.state_transitions >= 1,
        "the shedding state machine never left Normal"
    );
}

#[test]
fn chaos_serve_contains_faults_and_stays_bitwise() {
    // A worker dies mid-quantum, another straggles 20×, one job's Fock
    // build is poisoned, and every fifth checkpoint write fails. None of
    // this may panic, and whatever completes must match solo to the bit.
    let server = MakoServer::new(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let jobs = workload();
    let chaos = ServerChaos::seeded(23, 2)
        .kill_worker(1, 0.3)
        .with_poison(2, 1)
        .with_ckpt_io_rate(0.2);
    let report = server.serve(&jobs, &chaos);

    assert_eq!(report.outcomes.len(), jobs.len());
    assert!(
        report.ledger.completed >= 1,
        "a 2-worker serve losing one worker must still finish work: {:?}",
        report.ledger
    );
    for (spec, outcome) in jobs.iter().zip(&report.outcomes) {
        if let Some(job) = outcome.report() {
            let solo = server.run_solo(spec).expect("solo run");
            assert_eq!(
                job.energy.to_bits(),
                solo.energy.to_bits(),
                "{}: chaos changed the chemistry ({:.15} vs {:.15})",
                spec.tenant,
                job.energy,
                solo.energy
            );
            assert_eq!(job.iterations, solo.iterations);
        }
    }
    let ledger = &report.ledger;
    assert_eq!(
        ledger.completed + ledger.failed + ledger.deadline_exceeded,
        ledger.admitted,
        "every admitted job needs a terminal outcome: {ledger:?}"
    );
}

#[test]
fn serve_replay_is_deterministic() {
    let server = MakoServer::new(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let jobs = workload();
    let chaos = ServerChaos::seeded(7, 2).kill_worker(0, 0.6).with_ckpt_io_rate(0.3);
    let a = digest(&server.serve(&jobs, &chaos));
    let b = digest(&server.serve(&jobs, &chaos));
    assert_eq!(a, b, "same (specs, config, chaos) must replay identically");
}

#[test]
fn serve_is_bitwise_across_host_thread_counts() {
    // The virtual clock prices work from the simulated device model, so the
    // host rayon pool width must be invisible in every served number.
    let jobs = workload();
    let chaos = ServerChaos::seeded(11, 2).kill_worker(1, 0.4);
    let run = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool")
            .install(|| {
                let server = MakoServer::new(ServerConfig {
                    workers: 2,
                    ..ServerConfig::default()
                });
                digest(&server.serve(&jobs, &chaos))
            })
    };
    let narrow = run(1);
    let wide = run(4);
    assert_eq!(narrow, wide, "host thread count leaked into a served result");
}

#[test]
fn interactive_job_starts_within_one_quantum_of_batch_work() {
    // No-starvation contract on a single worker: an interactive arrival
    // behind a long batch job waits at most one preemption quantum.
    let config = ServerConfig {
        workers: 1,
        quantum_iterations: 2,
        ..ServerConfig::default()
    };
    let server = MakoServer::new(config);
    let batch = JobSpec::new("bob", PriorityClass::Batch, builders::methane());
    let solo = server.run_solo(&batch).expect("solo batch run");
    let quantum_seconds: f64 = solo.iteration_seconds.iter().take(2).sum();

    let ui = JobSpec::new("alice", PriorityClass::Interactive, builders::water()).at(1e-6);
    let report = server.serve_quiet(&[batch, ui]);
    assert_eq!(report.ledger.completed, 2);
    assert!(report.ledger.preemptions >= 1, "batch was never preempted");

    let ui_report = report.outcomes[1].report().expect("interactive completes");
    let wait = ui_report.started_at - ui_report.submitted_at;
    assert!(
        wait <= quantum_seconds + 1e-12,
        "interactive waited {wait:.6e} s > one quantum ({quantum_seconds:.6e} s)"
    );

    // Preemption is invisible in the batch chemistry.
    let batch_report = report.outcomes[0].report().expect("batch completes");
    assert_eq!(batch_report.energy.to_bits(), solo.energy.to_bits());
}

#[test]
fn impossible_deadline_is_typed_not_hung() {
    let server = MakoServer::new(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let job = JobSpec::new("alice", PriorityClass::Batch, builders::water())
        .with_deadline(1e-12);
    let report = server.serve_quiet(&[job]);
    match &report.outcomes[0] {
        JobOutcome::DeadlineExceeded { deadline_seconds, .. } => {
            assert_eq!(*deadline_seconds, 1e-12);
        }
        other => panic!("expected a deadline outcome, got {other:?}"),
    }
    assert_eq!(report.ledger.deadline_exceeded, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The chaos invariant, quantified over the fault space: for ANY seed
    /// and any single-worker death point, the serve terminates, types every
    /// outcome, and every completion is bitwise solo-identical.
    #[test]
    fn any_seeded_chaos_serve_is_contained(
        seed in any::<u64>(),
        victim in 0usize..2,
        fraction in 0.0f64..1.0,
        ckpt_rate in 0.0f64..0.6,
    ) {
        let server = MakoServer::new(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        });
        let jobs = vec![
            JobSpec::new("alice", PriorityClass::Interactive, builders::water()),
            JobSpec::new("bob", PriorityClass::Batch, builders::methane()).at(1e-4),
            JobSpec::new("carol", PriorityClass::BestEffort, builders::water()).at(2e-4),
        ];
        let chaos = ServerChaos::seeded(seed, 2)
            .kill_worker(victim, fraction)
            .with_ckpt_io_rate(ckpt_rate);
        let report = server.serve(&jobs, &chaos);
        prop_assert_eq!(report.outcomes.len(), jobs.len());
        let ledger = &report.ledger;
        prop_assert_eq!(
            ledger.completed + ledger.failed + ledger.deadline_exceeded,
            ledger.admitted
        );
        for (spec, outcome) in jobs.iter().zip(&report.outcomes) {
            if let Some(job) = outcome.report() {
                let solo = server.run_solo(spec).expect("solo run");
                prop_assert!(
                    job.energy.to_bits() == solo.energy.to_bits(),
                    "{}: chaos changed the chemistry",
                    spec.tenant
                );
            }
        }
    }
}
