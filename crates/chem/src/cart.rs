//! Cartesian monomial bookkeeping for Gaussian shells.
//!
//! A Cartesian shell of angular momentum `l` spans the monomials
//! `x^a y^b z^c` with `a + b + c = l`; a spherical shell spans `2l + 1` real
//! solid harmonics; the Hermite intermediates of the McMurchie–Davidson
//! scheme span all `(t, u, v)` with `t + u + v ≤ L`.

/// Number of Cartesian components of a shell: `(l+1)(l+2)/2`.
pub const fn ncart(l: usize) -> usize {
    (l + 1) * (l + 2) / 2
}

/// Number of spherical components of a shell: `2l + 1`.
pub const fn nsph(l: usize) -> usize {
    2 * l + 1
}

/// Number of Hermite components with total degree ≤ `l`:
/// `(l+1)(l+2)(l+3)/6`.
pub const fn nherm(l: usize) -> usize {
    (l + 1) * (l + 2) * (l + 3) / 6
}

/// The Cartesian exponent triples `(a, b, c)` of a shell of angular momentum
/// `l`, in the canonical ordering `a` descending, then `b` descending.
///
/// For `l = 1` this yields `[(1,0,0), (0,1,0), (0,0,1)]` — i.e. x, y, z.
pub fn cart_components(l: usize) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::with_capacity(ncart(l));
    for a in (0..=l).rev() {
        for b in (0..=(l - a)).rev() {
            out.push((a, b, l - a - b));
        }
    }
    out
}

/// The Hermite index triples `(t, u, v)` with `t + u + v ≤ l`, ordered by
/// total degree then canonically within a degree. Index 0 is always
/// `(0,0,0)`.
pub fn hermite_components(l: usize) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::with_capacity(nherm(l));
    for deg in 0..=l {
        out.extend(cart_components(deg));
    }
    out
}

/// Cached, shared [`hermite_components`] for per-primitive hot loops (the
/// Hermite-to-spherical transforms rebuild the same triple list for every
/// primitive pair otherwise). Built lazily once per `l`.
pub fn hermite_components_cached(l: usize) -> &'static [(usize, usize, usize)] {
    use std::sync::OnceLock;
    /// Beyond any angular momentum the engine can produce (4 shells × g).
    const L_CAP: usize = 32;
    type Slot = OnceLock<Vec<(usize, usize, usize)>>;
    static CACHE: OnceLock<Vec<Slot>> = OnceLock::new();
    assert!(l <= L_CAP, "hermite order beyond cache capacity");
    let slots = CACHE.get_or_init(|| (0..=L_CAP).map(|_| OnceLock::new()).collect());
    slots[l].get_or_init(|| hermite_components(l))
}

/// Inverse map for Hermite components: `(t,u,v)` → flat index, valid for all
/// triples with `t+u+v ≤ l_max` used to build it.
pub fn hermite_index_map(l_max: usize) -> std::collections::HashMap<(usize, usize, usize), usize> {
    hermite_components(l_max)
        .into_iter()
        .enumerate()
        .map(|(i, t)| (t, i))
        .collect()
}

/// Double factorial `n!! = n (n−2) (n−4) …` with `(−1)!! = 0!! = 1`.
pub fn double_factorial(n: i64) -> f64 {
    if n <= 0 {
        1.0
    } else {
        let mut acc = 1.0;
        let mut k = n;
        while k > 1 {
            acc *= k as f64;
            k -= 2;
        }
        acc
    }
}

/// Angular-momentum letter (s, p, d, f, g, h, i) for display.
pub fn l_letter(l: usize) -> char {
    const LETTERS: [char; 7] = ['s', 'p', 'd', 'f', 'g', 'h', 'i'];
    LETTERS.get(l).copied().unwrap_or('?')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        assert_eq!(ncart(0), 1);
        assert_eq!(ncart(1), 3);
        assert_eq!(ncart(2), 6);
        assert_eq!(ncart(3), 10);
        assert_eq!(ncart(4), 15);
        assert_eq!(nsph(0), 1);
        assert_eq!(nsph(4), 9);
        assert_eq!(nherm(0), 1);
        assert_eq!(nherm(2), 10);
        assert_eq!(nherm(4), 35);
        assert_eq!(nherm(8), 165);
    }

    #[test]
    fn component_lists_are_consistent() {
        for l in 0..=6 {
            let cc = cart_components(l);
            assert_eq!(cc.len(), ncart(l));
            for &(a, b, c) in &cc {
                assert_eq!(a + b + c, l);
            }
            let hc = hermite_components(l);
            assert_eq!(hc.len(), nherm(l));
            assert_eq!(hc[0], (0, 0, 0));
            // No duplicates.
            let set: std::collections::HashSet<_> = hc.iter().collect();
            assert_eq!(set.len(), hc.len());
        }
    }

    #[test]
    fn p_shell_ordering_is_xyz() {
        assert_eq!(cart_components(1), vec![(1, 0, 0), (0, 1, 0), (0, 0, 1)]);
    }

    #[test]
    fn hermite_index_map_inverts() {
        let map = hermite_index_map(5);
        for (i, t) in hermite_components(5).iter().enumerate() {
            assert_eq!(map[t], i);
        }
    }

    #[test]
    fn double_factorials() {
        assert_eq!(double_factorial(-1), 1.0);
        assert_eq!(double_factorial(0), 1.0);
        assert_eq!(double_factorial(1), 1.0);
        assert_eq!(double_factorial(5), 15.0);
        assert_eq!(double_factorial(6), 48.0);
        assert_eq!(double_factorial(7), 105.0);
    }

    #[test]
    fn letters() {
        assert_eq!(l_letter(0), 's');
        assert_eq!(l_letter(4), 'g');
    }
}
