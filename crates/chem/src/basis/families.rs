//! Parametric even-tempered basis families standing in for the paper's
//! def2-TZVP / def2-QZVP / cc-pVTZ / cc-pVQZ sets.
//!
//! The shell *compositions* (how many shells of each l, which contraction
//! degrees) match the real sets for first-row atoms — e.g. def2-TZVP carbon
//! is [5s3p2d1f] = 31 spherical AOs and def2-QZVP carbon is [7s4p3d2f1g] =
//! 57 — while the exponents are even-tempered geometric sequences
//! `α_k = α_min · β^k`. This preserves exactly what the paper's experiments
//! vary: angular-momentum content (f for TZ, g for QZ), per-atom basis size,
//! and the contraction-degree structure ({1,1}/{1,5}/{5,5}-style classes with
//! K = 1 for high l, which is what makes GEMM coalescing applicable).
//!
//! DESIGN.md documents this substitution; absolute energies are validated
//! separately with real STO-3G data.

use super::{BasisSet, ShellDef};
use crate::element::Element;

/// The basis families used across the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BasisFamily {
    /// Real STO-3G (H/C/N/O only) — validation anchor.
    Sto3g,
    /// Triple-zeta, max l = 3 (f) on heavy atoms: "def2-TZVP-like".
    Def2TzvpLike,
    /// Quadruple-zeta, max l = 4 (g) on heavy atoms: "def2-QZVP-like".
    Def2QzvpLike,
    /// Triple-zeta correlation-consistent-like, max l = 3.
    CcPvtzLike,
    /// Quadruple-zeta correlation-consistent-like, max l = 4.
    CcPvqzLike,
}

impl BasisFamily {
    /// Display name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            BasisFamily::Sto3g => "STO-3G",
            BasisFamily::Def2TzvpLike => "def2-TZVP",
            BasisFamily::Def2QzvpLike => "def2-QZVP",
            BasisFamily::CcPvtzLike => "cc-pVTZ",
            BasisFamily::CcPvqzLike => "cc-pVQZ",
        }
    }

    /// Maximum angular momentum on heavy atoms (T → f, Q → g).
    pub fn heavy_max_l(self) -> usize {
        match self {
            BasisFamily::Sto3g => 1,
            BasisFamily::Def2TzvpLike | BasisFamily::CcPvtzLike => 3,
            BasisFamily::Def2QzvpLike | BasisFamily::CcPvqzLike => 4,
        }
    }

    /// Shell composition for a heavy (Z > 2) atom: per angular momentum, the
    /// contraction degrees of the shells, tightest first.
    fn heavy_pattern(self) -> Vec<Vec<usize>> {
        match self {
            // [5s3p2d1f] = 31 AOs (matches def2-TZVP carbon).
            BasisFamily::Def2TzvpLike => vec![
                vec![6, 1, 1, 1, 1],
                vec![3, 1, 1],
                vec![1, 1],
                vec![1],
            ],
            // [7s4p3d2f1g] = 57 AOs (matches def2-QZVP carbon).
            BasisFamily::Def2QzvpLike => vec![
                vec![6, 1, 1, 1, 1, 1, 1],
                vec![4, 1, 1, 1],
                vec![1, 1, 1],
                vec![1, 1],
                vec![1],
            ],
            // [4s3p2d1f] = 30 AOs (matches cc-pVTZ carbon).
            BasisFamily::CcPvtzLike => vec![
                vec![6, 1, 1, 1],
                vec![3, 1, 1],
                vec![1, 1],
                vec![1],
            ],
            // [5s4p3d2f1g] = 55 AOs (matches cc-pVQZ carbon).
            BasisFamily::CcPvqzLike => vec![
                vec![6, 1, 1, 1, 1],
                vec![4, 1, 1, 1],
                vec![1, 1, 1],
                vec![1, 1],
                vec![1],
            ],
            BasisFamily::Sto3g => unreachable!("STO-3G uses tabulated data"),
        }
    }

    /// Shell composition for hydrogen/helium.
    fn h_pattern(self) -> Vec<Vec<usize>> {
        match self {
            // [3s1p] = 6 AOs (def2-TZVP hydrogen).
            BasisFamily::Def2TzvpLike | BasisFamily::CcPvtzLike => {
                vec![vec![3, 1, 1], vec![1]]
            }
            // [4s3p2d] (def2-QZVP hydrogen is [4s3p2d1f]; we omit the single
            // f shell on H — documented substitution keeping H quartets ≤ d).
            BasisFamily::Def2QzvpLike | BasisFamily::CcPvqzLike => {
                vec![vec![4, 1, 1, 1], vec![1, 1, 1], vec![1, 1]]
            }
            BasisFamily::Sto3g => unreachable!("STO-3G uses tabulated data"),
        }
    }

    /// Build the basis set covering the given elements.
    pub fn basis_for(self, elements: &[Element]) -> BasisSet {
        if self == BasisFamily::Sto3g {
            return super::sto3g::sto3g();
        }
        let mut b = BasisSet::new(self.name());
        let mut sorted: Vec<Element> = elements.to_vec();
        sorted.sort();
        sorted.dedup();
        for e in sorted {
            let pattern = if e.z() <= 2 {
                self.h_pattern()
            } else {
                self.heavy_pattern()
            };
            b.insert(e, element_defs(e, &pattern));
        }
        b
    }
}

/// Even-tempered shell definitions for an element from a per-l contraction
/// pattern.
fn element_defs(e: Element, pattern: &[Vec<usize>]) -> Vec<ShellDef> {
    let z = e.z() as f64;
    let mut defs = Vec::new();
    for (l, degrees) in pattern.iter().enumerate() {
        let nprim_total: usize = degrees.iter().sum();
        let exps = even_tempered(nprim_total, alpha_min(z, l), BETA);
        // Tightest exponents feed the contracted shell; the remaining
        // exponents become single-primitive shells of decreasing tightness.
        let mut cursor = 0usize;
        for &k in degrees {
            let shell_exps: Vec<f64> = exps[cursor..cursor + k].to_vec();
            // Geometric taper mimics how real contractions weight tight
            // primitives less than valence ones.
            let coefs: Vec<f64> = (0..k).map(|i| 0.35 + 0.65 * (i as f64 + 1.0) / k as f64).collect();
            defs.push(ShellDef {
                l,
                exps: shell_exps,
                coefs,
            });
            cursor += k;
        }
    }
    defs
}

/// Even-tempered ratio.
const BETA: f64 = 2.6;

/// Most-diffuse exponent for an element and angular momentum. Scales gently
/// with Z (heavier atoms are tighter) and with l (higher-l shells sit in the
/// valence region).
fn alpha_min(z: f64, l: usize) -> f64 {
    (0.10 + 0.018 * z) * (1.0 + 0.35 * l as f64)
}

/// `n` even-tempered exponents, *descending* (tightest first):
/// `α_min · β^(n−1), …, α_min · β, α_min`.
fn even_tempered(n: usize, alpha_min: f64, beta: f64) -> Vec<f64> {
    (0..n).map(|k| alpha_min * beta.powi((n - 1 - k) as i32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cart::nsph;

    fn nao_of(defs: &[ShellDef]) -> usize {
        defs.iter().map(|d| nsph(d.l)).sum()
    }

    #[test]
    fn carbon_ao_counts_match_real_sets() {
        let c = [Element::C];
        assert_eq!(
            nao_of(BasisFamily::Def2TzvpLike.basis_for(&c).get(Element::C).unwrap()),
            31
        );
        assert_eq!(
            nao_of(BasisFamily::Def2QzvpLike.basis_for(&c).get(Element::C).unwrap()),
            57
        );
        assert_eq!(
            nao_of(BasisFamily::CcPvtzLike.basis_for(&c).get(Element::C).unwrap()),
            30
        );
        assert_eq!(
            nao_of(BasisFamily::CcPvqzLike.basis_for(&c).get(Element::C).unwrap()),
            55
        );
    }

    #[test]
    fn max_l_matches_zeta_level() {
        let els = [Element::C, Element::H];
        assert_eq!(BasisFamily::Def2TzvpLike.basis_for(&els).max_l(), 3);
        assert_eq!(BasisFamily::Def2QzvpLike.basis_for(&els).max_l(), 4);
        assert_eq!(BasisFamily::CcPvtzLike.basis_for(&els).max_l(), 3);
        assert_eq!(BasisFamily::CcPvqzLike.basis_for(&els).max_l(), 4);
    }

    #[test]
    fn high_l_shells_are_uncontracted() {
        // K = 1 for f and g shells — the property GEMM coalescing exploits
        // (paper §3.1.3: "g-orbital CGFs ... have K = 1").
        for fam in [BasisFamily::Def2QzvpLike, BasisFamily::CcPvqzLike] {
            let b = fam.basis_for(&[Element::O]);
            for d in b.get(Element::O).unwrap() {
                if d.l >= 3 {
                    assert_eq!(d.exps.len(), 1, "{fam:?} l={}", d.l);
                }
            }
        }
    }

    #[test]
    fn exponents_descend_and_stay_positive() {
        let b = BasisFamily::Def2QzvpLike.basis_for(&[Element::N]);
        for d in b.get(Element::N).unwrap() {
            for w in d.exps.windows(2) {
                assert!(w[0] > w[1], "descending");
            }
            assert!(d.exps.iter().all(|&e| e > 0.0));
        }
    }

    #[test]
    fn sto3g_family_delegates() {
        let b = BasisFamily::Sto3g.basis_for(&[Element::H, Element::O]);
        assert_eq!(b.name, "STO-3G");
        assert!(b.get(Element::O).is_some());
    }

    #[test]
    fn heavier_elements_are_tighter() {
        let bc = BasisFamily::Def2TzvpLike.basis_for(&[Element::C]);
        let bo = BasisFamily::Def2TzvpLike.basis_for(&[Element::O]);
        let c_min = bc.get(Element::C).unwrap()[4].exps[0]; // most diffuse s
        let o_min = bo.get(Element::O).unwrap()[4].exps[0];
        assert!(o_min > c_min);
    }
}
