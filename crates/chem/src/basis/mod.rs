//! Gaussian basis sets: shells, contraction, normalization, AO layout.
//!
//! A [`Shell`] is a contracted Gaussian of angular momentum `l` on a center:
//! `φ(r) = Σᵢ cᵢ S_lm(r−A) exp(−αᵢ |r−A|²)` for each of the 2l+1 spherical
//! components. Shells are the unit the ERI engine batches over (the paper's
//! shell quartets).
//!
//! Contraction coefficients are stored with primitive normalization folded in
//! and with the contracted AO normalized to unit self-overlap, so downstream
//! integral code never worries about conventions.

pub mod aux;
pub mod families;
pub mod sto3g;

pub use aux::rij_universal;
pub use families::BasisFamily;

use crate::cart::{double_factorial, nsph};
use crate::element::Element;
use crate::molecule::Molecule;
use std::collections::BTreeMap;

/// A basis set cannot be instantiated on a molecule.
///
/// Part of the typed-error taxonomy: a chemistry *input* problem (the user
/// asked for STO-3G on iron) must surface as an `Err` from
/// `MakoEngine::run_*`, not abort the process from library code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BasisError {
    /// The set has no shell definitions for an element of the molecule.
    MissingElement {
        /// Name of the basis set.
        basis: String,
        /// The uncovered element.
        element: Element,
    },
}

impl std::fmt::Display for BasisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BasisError::MissingElement { basis, element } => {
                write!(f, "basis {basis} lacks element {element}")
            }
        }
    }
}

impl std::error::Error for BasisError {}

/// One contracted, spherical Gaussian shell placed on a center.
#[derive(Debug, Clone, PartialEq)]
pub struct Shell {
    /// Angular momentum (0 = s, 1 = p, …).
    pub l: usize,
    /// Center, Bohr.
    pub center: [f64; 3],
    /// Index of the atom carrying the shell (usize::MAX for ghost centers).
    pub atom: usize,
    /// Primitive exponents.
    pub exps: Vec<f64>,
    /// Contraction coefficients with primitive norms and the contracted-AO
    /// normalization folded in.
    pub coefs: Vec<f64>,
}

impl Shell {
    /// Number of primitives (the contraction degree K of the paper).
    pub fn nprim(&self) -> usize {
        self.exps.len()
    }

    /// Number of spherical AO components (2l + 1).
    pub fn nfunc(&self) -> usize {
        nsph(self.l)
    }

    /// Largest primitive exponent (used by screening estimates).
    pub fn max_exp(&self) -> f64 {
        self.exps.iter().cloned().fold(0.0, f64::max)
    }
}

/// Shell definition before placement on an atom.
#[derive(Debug, Clone, PartialEq)]
pub struct ShellDef {
    /// Angular momentum.
    pub l: usize,
    /// Primitive exponents.
    pub exps: Vec<f64>,
    /// Raw contraction coefficients (for *normalized primitives*, the
    /// convention basis-set tables use).
    pub coefs: Vec<f64>,
}

/// Same-center overlap of two solid-harmonic Gaussian primitives of angular
/// momentum `l` with exponents `a` and `b` (any m; the value is
/// m-independent):
/// `⟨S_lm e^{−a r²} | S_lm e^{−b r²}⟩ = g_l · (2l−1)!! · √π³ / (2^l (a+b)^{l+3/2}) · …`
///
/// Computed via the z^l representative: the exact closed form is
/// `N_l (2l−1)!! (π/(a+b))^{3/2} / (2(a+b))^l` with the solid-harmonic norm
/// factor `N_l = l! 4^l / (2l)! · (2l-1)!!… ` — rather than juggling that
/// constant we evaluate the 1D moment formula directly.
pub fn primitive_pair_norm(l: usize, a: f64, b: f64) -> f64 {
    // ⟨S_l0 | S_l0⟩ over e^{−(a+b)r²}: equal-norm property means we can use
    // the pure z^l part of S_l0 scaled by the full solid-harmonic Gram, but
    // the cleanest correct route is the radial form:
    //   ∫ r^{2l} e^{−p r²} r² dr ∫ |S̄_lm|² dΩ
    // with p = a + b. All m share ∫|S̄_lm|²dΩ = 4π l! /( (2l+1)!! 2^l ) ×
    // (solid-harmonic convention factor). We avoid the convention factor by
    // computing the Gram numerically once per l (cached) at p = 1 and using
    // the exact scaling law Gram(p) = Gram(1) · p^{−(l + 3/2)}.
    gram_at_unit_p(l) * (a + b).powf(-(l as f64 + 1.5))
}

fn gram_at_unit_p(l: usize) -> f64 {
    use parking_lot_free_cache::get_or_init;
    get_or_init(l)
}

/// Tiny lock-free-ish cache for the per-l solid-harmonic Gram constants.
mod parking_lot_free_cache {
    use super::gram_compute;
    use std::sync::OnceLock;

    static CACHE: OnceLock<Vec<f64>> = OnceLock::new();
    const LMAX: usize = 10;

    pub fn get_or_init(l: usize) -> f64 {
        let c = CACHE.get_or_init(|| (0..=LMAX).map(gram_compute).collect());
        c[l]
    }
}

/// Gram constant `⟨S_l0 e^{−r²/2} … ⟩` at p = a + b = 1 via monomial
/// overlaps.
fn gram_compute(l: usize) -> f64 {
    use crate::cart::cart_components;
    use crate::harmonics::cart_to_sph;
    let c = cart_to_sph(l);
    let comps = cart_components(l);
    let m0 = l; // row for m = 0
    let dim = |n: usize| -> f64 {
        if n % 2 == 1 {
            0.0
        } else {
            double_factorial(n as i64 - 1) / 2f64.powi(n as i32 / 2)
                * std::f64::consts::PI.sqrt()
        }
    };
    let mut s = 0.0;
    for (ci, &ca) in comps.iter().enumerate() {
        for (cj, &cb) in comps.iter().enumerate() {
            let w = c[(m0, ci)] * c[(m0, cj)];
            if w != 0.0 {
                s += w * dim(ca.0 + cb.0) * dim(ca.1 + cb.1) * dim(ca.2 + cb.2);
            }
        }
    }
    s
}

impl ShellDef {
    /// Produce normalized contraction coefficients: primitive norms folded
    /// into the raw coefficients, then the contracted AO scaled to unit
    /// self-overlap.
    pub fn normalized_coefs(&self) -> Vec<f64> {
        let l = self.l;
        // Primitive normalization: 1/√⟨prim|prim⟩.
        let mut c: Vec<f64> = self
            .exps
            .iter()
            .zip(&self.coefs)
            .map(|(&a, &raw)| raw / primitive_pair_norm(l, a, a).sqrt())
            .collect();
        // Contracted normalization.
        let mut s = 0.0;
        for (i, &a) in self.exps.iter().enumerate() {
            for (j, &b) in self.exps.iter().enumerate() {
                s += c[i] * c[j] * primitive_pair_norm(l, a, b);
            }
        }
        let scale = 1.0 / s.sqrt();
        for ci in &mut c {
            *ci *= scale;
        }
        c
    }

    /// Place this definition on an atom.
    pub fn at(&self, atom: usize, center: [f64; 3]) -> Shell {
        Shell {
            l: self.l,
            center,
            atom,
            exps: self.exps.clone(),
            coefs: self.normalized_coefs(),
        }
    }
}

/// A basis set: shell definitions per element.
#[derive(Debug, Clone, Default)]
pub struct BasisSet {
    /// Display name ("STO-3G", "def2-TZVP-like", …).
    pub name: String,
    defs: BTreeMap<u8, Vec<ShellDef>>,
}

impl BasisSet {
    /// Empty basis set with a name.
    pub fn new(name: impl Into<String>) -> BasisSet {
        BasisSet {
            name: name.into(),
            defs: BTreeMap::new(),
        }
    }

    /// Register the shell definitions for an element (replacing existing).
    pub fn insert(&mut self, element: Element, defs: Vec<ShellDef>) {
        self.defs.insert(element.z(), defs);
    }

    /// Shell definitions for an element, if present.
    pub fn get(&self, element: Element) -> Option<&[ShellDef]> {
        self.defs.get(&element.z()).map(|v| v.as_slice())
    }

    /// Elements the basis covers.
    pub fn elements(&self) -> impl Iterator<Item = Element> + '_ {
        self.defs.keys().map(|&z| Element(z))
    }

    /// Maximum angular momentum anywhere in the set.
    pub fn max_l(&self) -> usize {
        self.defs
            .values()
            .flat_map(|v| v.iter().map(|d| d.l))
            .max()
            .unwrap_or(0)
    }

    /// Instantiate the basis on a molecule, producing the shell list in atom
    /// order. Fails with [`BasisError::MissingElement`] when the set does
    /// not cover an element of the molecule.
    pub fn try_shells_for(&self, mol: &Molecule) -> Result<Vec<Shell>, BasisError> {
        let mut shells = Vec::new();
        for (ai, atom) in mol.atoms.iter().enumerate() {
            let defs =
                self.defs
                    .get(&atom.element.z())
                    .ok_or_else(|| BasisError::MissingElement {
                        basis: self.name.clone(),
                        element: atom.element,
                    })?;
            for d in defs {
                shells.push(d.at(ai, atom.position));
            }
        }
        Ok(shells)
    }

    /// Instantiate the basis on a molecule, producing the shell list in atom
    /// order. Panics if an element is missing from the set — the infallible
    /// convenience for tests and benches whose molecules are known covered;
    /// library paths go through [`Self::try_shells_for`].
    pub fn shells_for(&self, mol: &Molecule) -> Vec<Shell> {
        self.try_shells_for(mol).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Number of spherical AOs the basis generates on a molecule.
    pub fn nao_for(&self, mol: &Molecule) -> usize {
        mol.atoms
            .iter()
            .map(|a| {
                self.defs
                    .get(&a.element.z())
                    .map(|ds| ds.iter().map(|d| nsph(d.l)).sum::<usize>())
                    .unwrap_or(0)
            })
            .sum()
    }
}

/// Mapping from shells to AO indices.
#[derive(Debug, Clone)]
pub struct AoLayout {
    /// First AO index of each shell.
    pub shell_offsets: Vec<usize>,
    /// Angular momentum of each shell.
    pub shell_l: Vec<usize>,
    /// Total spherical AO count.
    pub nao: usize,
}

impl AoLayout {
    /// Build the layout for a shell list.
    pub fn new(shells: &[Shell]) -> AoLayout {
        let mut offsets = Vec::with_capacity(shells.len());
        let mut ls = Vec::with_capacity(shells.len());
        let mut acc = 0usize;
        for s in shells {
            offsets.push(acc);
            ls.push(s.l);
            acc += s.nfunc();
        }
        AoLayout {
            shell_offsets: offsets,
            shell_l: ls,
            nao: acc,
        }
    }

    /// AO index range of shell `i`.
    pub fn range(&self, i: usize) -> std::ops::Range<usize> {
        let start = self.shell_offsets[i];
        start..start + nsph(self.shell_l[i])
    }

    /// Number of shells.
    pub fn nshells(&self) -> usize {
        self.shell_offsets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn primitive_pair_norm_scaling_law() {
        // Gram(p) = Gram(1) p^{−(l+3/2)}.
        for l in 0..=4 {
            let g1 = primitive_pair_norm(l, 0.5, 0.5);
            let g2 = primitive_pair_norm(l, 1.0, 1.0);
            let ratio = g1 / g2;
            let expect = 2f64.powf(l as f64 + 1.5);
            assert!(((ratio - expect) / expect).abs() < 1e-12, "l={l}");
        }
    }

    #[test]
    fn normalized_single_primitive_has_unit_norm() {
        for l in 0..=4 {
            let d = ShellDef {
                l,
                exps: vec![0.8],
                coefs: vec![1.0],
            };
            let c = d.normalized_coefs();
            let s = c[0] * c[0] * primitive_pair_norm(l, 0.8, 0.8);
            assert!((s - 1.0).abs() < 1e-12, "l={l} norm {s}");
        }
    }

    #[test]
    fn normalized_contracted_shell_has_unit_norm() {
        let d = ShellDef {
            l: 2,
            exps: vec![2.0, 0.7, 0.2],
            coefs: vec![0.3, 0.5, 0.4],
        };
        let c = d.normalized_coefs();
        let mut s = 0.0;
        for (i, &a) in d.exps.iter().enumerate() {
            for (j, &b) in d.exps.iter().enumerate() {
                s += c[i] * c[j] * primitive_pair_norm(2, a, b);
            }
        }
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn layout_offsets() {
        let water = builders::water();
        let basis = sto3g::sto3g();
        let shells = basis.shells_for(&water);
        // O: 1s, 2s, 2p → 3 shells; each H: 1s.
        assert_eq!(shells.len(), 5);
        let layout = AoLayout::new(&shells);
        assert_eq!(layout.nao, 7); // O 1s+2s+2p(3) + 2×H 1s
        assert_eq!(layout.range(2), 2..5); // the p shell
        assert_eq!(layout.nshells(), 5);
        assert_eq!(basis.nao_for(&water), 7);
    }

    #[test]
    #[should_panic]
    fn missing_element_panics() {
        let mut mol = builders::water();
        mol.atoms[0].element = Element::FE;
        let _ = sto3g::sto3g().shells_for(&mol);
    }

    #[test]
    fn missing_element_is_a_typed_error() {
        let mut mol = builders::water();
        mol.atoms[0].element = Element::FE;
        let err = sto3g::sto3g().try_shells_for(&mol).unwrap_err();
        let BasisError::MissingElement { basis, element } = &err;
        assert_eq!(basis, "STO-3G");
        assert_eq!(*element, Element::FE);
        let msg = err.to_string();
        assert!(msg.contains("STO-3G") && msg.contains("Fe"), "{msg}");
    }
}
