//! STO-3G minimal basis with the published Hehre–Stewart–Pople fit
//! parameters for H, C, N and O.
//!
//! Each Slater orbital of exponent ζ is expanded in three primitive
//! Gaussians with universal fit exponents scaled by ζ² and fixed contraction
//! coefficients (Hehre, Stewart & Pople, J. Chem. Phys. 51, 2657 (1969)).
//! Having real STO-3G lets the test suite validate absolute Hartree–Fock
//! energies against textbook values (H₂O/STO-3G ≈ −74.96 Hartree) — the
//! anchor for all the synthetic larger basis families.

use super::{BasisSet, ShellDef};
use crate::element::Element;

/// Universal 1s STO-3G fit: exponents (× ζ²) and coefficients.
const EXP_1S: [f64; 3] = [2.227_660_584, 0.405_771_156_2, 0.109_817_510_4];
const COEF_1S: [f64; 3] = [0.154_328_967_3, 0.535_328_142_3, 0.444_634_542_2];

/// Universal 2sp STO-3G fit: shared exponents (× ζ²), separate s and p
/// coefficients.
const EXP_2SP: [f64; 3] = [0.994_203_4, 0.231_031_0, 0.075_138_6];
const COEF_2S: [f64; 3] = [-0.099_967_23, 0.399_512_83, 0.700_115_47];
const COEF_2P: [f64; 3] = [0.155_916_27, 0.607_683_72, 0.391_957_39];

/// Slater exponents (ζ 1s, ζ 2sp) for the supported first-row elements.
fn zetas(e: Element) -> Option<(f64, Option<f64>)> {
    match e {
        Element::H => Some((1.24, None)),
        Element::C => Some((5.67, Some(1.72))),
        Element::N => Some((6.67, Some(1.95))),
        Element::O => Some((7.66, Some(2.25))),
        _ => None,
    }
}

fn scaled(exps: &[f64; 3], zeta: f64) -> Vec<f64> {
    exps.iter().map(|&e| e * zeta * zeta).collect()
}

/// Shell definitions for one element, or `None` if STO-3G data is not
/// embedded for it.
pub fn element_shells(e: Element) -> Option<Vec<ShellDef>> {
    let (z1, z2) = zetas(e)?;
    let mut defs = vec![ShellDef {
        l: 0,
        exps: scaled(&EXP_1S, z1),
        coefs: COEF_1S.to_vec(),
    }];
    if let Some(z2) = z2 {
        defs.push(ShellDef {
            l: 0,
            exps: scaled(&EXP_2SP, z2),
            coefs: COEF_2S.to_vec(),
        });
        defs.push(ShellDef {
            l: 1,
            exps: scaled(&EXP_2SP, z2),
            coefs: COEF_2P.to_vec(),
        });
    }
    Some(defs)
}

/// The STO-3G basis set over the supported elements (H, C, N, O).
pub fn sto3g() -> BasisSet {
    let mut b = BasisSet::new("STO-3G");
    for e in [Element::H, Element::C, Element::N, Element::O] {
        b.insert(e, element_shells(e).unwrap());
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hydrogen_is_one_s_shell() {
        let defs = element_shells(Element::H).unwrap();
        assert_eq!(defs.len(), 1);
        assert_eq!(defs[0].l, 0);
        assert_eq!(defs[0].exps.len(), 3);
        // ζ=1.24 scaling of the largest fit exponent.
        assert!((defs[0].exps[0] - 2.227660584 * 1.24 * 1.24).abs() < 1e-9);
    }

    #[test]
    fn oxygen_has_1s_2s_2p() {
        let defs = element_shells(Element::O).unwrap();
        assert_eq!(defs.len(), 3);
        assert_eq!(defs.iter().map(|d| d.l).collect::<Vec<_>>(), vec![0, 0, 1]);
        // 2s and 2p share exponents (the sp-shell constraint of STO-3G).
        assert_eq!(defs[1].exps, defs[2].exps);
    }

    #[test]
    fn unsupported_element_is_none() {
        assert!(element_shells(Element::S).is_none());
    }

    #[test]
    fn basis_set_covers_hcno() {
        let b = sto3g();
        for e in [Element::H, Element::C, Element::N, Element::O] {
            assert!(b.get(e).is_some());
        }
        assert_eq!(b.max_l(), 1);
        assert_eq!(b.name, "STO-3G");
    }
}
