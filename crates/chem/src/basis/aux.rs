//! Auxiliary (density-fitting) basis for the RI-J Coulomb path.
//!
//! RI-J expands the AO product density `ρ(r) = Σ D_{μν} μ(r)ν(r)` in an
//! auxiliary basis `{P}` and fits the expansion in the Coulomb metric. A
//! universal even-tempered set is sufficient for Coulomb-only fitting
//! (J is far less sensitive to the aux set than exchange), so — in the same
//! spirit as the parametric orbital families in [`super::families`] — this
//! module generates a small uncontracted even-tempered set per element
//! rather than shipping tabulated def2-universal-JKFIT data:
//!
//! * heavy atoms (Z > 2): `5s 2p 1d` → 16 spherical functions,
//! * H / He: `3s 1p` → 6 spherical functions.
//!
//! Because the fitted object is a *product* of orbital Gaussians, the aux
//! exponents are roughly twice the orbital exponents (a product of two
//! Gaussians with exponents a, b is a Gaussian with exponent a + b), and
//! the even-tempered ratio is wider than the orbital families' (the few
//! uncontracted shells must span the product range). Every shell has K = 1,
//! which makes the 3-center batches the pure GEMM shape the device model
//! rewards — the same "K = 1 high-l" property the paper exploits.

use super::{BasisSet, ShellDef};
use crate::element::Element;

/// Even-tempered ratio of the aux sets: wider than the orbital families'
/// 2.6 because a handful of uncontracted shells must cover the whole
/// product-density range.
const BETA_AUX: f64 = 3.0;

/// Most-diffuse aux exponent for an element and angular momentum: twice the
/// orbital families' `alpha_min` (a product of two diffuse orbital
/// Gaussians has the sum of their exponents).
fn alpha_min_aux(z: f64, l: usize) -> f64 {
    2.0 * (0.10 + 0.018 * z) * (1.0 + 0.35 * l as f64)
}

/// `n` even-tempered exponents, descending (tightest first).
fn even_tempered(n: usize, alpha_min: f64, beta: f64) -> Vec<f64> {
    (0..n).map(|k| alpha_min * beta.powi((n - 1 - k) as i32)).collect()
}

/// Uncontracted shell definitions for one element of the universal RI-J
/// aux set.
fn aux_defs(e: Element) -> Vec<ShellDef> {
    let z = e.z() as f64;
    // (l, number of uncontracted shells of that l).
    let pattern: &[(usize, usize)] = if e.z() <= 2 {
        &[(0, 3), (1, 1)]
    } else {
        &[(0, 5), (1, 2), (2, 1)]
    };
    let mut defs = Vec::new();
    for &(l, nshell) in pattern {
        for &alpha in &even_tempered(nshell, alpha_min_aux(z, l), BETA_AUX) {
            defs.push(ShellDef {
                l,
                exps: vec![alpha],
                coefs: vec![1.0],
            });
        }
    }
    defs
}

/// The universal even-tempered RI-J auxiliary basis covering `elements`.
///
/// Function counts: 16 spherical aux functions per heavy atom, 6 per H/He
/// (28 per water molecule — roughly 4× the STO-3G orbital count, the usual
/// aux/orbital ratio of real JFIT sets).
pub fn rij_universal(elements: &[Element]) -> BasisSet {
    let mut b = BasisSet::new("RI-J-universal");
    let mut sorted: Vec<Element> = elements.to_vec();
    sorted.sort();
    sorted.dedup();
    for e in sorted {
        b.insert(e, aux_defs(e));
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::water;
    use crate::cart::nsph;

    #[test]
    fn aux_counts_per_element() {
        let b = rij_universal(&[Element::H, Element::O]);
        let nao = |e: Element| -> usize {
            b.get(e).unwrap().iter().map(|d| nsph(d.l)).sum()
        };
        assert_eq!(nao(Element::H), 6); // 3s + 1p = 3·1 + 1·3
        assert_eq!(nao(Element::O), 16); // 5s + 2p + 1d = 5·1 + 2·3 + 1·5
    }

    #[test]
    fn water_aux_has_28_functions() {
        let mol = water();
        let b = rij_universal(&[Element::H, Element::O]);
        assert_eq!(b.nao_for(&mol), 28);
        let shells = b.shells_for(&mol);
        // O: 8 shells, each H: 4 shells.
        assert_eq!(shells.len(), 16);
        // Every aux shell is a single uncontracted primitive (K = 1).
        assert!(shells.iter().all(|s| s.nprim() == 1));
    }

    #[test]
    fn exponents_descend_positive_and_double_the_orbital_scale() {
        let b = rij_universal(&[Element::O]);
        let defs = b.get(Element::O).unwrap();
        let s_exps: Vec<f64> = defs.iter().filter(|d| d.l == 0).map(|d| d.exps[0]).collect();
        assert_eq!(s_exps.len(), 5);
        for w in s_exps.windows(2) {
            assert!(w[0] > w[1] && w[1] > 0.0);
        }
        // Most-diffuse s exponent is exactly twice the orbital alpha_min.
        let z = Element::O.z() as f64;
        assert!((s_exps[4] - 2.0 * (0.10 + 0.018 * z)).abs() < 1e-15);
    }
}
