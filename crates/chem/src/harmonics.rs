//! Real solid harmonics and Cartesian→spherical transformation matrices.
//!
//! Spherical Gaussian shells (2l+1 components) are linear combinations of the
//! (l+1)(l+2)/2 Cartesian monomials of degree l. Rather than hard-coding the
//! d/f/g coefficient tables, we generate them **exactly** for any l with the
//! standard solid-harmonic recursions (Helgaker/Jørgensen/Olsen, §6.4),
//! carried out in exact polynomial arithmetic over the monomial basis:
//!
//! ```text
//! S(0,0)   = 1
//! S(l+1, l+1)   = √(2^δ(l,0) (2l+1)/(2l+2)) · (x·S(l,l) − (1−δ(l,0)) y·S(l,−l))
//! S(l+1,−l−1)   = √(2^δ(l,0) (2l+1)/(2l+2)) · (y·S(l,l) + (1−δ(l,0)) x·S(l,−l))
//! S(l+1, m)     = [(2l+1) z·S(l,m) − √((l+m)(l−m)) r²·S(l−1,m)]
//!                 / √((l+1+m)(l+1−m))
//! ```
//!
//! Solid harmonics are homogeneous polynomials of degree l, so every monomial
//! in the result has `a + b + c = l` and the transformation is a dense
//! `(2l+1) × ncart(l)` matrix. Mako folds this matrix into the MMD
//! E-coefficient GEMMs so that ERI pipelines emit spherical integrals
//! directly.

use crate::cart::{cart_components, double_factorial, ncart, nsph};
use mako_linalg::Matrix;
use std::collections::HashMap;

/// A polynomial in (x, y, z) over the monomial basis.
#[derive(Debug, Clone, Default, PartialEq)]
struct Poly {
    terms: HashMap<(usize, usize, usize), f64>,
}

impl Poly {
    fn one() -> Poly {
        let mut terms = HashMap::new();
        terms.insert((0, 0, 0), 1.0);
        Poly { terms }
    }

    fn add_term(&mut self, key: (usize, usize, usize), coef: f64) {
        if coef == 0.0 {
            return;
        }
        let entry = self.terms.entry(key).or_insert(0.0);
        *entry += coef;
        if *entry == 0.0 {
            self.terms.remove(&key);
        }
    }

    fn scaled(&self, s: f64) -> Poly {
        let mut out = Poly::default();
        for (&k, &v) in &self.terms {
            out.add_term(k, v * s);
        }
        out
    }

    fn plus(&self, other: &Poly) -> Poly {
        let mut out = self.clone();
        for (&k, &v) in &other.terms {
            out.add_term(k, v);
        }
        out
    }

    /// Multiply by x^dx y^dy z^dz.
    fn shift(&self, dx: usize, dy: usize, dz: usize) -> Poly {
        let mut out = Poly::default();
        for (&(a, b, c), &v) in &self.terms {
            out.add_term((a + dx, b + dy, c + dz), v);
        }
        out
    }

    /// Multiply by r² = x² + y² + z².
    fn times_r2(&self) -> Poly {
        self.shift(2, 0, 0)
            .plus(&self.shift(0, 2, 0))
            .plus(&self.shift(0, 0, 2))
    }
}

/// All real solid harmonics of degree `l`, indexed by `m + l` (i.e. m runs
/// −l..=l).
fn solid_harmonics(l: usize) -> Vec<Poly> {
    // table[k][m + k]
    let mut table: Vec<Vec<Poly>> = vec![vec![Poly::one()]];
    for ll in 0..l {
        let cur = &table[ll];
        let prev = if ll > 0 { Some(&table[ll - 1]) } else { None };
        let mut next = vec![Poly::default(); 2 * (ll + 1) + 1];

        let delta = if ll == 0 { 1.0 } else { 0.0 };
        let top = (2f64.powf(delta) * (2 * ll + 1) as f64 / (2 * ll + 2) as f64).sqrt();
        let s_ll = &cur[2 * ll]; // m = +ll
        let s_mll = &cur[0]; // m = −ll
        // m = l+1
        let mut p = s_ll.shift(1, 0, 0);
        if ll > 0 {
            p = p.plus(&s_mll.shift(0, 1, 0).scaled(-1.0));
        }
        next[2 * (ll + 1)] = p.scaled(top);
        // m = −(l+1)
        let mut q = s_ll.shift(0, 1, 0);
        if ll > 0 {
            q = q.plus(&s_mll.shift(1, 0, 0));
        }
        next[0] = q.scaled(top);

        // |m| ≤ l
        for m in -(ll as i64)..=(ll as i64) {
            let lm = (m + ll as i64) as usize;
            let num1 = (2 * ll + 1) as f64;
            let mut p = cur[lm].shift(0, 0, 1).scaled(num1);
            let under = ((ll as i64 + m) * (ll as i64 - m)) as f64;
            if under > 0.0 {
                // Index of m in the degree-(ll−1) table: m + (ll − 1).
                let idx = (m + ll as i64 - 1) as usize;
                let prev_row = prev.expect("l ≥ 1 whenever (l+m)(l−m) > 0");
                p = p.plus(&prev_row[idx].times_r2().scaled(-under.sqrt()));
            }
            let denom = (((ll + 1) as i64 + m) * ((ll + 1) as i64 - m)) as f64;
            next[(m + (ll + 1) as i64) as usize] = p.scaled(1.0 / denom.sqrt());
        }
        table.push(next);
    }
    table.pop().unwrap()
}

/// Cartesian→spherical transformation matrix for angular momentum `l`:
/// shape `(2l+1) × ncart(l)`, rows ordered m = −l..=l, columns in
/// [`cart_components`] order.
///
/// Row `m` gives the solid harmonic S_{l,m} as a combination of the degree-l
/// monomials. All rows have equal norm under the single-Gaussian overlap
/// metric, so one per-shell normalization constant serves every m — the
/// property the contracted-AO normalization in `mako-eri` relies on.
pub fn cart_to_sph(l: usize) -> Matrix {
    let harmonics = solid_harmonics(l);
    let comps = cart_components(l);
    let mut m = Matrix::zeros(nsph(l), ncart(l));
    for (mi, poly) in harmonics.iter().enumerate() {
        for (ci, key) in comps.iter().enumerate() {
            if let Some(&v) = poly.terms.get(key) {
                m[(mi, ci)] = v;
            }
        }
        // Defensive: a solid harmonic of degree l must not contain monomials
        // outside degree l.
        debug_assert!(poly.terms.keys().all(|&(a, b, c)| a + b + c == l));
    }
    m
}

/// Single-center overlap of two Cartesian monomial Gaussians with the same
/// exponent α: `∫ x^(a+a') y^(b+b') z^(c+c') e^(−2αr²) d³r`.
///
/// Used by the tests to verify solid-harmonic orthogonality, and by the
/// basis code for primitive normalization.
pub fn monomial_gaussian_overlap(
    a: (usize, usize, usize),
    b: (usize, usize, usize),
    alpha: f64,
) -> f64 {
    let dim = |n: usize| -> f64 {
        if n % 2 == 1 {
            0.0
        } else {
            double_factorial(n as i64 - 1) / (4.0 * alpha).powi(n as i32 / 2)
                * (std::f64::consts::PI / (2.0 * alpha)).sqrt()
        }
    };
    dim(a.0 + b.0) * dim(a.1 + b.1) * dim(a.2 + b.2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_l_matches_textbook() {
        // s
        let c0 = cart_to_sph(0);
        assert_eq!(c0[(0, 0)], 1.0);
        // p: rows m = −1 (y), 0 (z), +1 (x); columns x, y, z.
        let c1 = cart_to_sph(1);
        assert_eq!(c1[(0, 1)], 1.0); // S_{1,−1} = y
        assert_eq!(c1[(1, 2)], 1.0); // S_{1,0} = z
        assert_eq!(c1[(2, 0)], 1.0); // S_{1,1} = x
        // d: S_{2,0} = (3z² − r²)/2 → coefficients −1/2, −1/2, 1 on x²,y²,z².
        let c2 = cart_to_sph(2);
        let comps = cart_components(2);
        let ix2 = comps.iter().position(|&t| t == (2, 0, 0)).unwrap();
        let iy2 = comps.iter().position(|&t| t == (0, 2, 0)).unwrap();
        let iz2 = comps.iter().position(|&t| t == (0, 0, 2)).unwrap();
        let m0 = 2; // m = 0 row
        assert!((c2[(m0, ix2)] + 0.5).abs() < 1e-14);
        assert!((c2[(m0, iy2)] + 0.5).abs() < 1e-14);
        assert!((c2[(m0, iz2)] - 1.0).abs() < 1e-14);
        // S_{2,2} = (√3/2)(x² − y²)
        let m2 = 4;
        assert!((c2[(m2, ix2)] - 3f64.sqrt() / 2.0).abs() < 1e-14);
        assert!((c2[(m2, iy2)] + 3f64.sqrt() / 2.0).abs() < 1e-14);
        // S_{2,1} = √3 xz
        let ixz = comps.iter().position(|&t| t == (1, 0, 1)).unwrap();
        assert!((c2[(3, ixz)] - 3f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn spherical_components_are_orthogonal_with_equal_norms() {
        // For every l up to g (and beyond), the transformed shell must be
        // orthogonal under the Gaussian overlap metric with identical norms
        // for all m — otherwise per-shell normalization would be wrong.
        for l in 0..=6usize {
            let c = cart_to_sph(l);
            let comps = cart_components(l);
            let alpha = 0.8;
            let n = nsph(l);
            let mut gram = Matrix::zeros(n, n);
            for mi in 0..n {
                for mj in 0..n {
                    let mut s = 0.0;
                    for (ci, &ca) in comps.iter().enumerate() {
                        for (cj, &cb) in comps.iter().enumerate() {
                            let w = c[(mi, ci)] * c[(mj, cj)];
                            if w != 0.0 {
                                s += w * monomial_gaussian_overlap(ca, cb, alpha);
                            }
                        }
                    }
                    gram[(mi, mj)] = s;
                }
            }
            let norm0 = gram[(0, 0)];
            assert!(norm0 > 0.0);
            for mi in 0..n {
                for mj in 0..n {
                    if mi == mj {
                        assert!(
                            ((gram[(mi, mj)] - norm0) / norm0).abs() < 1e-12,
                            "l={l} unequal norms: {} vs {}",
                            gram[(mi, mj)],
                            norm0
                        );
                    } else {
                        assert!(
                            (gram[(mi, mj)] / norm0).abs() < 1e-12,
                            "l={l} m={mi},{mj} not orthogonal: {}",
                            gram[(mi, mj)]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn row_counts() {
        for l in 0..=6 {
            let c = cart_to_sph(l);
            assert_eq!(c.rows(), 2 * l + 1);
            assert_eq!(c.cols(), (l + 1) * (l + 2) / 2);
        }
    }

    #[test]
    fn monomial_overlap_odd_vanishes() {
        assert_eq!(monomial_gaussian_overlap((1, 0, 0), (0, 0, 0), 1.0), 0.0);
        assert!(monomial_gaussian_overlap((1, 0, 0), (1, 0, 0), 1.0) > 0.0);
    }

    #[test]
    fn monomial_overlap_s_type_value() {
        // ∫ e^{−2αr²} = (π/(2α))^{3/2}
        let a = 0.7;
        let v = monomial_gaussian_overlap((0, 0, 0), (0, 0, 0), a);
        let expect = (std::f64::consts::PI / (2.0 * a)).powf(1.5);
        assert!((v - expect).abs() < 1e-14);
    }
}
