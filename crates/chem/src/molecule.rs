//! Molecular geometries: atoms, molecules, XYZ I/O, nuclear repulsion.

use crate::element::Element;
use crate::BOHR_PER_ANGSTROM;

/// One atom: element plus position in Bohr.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Atom {
    /// The chemical element.
    pub element: Element,
    /// Position in Bohr.
    pub position: [f64; 3],
}

impl Atom {
    /// Construct from a position given in Ångström.
    pub fn new_angstrom(element: Element, pos: [f64; 3]) -> Atom {
        Atom {
            element,
            position: [
                pos[0] * BOHR_PER_ANGSTROM,
                pos[1] * BOHR_PER_ANGSTROM,
                pos[2] * BOHR_PER_ANGSTROM,
            ],
        }
    }
}

/// A molecule: a list of atoms (neutral, closed-shell throughout this
/// reproduction, matching the paper's restricted-DFT workloads).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Molecule {
    /// The atoms.
    pub atoms: Vec<Atom>,
    /// Display name.
    pub name: String,
}

impl Molecule {
    /// Empty molecule with a name.
    pub fn new(name: impl Into<String>) -> Molecule {
        Molecule {
            atoms: Vec::new(),
            name: name.into(),
        }
    }

    /// Number of atoms.
    pub fn natoms(&self) -> usize {
        self.atoms.len()
    }

    /// Total electron count of the neutral molecule.
    pub fn n_electrons(&self) -> usize {
        self.atoms.iter().map(|a| a.element.electrons()).sum()
    }

    /// Nuclear–nuclear repulsion energy, Hartree.
    pub fn nuclear_repulsion(&self) -> f64 {
        let mut e = 0.0;
        for i in 0..self.atoms.len() {
            for j in 0..i {
                let zi = self.atoms[i].element.charge();
                let zj = self.atoms[j].element.charge();
                e += zi * zj / dist(self.atoms[i].position, self.atoms[j].position);
            }
        }
        e
    }

    /// Distinct elements present.
    pub fn elements(&self) -> Vec<Element> {
        let mut v: Vec<Element> = self.atoms.iter().map(|a| a.element).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Parse XYZ text (coordinates in Ångström).
    pub fn from_xyz(text: &str) -> Result<Molecule, String> {
        let mut lines = text.lines();
        let n: usize = lines
            .next()
            .ok_or("empty xyz")?
            .trim()
            .parse()
            .map_err(|e| format!("bad atom count: {e}"))?;
        let name = lines.next().unwrap_or("").trim().to_string();
        let mut mol = Molecule::new(name);
        for (lineno, line) in lines.enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let sym = parts.next().ok_or_else(|| format!("line {lineno}: no symbol"))?;
            let element = Element::from_symbol(sym)
                .ok_or_else(|| format!("line {lineno}: unknown element {sym}"))?;
            let mut coord = [0.0f64; 3];
            for c in &mut coord {
                *c = parts
                    .next()
                    .ok_or_else(|| format!("line {lineno}: missing coordinate"))?
                    .parse()
                    .map_err(|e| format!("line {lineno}: {e}"))?;
            }
            mol.atoms.push(Atom::new_angstrom(element, coord));
            if mol.atoms.len() == n {
                break;
            }
        }
        if mol.atoms.len() != n {
            return Err(format!("expected {n} atoms, found {}", mol.atoms.len()));
        }
        Ok(mol)
    }

    /// Serialize to XYZ text (coordinates in Ångström).
    pub fn to_xyz(&self) -> String {
        let mut s = format!("{}\n{}\n", self.atoms.len(), self.name);
        for a in &self.atoms {
            s.push_str(&format!(
                "{:<3} {:>14.8} {:>14.8} {:>14.8}\n",
                a.element.symbol(),
                a.position[0] / BOHR_PER_ANGSTROM,
                a.position[1] / BOHR_PER_ANGSTROM,
                a.position[2] / BOHR_PER_ANGSTROM,
            ));
        }
        s
    }

    /// Smallest interatomic distance, Bohr (sanity guard for generated
    /// geometries).
    pub fn min_distance(&self) -> f64 {
        let mut m = f64::INFINITY;
        for i in 0..self.atoms.len() {
            for j in 0..i {
                m = m.min(dist(self.atoms[i].position, self.atoms[j].position));
            }
        }
        m
    }
}

/// Euclidean distance between two points.
pub fn dist(a: [f64; 3], b: [f64; 3]) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    let dz = a[2] - b[2];
    (dx * dx + dy * dy + dz * dz).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn electron_count() {
        let w = crate::builders::water();
        assert_eq!(w.n_electrons(), 10);
        assert_eq!(w.natoms(), 3);
    }

    #[test]
    fn nuclear_repulsion_of_h2() {
        // Two protons at 1.4 Bohr: E = 1/1.4.
        let mut m = Molecule::new("H2");
        m.atoms.push(Atom {
            element: Element::H,
            position: [0.0, 0.0, 0.0],
        });
        m.atoms.push(Atom {
            element: Element::H,
            position: [0.0, 0.0, 1.4],
        });
        assert!((m.nuclear_repulsion() - 1.0 / 1.4).abs() < 1e-14);
    }

    #[test]
    fn water_nuclear_repulsion_textbook() {
        // H2O at the standard geometry: E_nn ≈ 9.19 Hartree.
        let w = crate::builders::water();
        let e = w.nuclear_repulsion();
        assert!((e - 9.19).abs() < 0.05, "E_nn = {e}");
    }

    #[test]
    fn xyz_roundtrip() {
        let w = crate::builders::water();
        let text = w.to_xyz();
        let back = Molecule::from_xyz(&text).unwrap();
        assert_eq!(back.natoms(), 3);
        for (a, b) in w.atoms.iter().zip(&back.atoms) {
            assert_eq!(a.element, b.element);
            for d in 0..3 {
                assert!((a.position[d] - b.position[d]).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn xyz_rejects_garbage() {
        assert!(Molecule::from_xyz("").is_err());
        assert!(Molecule::from_xyz("2\nc\nH 0 0 0\n").is_err());
        assert!(Molecule::from_xyz("1\nc\nXq 0 0 0\n").is_err());
        assert!(Molecule::from_xyz("1\nc\nH 0 0\n").is_err());
    }

    #[test]
    fn elements_deduplicated() {
        let w = crate::builders::water();
        assert_eq!(w.elements(), vec![Element::H, Element::O]);
    }
}
