//! Deterministic geometry builders for the paper's workloads.
//!
//! * water / water clusters — the compact, globular systems of Figure 8;
//! * polyglycine chains — the linear systems of Figure 8;
//! * a 1,231-atom synthetic protein with ubiquitin's elemental composition —
//!   the Figure 10 scaling workload;
//! * a parameterized suite of small molecules — the Table 3 accuracy set
//!   (standing in for the paper's 200+ tmQM/PubChem molecules).
//!
//! All builders are deterministic: identical inputs give identical geometries
//! across runs and platforms.

use crate::element::Element;
use crate::molecule::{Atom, Molecule};
use crate::BOHR_PER_ANGSTROM;

/// A single water molecule at the standard experimental geometry
/// (r(OH) = 0.9572 Å, ∠HOH = 104.52°), oxygen at the origin.
pub fn water() -> Molecule {
    water_at([0.0, 0.0, 0.0], 0)
}

/// A water molecule with its oxygen at `center` (Å), rotated about z by
/// `orientation` quarter-ish turns for cluster variety.
fn water_at(center: [f64; 3], orientation: usize) -> Molecule {
    let r = 0.9572;
    let half = 104.52f64.to_radians() / 2.0;
    let theta = orientation as f64 * 1.9; // ~109° increments, deterministic
    let (c, s) = (theta.cos(), theta.sin());
    let rot = |p: [f64; 3]| [c * p[0] - s * p[1], s * p[0] + c * p[1], p[2]];
    let h1 = rot([r * half.sin(), 0.0, r * half.cos()]);
    let h2 = rot([-r * half.sin(), 0.0, r * half.cos()]);
    let mut m = Molecule::new("H2O");
    m.atoms.push(Atom::new_angstrom(Element::O, center));
    m.atoms.push(Atom::new_angstrom(
        Element::H,
        [center[0] + h1[0], center[1] + h1[1], center[2] + h1[2]],
    ));
    m.atoms.push(Atom::new_angstrom(
        Element::H,
        [center[0] + h2[0], center[1] + h2[1], center[2] + h2[2]],
    ));
    m
}

/// A pathologically stretched water: both O–H bonds scaled by `stretch`
/// (> 1 elongates) at the equilibrium angle. Around 2× the homolytic
/// dissociation region makes restricted SCF genuinely hard — small
/// HOMO–LUMO gap, oscillating/stagnating DIIS — which is exactly what the
/// self-healing SCF suite needs a deterministic supply of.
pub fn stretched_water(stretch: f64) -> Molecule {
    let r = 0.9572 * stretch;
    let half = 104.52f64.to_radians() / 2.0;
    let mut m = Molecule::new(format!("H2O-stretch{stretch:.2}"));
    m.atoms.push(Atom::new_angstrom(Element::O, [0.0, 0.0, 0.0]));
    m.atoms.push(Atom::new_angstrom(
        Element::H,
        [r * half.sin(), 0.0, r * half.cos()],
    ));
    m.atoms.push(Atom::new_angstrom(
        Element::H,
        [-r * half.sin(), 0.0, r * half.cos()],
    ));
    m
}

/// A compact (globular) cluster of `n` water molecules.
///
/// Oxygen sites occupy the `n` lattice points of a simple cubic grid
/// (spacing 3.1 Å ≈ the O–O distance in ice) closest to the origin, each
/// water rotated differently — the "(H2O)ₙ" workloads of Figure 8.
pub fn water_cluster(n: usize) -> Molecule {
    let spacing = 3.1;
    // Enumerate lattice points by distance from origin, take the first n.
    let r = (n as f64).cbrt().ceil() as i64 + 1;
    let mut sites: Vec<[i64; 3]> = Vec::new();
    for x in -r..=r {
        for y in -r..=r {
            for z in -r..=r {
                sites.push([x, y, z]);
            }
        }
    }
    sites.sort_by(|a, b| {
        let da = a[0] * a[0] + a[1] * a[1] + a[2] * a[2];
        let db = b[0] * b[0] + b[1] * b[1] + b[2] * b[2];
        da.cmp(&db).then(a.cmp(b))
    });
    let mut m = Molecule::new(format!("(H2O){n}"));
    for (i, site) in sites.into_iter().take(n).enumerate() {
        let center = [
            site[0] as f64 * spacing,
            site[1] as f64 * spacing,
            site[2] as f64 * spacing,
        ];
        m.atoms.extend(water_at(center, i).atoms);
    }
    m
}

/// Jitter every atomic coordinate by a seeded uniform offset in
/// `[-magnitude, +magnitude]` Å. Deterministic (the LCG stream of
/// [`synthetic_protein`], keyed by `seed`), so the same `(geometry, seed,
/// magnitude)` always yields the same molecule — the supply line for
/// ensemble conformance tests and the throughput bench, where hundreds of
/// *distinct but reproducible* near-equilibrium geometries are needed.
/// Keep `magnitude` small (≲ 0.05 Å) so the perturbed geometry stays in the
/// same SCF basin as its parent.
pub fn perturb_geometry(mut m: Molecule, seed: u64, magnitude_angstrom: f64) -> Molecule {
    // Injective odd seeding (seed → 2·seed+1): adjacent seeds must yield
    // distinct streams, which a plain `seed | 1` would collide on every
    // even/odd pair.
    let mut state = seed.wrapping_mul(2).wrapping_add(1);
    let mut rnd = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let mag_bohr = magnitude_angstrom * BOHR_PER_ANGSTROM;
    for atom in &mut m.atoms {
        for c in &mut atom.position {
            *c += mag_bohr * (2.0 * rnd() - 1.0);
        }
    }
    m.name = format!("{}~{seed}", m.name);
    m
}

/// A seeded near-equilibrium water monomer: [`water`] with every coordinate
/// jittered by up to `magnitude_angstrom` (see [`perturb_geometry`]).
pub fn perturbed_water(seed: u64, magnitude_angstrom: f64) -> Molecule {
    perturb_geometry(water(), seed, magnitude_angstrom)
}

/// A seeded perturbed `(H2O)ₙ` cluster: [`water_cluster`] with every
/// coordinate jittered by up to `magnitude_angstrom` — the "100 perturbed
/// water clusters" ensemble workload.
pub fn perturbed_water_cluster(n: usize, seed: u64, magnitude_angstrom: f64) -> Molecule {
    perturb_geometry(water_cluster(n), seed, magnitude_angstrom)
}

/// A polyglycine chain (gly)ₙ in an extended (β-strand-like) conformation —
/// the linear workloads of Figure 8.
///
/// Each residue contributes the backbone N, H, Cα, 2×Hα, C′, O; the chain is
/// capped with an N-terminal H and a C-terminal OH, giving `7n + 3` atoms.
pub fn polyglycine(n: usize) -> Molecule {
    assert!(n >= 1);
    let mut m = Molecule::new(format!("(gly){n}"));
    let pitch = 3.63; // Å advance per residue along x (extended chain)
    for i in 0..n {
        let x0 = i as f64 * pitch;
        let flip = if i % 2 == 0 { 1.0 } else { -1.0 }; // zig-zag in y
        let res: [(Element, [f64; 3]); 7] = [
            (Element::N, [x0, 0.25 * flip, 0.0]),
            (Element::H, [x0 - 0.35, 0.9 * flip, 0.35]),
            (Element::C, [x0 + 1.21, -0.45 * flip, 0.0]), // Cα
            (Element::H, [x0 + 1.25, -1.05 * flip, 0.89]),
            (Element::H, [x0 + 1.25, -1.05 * flip, -0.89]),
            (Element::C, [x0 + 2.42, 0.40 * flip, 0.0]), // C′
            (Element::O, [x0 + 2.46, 1.62 * flip, 0.05]),
        ];
        for (e, p) in res {
            m.atoms.push(Atom::new_angstrom(e, p));
        }
    }
    // N-terminal hydrogen.
    m.atoms.push(Atom::new_angstrom(Element::H, [-0.55, -0.55, -0.5]));
    // C-terminal OH.
    let xe = (n - 1) as f64 * pitch;
    let flip = if (n - 1).is_multiple_of(2) { 1.0 } else { -1.0 };
    m.atoms
        .push(Atom::new_angstrom(Element::O, [xe + 3.2, -0.35 * flip, -0.6]));
    m.atoms
        .push(Atom::new_angstrom(Element::H, [xe + 4.05, 0.1 * flip, -0.75]));
    m
}

/// Methane at tetrahedral geometry, r(CH) = 1.089 Å.
pub fn methane() -> Molecule {
    let r = 1.089 / 3f64.sqrt();
    let mut m = Molecule::new("CH4");
    m.atoms.push(Atom::new_angstrom(Element::C, [0.0, 0.0, 0.0]));
    for p in [
        [r, r, r],
        [r, -r, -r],
        [-r, r, -r],
        [-r, -r, r],
    ] {
        m.atoms.push(Atom::new_angstrom(Element::H, p));
    }
    m
}

/// Ammonia, r(NH) = 1.012 Å, ∠HNH ≈ 106.7°.
pub fn ammonia() -> Molecule {
    let mut m = Molecule::new("NH3");
    m.atoms.push(Atom::new_angstrom(Element::N, [0.0, 0.0, 0.0]));
    let r = 1.012;
    let theta = 112.0f64.to_radians(); // polar angle giving ~106.7° HNH
    for k in 0..3 {
        let phi = k as f64 * 2.0 * std::f64::consts::PI / 3.0;
        m.atoms.push(Atom::new_angstrom(
            Element::H,
            [
                r * theta.sin() * phi.cos(),
                r * theta.sin() * phi.sin(),
                r * theta.cos(),
            ],
        ));
    }
    m
}

/// Formaldehyde (CH₂O) at the experimental geometry — a compact polar
/// molecule with a double bond, used by the accuracy suite for chemical
/// diversity at low cost.
pub fn formaldehyde() -> Molecule {
    let mut m = Molecule::new("CH2O");
    m.atoms.push(Atom::new_angstrom(Element::C, [0.0, 0.0, 0.0]));
    m.atoms.push(Atom::new_angstrom(Element::O, [0.0, 0.0, 1.205]));
    m.atoms.push(Atom::new_angstrom(Element::H, [0.943, 0.0, -0.587]));
    m.atoms.push(Atom::new_angstrom(Element::H, [-0.943, 0.0, -0.587]));
    m
}

/// A deterministic synthetic globular "protein": `natoms` atoms with
/// ubiquitin's elemental composition (H 51.1%, C 30.7%, N 8.5%, O 9.6%,
/// plus one S), packed on a jittered cubic lattice at protein-like density.
///
/// Substitutes for the ubiquitin PDB structure in the Figure 10 scaling
/// experiment: the scaling behaviour depends on atom/shell counts and
/// spatial extent, not on the true fold.
pub fn synthetic_protein(natoms: usize, seed: u64) -> Molecule {
    assert!(natoms >= 2);
    let mut m = Molecule::new(format!("synthetic-protein-{natoms}"));
    // Element sequence honoring ubiquitin fractions, deterministic.
    let mut counts = [
        (Element::H, (natoms as f64 * 0.511).round() as usize),
        (Element::C, (natoms as f64 * 0.307).round() as usize),
        (Element::N, (natoms as f64 * 0.085).round() as usize),
        (Element::O, (natoms as f64 * 0.096).round() as usize),
        (Element::S, 1usize),
    ];
    // Fix rounding drift on hydrogen.
    let assigned: usize = counts.iter().map(|&(_, c)| c).sum();
    counts[0].1 = (counts[0].1 as i64 + natoms as i64 - assigned as i64).max(0) as usize;

    let mut elements = Vec::with_capacity(natoms);
    for &(e, c) in &counts {
        elements.extend(std::iter::repeat_n(e, c));
    }
    elements.truncate(natoms);
    // Deterministic interleave so chemistry is spatially mixed.
    let mut state = seed | 1;
    let mut rnd = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    for i in (1..elements.len()).rev() {
        let j = (rnd() * (i + 1) as f64) as usize % (i + 1);
        elements.swap(i, j);
    }

    // Jittered cubic lattice, spacing 2.2 Å (~protein interior density),
    // sites nearest the origin first → globular shape.
    let spacing = 2.2;
    let r = (natoms as f64).cbrt().ceil() as i64 / 2 + 2;
    let mut sites: Vec<[i64; 3]> = Vec::new();
    for x in -r..=r {
        for y in -r..=r {
            for z in -r..=r {
                sites.push([x, y, z]);
            }
        }
    }
    sites.sort_by(|a, b| {
        let da = a[0] * a[0] + a[1] * a[1] + a[2] * a[2];
        let db = b[0] * b[0] + b[1] * b[1] + b[2] * b[2];
        da.cmp(&db).then(a.cmp(b))
    });
    for (e, site) in elements.into_iter().zip(sites) {
        let jitter = [rnd() * 0.5 - 0.25, rnd() * 0.5 - 0.25, rnd() * 0.5 - 0.25];
        m.atoms.push(Atom::new_angstrom(
            e,
            [
                site[0] as f64 * spacing + jitter[0],
                site[1] as f64 * spacing + jitter[1],
                site[2] as f64 * spacing + jitter[2],
            ],
        ));
    }
    m
}

/// The Figure 10 workload: 1,231 atoms with ubiquitin's composition.
pub fn ubiquitin_like() -> Molecule {
    let mut m = synthetic_protein(1231, 0x5EED_0BAD_F00D);
    m.name = "ubiquitin-like (1231 atoms)".into();
    m
}

/// A deterministic accuracy-validation suite of `count` small molecules —
/// the stand-in for the paper's 200+ tmQM/PubChem dataset. Mixes fixed
/// textbook molecules with perturbed variants (stretched/compressed bonds,
/// rotated clusters) for structural and compositional diversity.
pub fn accuracy_suite(count: usize) -> Vec<Molecule> {
    let base: Vec<Molecule> = vec![water(), methane(), ammonia(), water_cluster(2), formaldehyde()];
    let mut out = Vec::with_capacity(count);
    let mut k = 0usize;
    while out.len() < count {
        let proto = &base[k % base.len()];
        let variant = k / base.len();
        let scale = 1.0 + 0.02 * ((variant % 7) as f64 - 3.0); // ±6% bond scaling
        let mut m = proto.clone();
        m.name = format!("{}-v{}", proto.name, variant);
        for a in &mut m.atoms {
            for d in 0..3 {
                a.position[d] *= scale;
            }
        }
        out.push(m);
        k += 1;
    }
    out
}

/// Guard used by tests and builders: no two atoms closer than `min_angstrom`.
pub fn check_min_distance(m: &Molecule, min_angstrom: f64) -> bool {
    m.min_distance() >= min_angstrom * BOHR_PER_ANGSTROM
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::molecule::dist;

    #[test]
    fn water_geometry() {
        let w = water();
        assert_eq!(w.natoms(), 3);
        let roh = dist(w.atoms[0].position, w.atoms[1].position) / BOHR_PER_ANGSTROM;
        assert!((roh - 0.9572).abs() < 1e-6);
        let rhh = dist(w.atoms[1].position, w.atoms[2].position) / BOHR_PER_ANGSTROM;
        // HH distance from law of cosines ≈ 1.513 Å.
        assert!((rhh - 1.5139).abs() < 1e-3, "rhh = {rhh}");
    }

    #[test]
    fn stretched_water_scales_bonds_only() {
        let w = stretched_water(2.0);
        assert_eq!(w.natoms(), 3);
        let roh = dist(w.atoms[0].position, w.atoms[1].position) / BOHR_PER_ANGSTROM;
        assert!((roh - 2.0 * 0.9572).abs() < 1e-6, "roh = {roh}");
        // Same angle as equilibrium: HH/OH ratio is preserved.
        let rhh = dist(w.atoms[1].position, w.atoms[2].position) / BOHR_PER_ANGSTROM;
        assert!((rhh / roh - 1.5139 / 0.9572).abs() < 1e-3);
        // stretch = 1 reproduces the equilibrium geometry.
        let eq = stretched_water(1.0);
        for (a, b) in eq.atoms.iter().zip(&water().atoms) {
            for d in 0..3 {
                assert!((a.position[d] - b.position[d]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn water_cluster_counts_and_spacing() {
        for n in [1usize, 2, 5, 20] {
            let c = water_cluster(n);
            assert_eq!(c.natoms(), 3 * n);
            assert!(check_min_distance(&c, 0.8), "n={n} atoms overlap");
        }
    }

    #[test]
    fn water_cluster_is_deterministic() {
        assert_eq!(water_cluster(7), water_cluster(7));
    }

    #[test]
    fn perturbed_geometries_are_seeded_and_bounded() {
        // Same seed → bitwise identical; different seed → different.
        assert_eq!(perturbed_water(42, 0.02), perturbed_water(42, 0.02));
        assert_ne!(perturbed_water(42, 0.02), perturbed_water(43, 0.02));
        // Adjacent seeds must differ in *geometry*, not just in name (the
        // molecule name records the seed, so `assert_ne!` alone would pass
        // even if the jitter streams collided).
        let a = perturbed_water(42, 0.02);
        let b = perturbed_water(43, 0.02);
        assert!(
            a.atoms
                .iter()
                .zip(&b.atoms)
                .any(|(x, y)| x.position != y.position),
            "adjacent seeds produced identical geometries"
        );
        assert_eq!(
            perturbed_water_cluster(4, 7, 0.02),
            perturbed_water_cluster(4, 7, 0.02)
        );
        // Every coordinate moves by at most the magnitude.
        let base = water_cluster(4);
        let p = perturbed_water_cluster(4, 7, 0.02);
        let bound = 0.02 * BOHR_PER_ANGSTROM;
        let mut moved = false;
        for (a, b) in base.atoms.iter().zip(&p.atoms) {
            for d in 0..3 {
                let delta = (a.position[d] - b.position[d]).abs();
                assert!(delta <= bound + 1e-12, "delta {delta} exceeds {bound}");
                moved |= delta > 0.0;
            }
        }
        assert!(moved, "perturbation must actually move atoms");
        // The name records the seed so traces and benches can tell members
        // apart.
        assert_eq!(p.name, "(H2O)4~7");
    }

    #[test]
    fn polyglycine_counts() {
        for n in [1usize, 2, 4, 8] {
            let p = polyglycine(n);
            assert_eq!(p.natoms(), 7 * n + 3);
            assert!(check_min_distance(&p, 0.75), "n={n}");
            // Linear: x-extent grows with n.
            let xmax = p
                .atoms
                .iter()
                .map(|a| a.position[0])
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(xmax > (n as f64 - 1.0) * 3.0 * BOHR_PER_ANGSTROM);
        }
    }

    #[test]
    fn methane_and_ammonia_shapes() {
        let m = methane();
        assert_eq!(m.natoms(), 5);
        for h in 1..5 {
            let r = dist(m.atoms[0].position, m.atoms[h].position) / BOHR_PER_ANGSTROM;
            assert!((r - 1.089).abs() < 1e-6);
        }
        let a = ammonia();
        assert_eq!(a.natoms(), 4);
        assert_eq!(a.n_electrons(), 10);
    }

    #[test]
    fn ubiquitin_like_composition() {
        let u = ubiquitin_like();
        assert_eq!(u.natoms(), 1231);
        let count = |e: Element| u.atoms.iter().filter(|a| a.element == e).count();
        assert_eq!(count(Element::S), 1);
        assert!((count(Element::H) as f64 / 1231.0 - 0.511).abs() < 0.01);
        assert!((count(Element::C) as f64 / 1231.0 - 0.307).abs() < 0.01);
        assert!(check_min_distance(&u, 1.2));
        // Deterministic.
        assert_eq!(ubiquitin_like(), ubiquitin_like());
    }

    #[test]
    fn accuracy_suite_size_and_diversity() {
        let suite = accuracy_suite(200);
        assert_eq!(suite.len(), 200);
        let names: std::collections::HashSet<_> = suite.iter().map(|m| m.name.clone()).collect();
        assert_eq!(names.len(), 200, "all variants distinct");
        assert!(suite.iter().all(|m| m.natoms() >= 3));
    }
}
