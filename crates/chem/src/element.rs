//! Chemical elements: symbols, atomic numbers, masses, covalent radii.

/// A chemical element identified by atomic number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Element(pub u8);

/// (symbol, atomic mass / amu, covalent radius / Å) for Z = 1..=36.
const TABLE: [(&str, f64, f64); 36] = [
    ("H", 1.008, 0.31),
    ("He", 4.003, 0.28),
    ("Li", 6.94, 1.28),
    ("Be", 9.012, 0.96),
    ("B", 10.81, 0.84),
    ("C", 12.011, 0.76),
    ("N", 14.007, 0.71),
    ("O", 15.999, 0.66),
    ("F", 18.998, 0.57),
    ("Ne", 20.180, 0.58),
    ("Na", 22.990, 1.66),
    ("Mg", 24.305, 1.41),
    ("Al", 26.982, 1.21),
    ("Si", 28.085, 1.11),
    ("P", 30.974, 1.07),
    ("S", 32.06, 1.05),
    ("Cl", 35.45, 1.02),
    ("Ar", 39.948, 1.06),
    ("K", 39.098, 2.03),
    ("Ca", 40.078, 1.76),
    ("Sc", 44.956, 1.70),
    ("Ti", 47.867, 1.60),
    ("V", 50.942, 1.53),
    ("Cr", 51.996, 1.39),
    ("Mn", 54.938, 1.39),
    ("Fe", 55.845, 1.32),
    ("Co", 58.933, 1.26),
    ("Ni", 58.693, 1.24),
    ("Cu", 63.546, 1.32),
    ("Zn", 65.38, 1.22),
    ("Ga", 69.723, 1.22),
    ("Ge", 72.630, 1.20),
    ("As", 74.922, 1.19),
    ("Se", 78.971, 1.20),
    ("Br", 79.904, 1.20),
    ("Kr", 83.798, 1.16),
];

impl Element {
    /// Hydrogen.
    pub const H: Element = Element(1);
    /// Carbon.
    pub const C: Element = Element(6);
    /// Nitrogen.
    pub const N: Element = Element(7);
    /// Oxygen.
    pub const O: Element = Element(8);
    /// Phosphorus.
    pub const P: Element = Element(15);
    /// Sulfur.
    pub const S: Element = Element(16);
    /// Iron (transition-metal representative for the tmQM-style suite).
    pub const FE: Element = Element(26);

    /// Look up an element by case-sensitive symbol ("H", "Fe", …).
    pub fn from_symbol(sym: &str) -> Option<Element> {
        TABLE
            .iter()
            .position(|&(s, _, _)| s == sym)
            .map(|i| Element(i as u8 + 1))
    }

    /// Atomic number.
    pub fn z(self) -> u8 {
        self.0
    }

    /// Nuclear charge as a float (for nuclear-attraction integrals).
    pub fn charge(self) -> f64 {
        self.0 as f64
    }

    /// Element symbol.
    pub fn symbol(self) -> &'static str {
        TABLE[(self.0 - 1) as usize].0
    }

    /// Atomic mass in amu.
    pub fn mass(self) -> f64 {
        TABLE[(self.0 - 1) as usize].1
    }

    /// Covalent radius in Ångström.
    pub fn covalent_radius(self) -> f64 {
        TABLE[(self.0 - 1) as usize].2
    }

    /// Number of electrons in the neutral atom.
    pub fn electrons(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Element {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_roundtrip() {
        for z in 1..=36u8 {
            let e = Element(z);
            assert_eq!(Element::from_symbol(e.symbol()), Some(e));
        }
    }

    #[test]
    fn known_elements() {
        assert_eq!(Element::from_symbol("H"), Some(Element(1)));
        assert_eq!(Element::from_symbol("C"), Some(Element(6)));
        assert_eq!(Element::from_symbol("Fe"), Some(Element(26)));
        assert_eq!(Element::from_symbol("Xx"), None);
        assert_eq!(Element::O.symbol(), "O");
        assert_eq!(Element::O.charge(), 8.0);
        assert_eq!(Element::S.z(), 16);
    }

    #[test]
    fn masses_and_radii_plausible() {
        assert!((Element::C.mass() - 12.011).abs() < 1e-9);
        assert!(Element::H.covalent_radius() < Element::C.covalent_radius());
        assert!(Element::FE.mass() > Element::S.mass());
    }
}
