//! # mako-chem
//!
//! Chemistry substrate for the Mako quantum-chemistry system: elements,
//! molecular geometries, Gaussian basis sets, and the Cartesian↔spherical
//! solid-harmonic machinery every integral engine sits on.
//!
//! ## Basis-set substitution
//!
//! The paper evaluates on def2-TZVP / def2-QZVP / cc-pVTZ / cc-pVQZ. Shipping
//! the full tabulated Gaussian exponents of those sets is neither possible
//! offline nor necessary for the paper's experiments, whose independent
//! variable is the *angular-momentum content and contraction structure* of
//! the basis. This crate therefore provides:
//!
//! * genuine STO-3G parameters (published Hehre–Stewart–Pople fits) for
//!   H/C/N/O — used to validate absolute Hartree–Fock energies against
//!   textbook values; and
//! * parametric **even-tempered families** ([`basis::BasisFamily`]) matching
//!   the per-element shell compositions of the paper's basis sets (f
//!   functions for the TZ sets, g functions for the QZ sets, realistic
//!   contraction-degree patterns with K = 1 for high angular momentum —
//!   exactly the property GEMM coalescing exploits).
//!
//! Geometries come from [`builders`]: water clusters (compact/globular),
//! polyglycine chains (linear), and a deterministic 1,231-atom synthetic
//! protein standing in for ubiquitin.

pub mod basis;
pub mod builders;
pub mod cart;
pub mod element;
pub mod harmonics;
pub mod molecule;

pub use basis::{AoLayout, BasisError, BasisFamily, BasisSet, Shell};
pub use cart::{cart_components, ncart, nherm, nsph};
pub use element::Element;
pub use molecule::{Atom, Molecule};

/// Bohr per Ångström: XYZ files are in Å, everything internal is atomic
/// units.
pub const BOHR_PER_ANGSTROM: f64 = 1.8897259886;
