//! # mako-compiler
//!
//! CompilerMako (paper §3.3): a compiler-inspired framework that turns ERI
//! kernel generation into a planning + tuning problem.
//!
//! ERI instances grouped by angular momentum and contraction degree follow a
//! finite set of static execution patterns (an [`mako_eri::EriClass`] is the
//! pattern key). For each class this crate:
//!
//! 1. runs **Reuse-Guided Planning** ([`planner`]): enumerates fusion
//!    strategies, computes the live-tensor shared-memory footprint
//!    `S(F) = Σ Size(T)` (Eq. 12), rejects plans violating the occupancy
//!    constraint `S(F) ≤ SMEM_max / 2` (Eq. 13), and ranks the survivors by
//!    modeled global traffic and launch count;
//! 2. runs **Architecture-Tuned Compilation** ([`tuner`], Algorithm 2):
//!    sweeps threadblock shapes, layouts, and ILP factors 1..32, re-planning
//!    fusion per threadblock shape, scoring each candidate under the
//!    device cost model (the stand-in for CUTLASS Profiler wall clocks);
//! 3. caches the winning configuration per (class, precision, device) in a
//!    process-wide [`tuner::KernelCache`].

pub mod planner;
pub mod tuner;

pub use planner::{plan_fusion, FusionPlan};
pub use tuner::{tune_class, KernelCache, TunedKernel};
