//! Reuse-Guided Planning (paper §3.3.1).
//!
//! For a given ERI class the pipeline stages produce deterministic
//! intermediate tensors; fusing stages keeps those tensors on-chip at the
//! price of shared memory. The planner enumerates the fusion strategies,
//! computes each strategy's live-tensor footprint `S(F)`, discards the ones
//! violating `S(F) ≤ SMEM_max / 2` (so ≥ 2 threadblocks stay resident per
//! SM), and ranks the rest by modeled cost.

use mako_accel::{CostModel, SmemLayout};
use mako_eri::batch::EriClass;
use mako_kernels::pipeline::{simulate_batch_cost, smem_footprint, FusionStrategy, PipelineConfig};
use mako_precision::{Precision, ScalePolicy};

/// The outcome of planning one ERI class.
#[derive(Debug, Clone)]
pub struct FusionPlan {
    /// Chosen strategy.
    pub strategy: FusionStrategy,
    /// Live-tensor shared-memory footprint of the chosen strategy, bytes.
    pub smem_bytes: usize,
    /// Strategies rejected by the occupancy constraint, with their
    /// footprints (for diagnostics and the ablation benches).
    pub rejected: Vec<(FusionStrategy, usize)>,
    /// Modeled cost of the chosen strategy for the probe batch size.
    pub cost_s: f64,
}

/// Candidate strategies in preference order (most fused first).
fn candidates(class: &EriClass) -> Vec<FusionStrategy> {
    let mut v = Vec::new();
    if class.kab == 1 && class.kcd == 1 {
        v.push(FusionStrategy::FuseAllCoalesced);
    }
    v.push(FusionStrategy::FuseAll);
    v.push(FusionStrategy::FuseRPq);
    v.push(FusionStrategy::Unfused);
    v
}

/// The threadblock shape a plan is made for. The shape couples to the
/// live-tensor footprint (`S(F)` depends on the N-dim tile edge), so fusion
/// feasibility genuinely changes with it: a tile that fits fully-fused on a
/// V100 at edge 8 can bust the Eq. 13 budget at edge 32.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockShape {
    /// Threads per threadblock.
    pub threads_per_block: usize,
    /// Edge of the unified N-dimension tiling (paper Figure 4).
    pub tile: usize,
}

impl Default for BlockShape {
    fn default() -> BlockShape {
        BlockShape {
            threads_per_block: 256,
            tile: 16,
        }
    }
}

/// Plan the fusion strategy for an ERI class at a given precision, using
/// the default threadblock shape (256 threads, tile edge 16).
///
/// `probe_batch` is the batch size used to score candidates (the relative
/// ranking is insensitive to it once batches are large enough to saturate
/// the device).
pub fn plan_fusion(
    class: &EriClass,
    precision: Precision,
    model: &CostModel,
    probe_batch: usize,
) -> FusionPlan {
    plan_fusion_with(class, precision, model, probe_batch, BlockShape::default())
}

/// Plan the fusion strategy for an explicit threadblock shape — the entry
/// point the tuner sweeps, since the footprint (and therefore which fusion
/// strategies survive Eq. 13) depends on the candidate tile edge.
pub fn plan_fusion_with(
    class: &EriClass,
    precision: Precision,
    model: &CostModel,
    probe_batch: usize,
    shape: BlockShape,
) -> FusionPlan {
    let budget = model.device.smem_per_sm / 2; // Eq. (13)
    let mut rejected = Vec::new();
    let mut best: Option<(FusionStrategy, usize, f64)> = None;

    for strategy in candidates(class) {
        let cfg = PipelineConfig {
            fusion: strategy,
            layout: SmemLayout::Swizzled,
            ilp: 4,
            threads_per_block: shape.threads_per_block,
            precision,
            scale_policy: if precision == Precision::Fp64 {
                ScalePolicy::Unscaled
            } else {
                ScalePolicy::PerGroup
            },
            tile: shape.tile,
        };
        let smem = smem_footprint(class, &cfg);
        if smem > budget {
            rejected.push((strategy, smem));
            continue;
        }
        let cost = simulate_batch_cost(class, probe_batch, &cfg, model);
        if !cost.is_finite() {
            rejected.push((strategy, smem));
            continue;
        }
        match best {
            Some((_, _, c)) if c <= cost => {}
            _ => best = Some((strategy, smem, cost)),
        }
    }

    // Unfused has zero footprint and always satisfies the constraint, so a
    // plan always exists.
    let (strategy, smem_bytes, cost_s) =
        best.expect("Unfused strategy always admissible");
    FusionPlan {
        strategy,
        smem_bytes,
        rejected,
        cost_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mako_accel::DeviceSpec;

    fn class(l: usize, k: usize) -> EriClass {
        EriClass {
            la: l,
            lb: l,
            lc: l,
            ld: l,
            kab: k,
            kcd: k,
        }
    }

    #[test]
    fn low_l_classes_fuse_fully() {
        let model = CostModel::new(DeviceSpec::a100());
        for l in 0..=2 {
            let p = plan_fusion(&class(l, 1), Precision::Fp64, &model, 50_000);
            assert!(
                matches!(
                    p.strategy,
                    FusionStrategy::FuseAll | FusionStrategy::FuseAllCoalesced
                ),
                "l={l}: {:?}",
                p.strategy
            );
            assert!(p.smem_bytes <= model.device.smem_per_sm / 2);
        }
    }

    #[test]
    fn gggg_fuses_through_tiling_and_quantization_shrinks_footprint() {
        // With the Figure 4 N-dim tiling in the footprint model, even the
        // (gg|gg) class plans a fused strategy in both precisions; the
        // quantized plan's footprint is strictly smaller (higher occupancy
        // headroom), and the untiled footprint would be inadmissible.
        let model = CostModel::new(DeviceSpec::a100());
        let c = class(4, 1);
        let p64 = plan_fusion(&c, Precision::Fp64, &model, 10_000);
        let p16 = plan_fusion(&c, Precision::Fp16, &model, 10_000);
        assert!(p64.strategy != FusionStrategy::Unfused, "{:?}", p64.strategy);
        assert!(p16.strategy != FusionStrategy::Unfused, "{:?}", p16.strategy);
        assert!(p16.smem_bytes < p64.smem_bytes);

        use mako_kernels::pipeline::smem_footprint;
        let untiled = PipelineConfig {
            tile: usize::MAX,
            fusion: FusionStrategy::FuseAll,
            ..mako_kernels::pipeline::PipelineConfig::kernel_mako_fp64()
        };
        assert!(
            smem_footprint(&c, &untiled) > model.device.smem_per_sm / 2,
            "untiled footprint must bust the Eq. 13 budget"
        );
    }

    #[test]
    fn coalescing_only_offered_for_k1() {
        let model = CostModel::new(DeviceSpec::a100());
        let p = plan_fusion(&class(1, 5), Precision::Fp64, &model, 50_000);
        assert!(p.strategy != FusionStrategy::FuseAllCoalesced);
    }

    #[test]
    fn fusion_feasibility_responds_to_block_shape() {
        // The tuner re-plans per swept threadblock shape because the tile
        // edge moves the footprint across the Eq. 13 budget: on a V100,
        // (gg|gg) FP64 fits fully fused at tile 8 but not at tile 32 —
        // the plan must fall back to a partial fusion there.
        use mako_accel::DeviceKind;
        use mako_kernels::pipeline::smem_footprint;
        let model = CostModel::new(DeviceSpec::new(DeviceKind::V100));
        let c = class(4, 1);
        let small = plan_fusion_with(
            &c,
            Precision::Fp64,
            &model,
            10_000,
            BlockShape { threads_per_block: 256, tile: 8 },
        );
        let big = plan_fusion_with(
            &c,
            Precision::Fp64,
            &model,
            10_000,
            BlockShape { threads_per_block: 256, tile: 32 },
        );
        assert!(
            matches!(
                small.strategy,
                FusionStrategy::FuseAll | FusionStrategy::FuseAllCoalesced
            ),
            "tile 8 must plan fully fused, got {:?}",
            small.strategy
        );
        assert!(
            !matches!(
                big.strategy,
                FusionStrategy::FuseAll | FusionStrategy::FuseAllCoalesced
            ),
            "tile 32 busts the V100 budget, got {:?}",
            big.strategy
        );
        assert!(
            big.rejected.iter().any(|(s, _)| *s == FusionStrategy::FuseAll),
            "FuseAll must be rejected by Eq. 13 at tile 32"
        );
        // Each plan's own footprint is admissible for its shape.
        for (p, tile) in [(&small, 8usize), (&big, 32)] {
            let cfg = PipelineConfig {
                fusion: p.strategy,
                tile,
                ..PipelineConfig::kernel_mako_fp64()
            };
            assert!(smem_footprint(&c, &cfg) <= model.device.smem_per_sm / 2);
        }
    }

    #[test]
    fn chosen_plan_respects_budget_on_every_device() {
        use mako_accel::DeviceKind;
        for kind in [DeviceKind::A100_40G, DeviceKind::V100, DeviceKind::H100] {
            let model = CostModel::new(DeviceSpec::new(kind));
            for l in 0..=4 {
                for &k in &[1usize, 5] {
                    let p = plan_fusion(&class(l, k), Precision::Fp16, &model, 10_000);
                    assert!(
                        p.smem_bytes <= model.device.smem_per_sm / 2,
                        "{kind:?} l={l} k={k}"
                    );
                    assert!(p.cost_s.is_finite());
                }
            }
        }
    }
}
