//! Architecture-Tuned Compilation (paper §3.3.2, Algorithm 2).
//!
//! For each (ERI class, precision, device) the tuner sweeps the CUTLASS-like
//! configuration space — threadblock size, shared-memory layout, fusion
//! strategy (re-planned per threadblock shape, since the threadblock shape
//! couples to the footprint), and the implicit-ILP factor 1..32 — scoring
//! every candidate under the device cost model and keeping the fastest.
//! Winners are memoized in a process-wide [`KernelCache`], the analogue of
//! CUTLASS Profiler's best-kernel database.

use crate::planner::plan_fusion;
use mako_accel::{CostModel, DeviceKind, SmemLayout};
use mako_eri::batch::EriClass;
use mako_kernels::pipeline::{simulate_batch_cost, PipelineConfig};
use mako_precision::{Precision, ScalePolicy};
use parking_lot::RwLock;
use std::collections::HashMap;

/// A tuned kernel configuration with its modeled performance.
#[derive(Debug, Clone)]
pub struct TunedKernel {
    /// The winning configuration.
    pub config: PipelineConfig,
    /// Modeled seconds for the probe batch.
    pub cost_s: f64,
    /// Number of candidate configurations evaluated.
    pub candidates_evaluated: usize,
}

/// Batch size used to score candidates during tuning.
const PROBE_BATCH: usize = 50_000;

/// Algorithm 2: exhaustive sweep over the tunable space for one class.
pub fn tune_class(class: &EriClass, precision: Precision, model: &CostModel) -> TunedKernel {
    let scale_policy = if precision == Precision::Fp64 {
        ScalePolicy::Unscaled
    } else {
        ScalePolicy::PerGroup
    };

    let mut best: Option<(PipelineConfig, f64)> = None;
    let mut evaluated = 0usize;

    for &threads in &[128usize, 256, 512] {
        // Threadblock shape affects the fusion feasibility: re-plan.
        let plan = plan_fusion(class, precision, model, PROBE_BATCH);
        for &layout in &[SmemLayout::Swizzled, SmemLayout::Linear] {
            for ilp in (0..=5).map(|k| 1usize << k) {
                for tile in [8usize, 16, 32] {
                    let cfg = PipelineConfig {
                        fusion: plan.strategy,
                        layout,
                        ilp,
                        threads_per_block: threads,
                        precision,
                        scale_policy,
                        tile,
                    };
                    let cost = simulate_batch_cost(class, PROBE_BATCH, &cfg, model);
                    evaluated += 1;
                    if cost.is_finite() {
                        match best {
                            Some((_, c)) if c <= cost => {}
                            _ => best = Some((cfg, cost)),
                        }
                    }
                }
            }
        }
    }

    let (config, cost_s) = best.expect("at least the unfused plan is admissible");
    TunedKernel {
        config,
        cost_s,
        candidates_evaluated: evaluated,
    }
}

/// Process-wide cache of tuned kernels keyed by (class, precision, device).
#[derive(Default)]
pub struct KernelCache {
    map: RwLock<HashMap<(EriClass, Precision, DeviceKind), TunedKernel>>,
}

impl KernelCache {
    /// Empty cache.
    pub fn new() -> KernelCache {
        KernelCache::default()
    }

    /// Fetch the tuned kernel for a class, tuning on first use.
    pub fn get_or_tune(&self, class: &EriClass, precision: Precision, model: &CostModel) -> TunedKernel {
        let key = (*class, precision, model.device.kind);
        if let Some(hit) = self.map.read().get(&key) {
            return hit.clone();
        }
        let tuned = tune_class(class, precision, model);
        self.map.write().insert(key, tuned.clone());
        tuned
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mako_accel::DeviceSpec;
    use mako_kernels::pipeline::FusionStrategy;

    fn class(l: usize, k: usize) -> EriClass {
        EriClass {
            la: l,
            lb: l,
            lc: l,
            ld: l,
            kab: k,
            kcd: k,
        }
    }

    #[test]
    fn tuned_never_slower_than_default() {
        let model = CostModel::new(DeviceSpec::a100());
        for l in 0..=3 {
            let c = class(l, 1);
            let tuned = tune_class(&c, Precision::Fp64, &model);
            let default = simulate_batch_cost(
                &c,
                PROBE_BATCH,
                &PipelineConfig::kernel_mako_fp64(),
                &model,
            );
            assert!(
                tuned.cost_s <= default * (1.0 + 1e-12),
                "l={l}: tuned {} default {default}",
                tuned.cost_s
            );
            assert!(tuned.candidates_evaluated >= 36);
        }
    }

    #[test]
    fn tuner_prefers_swizzled_layout() {
        // With a non-trivial r/pq share, bank conflicts make the linear
        // layout strictly worse, so the winner must be swizzled.
        let model = CostModel::new(DeviceSpec::a100());
        let tuned = tune_class(&class(2, 5), Precision::Fp64, &model);
        assert_eq!(tuned.config.layout, SmemLayout::Swizzled);
    }

    #[test]
    fn tuner_picks_midrange_ilp_for_fused_kernels() {
        // (dd|dd) K={5,5}: fully fused and compute-bound, with a non-MatMul
        // r/pq share large enough that ILP restructuring pays; the tuner
        // must not leave the factor at 1.
        let model = CostModel::new(DeviceSpec::a100());
        let tuned = tune_class(&class(2, 5), Precision::Fp64, &model);
        assert_eq!(tuned.config.fusion, FusionStrategy::FuseAll);
        assert!(
            (2..=16).contains(&tuned.config.ilp),
            "ilp = {}",
            tuned.config.ilp
        );
    }

    #[test]
    fn cache_hits_are_stable() {
        let model = CostModel::new(DeviceSpec::a100());
        let cache = KernelCache::new();
        let c = class(3, 1);
        let a = cache.get_or_tune(&c, Precision::Fp16, &model);
        let b = cache.get_or_tune(&c, Precision::Fp16, &model);
        assert_eq!(cache.len(), 1);
        assert_eq!(a.cost_s, b.cost_s);
        assert_eq!(a.config.ilp, b.config.ilp);
        // Different precision → separate entry.
        cache.get_or_tune(&c, Precision::Fp64, &model);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn portability_across_devices() {
        // The same class tunes successfully (possibly to different configs)
        // on every supported architecture — the paper's portability claim.
        let c = class(4, 1);
        let mut costs = Vec::new();
        for kind in [DeviceKind::V100, DeviceKind::A100_40G, DeviceKind::H100] {
            let model = CostModel::new(DeviceSpec::new(kind));
            let tuned = tune_class(&c, Precision::Fp16, &model);
            assert!(tuned.cost_s.is_finite(), "{kind:?}");
            costs.push(tuned.cost_s);
        }
        // Newer devices are faster on the same tuned class.
        assert!(costs[2] < costs[1] && costs[1] < costs[0]);
    }
}
