//! Architecture-Tuned Compilation (paper §3.3.2, Algorithm 2).
//!
//! For each (ERI class, precision, device) the tuner sweeps the CUTLASS-like
//! configuration space — threadblock size, shared-memory layout, fusion
//! strategy (re-planned per threadblock shape, since the threadblock shape
//! couples to the footprint), and the implicit-ILP factor 1..32 — scoring
//! every candidate under the device cost model and keeping the fastest.
//! Winners are memoized in a process-wide [`KernelCache`], the analogue of
//! CUTLASS Profiler's best-kernel database.

use crate::planner::{plan_fusion_with, BlockShape};
use mako_accel::{CostModel, DeviceKind, SmemLayout};
use mako_eri::batch::EriClass;
use mako_kernels::pipeline::{simulate_batch_cost, smem_footprint, PipelineConfig};
use mako_precision::{Precision, ScalePolicy};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A tuned kernel configuration with its modeled performance.
#[derive(Debug, Clone)]
pub struct TunedKernel {
    /// The winning configuration.
    pub config: PipelineConfig,
    /// Modeled seconds for the probe batch.
    pub cost_s: f64,
    /// Number of candidate configurations evaluated.
    pub candidates_evaluated: usize,
    /// Candidates (including fusion strategies considered during per-shape
    /// planning) rejected by the Eq. 13 occupancy budget
    /// `S(F) ≤ smem_per_sm / 2`.
    pub eq13_rejections: usize,
}

/// Batch size used to score candidates during tuning.
const PROBE_BATCH: usize = 50_000;

/// Algorithm 2: exhaustive sweep over the tunable space for one class.
///
/// Every candidate is admitted only if its live-tensor footprint satisfies
/// the Eq. 13 occupancy budget `S(F) ≤ smem_per_sm / 2` (≥ 2 resident
/// threadblocks per SM). The fusion strategy is re-planned per threadblock
/// shape — the tile edge moves the footprint, so a shape change can flip
/// which strategies survive the budget.
pub fn tune_class(class: &EriClass, precision: Precision, model: &CostModel) -> TunedKernel {
    let scale_policy = if precision == Precision::Fp64 {
        ScalePolicy::Unscaled
    } else {
        ScalePolicy::PerGroup
    };
    let budget = model.device.smem_per_sm / 2; // Eq. (13)

    let mut sp = mako_trace::span("compiler", "tune_class");
    let mut best: Option<(PipelineConfig, f64)> = None;
    let mut evaluated = 0usize;
    let mut rejected = 0usize;

    for &threads in &[128usize, 256, 512] {
        for tile in [8usize, 16, 32] {
            // The (threads, tile) shape couples to the footprint: re-plan
            // the fusion strategy for this exact shape.
            let shape = BlockShape {
                threads_per_block: threads,
                tile,
            };
            let plan = plan_fusion_with(class, precision, model, PROBE_BATCH, shape);
            rejected += plan.rejected.len();
            for &layout in &[SmemLayout::Swizzled, SmemLayout::Linear] {
                for ilp in (0..=5).map(|k| 1usize << k) {
                    let cfg = PipelineConfig {
                        fusion: plan.strategy,
                        layout,
                        ilp,
                        threads_per_block: threads,
                        precision,
                        scale_policy,
                        tile,
                    };
                    evaluated += 1;
                    // Re-check the budget per candidate: planning already
                    // enforced it for this shape, but admissibility is the
                    // tuner's contract with the SCF driver, not an accident
                    // of where the config came from.
                    if smem_footprint(class, &cfg) > budget {
                        rejected += 1;
                        continue;
                    }
                    let cost = simulate_batch_cost(class, PROBE_BATCH, &cfg, model);
                    if cost.is_finite() {
                        match best {
                            Some((_, c)) if c <= cost => {}
                            _ => best = Some((cfg, cost)),
                        }
                    }
                }
            }
        }
    }

    let (config, cost_s) = best.expect("at least the unfused plan is admissible");
    if sp.is_recording() {
        sp.add_field("class", class.label());
        sp.add_field("precision", format!("{precision:?}"));
        sp.add_field("device", format!("{:?}", model.device.kind));
        sp.add_field("candidates", evaluated);
        sp.add_field("eq13_rejections", rejected);
        sp.add_field("cost_s", cost_s);
        sp.add_field("smem_bytes", smem_footprint(class, &config));
    }
    TunedKernel {
        config,
        cost_s,
        candidates_evaluated: evaluated,
        eq13_rejections: rejected,
    }
}

/// One memoized tuner winner plus its LRU recency stamp. The stamp is
/// atomic so a read-lock hit can refresh it without upgrading to the write
/// lock — hits stay concurrent even when the cache is bounded.
struct CacheEntry {
    kernel: TunedKernel,
    last_used: AtomicU64,
}

/// Process-wide cache of tuned kernels keyed by (class, precision, device).
///
/// By default the cache is unbounded — correct for a single workstation
/// process, where the key population is small. A serving process that sees
/// many (class, precision, device) combinations across tenants bounds it
/// with [`KernelCache::with_capacity`]: inserts beyond the capacity evict
/// the least-recently-used entry (counted in [`KernelCache::evictions`] and
/// the `compiler.kernel_cache.evictions` trace counter). Eviction only
/// costs re-tuning wall time — `tune_class` is deterministic, so a re-tuned
/// entry is identical to the evicted one and cached results never change.
#[derive(Default)]
pub struct KernelCache {
    map: RwLock<HashMap<(EriClass, Precision, DeviceKind), CacheEntry>>,
    /// Maximum entries; 0 = unbounded.
    capacity: usize,
    /// Monotonic recency clock; each touch takes a unique tick, so the LRU
    /// minimum is unique and eviction order is deterministic.
    tick: AtomicU64,
    hits: AtomicUsize,
    tunes: AtomicUsize,
    duplicates_avoided: AtomicUsize,
    evictions: AtomicUsize,
}

impl KernelCache {
    /// Empty, unbounded cache.
    pub fn new() -> KernelCache {
        KernelCache::default()
    }

    /// Empty cache bounded to at most `capacity` entries (0 = unbounded).
    pub fn with_capacity(capacity: usize) -> KernelCache {
        KernelCache {
            capacity,
            ..KernelCache::default()
        }
    }

    /// The configured bound (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fetch the tuned kernel for a class, tuning on first use.
    ///
    /// Race-free: a read-lock miss is re-checked under the write lock
    /// before tuning, so concurrent callers of the same key never run the
    /// sweep twice (the loser of the lock race finds the entry and counts a
    /// `duplicates_avoided`) — including when the cache is full and the
    /// insert must evict. Tuning holds the write lock — misses on
    /// *different* keys serialize, which is the price of never clobbering
    /// an insert; the sweep is milliseconds and runs once per key per
    /// process, so the trade is right.
    pub fn get_or_tune(&self, class: &EriClass, precision: Precision, model: &CostModel) -> TunedKernel {
        let key = (*class, precision, model.device.kind);
        if let Some(hit) = self.map.read().get(&key) {
            hit.last_used
                .store(self.tick.fetch_add(1, Ordering::Relaxed) + 1, Ordering::Relaxed);
            let hits = self.hits.fetch_add(1, Ordering::Relaxed) + 1;
            mako_trace::counter("compiler", "kernel_cache.hits", hits as f64);
            return hit.kernel.clone();
        }
        let mut map = self.map.write();
        if let Some(hit) = map.get(&key) {
            // Another caller tuned this key between our read miss and the
            // write acquisition.
            hit.last_used
                .store(self.tick.fetch_add(1, Ordering::Relaxed) + 1, Ordering::Relaxed);
            let avoided = self.duplicates_avoided.fetch_add(1, Ordering::Relaxed) + 1;
            mako_trace::counter("compiler", "kernel_cache.duplicates_avoided", avoided as f64);
            return hit.kernel.clone();
        }
        let tuned = tune_class(class, precision, model);
        let tunes = self.tunes.fetch_add(1, Ordering::Relaxed) + 1;
        mako_trace::counter("compiler", "kernel_cache.tunes", tunes as f64);
        if self.capacity > 0 && map.len() >= self.capacity {
            // Evict the least-recently-used entry. Ticks are unique, so the
            // minimum is unique and the victim deterministic.
            if let Some(victim) = map
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| *k)
            {
                map.remove(&victim);
                let ev = self.evictions.fetch_add(1, Ordering::Relaxed) + 1;
                mako_trace::counter("compiler", "kernel_cache.evictions", ev as f64);
            }
        }
        map.insert(
            key,
            CacheEntry {
                kernel: tuned.clone(),
                last_used: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed) + 1),
            },
        );
        tuned
    }

    /// Snapshot every cached entry (unordered — callers that persist the
    /// table sort by their own stable key codes). Only clones; the sweep
    /// never re-runs.
    pub fn snapshot(&self) -> Vec<((EriClass, Precision, DeviceKind), TunedKernel)> {
        self.map
            .read()
            .iter()
            .map(|(k, e)| (*k, e.kernel.clone()))
            .collect()
    }

    /// Seed entries without running the tuner — e.g. from a persisted
    /// table. Existing keys win (the in-process entry is authoritative) and
    /// seeding stops at the capacity bound rather than evicting: a stale
    /// table must never push out entries live traffic is using. Safe
    /// because `tune_class` is deterministic — a seeded entry is identical
    /// to what the sweep would produce.
    pub fn seed(&self, entries: Vec<((EriClass, Precision, DeviceKind), TunedKernel)>) {
        let mut map = self.map.write();
        for (key, kernel) in entries {
            if self.capacity > 0 && map.len() >= self.capacity && !map.contains_key(&key) {
                continue;
            }
            map.entry(key).or_insert_with(|| CacheEntry {
                kernel,
                last_used: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed) + 1),
            });
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read-lock hits served so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Tuning sweeps actually run (one per distinct key, guaranteed).
    pub fn tunes_performed(&self) -> usize {
        self.tunes.load(Ordering::Relaxed)
    }

    /// Redundant sweeps avoided by the write-lock double-check.
    pub fn duplicates_avoided(&self) -> usize {
        self.duplicates_avoided.load(Ordering::Relaxed)
    }

    /// Entries evicted by the LRU bound (0 while unbounded).
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mako_accel::DeviceSpec;
    use mako_kernels::pipeline::FusionStrategy;

    fn class(l: usize, k: usize) -> EriClass {
        EriClass {
            la: l,
            lb: l,
            lc: l,
            ld: l,
            kab: k,
            kcd: k,
        }
    }

    #[test]
    fn tuned_never_slower_than_default() {
        let model = CostModel::new(DeviceSpec::a100());
        for l in 0..=3 {
            let c = class(l, 1);
            let tuned = tune_class(&c, Precision::Fp64, &model);
            let default = simulate_batch_cost(
                &c,
                PROBE_BATCH,
                &PipelineConfig::kernel_mako_fp64(),
                &model,
            );
            assert!(
                tuned.cost_s <= default * (1.0 + 1e-12),
                "l={l}: tuned {} default {default}",
                tuned.cost_s
            );
            assert!(tuned.candidates_evaluated >= 36);
        }
    }

    #[test]
    fn tuner_prefers_swizzled_layout() {
        // With a non-trivial r/pq share, bank conflicts make the linear
        // layout strictly worse, so the winner must be swizzled.
        let model = CostModel::new(DeviceSpec::a100());
        let tuned = tune_class(&class(2, 5), Precision::Fp64, &model);
        assert_eq!(tuned.config.layout, SmemLayout::Swizzled);
    }

    #[test]
    fn tuner_picks_midrange_ilp_for_fused_kernels() {
        // (dd|dd) K={5,5}: fully fused and compute-bound, with a non-MatMul
        // r/pq share large enough that ILP restructuring pays; the tuner
        // must not leave the factor at 1.
        let model = CostModel::new(DeviceSpec::a100());
        let tuned = tune_class(&class(2, 5), Precision::Fp64, &model);
        assert_eq!(tuned.config.fusion, FusionStrategy::FuseAll);
        assert!(
            (2..=16).contains(&tuned.config.ilp),
            "ilp = {}",
            tuned.config.ilp
        );
    }

    #[test]
    fn cache_hits_are_stable() {
        let model = CostModel::new(DeviceSpec::a100());
        let cache = KernelCache::new();
        let c = class(3, 1);
        let a = cache.get_or_tune(&c, Precision::Fp16, &model);
        let b = cache.get_or_tune(&c, Precision::Fp16, &model);
        assert_eq!(cache.len(), 1);
        assert_eq!(a.cost_s, b.cost_s);
        assert_eq!(a.config.ilp, b.config.ilp);
        // Different precision → separate entry.
        cache.get_or_tune(&c, Precision::Fp64, &model);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn tuned_winners_satisfy_eq13_on_every_device() {
        // Regression for the admissibility bug: the sweep used to score
        // budget-busting configs with a finite (merely occupancy-degraded)
        // cost, so a config with S(F) > smem_per_sm/2 could win. Every
        // winner must now leave ≥ 2 threadblocks resident per SM, on every
        // supported architecture, for every class up to (gg|gg) and both
        // contraction regimes.
        for kind in [DeviceKind::V100, DeviceKind::A100_40G, DeviceKind::H100] {
            let model = CostModel::new(DeviceSpec::new(kind));
            let budget = model.device.smem_per_sm / 2;
            for l in 0..=4 {
                for &k in &[1usize, 5] {
                    for precision in [Precision::Fp64, Precision::Fp16] {
                        let c = class(l, k);
                        let tuned = tune_class(&c, precision, &model);
                        let smem = mako_kernels::pipeline::smem_footprint(&c, &tuned.config);
                        assert!(
                            smem <= budget,
                            "{kind:?} l={l} k={k} {precision:?}: winner footprint {smem} \
                             busts the Eq. 13 budget {budget} (cfg {:?})",
                            tuned.config
                        );
                        assert!(tuned.cost_s.is_finite());
                    }
                }
            }
        }
    }

    #[test]
    fn gggg_on_v100_is_where_the_bug_bit() {
        // The concrete failure: (gg|gg) FP64 fully fused at tile 32 has a
        // ~92 KiB footprint — launchable on a V100 (96 KiB/SM), so the old
        // sweep priced it finitely, but it leaves a single resident block.
        // The fixed tuner must never crown it.
        let model = CostModel::new(DeviceSpec::new(DeviceKind::V100));
        let c = class(4, 1);
        let bad = PipelineConfig {
            fusion: FusionStrategy::FuseAll,
            tile: 32,
            ..PipelineConfig::kernel_mako_fp64()
        };
        let budget = model.device.smem_per_sm / 2;
        let smem = mako_kernels::pipeline::smem_footprint(&c, &bad);
        assert!(
            smem > budget && smem <= model.device.smem_per_sm,
            "premise: the bad config is launchable but inadmissible ({smem} bytes)"
        );
        assert!(
            simulate_batch_cost(&c, PROBE_BATCH, &bad, &model).is_finite(),
            "premise: the cost model alone does not reject it"
        );
        let tuned = tune_class(&c, Precision::Fp64, &model);
        assert!(
            mako_kernels::pipeline::smem_footprint(&c, &tuned.config) <= budget,
            "tuner crowned an inadmissible config: {:?}",
            tuned.config
        );
        assert!(tuned.eq13_rejections > 0, "the sweep must have rejected candidates");
    }

    #[test]
    fn concurrent_callers_tune_a_key_exactly_once() {
        // The duplicate-tune race: the old get_or_tune dropped the read
        // lock before tuning, so N concurrent callers ran N sweeps and
        // clobbered each other's insert. The write-lock double-check must
        // collapse that to exactly one sweep.
        let model = CostModel::new(DeviceSpec::a100());
        let cache = KernelCache::new();
        let c = class(2, 5);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| cache.get_or_tune(&c, Precision::Fp64, &model));
            }
        });
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.tunes_performed(),
            1,
            "exactly one sweep may run for one key"
        );
        assert_eq!(
            cache.tunes_performed() + cache.duplicates_avoided() + cache.hits(),
            8,
            "every caller is accounted as tune, avoided duplicate, or hit"
        );
    }

    #[test]
    fn bounded_cache_evicts_lru_and_retains_hot_keys() {
        let model = CostModel::new(DeviceSpec::a100());
        let cache = KernelCache::with_capacity(2);
        let (a, b, c) = (class(0, 1), class(1, 1), class(2, 1));
        cache.get_or_tune(&a, Precision::Fp64, &model);
        cache.get_or_tune(&b, Precision::Fp64, &model);
        // Touch A so B becomes the LRU victim.
        cache.get_or_tune(&a, Precision::Fp64, &model);
        cache.get_or_tune(&c, Precision::Fp64, &model);
        assert_eq!(cache.len(), 2, "bound holds");
        assert_eq!(cache.evictions(), 1);
        // A stayed (hot), B was evicted: re-requesting A is a hit, B re-tunes.
        let tunes_before = cache.tunes_performed();
        cache.get_or_tune(&a, Precision::Fp64, &model);
        assert_eq!(cache.tunes_performed(), tunes_before, "hot key survived");
        cache.get_or_tune(&b, Precision::Fp64, &model);
        assert_eq!(cache.tunes_performed(), tunes_before + 1, "LRU key was evicted");
    }

    #[test]
    fn full_cache_still_dedupes_concurrent_tunes() {
        // Regression: a cache at capacity must keep the write-lock
        // double-check intact — N concurrent callers of one *new* key run
        // exactly one sweep plus exactly one eviction, never N of either.
        let model = CostModel::new(DeviceSpec::a100());
        let cache = KernelCache::with_capacity(1);
        cache.get_or_tune(&class(0, 1), Precision::Fp64, &model);
        assert_eq!(cache.len(), 1, "premise: cache is full");
        let tunes_before = cache.tunes_performed();
        let fresh = class(2, 5);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| cache.get_or_tune(&fresh, Precision::Fp64, &model));
            }
        });
        assert_eq!(cache.len(), 1, "bound holds under concurrency");
        assert_eq!(
            cache.tunes_performed(),
            tunes_before + 1,
            "exactly one sweep for the contested key"
        );
        assert_eq!(cache.evictions(), 1, "exactly one eviction");
    }

    #[test]
    fn seeded_cache_serves_without_retuning() {
        let model = CostModel::new(DeviceSpec::a100());
        let warm = KernelCache::new();
        warm.get_or_tune(&class(1, 1), Precision::Fp64, &model);
        warm.get_or_tune(&class(2, 1), Precision::Fp16, &model);
        let cold = KernelCache::new();
        cold.seed(warm.snapshot());
        assert_eq!(cold.len(), 2);
        let before = cold.tunes_performed();
        let a = cold.get_or_tune(&class(1, 1), Precision::Fp64, &model);
        assert_eq!(cold.tunes_performed(), before, "seeded key must be a hit");
        let b = warm.get_or_tune(&class(1, 1), Precision::Fp64, &model);
        assert_eq!(
            a.cost_s.to_bits(),
            b.cost_s.to_bits(),
            "a seeded entry is bitwise the tuned one"
        );
        // Seeding respects the capacity bound and never evicts.
        let bounded = KernelCache::with_capacity(1);
        bounded.seed(warm.snapshot());
        assert_eq!(bounded.len(), 1);
        assert_eq!(bounded.evictions(), 0);
    }

    #[test]
    fn portability_across_devices() {
        // The same class tunes successfully (possibly to different configs)
        // on every supported architecture — the paper's portability claim.
        let c = class(4, 1);
        let mut costs = Vec::new();
        for kind in [DeviceKind::V100, DeviceKind::A100_40G, DeviceKind::H100] {
            let model = CostModel::new(DeviceSpec::new(kind));
            let tuned = tune_class(&c, Precision::Fp16, &model);
            assert!(tuned.cost_s.is_finite(), "{kind:?}");
            costs.push(tuned.cost_s);
        }
        // Newer devices are faster on the same tuned class.
        assert!(costs[2] < costs[1] && costs[1] < costs[0]);
    }
}
