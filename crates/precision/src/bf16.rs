//! bfloat16 ("brain float") emulated in software.
//!
//! bf16 keeps the full 8-bit exponent of `f32` with a 7-bit mantissa, i.e. it
//! is literally the upper 16 bits of an `f32` with round-to-nearest-even on
//! the truncated half.

/// A bfloat16 value stored as its raw bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Bf16(pub u16);

impl Bf16 {
    /// Positive infinity.
    pub const INFINITY: Bf16 = Bf16(0x7F80);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0x0000);

    /// Convert from `f32` with round-to-nearest-even.
    pub fn from_f32(value: f32) -> Bf16 {
        let bits = value.to_bits();
        if value.is_nan() {
            // Quiet NaN with preserved sign.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        let round_bit = 0x0000_8000u32;
        let lower = bits & 0xFFFF;
        let upper = bits >> 16;
        let mut out = upper;
        if (lower & round_bit) != 0 && ((lower & (round_bit - 1)) != 0 || (upper & 1) != 0) {
            out += 1; // carry into exponent handles overflow to infinity
        }
        Bf16(out as u16)
    }

    /// Convert from `f64` via `f32`.
    pub fn from_f64(value: f64) -> Bf16 {
        Bf16::from_f32(value as f32)
    }

    /// Widen to `f32` exactly.
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Widen to `f64` exactly.
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// Raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Construct from a raw bit pattern.
    pub const fn from_bits(bits: u16) -> Bf16 {
        Bf16(bits)
    }

    /// True for any NaN payload.
    pub fn is_nan(self) -> bool {
        self.to_f32().is_nan()
    }

    /// True for ±∞.
    pub fn is_infinite(self) -> bool {
        self.to_f32().is_infinite()
    }
}

impl From<f32> for Bf16 {
    fn from(v: f32) -> Self {
        Bf16::from_f32(v)
    }
}

impl From<Bf16> for f32 {
    fn from(v: Bf16) -> Self {
        v.to_f32()
    }
}

impl std::ops::Add for Bf16 {
    type Output = Bf16;
    fn add(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl std::ops::Mul for Bf16 {
    type Output = Bf16;
    fn mul(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl std::ops::Neg for Bf16 {
    type Output = Bf16;
    fn neg(self) -> Bf16 {
        Bf16(self.0 ^ 0x8000)
    }
}

impl std::fmt::Display for Bf16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_bit_patterns() {
        assert_eq!(Bf16::from_f32(1.0).to_bits(), 0x3F80);
        assert_eq!(Bf16::from_f32(-1.0).to_bits(), 0xBF80);
        assert_eq!(Bf16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(Bf16::from_f32(f32::INFINITY).to_bits(), 0x7F80);
    }

    #[test]
    fn wide_dynamic_range_survives() {
        // bf16 keeps f32 range: values that overflow f16 survive in bf16.
        for &x in &[1e20f32, 1e-20, 3e38, 1.2e-38] {
            let b = Bf16::from_f32(x);
            assert!(b.to_f32().is_finite() && b.to_f32() != 0.0, "x={x}");
            let rel = ((b.to_f32() - x) / x).abs();
            assert!(rel <= 1.0 / 256.0, "x={x} rel={rel}");
        }
    }

    #[test]
    fn roundtrip_finite_bit_patterns() {
        for bits in 0u16..=0xFFFF {
            let b = Bf16::from_bits(bits);
            if b.is_nan() {
                continue;
            }
            assert_eq!(Bf16::from_f32(b.to_f32()).to_bits(), bits);
        }
    }

    #[test]
    fn ties_round_to_even() {
        // 1 + 2^-8 is halfway between 1.0 and 1 + 2^-7 → stays at 1.0.
        let x = f32::from_bits(0x3F80_8000);
        assert_eq!(Bf16::from_f32(x).to_bits(), 0x3F80);
        // Next representable above the tie rounds up.
        let y = f32::from_bits(0x3F80_8001);
        assert_eq!(Bf16::from_f32(y).to_bits(), 0x3F81);
    }

    #[test]
    fn overflow_carries_to_infinity() {
        // Largest finite bf16 is 0x7F7F; an f32 just below 2^128 with
        // mantissa bits beyond bf16 rounds up to infinity.
        let x = f32::from_bits(0x7F7F_FFFF);
        assert!(Bf16::from_f32(x).is_infinite());
    }

    #[test]
    fn nan_is_preserved() {
        assert!(Bf16::from_f32(f32::NAN).is_nan());
    }

    #[test]
    fn coarser_than_f16_near_one() {
        let x = 1.003f32;
        let e_bf = (Bf16::from_f32(x).to_f32() - x).abs();
        let e_f16 = (crate::F16::from_f32(x).to_f32() - x).abs();
        assert!(e_bf >= e_f16);
    }
}
