//! Per-tile symmetric int8 quantization with bit-exact i32 accumulation.
//!
//! The adaptive-precision density-fitting path (Huang, Shao & Hammond,
//! arXiv — "Accelerating Density Fitting with Adaptive-precision and 8-bit
//! Integer on AI Accelerators") stores tiles of the 3-center tensor as
//! signed 8-bit integers with one FP64 scale per tile:
//!
//! ```text
//! q_i = round(x_i · 127 / max|x|)   ∈ [−127, 127]
//! x̂_i = q_i · scale,   scale = max|x| / 127
//! ```
//!
//! A dot product of two int8 tiles accumulates the raw `q_a · q_b` products
//! in **i32 exactly** (this is what NVIDIA's IMMA/DP4A path does in
//! hardware) and applies the two scales once at the end, in FP64 — the
//! dequantized result then feeds the stage-2 FP64 accumulator
//! (`mako_quant::accumulate::DualStageAccumulator`). Because every step is
//! integer-exact until the final two multiplies, the emulation here is the
//! bit-exact value a real int8 tensor core would produce.
//!
//! The per-element quantization error is bounded by `scale/2 = max|x|/254`,
//! i.e. *absolute* w.r.t. the tile max — which is exactly why the precision
//! picker (`mako_quant::picker`) weighs int8 eligibility by the tile's
//! max-norm rather than elementwise relative error.

/// Largest representable quantized magnitude (symmetric around zero; the
/// −128 code is never produced, matching cuBLASLt's symmetric int8 mode).
pub const INT8_QMAX: i32 = 127;

/// Largest tile (in elements) whose int8 dot product provably cannot
/// overflow an i32 accumulator: every product is at most `127² = 16129`,
/// so `⌊(2³¹−1)/16129⌋ = 133 152` accumulations are always safe.
pub const INT8_MAX_TILE_ELEMS: usize = (i32::MAX / (INT8_QMAX * INT8_QMAX)) as usize;

/// One quantized tile: an i8 payload plus its FP64 dequantization scale.
#[derive(Debug, Clone, PartialEq)]
pub struct Int8Tile {
    /// Dequantization scale: `x̂ = q · scale`. Zero for all-zero (or
    /// degenerate) tiles, in which case the payload is all zeros too.
    pub scale: f64,
    /// Quantized payload, same length as the source slice.
    pub data: Vec<i8>,
}

impl Int8Tile {
    /// Quantize a tile with a symmetric per-tile scale chosen from its
    /// max-norm.
    ///
    /// Degenerate tiles (all zeros, or containing any non-finite value —
    /// which the schedulers upstream route to FP64 before quantization is
    /// ever attempted) deterministically produce the zero tile with
    /// `scale = 0.0` rather than a NaN-poisoned payload.
    ///
    /// # Panics
    /// If the tile exceeds [`INT8_MAX_TILE_ELEMS`] (the i32 overflow-safety
    /// bound for [`Int8Tile::dot`]).
    pub fn quantize(src: &[f64]) -> Int8Tile {
        assert!(
            src.len() <= INT8_MAX_TILE_ELEMS,
            "int8 tile of {} elements exceeds the i32-safe bound {}",
            src.len(),
            INT8_MAX_TILE_ELEMS
        );
        // f64::max ignores NaN operands, so track non-finite values
        // explicitly rather than relying on the fold to propagate them.
        let mut m = 0.0f64;
        let mut all_finite = true;
        for &x in src {
            if !x.is_finite() {
                all_finite = false;
                break;
            }
            m = m.max(x.abs());
        }
        if !all_finite || m == 0.0 {
            return Int8Tile {
                scale: 0.0,
                data: vec![0; src.len()],
            };
        }
        let inv = INT8_QMAX as f64 / m;
        let data = src
            .iter()
            .map(|&x| (x * inv).round().clamp(-(INT8_QMAX as f64), INT8_QMAX as f64) as i8)
            .collect();
        Int8Tile {
            scale: m / INT8_QMAX as f64,
            data,
        }
    }

    /// Widen the payload back to FP64 (`q · scale` per element).
    pub fn dequantize(&self) -> Vec<f64> {
        self.data.iter().map(|&q| q as f64 * self.scale).collect()
    }

    /// Int8 dot product: exact i32 accumulation of the raw products, one
    /// FP64 dequantization at the end — the emulated IMMA inner product.
    ///
    /// # Panics
    /// If the tiles have different lengths.
    pub fn dot(&self, other: &Int8Tile) -> f64 {
        dot_i8(&self.data, &other.data) as f64 * (self.scale * other.scale)
    }
}

/// Exact i32 dot product of two i8 slices — the accumulator an int8 tensor
/// core maintains. Callers guarantee `a.len() ≤` [`INT8_MAX_TILE_ELEMS`]
/// (enforced at quantization time), so the sum cannot overflow.
///
/// # Panics
/// If the slices have different lengths.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "int8 dot length mismatch");
    let mut acc: i32 = 0;
    for (&x, &y) in a.iter().zip(b) {
        acc += x as i32 * y as i32;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_bounded_by_half_scale() {
        let src: Vec<f64> = (0..257)
            .map(|i: i32| (i as f64 * 0.37).sin() * 10f64.powi(i % 7 - 3))
            .collect();
        let t = Int8Tile::quantize(&src);
        let max = src.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        assert!((t.scale - max / 127.0).abs() < 1e-15 * max);
        for (x, xh) in src.iter().zip(t.dequantize()) {
            assert!(
                (x - xh).abs() <= t.scale / 2.0 + 1e-300,
                "x={x} xh={xh} scale={}",
                t.scale
            );
        }
    }

    #[test]
    fn zero_and_degenerate_tiles_quantize_to_zero() {
        for src in [vec![0.0; 5], vec![0.0, f64::NAN, 1.0], vec![f64::INFINITY]] {
            let t = Int8Tile::quantize(&src);
            assert_eq!(t.scale, 0.0);
            assert!(t.data.iter().all(|&q| q == 0));
            assert!(t.dequantize().iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn extremes_saturate_exactly() {
        let t = Int8Tile::quantize(&[1.0, -1.0, 0.5, -0.25]);
        assert_eq!(t.data, vec![127, -127, 64, -32]);
    }

    #[test]
    fn max_size_tile_dot_cannot_overflow() {
        // Worst case: every product is 127·127; the bound guarantees the
        // i32 sum stays below i32::MAX.
        let a = vec![127i8; INT8_MAX_TILE_ELEMS];
        let b = vec![-127i8; INT8_MAX_TILE_ELEMS];
        let s = dot_i8(&a, &a);
        assert_eq!(s as i64, 127 * 127 * INT8_MAX_TILE_ELEMS as i64);
        assert!((s as i64) <= i32::MAX as i64);
        assert_eq!(dot_i8(&a, &b), -s);
    }

    #[test]
    #[should_panic(expected = "exceeds the i32-safe bound")]
    fn oversized_tile_is_rejected() {
        let _ = Int8Tile::quantize(&vec![1.0; INT8_MAX_TILE_ELEMS + 1]);
    }

    #[test]
    fn dot_matches_dequantized_reference() {
        let a: Vec<f64> = (0..64).map(|i| (i as f64 * 0.11).cos() * 3.0).collect();
        let b: Vec<f64> = (0..64).map(|i| (i as f64 * 0.07).sin() * 0.2).collect();
        let qa = Int8Tile::quantize(&a);
        let qb = Int8Tile::quantize(&b);
        let via_int = qa.dot(&qb);
        let via_deq: f64 = qa
            .dequantize()
            .iter()
            .zip(qb.dequantize())
            .map(|(x, y)| x * y)
            .sum();
        // Identical math, different association — int path is exact until
        // the final two multiplies, so the results agree to f64 roundoff.
        assert!((via_int - via_deq).abs() <= 1e-12 * via_deq.abs().max(1.0));
    }
}
