//! Error statistics used by the paper's accuracy tables.
//!
//! Table 2 reports RMSE of quantized (AB|CD) kernels against the FP64
//! reference; Table 3 reports MAE of converged total energies. Both are
//! computed here so every bench and test shares one definition.

/// Root-mean-squared error between a reference slice and an approximation.
///
/// Panics if the slices have different lengths; returns 0.0 for empty input.
pub fn rmse(reference: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(reference.len(), approx.len(), "rmse length mismatch");
    if reference.is_empty() {
        return 0.0;
    }
    let ss: f64 = reference
        .iter()
        .zip(approx)
        .map(|(r, a)| {
            let d = r - a;
            d * d
        })
        .sum();
    (ss / reference.len() as f64).sqrt()
}

/// Mean absolute error.
pub fn mae(reference: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(reference.len(), approx.len(), "mae length mismatch");
    if reference.is_empty() {
        return 0.0;
    }
    let s: f64 = reference.iter().zip(approx).map(|(r, a)| (r - a).abs()).sum();
    s / reference.len() as f64
}

/// Maximum absolute error.
pub fn max_abs_err(reference: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(reference.len(), approx.len(), "max_abs_err length mismatch");
    reference
        .iter()
        .zip(approx)
        .fold(0.0f64, |m, (r, a)| m.max((r - a).abs()))
}

/// Streaming accumulator for error statistics over many blocks, so benches can
/// fold per-quartet errors without materializing every integral.
#[derive(Debug, Clone, Copy, Default)]
pub struct ErrorStats {
    n: u64,
    sum_sq: f64,
    sum_abs: f64,
    max_abs: f64,
}

impl ErrorStats {
    /// Fresh, empty accumulator.
    pub fn new() -> ErrorStats {
        ErrorStats::default()
    }

    /// Fold one (reference, approximation) pair.
    pub fn push(&mut self, reference: f64, approx: f64) {
        let d = (reference - approx).abs();
        self.n += 1;
        self.sum_sq += d * d;
        self.sum_abs += d;
        self.max_abs = self.max_abs.max(d);
    }

    /// Fold a pair of slices.
    pub fn push_slices(&mut self, reference: &[f64], approx: &[f64]) {
        assert_eq!(reference.len(), approx.len());
        for (r, a) in reference.iter().zip(approx) {
            self.push(*r, *a);
        }
    }

    /// Merge another accumulator (for parallel reduction).
    pub fn merge(&mut self, other: &ErrorStats) {
        self.n += other.n;
        self.sum_sq += other.sum_sq;
        self.sum_abs += other.sum_abs;
        self.max_abs = self.max_abs.max(other.max_abs);
    }

    /// Number of samples folded so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Root-mean-squared error of everything folded so far.
    pub fn rmse(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.sum_sq / self.n as f64).sqrt()
        }
    }

    /// Mean absolute error.
    pub fn mae(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum_abs / self.n as f64
        }
    }

    /// Maximum absolute error.
    pub fn max_abs(&self) -> f64 {
        self.max_abs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_of_identical_slices_is_zero() {
        let x = vec![1.0, -2.0, 3.5];
        assert_eq!(rmse(&x, &x), 0.0);
        assert_eq!(mae(&x, &x), 0.0);
        assert_eq!(max_abs_err(&x, &x), 0.0);
    }

    #[test]
    fn hand_computed_values() {
        let r = vec![1.0, 2.0, 3.0, 4.0];
        let a = vec![1.0, 2.0, 3.0, 2.0]; // one error of 2
        assert!((rmse(&r, &a) - 1.0).abs() < 1e-15); // sqrt(4/4)
        assert!((mae(&r, &a) - 0.5).abs() < 1e-15);
        assert_eq!(max_abs_err(&r, &a), 2.0);
    }

    #[test]
    fn streaming_matches_batch() {
        let r: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let a: Vec<f64> = r.iter().map(|x| x + 1e-3 * x.cos()).collect();
        let mut s = ErrorStats::new();
        s.push_slices(&r, &a);
        assert!((s.rmse() - rmse(&r, &a)).abs() < 1e-15);
        assert!((s.mae() - mae(&r, &a)).abs() < 1e-15);
        assert!((s.max_abs() - max_abs_err(&r, &a)).abs() < 1e-15);
        assert_eq!(s.count(), 100);
    }

    #[test]
    fn merge_equals_single_pass() {
        let r: Vec<f64> = (0..64).map(|i| i as f64 * 0.1).collect();
        let a: Vec<f64> = r.iter().map(|x| x + 0.01).collect();
        let mut whole = ErrorStats::new();
        whole.push_slices(&r, &a);
        let mut left = ErrorStats::new();
        let mut right = ErrorStats::new();
        left.push_slices(&r[..32], &a[..32]);
        right.push_slices(&r[32..], &a[32..]);
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.rmse() - whole.rmse()).abs() < 1e-15);
    }

    #[test]
    fn empty_is_zero() {
        let s = ErrorStats::new();
        assert_eq!(s.rmse(), 0.0);
        assert_eq!(s.mae(), 0.0);
        assert_eq!(rmse(&[], &[]), 0.0);
    }
}
