//! IEEE 754 binary16 ("half precision") emulated in software.
//!
//! Conversions implement round-to-nearest-even exactly, including subnormal
//! results and overflow to infinity, matching what an NVIDIA tensor core does
//! when an FP32 value is stored into an FP16 operand register.

/// A half-precision floating point number stored as its raw bit pattern.
///
/// Arithmetic is performed by widening to `f32` (exact: every f16 is exactly
/// representable in f32) and rounding the result back — the same semantics as
/// a hardware FP16 fused pipeline without FP32 accumulation. Tensor-core-style
/// FP32 accumulation is modeled by the GEMM kernels, which keep the partial
/// sums in `f32` and only round the *inputs*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct F16(pub u16);

const EXP_MASK: u16 = 0x7C00;
const MAN_MASK: u16 = 0x03FF;

impl F16 {
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// Largest finite value, 65504.
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest positive normal value, 2^-14.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value, 2^-24.
    pub const MIN_POSITIVE_SUBNORMAL: F16 = F16(0x0001);
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);

    /// Convert from `f32` with IEEE round-to-nearest-even.
    pub fn from_f32(value: f32) -> F16 {
        F16(f32_to_f16_bits(value))
    }

    /// Convert from `f64` (rounds twice: f64→f32→f16; double rounding error
    /// is below the f16 ulp for all inputs of interest and matches how data
    /// reaches tensor cores through an FP32 staging buffer).
    pub fn from_f64(value: f64) -> F16 {
        F16(f32_to_f16_bits(value as f32))
    }

    /// Widen to `f32` exactly.
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// Widen to `f64` exactly.
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// Raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Construct from a raw bit pattern.
    pub const fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }

    /// True for ±∞.
    pub const fn is_infinite(self) -> bool {
        self.0 & 0x7FFF == 0x7C00
    }

    /// True for any NaN payload.
    pub const fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// True for zero, subnormal, or normal values.
    pub const fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// True for nonzero values with a zero exponent field.
    pub const fn is_subnormal(self) -> bool {
        (self.0 & EXP_MASK) == 0 && (self.0 & MAN_MASK) != 0
    }
}

impl From<f32> for F16 {
    fn from(v: f32) -> Self {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> Self {
        v.to_f32()
    }
}

impl From<F16> for f64 {
    fn from(v: F16) -> Self {
        v.to_f64()
    }
}

impl std::ops::Add for F16 {
    type Output = F16;
    fn add(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl std::ops::Sub for F16 {
    type Output = F16;
    fn sub(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl std::ops::Mul for F16 {
    type Output = F16;
    fn mul(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl std::ops::Neg for F16 {
    type Output = F16;
    fn neg(self) -> F16 {
        F16(self.0 ^ 0x8000)
    }
}

impl std::fmt::Display for F16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Convert an `f32` bit pattern to the nearest `f16` bit pattern
/// (round-to-nearest, ties-to-even).
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let x = value.to_bits();
    let sign = ((x >> 16) & 0x8000) as u16;
    let abs = x & 0x7FFF_FFFF;

    // NaN / infinity.
    if abs >= 0x7F80_0000 {
        return if abs > 0x7F80_0000 {
            // Quiet NaN, preserving the sign; force a nonzero payload.
            sign | 0x7E00
        } else {
            sign | 0x7C00
        };
    }

    let unbiased_exp = ((abs >> 23) as i32) - 127;
    let man = abs & 0x007F_FFFF;

    if unbiased_exp >= 16 {
        // Magnitude ≥ 2^16: rounds to infinity (max finite f16 is 65504).
        return sign | 0x7C00;
    }

    if unbiased_exp >= -14 {
        // Normal range. Keep the top 10 mantissa bits, round on bit 12.
        let half_exp = ((unbiased_exp + 15) as u16) << 10;
        let half_man = (man >> 13) as u16;
        let mut out = sign | half_exp | half_man;
        let round_bit = 0x0000_1000u32;
        if (man & round_bit) != 0 && ((man & (round_bit - 1)) != 0 || (half_man & 1) != 0) {
            // Carry may propagate into the exponent; for 65504 < |x| < 65536
            // this correctly produces infinity.
            out += 1;
        }
        return out;
    }

    if unbiased_exp < -25 {
        // Below half of the smallest subnormal quantum: flush to signed zero.
        return sign;
    }

    // Subnormal result: value = (implicit1.man) * 2^unbiased_exp, quantum 2^-24.
    let man = man | 0x0080_0000;
    let shift = (-1 - unbiased_exp) as u32; // in 14..=24
    let half_man = (man >> shift) as u16;
    let round_bit = 1u32 << (shift - 1);
    let mut out = sign | half_man;
    if (man & round_bit) != 0 && ((man & (round_bit - 1)) != 0 || (half_man & 1) != 0) {
        out += 1; // may promote the smallest normal, which is correct
    }
    out
}

/// Batched `round(x · scale)` through f16 storage, appended to `dst`:
/// each element is `F16::from_f64(x * scale)` widened back to `f64`.
///
/// On x86-64 hosts with F16C + AVX this uses the hardware converter
/// (`VCVTPD2PS` → `VCVTPS2PH` round-to-nearest-even → widen back), which
/// implements the same IEEE conversion as [`f32_to_f16_bits`]: identical
/// bits for every finite, subnormal, and infinite input. NaNs are the one
/// class where the instructions differ from the software converter (hardware
/// propagates mantissa payload bits, software canonicalizes to `0x7E00`), so
/// the SIMD body detects NaN lanes *after* the scale multiply and reroutes
/// that group through the scalar expression — the output is bit-identical to
/// the `MAKO_KERNEL=generic` software path for **every** input, NaN and Inf
/// included. [`tests::hardware_path_matches_software_bitwise`] pins the
/// finite/Inf equivalence exhaustively over the f16 range and
/// [`tests::nan_inf_payloads_match_scalar_bitwise`] pins the NaN/Inf edge
/// cases at every lane offset.
pub fn round_scaled_extend_f16(scale: f64, src: &[f64], dst: &mut Vec<f64>) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("f16c") && std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: the required target features were just detected.
        unsafe { round_scaled_extend_f16c(scale, src, dst) };
        return;
    }
    dst.extend(
        src.iter()
            .map(|&x| f16_bits_to_f32(f32_to_f16_bits((x * scale) as f32)) as f64),
    );
}

/// F16C body of [`round_scaled_extend_f16`]: 4 lanes per iteration, scalar
/// software tail. Every step is a correctly-rounded IEEE conversion, so the
/// lanes match the scalar path bit for bit — except NaN payloads, which
/// `VCVTPS2PH` propagates while [`f32_to_f16_bits`] canonicalizes. Any
/// 4-lane group whose scaled values contain a NaN is therefore rerouted
/// through the scalar expression, keeping hardware and generic runs bitwise
/// identical on every input.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx,f16c")]
unsafe fn round_scaled_extend_f16c(scale: f64, src: &[f64], dst: &mut Vec<f64>) {
    use std::arch::x86_64::*;
    let n = src.len();
    dst.reserve(n);
    let s = _mm256_set1_pd(scale);
    let mut i = 0usize;
    while i + 4 <= n {
        // SAFETY: `i + 4 <= n` bounds the load; `reserve(n)` above bounds
        // the store; both intrinsics are unaligned-tolerant.
        unsafe {
            let x = _mm256_loadu_pd(src.as_ptr().add(i));
            let scaled = _mm256_mul_pd(x, s); // one f64 multiply, as scalar
            // `x != x` is true only for NaN lanes; a NaN can appear from a
            // NaN input, a NaN scale, or 0 × ∞ — all caught post-multiply.
            let unord = _mm256_cmp_pd::<_CMP_UNORD_Q>(scaled, scaled);
            if _mm256_movemask_pd(unord) != 0 {
                for &x in &src[i..i + 4] {
                    dst.push(f16_bits_to_f32(f32_to_f16_bits((x * scale) as f32)) as f64);
                }
                i += 4;
                continue;
            }
            let narrow = _mm256_cvtpd_ps(scaled); // f64→f32 RN (== `as f32`)
            let half = _mm_cvtps_ph::<_MM_FROUND_TO_NEAREST_INT>(narrow);
            let back = _mm_cvtph_ps(half); // exact widening
            let wide = _mm256_cvtps_pd(back); // exact widening
            let len = dst.len();
            _mm256_storeu_pd(dst.as_mut_ptr().add(len), wide);
            dst.set_len(len + 4);
        }
        i += 4;
    }
    for &x in &src[i..] {
        dst.push(f16_bits_to_f32(f32_to_f16_bits((x * scale) as f32)) as f64);
    }
}

/// Convert an `f16` bit pattern to `f32` exactly.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = (h >> 10) & 0x1F;
    let man = (h & MAN_MASK) as u32;
    if exp == 0 {
        if man == 0 {
            return f32::from_bits(sign);
        }
        // Subnormal: man * 2^-24.
        let v = man as f32 * f32::from_bits(0x3380_0000);
        return f32::from_bits(v.to_bits() | sign);
    }
    if exp == 0x1F {
        return f32::from_bits(sign | 0x7F80_0000 | (man << 13));
    }
    f32::from_bits(sign | ((exp as u32 + 112) << 23) | (man << 13))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048i32 {
            let f = i as f32;
            assert_eq!(F16::from_f32(f).to_f32(), f, "integer {i}");
        }
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(F16::from_f32(1.0).to_bits(), 0x3C00);
        assert_eq!(F16::from_f32(-2.0).to_bits(), 0xC000);
        assert_eq!(F16::from_f32(0.5).to_bits(), 0x3800);
        assert_eq!(F16::from_f32(65504.0).to_bits(), 0x7BFF);
        assert_eq!(F16::from_f32(f32::INFINITY).to_bits(), 0x7C00);
        assert_eq!(F16::from_f32(-f32::INFINITY).to_bits(), 0xFC00);
        assert_eq!(F16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
        // 2^-24 = smallest subnormal
        assert_eq!(F16::from_f32(5.9604645e-8).to_bits(), 0x0001);
        // 2^-14 = smallest normal
        assert_eq!(F16::from_f32(6.103_515_6e-5).to_bits(), 0x0400);
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        // 65520 is exactly halfway between 65504 and 65536 → ties to even →
        // rounds up to "65536" which is infinity.
        assert!(F16::from_f32(65520.0).is_infinite());
        // Just below the halfway point stays at MAX.
        assert_eq!(F16::from_f32(65519.0).to_bits(), 0x7BFF);
        assert!(F16::from_f32(1e9).is_infinite());
    }

    #[test]
    fn underflow_flushes_to_zero() {
        // Half of the smallest subnormal is a tie → even → zero.
        assert_eq!(F16::from_f32(2.9802322e-8).to_bits(), 0x0000);
        // Slightly above the tie rounds to the smallest subnormal.
        assert_eq!(F16::from_f32(3.0e-8).to_bits(), 0x0001);
        assert_eq!(F16::from_f32(1e-20).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(-1e-20).to_bits(), 0x8000);
    }

    #[test]
    fn ties_round_to_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16 (1+2^-10):
        // ties to even keeps 1.0.
        assert_eq!(F16::from_f32(1.0 + 0.00048828125).to_bits(), 0x3C00);
        // (1 + 2^-10) + 2^-11 is halfway and the lower neighbor is odd →
        // rounds up to 1 + 2^-9.
        let x = 1.0 + 0.0009765625 + 0.00048828125;
        assert_eq!(F16::from_f32(x).to_bits(), 0x3C02);
    }

    #[test]
    fn nan_propagates() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn roundtrip_all_finite_f16_bit_patterns() {
        // Every finite f16 is exactly representable in f32 and must survive
        // the round trip bit-for-bit.
        for bits in 0u16..=0xFFFF {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(F16::from_f32(h.to_f32()).is_nan());
                continue;
            }
            let back = F16::from_f32(h.to_f32());
            assert_eq!(back.to_bits(), bits, "bits {bits:#06x}");
        }
    }

    #[test]
    fn arithmetic_via_f32() {
        let a = F16::from_f32(1.5);
        let b = F16::from_f32(2.25);
        assert_eq!((a + b).to_f32(), 3.75);
        assert_eq!((a * b).to_f32(), 3.375);
        assert_eq!((a - b).to_f32(), -0.75);
        assert_eq!((-a).to_f32(), -1.5);
    }

    /// The batched converter (hardware F16C path where the host has it) must
    /// match the scalar software path bit for bit on every non-NaN input:
    /// all 2^16 exact f16 values, the rounding neighborhoods around each
    /// (±ε perturbations exercising the ties-to-even logic), the
    /// overflow/underflow boundaries, and a dense LCG sweep of f32 patterns.
    #[test]
    fn hardware_path_matches_software_bitwise() {
        let mut inputs: Vec<f64> = Vec::new();
        for bits in 0u16..=0xFFFF {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                continue;
            }
            let v = h.to_f64();
            inputs.push(v);
            inputs.push(v * (1.0 + 3e-4)); // just above: round-down cases
            inputs.push(v * (1.0 - 3e-4)); // just below: round-up cases
            inputs.push(v * (1.0 + 2.44140625e-4)); // exact half-ulp: ties
        }
        for &b in &[65503.9, 65504.0, 65519.0, 65520.0, 65536.0, 1e30, -1e30] {
            inputs.push(b);
        }
        inputs.push(f64::INFINITY);
        inputs.push(f64::NEG_INFINITY);
        // Dense pseudo-random f32 patterns (finite only).
        let mut s = 0x9E3779B97F4A7C15u64;
        for _ in 0..200_000 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let f = f32::from_bits((s >> 32) as u32);
            if f.is_finite() {
                inputs.push(f as f64);
            }
        }

        for &scale in &[1.0f64, 0.125, 3.0, 1.0e-3, 7.5e2] {
            let mut batched = Vec::new();
            round_scaled_extend_f16(scale, &inputs, &mut batched);
            assert_eq!(batched.len(), inputs.len());
            for (&x, &got) in inputs.iter().zip(&batched) {
                let want = f16_bits_to_f32(f32_to_f16_bits((x * scale) as f32)) as f64;
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "x={x:e} scale={scale}: batched {got:e} vs scalar {want:e}"
                );
            }
        }
    }

    /// NaN/Inf edge cases must be bit-identical between the batched
    /// converter (F16C where available) and the scalar software path:
    /// multiple NaN payloads of both signs, ±∞, NaN-producing products
    /// (0 × ∞, ∞ × 0-scale, NaN scale), each planted at every offset within
    /// a 4-lane SIMD group and in the scalar tail.
    #[test]
    fn nan_inf_payloads_match_scalar_bitwise() {
        let specials: Vec<f64> = vec![
            f64::NAN,
            -f64::NAN,
            f64::from_bits(0x7FF0_0000_0000_0001), // signaling-ish payload
            f64::from_bits(0x7FF8_DEAD_BEEF_CAFE), // quiet, nonzero payload
            f64::from_bits(0xFFF8_0000_0000_0123), // negative, small payload
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            -0.0,
            65504.0,
            1.0e-300, // flushes to zero through f32
        ];
        for &special in &specials {
            for offset in 0..9 {
                // 9-long input: the special lands at `offset`, covering every
                // lane of both SIMD groups plus the scalar tail position.
                let mut input: Vec<f64> = (0..9).map(|k| 1.5 + k as f64).collect();
                input[offset] = special;
                for &scale in &[1.0f64, -0.25, 0.0, f64::INFINITY, f64::NAN] {
                    let mut batched = Vec::new();
                    round_scaled_extend_f16(scale, &input, &mut batched);
                    assert_eq!(batched.len(), input.len());
                    for (&x, &got) in input.iter().zip(&batched) {
                        let want =
                            f16_bits_to_f32(f32_to_f16_bits((x * scale) as f32)) as f64;
                        assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "x={x:e} ({:#018x}) scale={scale}: batched {:#018x} vs scalar {:#018x}",
                            x.to_bits(),
                            got.to_bits(),
                            want.to_bits()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rounding_error_bounded_by_ulp() {
        // Relative error of normal-range rounding is at most 2^-11.
        let mut x = 1.000123f32;
        for _ in 0..200 {
            let r = F16::from_f32(x).to_f32();
            let rel = ((r - x) / x).abs();
            assert!(rel <= 1.0 / 2048.0, "x={x} r={r} rel={rel}");
            x *= 1.37;
            if x > 60000.0 {
                break;
            }
        }
    }
}
