//! Group quantization primitives for QuantMako's *Fine-Grained Quantization*
//! (paper §3.2.1).
//!
//! The ERI basis-transformation operands span wide dynamic ranges across
//! angular-momentum classes. Scaling all inputs by a single global factor
//! makes the quantization sensitive to outliers; QuantMako instead groups the
//! data (by angular-momentum class, i.e. per ERI kernel) and applies a
//! dedicated scale per group so each block's magnitude range is aligned with
//! the FP16 representable range.
//!
//! A [`QuantizedBlock`] stores the FP16 payload together with its scale, and
//! dequantization multiplies by the inverse scale — the first stage of the
//! paper's *Dual-Stage Accumulation* (FP32 accumulate + dequantize, then FP64
//! Fock accumulate).

use crate::{F16, Precision};

/// How scale factors are assigned to data blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalePolicy {
    /// One scale for the whole tensor (the naive strategy the paper warns
    /// about — kept for the ablation benches).
    Global,
    /// One scale per group (per angular-momentum class in Mako).
    PerGroup,
    /// No scaling at all: raw cast to the target precision (baseline FP16 in
    /// Table 2).
    Unscaled,
}

/// A block of values quantized to a reduced-precision format with an
/// associated power-of-two-free scale factor.
#[derive(Debug, Clone)]
pub struct QuantizedBlock {
    /// The quantized payload, stored as f16 bit patterns.
    pub data: Vec<F16>,
    /// Multiplying the original data by `scale` produced the payload;
    /// dequantization divides by it.
    pub scale: f64,
    /// Format the payload models.
    pub precision: Precision,
}

impl QuantizedBlock {
    /// Number of elements in the block.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the block holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dequantize element `i` back to f64 (second half of stage-one
    /// accumulation).
    pub fn dequant(&self, i: usize) -> f64 {
        self.data[i].to_f64() / self.scale
    }

    /// Dequantize the whole block.
    pub fn dequant_all(&self) -> Vec<f64> {
        self.data.iter().map(|v| v.to_f64() / self.scale).collect()
    }
}

/// Quantizer implementing the scale-selection policies.
///
/// `headroom` divides the representable bound when choosing the scale so that
/// FP32 accumulation of many products cannot overflow the eventual FP16
/// restore; Mako uses the square root of the format maximum as the alignment
/// target for multiplicative pipelines (two scaled operands multiply to at
/// most `target²`).
#[derive(Debug, Clone, Copy)]
pub struct GroupQuantizer {
    /// Scale policy in effect.
    pub policy: ScalePolicy,
    /// Target maximum magnitude after scaling. For FP16 GEMM operands this is
    /// `sqrt(65504) / headroom` so products stay within FP16-accumulable
    /// range even before FP32 accumulation.
    pub target_max: f64,
}

impl GroupQuantizer {
    /// Quantizer for FP16 GEMM operands with the paper's alignment strategy.
    pub fn fp16_gemm(policy: ScalePolicy) -> GroupQuantizer {
        // Two operands each scaled to at most sqrt(max)/4 keep every product
        // ≤ max/16: safe against overflow inside the MMA before the FP32
        // accumulator takes over.
        GroupQuantizer {
            policy,
            target_max: (Precision::Fp16.max_finite()).sqrt() / 4.0,
        }
    }

    /// Choose the scale for a block of values under the current policy.
    ///
    /// `global_max` is the maximum magnitude across *all* groups (used by
    /// [`ScalePolicy::Global`]).
    pub fn scale_for(&self, block: &[f64], global_max: f64) -> f64 {
        let local_max = max_abs(block);
        let reference = match self.policy {
            ScalePolicy::Global => global_max,
            ScalePolicy::PerGroup => local_max,
            ScalePolicy::Unscaled => return 1.0,
        };
        if reference <= 0.0 || !reference.is_finite() {
            1.0
        } else {
            self.target_max / reference
        }
    }

    /// Quantize a block with the scale chosen by [`Self::scale_for`].
    pub fn quantize(&self, block: &[f64], global_max: f64) -> QuantizedBlock {
        let scale = self.scale_for(block, global_max);
        let data = block.iter().map(|&x| F16::from_f64(x * scale)).collect();
        QuantizedBlock {
            data,
            scale,
            precision: Precision::Fp16,
        }
    }

    /// Quantize, immediately dequantize, and return the reconstructed values.
    /// This is what a value "experiences" passing through the quantized GEMM
    /// operand path; used heavily by the error benches.
    pub fn roundtrip(&self, block: &[f64], global_max: f64) -> Vec<f64> {
        self.quantize(block, global_max).dequant_all()
    }
}

/// Maximum absolute value of a slice (0.0 for an empty slice).
pub fn max_abs(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometric_block(start: f64, ratio: f64, n: usize) -> Vec<f64> {
        let mut v = Vec::with_capacity(n);
        let mut x = start;
        for i in 0..n {
            v.push(if i % 2 == 0 { x } else { -x });
            x *= ratio;
        }
        v
    }

    #[test]
    fn per_group_beats_global_on_wide_range() {
        // Two groups with very different magnitudes: global scaling crushes
        // the small group into FP16 noise, per-group scaling preserves it.
        let big = geometric_block(1.0e3, 1.01, 64);
        let small = geometric_block(1.0e-5, 1.01, 64);
        let gmax = max_abs(&big).max(max_abs(&small));

        let global = GroupQuantizer::fp16_gemm(ScalePolicy::Global);
        let grouped = GroupQuantizer::fp16_gemm(ScalePolicy::PerGroup);

        let err_global = crate::rmse(&small, &global.roundtrip(&small, gmax));
        let err_grouped = crate::rmse(&small, &grouped.roundtrip(&small, gmax));
        assert!(
            err_grouped < err_global / 10.0,
            "grouped {err_grouped} vs global {err_global}"
        );
    }

    #[test]
    fn dequant_inverts_scale() {
        let q = GroupQuantizer::fp16_gemm(ScalePolicy::PerGroup);
        let block = vec![0.125, -0.25, 0.5];
        let qb = q.quantize(&block, 0.5);
        for (i, &x) in block.iter().enumerate() {
            let rel = ((qb.dequant(i) - x) / x).abs();
            assert!(rel < 1e-3, "i={i} rel={rel}");
        }
    }

    #[test]
    fn unscaled_policy_is_raw_cast() {
        let q = GroupQuantizer::fp16_gemm(ScalePolicy::Unscaled);
        let block = vec![1.0, 2.5, -3.25];
        let qb = q.quantize(&block, 100.0);
        assert_eq!(qb.scale, 1.0);
        for (i, &x) in block.iter().enumerate() {
            assert_eq!(qb.dequant(i), x);
        }
    }

    #[test]
    fn unscaled_underflows_tiny_values_where_grouped_does_not() {
        let tiny = vec![1e-9, -3e-9, 7e-10];
        let raw = GroupQuantizer::fp16_gemm(ScalePolicy::Unscaled).roundtrip(&tiny, 1e-9);
        assert!(raw.iter().all(|&x| x == 0.0), "fp16 flushes 1e-9 to zero");
        let grouped = GroupQuantizer::fp16_gemm(ScalePolicy::PerGroup).roundtrip(&tiny, 1e-9);
        for (a, b) in tiny.iter().zip(&grouped) {
            assert!(((a - b) / a).abs() < 1e-3);
        }
    }

    #[test]
    fn empty_and_zero_blocks() {
        let q = GroupQuantizer::fp16_gemm(ScalePolicy::PerGroup);
        assert!(q.quantize(&[], 0.0).is_empty());
        let zeros = vec![0.0; 8];
        let qb = q.quantize(&zeros, 0.0);
        assert_eq!(qb.scale, 1.0);
        assert!(qb.dequant_all().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn scale_keeps_products_in_range() {
        let q = GroupQuantizer::fp16_gemm(ScalePolicy::PerGroup);
        let block = geometric_block(1.0e6, 1.1, 32);
        let qb = q.quantize(&block, max_abs(&block));
        let m = qb
            .data
            .iter()
            .fold(0.0f32, |acc, v| acc.max(v.to_f32().abs()));
        // Scaled magnitudes must be ≤ target so any pairwise product fits
        // comfortably in FP16/FP32 range.
        assert!((m as f64) <= q.target_max * 1.0001);
        assert!(m as f64 * m as f64 <= Precision::Fp16.max_finite());
    }
}
