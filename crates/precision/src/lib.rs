//! # mako-precision
//!
//! Software-emulated reduced-precision arithmetic for the Mako quantum
//! chemistry system.
//!
//! The Mako paper (SC '25) executes the basis-transformation GEMMs of the
//! electron-repulsion-integral (ERI) pipeline on NVIDIA tensor cores in FP16 /
//! BF16 / TF32, accumulating in FP32 (QuantMako, §3.2). No tensor-core
//! hardware is available to this reproduction, so this crate provides
//! **bit-exact software emulation** of those formats: conversions use IEEE
//! round-to-nearest-even including subnormals and overflow-to-infinity, so the
//! quantization error measured by the benchmark harness is the *actual*
//! reduced-precision arithmetic error, not a noise model.
//!
//! The crate also provides the group-quantization primitives of QuantMako's
//! *Fine-Grained Quantization*: per-angular-momentum-group scale factors that
//! align each data block's dynamic range with the FP16 representable range,
//! and the error statistics (RMSE / MAE / max) used by Table 2 and Table 3 of
//! the paper.

pub mod bf16;
pub mod f16;
pub mod int8;
pub mod quantize;
pub mod stats;
pub mod tf32;

pub use bf16::Bf16;
pub use f16::F16;
pub use int8::{dot_i8, Int8Tile, INT8_MAX_TILE_ELEMS, INT8_QMAX};
pub use quantize::{GroupQuantizer, QuantizedBlock, ScalePolicy};
pub use stats::{mae, max_abs_err, rmse, ErrorStats};
pub use tf32::{tf32_round, Tf32};

/// The numeric formats supported by the (simulated) tensor-core units.
///
/// Mirrors the rows of Table 1 in the paper: each format has a distinct peak
/// throughput on the device model in `mako-accel`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Precision {
    /// IEEE binary64. The scientific reference precision.
    Fp64,
    /// IEEE binary32.
    Fp32,
    /// NVIDIA TF32: FP32 range (8-bit exponent) with a 10-bit mantissa.
    Tf32,
    /// bfloat16: FP32 range with a 7-bit mantissa.
    Bf16,
    /// IEEE binary16.
    Fp16,
}

impl Precision {
    /// Bytes occupied by one element when stored in this format.
    ///
    /// TF32 is stored in 32-bit containers on real hardware, and we model the
    /// same footprint.
    pub const fn size_bytes(self) -> usize {
        match self {
            Precision::Fp64 => 8,
            Precision::Fp32 | Precision::Tf32 => 4,
            Precision::Bf16 | Precision::Fp16 => 2,
        }
    }

    /// Number of explicit mantissa bits carried by the format.
    pub const fn mantissa_bits(self) -> u32 {
        match self {
            Precision::Fp64 => 52,
            Precision::Fp32 => 23,
            Precision::Tf32 => 10,
            Precision::Fp16 => 10,
            Precision::Bf16 => 7,
        }
    }

    /// Largest finite representable magnitude.
    pub fn max_finite(self) -> f64 {
        match self {
            Precision::Fp64 => f64::MAX,
            Precision::Fp32 => f32::MAX as f64,
            Precision::Tf32 => f32::MAX as f64,
            Precision::Bf16 => 3.3895313892515355e38,
            Precision::Fp16 => 65504.0,
        }
    }

    /// Round a double-precision value through this format and back.
    ///
    /// This is the single code path every simulated kernel uses to model
    /// storage in a low-precision operand: `Fp64` is the identity, everything
    /// else loses exactly the bits the real format would lose.
    pub fn round(self, x: f64) -> f64 {
        match self {
            Precision::Fp64 => x,
            Precision::Fp32 => x as f32 as f64,
            Precision::Tf32 => tf32_round(x as f32) as f64,
            Precision::Bf16 => Bf16::from_f32(x as f32).to_f32() as f64,
            Precision::Fp16 => F16::from_f32(x as f32).to_f32() as f64,
        }
    }

    /// Batched [`Precision::round`] of `x · scale`, appended to `dst` — the
    /// hot "load a pre-scaled operand block into tensor-core registers" step
    /// of the quartet pipeline.
    ///
    /// Semantically identical to
    /// `dst.extend(src.iter().map(|&x| self.round(x * scale)))`; the `Fp16`
    /// case additionally takes a hardware fast path (F16C `VCVTPS2PH`, where
    /// the host has it) that is bit-identical to the software converter for
    /// every input, NaN and Inf included (see
    /// [`f16::round_scaled_extend_f16`]).
    pub fn round_scaled_extend(self, scale: f64, src: &[f64], dst: &mut Vec<f64>) {
        match self {
            Precision::Fp16 => f16::round_scaled_extend_f16(scale, src, dst),
            _ => dst.extend(src.iter().map(|&x| self.round(x * scale))),
        }
    }

    /// Short lowercase name used in benchmark output rows.
    pub const fn name(self) -> &'static str {
        match self {
            Precision::Fp64 => "fp64",
            Precision::Fp32 => "fp32",
            Precision::Tf32 => "tf32",
            Precision::Bf16 => "bf16",
            Precision::Fp16 => "fp16",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Storage format of one tile in the adaptive-precision RI-J contraction
/// path: the tensor-core tiers of [`Precision`] plus the per-tile-scaled
/// [`int8::Int8Tile`] mode.
///
/// Variants are declared in **walk order** — cheapest (highest simulated
/// tensor throughput) first — which is the order the error-budget picker in
/// `mako-quant::picker` tries them. Note this is *not* an accuracy ordering
/// (fp16 rounds more finely than bf16 but has less range; tf32 has fp16's
/// mantissa with fp32's range), which is exactly why each tier earns a
/// distinct niche under the picker's error-and-range test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TilePrecision {
    /// Per-tile symmetric int8 with an FP64 scale, i32 accumulation.
    Int8,
    /// IEEE binary16, FP32 accumulation.
    Fp16,
    /// bfloat16, FP32 accumulation.
    Bf16,
    /// NVIDIA TF32, FP32 accumulation.
    Tf32,
    /// Full double precision (no quantization).
    Fp64,
}

impl TilePrecision {
    /// All tiers in picker walk order: cheapest first, [`TilePrecision::Fp64`]
    /// as the unconditional fallback.
    pub const ALL: [TilePrecision; 5] = [
        TilePrecision::Int8,
        TilePrecision::Fp16,
        TilePrecision::Bf16,
        TilePrecision::Tf32,
        TilePrecision::Fp64,
    ];

    /// Worst-case **relative** representation error factor used by the
    /// error-budget picker: rounding *both* operands of a product through
    /// this format multiplies the result by at most `(1 ± factor)`.
    ///
    /// Float tiers are `2 · 2^-(mantissa_bits+1)` (two half-ulp roundings);
    /// int8 is `1/127` — but note the int8 tile error is absolute w.r.t. the
    /// tile max-norm, so the picker pairs this factor with a max-norm-based
    /// weight rather than an elementwise one (see `mako-quant::picker`).
    pub fn err_factor(self) -> f64 {
        match self {
            TilePrecision::Int8 => 1.0 / 127.0,
            TilePrecision::Fp16 => (2.0f64).powi(-10),
            TilePrecision::Bf16 => (2.0f64).powi(-7),
            TilePrecision::Tf32 => (2.0f64).powi(-10),
            TilePrecision::Fp64 => (2.0f64).powi(-52),
        }
    }

    /// Largest magnitude the stored operand can represent. Int8 adapts its
    /// scale to the tile, so (like FP64) it never overflows.
    pub fn max_finite(self) -> f64 {
        match self {
            TilePrecision::Int8 | TilePrecision::Fp64 => f64::MAX,
            TilePrecision::Fp16 => Precision::Fp16.max_finite(),
            TilePrecision::Bf16 => Precision::Bf16.max_finite(),
            TilePrecision::Tf32 => Precision::Tf32.max_finite(),
        }
    }

    /// Bytes per stored element (int8 amortizes its FP64 scale over the
    /// tile, so the per-element cost is the 1-byte payload).
    pub const fn storage_bytes(self) -> usize {
        match self {
            TilePrecision::Int8 => 1,
            TilePrecision::Fp16 | TilePrecision::Bf16 => 2,
            TilePrecision::Tf32 => 4,
            TilePrecision::Fp64 => 8,
        }
    }

    /// Position in the picker walk order (0 = cheapest = int8). A larger
    /// rank never has lower accuracy *eligibility*: tightening the error
    /// budget can only move the picked rank upward.
    pub fn rank(self) -> usize {
        match self {
            TilePrecision::Int8 => 0,
            TilePrecision::Fp16 => 1,
            TilePrecision::Bf16 => 2,
            TilePrecision::Tf32 => 3,
            TilePrecision::Fp64 => 4,
        }
    }

    /// The corresponding tensor-core [`Precision`], if this tier is one of
    /// the float formats ([`TilePrecision::Int8`] has no float counterpart).
    pub const fn as_precision(self) -> Option<Precision> {
        match self {
            TilePrecision::Int8 => None,
            TilePrecision::Fp16 => Some(Precision::Fp16),
            TilePrecision::Bf16 => Some(Precision::Bf16),
            TilePrecision::Tf32 => Some(Precision::Tf32),
            TilePrecision::Fp64 => Some(Precision::Fp64),
        }
    }

    /// Short lowercase name used in benchmark output rows.
    pub const fn name(self) -> &'static str {
        match self {
            TilePrecision::Int8 => "int8",
            TilePrecision::Fp16 => "fp16",
            TilePrecision::Bf16 => "bf16",
            TilePrecision::Tf32 => "tf32",
            TilePrecision::Fp64 => "fp64",
        }
    }
}

impl std::fmt::Display for TilePrecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_sizes() {
        assert_eq!(Precision::Fp64.size_bytes(), 8);
        assert_eq!(Precision::Fp32.size_bytes(), 4);
        assert_eq!(Precision::Tf32.size_bytes(), 4);
        assert_eq!(Precision::Fp16.size_bytes(), 2);
        assert_eq!(Precision::Bf16.size_bytes(), 2);
    }

    #[test]
    fn fp64_round_is_identity() {
        for &x in &[0.0, -1.5, 1e300, f64::MIN_POSITIVE, -0.0] {
            assert_eq!(Precision::Fp64.round(x).to_bits(), x.to_bits());
        }
    }

    #[test]
    fn round_orders_by_mantissa_bits() {
        // A value with a long mantissa loses more as the format narrows.
        let x = 1.0 + std::f64::consts::PI * 1e-3;
        let e64 = (Precision::Fp64.round(x) - x).abs();
        let e32 = (Precision::Fp32.round(x) - x).abs();
        let etf = (Precision::Tf32.round(x) - x).abs();
        let e16 = (Precision::Fp16.round(x) - x).abs();
        let eb16 = (Precision::Bf16.round(x) - x).abs();
        assert!(e64 <= e32 && e32 <= etf && etf <= e16 && e16 <= eb16);
    }

    #[test]
    fn max_finite_matches_round_saturation() {
        // Values beyond max_finite overflow to infinity when rounded.
        let m = Precision::Fp16.max_finite();
        assert!(Precision::Fp16.round(m).is_finite());
        assert!(Precision::Fp16.round(m * 1.01).is_infinite());
    }

    #[test]
    fn tile_precision_walk_order_is_cost_order() {
        // ALL is declared cheapest-first and rank() must agree with it.
        for (i, t) in TilePrecision::ALL.iter().enumerate() {
            assert_eq!(t.rank(), i);
        }
        // Fp64 is the last (unconditional fallback) entry.
        assert_eq!(TilePrecision::ALL[4], TilePrecision::Fp64);
        // Storage narrows monotonically toward the cheap end.
        assert!(TilePrecision::Int8.storage_bytes() < TilePrecision::Fp16.storage_bytes());
        assert!(TilePrecision::Tf32.storage_bytes() < TilePrecision::Fp64.storage_bytes());
    }

    #[test]
    fn tile_precision_err_factors() {
        // Two half-ulp roundings per product for the float tiers.
        assert_eq!(TilePrecision::Fp16.err_factor(), 2.0f64.powi(-10));
        assert_eq!(TilePrecision::Tf32.err_factor(), 2.0f64.powi(-10));
        assert_eq!(TilePrecision::Bf16.err_factor(), 2.0f64.powi(-7));
        assert_eq!(TilePrecision::Fp64.err_factor(), 2.0f64.powi(-52));
        // Int8: half-step of the 127-level symmetric grid on both operands.
        assert_eq!(TilePrecision::Int8.err_factor(), 1.0 / 127.0);
        // Range: only fp16 has a meaningfully small max (gives bf16/tf32
        // their niche under the picker).
        assert_eq!(TilePrecision::Fp16.max_finite(), 65504.0);
        assert!(TilePrecision::Bf16.max_finite() > 1e38);
    }
}
