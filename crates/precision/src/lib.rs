//! # mako-precision
//!
//! Software-emulated reduced-precision arithmetic for the Mako quantum
//! chemistry system.
//!
//! The Mako paper (SC '25) executes the basis-transformation GEMMs of the
//! electron-repulsion-integral (ERI) pipeline on NVIDIA tensor cores in FP16 /
//! BF16 / TF32, accumulating in FP32 (QuantMako, §3.2). No tensor-core
//! hardware is available to this reproduction, so this crate provides
//! **bit-exact software emulation** of those formats: conversions use IEEE
//! round-to-nearest-even including subnormals and overflow-to-infinity, so the
//! quantization error measured by the benchmark harness is the *actual*
//! reduced-precision arithmetic error, not a noise model.
//!
//! The crate also provides the group-quantization primitives of QuantMako's
//! *Fine-Grained Quantization*: per-angular-momentum-group scale factors that
//! align each data block's dynamic range with the FP16 representable range,
//! and the error statistics (RMSE / MAE / max) used by Table 2 and Table 3 of
//! the paper.

pub mod bf16;
pub mod f16;
pub mod quantize;
pub mod stats;
pub mod tf32;

pub use bf16::Bf16;
pub use f16::F16;
pub use quantize::{GroupQuantizer, QuantizedBlock, ScalePolicy};
pub use stats::{mae, max_abs_err, rmse, ErrorStats};
pub use tf32::{tf32_round, Tf32};

/// The numeric formats supported by the (simulated) tensor-core units.
///
/// Mirrors the rows of Table 1 in the paper: each format has a distinct peak
/// throughput on the device model in `mako-accel`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Precision {
    /// IEEE binary64. The scientific reference precision.
    Fp64,
    /// IEEE binary32.
    Fp32,
    /// NVIDIA TF32: FP32 range (8-bit exponent) with a 10-bit mantissa.
    Tf32,
    /// bfloat16: FP32 range with a 7-bit mantissa.
    Bf16,
    /// IEEE binary16.
    Fp16,
}

impl Precision {
    /// Bytes occupied by one element when stored in this format.
    ///
    /// TF32 is stored in 32-bit containers on real hardware, and we model the
    /// same footprint.
    pub const fn size_bytes(self) -> usize {
        match self {
            Precision::Fp64 => 8,
            Precision::Fp32 | Precision::Tf32 => 4,
            Precision::Bf16 | Precision::Fp16 => 2,
        }
    }

    /// Number of explicit mantissa bits carried by the format.
    pub const fn mantissa_bits(self) -> u32 {
        match self {
            Precision::Fp64 => 52,
            Precision::Fp32 => 23,
            Precision::Tf32 => 10,
            Precision::Fp16 => 10,
            Precision::Bf16 => 7,
        }
    }

    /// Largest finite representable magnitude.
    pub fn max_finite(self) -> f64 {
        match self {
            Precision::Fp64 => f64::MAX,
            Precision::Fp32 => f32::MAX as f64,
            Precision::Tf32 => f32::MAX as f64,
            Precision::Bf16 => 3.3895313892515355e38,
            Precision::Fp16 => 65504.0,
        }
    }

    /// Round a double-precision value through this format and back.
    ///
    /// This is the single code path every simulated kernel uses to model
    /// storage in a low-precision operand: `Fp64` is the identity, everything
    /// else loses exactly the bits the real format would lose.
    pub fn round(self, x: f64) -> f64 {
        match self {
            Precision::Fp64 => x,
            Precision::Fp32 => x as f32 as f64,
            Precision::Tf32 => tf32_round(x as f32) as f64,
            Precision::Bf16 => Bf16::from_f32(x as f32).to_f32() as f64,
            Precision::Fp16 => F16::from_f32(x as f32).to_f32() as f64,
        }
    }

    /// Batched [`Precision::round`] of `x · scale`, appended to `dst` — the
    /// hot "load a pre-scaled operand block into tensor-core registers" step
    /// of the quartet pipeline.
    ///
    /// Semantically identical to
    /// `dst.extend(src.iter().map(|&x| self.round(x * scale)))`; the `Fp16`
    /// case additionally takes a hardware fast path (F16C `VCVTPS2PH`, where
    /// the host has it) that is bit-identical to the software converter for
    /// every non-NaN input (see [`f16::round_scaled_extend_f16`]).
    pub fn round_scaled_extend(self, scale: f64, src: &[f64], dst: &mut Vec<f64>) {
        match self {
            Precision::Fp16 => f16::round_scaled_extend_f16(scale, src, dst),
            _ => dst.extend(src.iter().map(|&x| self.round(x * scale))),
        }
    }

    /// Short lowercase name used in benchmark output rows.
    pub const fn name(self) -> &'static str {
        match self {
            Precision::Fp64 => "fp64",
            Precision::Fp32 => "fp32",
            Precision::Tf32 => "tf32",
            Precision::Bf16 => "bf16",
            Precision::Fp16 => "fp16",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_sizes() {
        assert_eq!(Precision::Fp64.size_bytes(), 8);
        assert_eq!(Precision::Fp32.size_bytes(), 4);
        assert_eq!(Precision::Tf32.size_bytes(), 4);
        assert_eq!(Precision::Fp16.size_bytes(), 2);
        assert_eq!(Precision::Bf16.size_bytes(), 2);
    }

    #[test]
    fn fp64_round_is_identity() {
        for &x in &[0.0, -1.5, 1e300, f64::MIN_POSITIVE, -0.0] {
            assert_eq!(Precision::Fp64.round(x).to_bits(), x.to_bits());
        }
    }

    #[test]
    fn round_orders_by_mantissa_bits() {
        // A value with a long mantissa loses more as the format narrows.
        let x = 1.0 + std::f64::consts::PI * 1e-3;
        let e64 = (Precision::Fp64.round(x) - x).abs();
        let e32 = (Precision::Fp32.round(x) - x).abs();
        let etf = (Precision::Tf32.round(x) - x).abs();
        let e16 = (Precision::Fp16.round(x) - x).abs();
        let eb16 = (Precision::Bf16.round(x) - x).abs();
        assert!(e64 <= e32 && e32 <= etf && etf <= e16 && e16 <= eb16);
    }

    #[test]
    fn max_finite_matches_round_saturation() {
        // Values beyond max_finite overflow to infinity when rounded.
        let m = Precision::Fp16.max_finite();
        assert!(Precision::Fp16.round(m).is_finite());
        assert!(Precision::Fp16.round(m * 1.01).is_infinite());
    }
}
