//! NVIDIA TF32 (TensorFloat-32) emulated in software.
//!
//! TF32 is the A100 tensor-core input format for FP32 workloads: an 8-bit
//! exponent (f32 range) with a 10-bit mantissa (f16 precision), stored in a
//! 32-bit container. Hardware rounds FP32 operands to TF32 on entry to the
//! MMA unit and accumulates in full FP32; [`tf32_round`] reproduces the
//! operand rounding with round-to-nearest-even.

/// Round an `f32` to TF32 precision (10 explicit mantissa bits),
/// round-to-nearest-even. Returns an ordinary `f32` carrying the reduced
/// mantissa, exactly as the hardware register does.
pub fn tf32_round(x: f32) -> f32 {
    if !x.is_finite() {
        return x;
    }
    let bits = x.to_bits();
    let man = bits & 0x007F_FFFF;
    let keep_mask = !((1u32 << 13) - 1);
    let mut out = bits & keep_mask;
    let round_bit = 1u32 << 12;
    if (man & round_bit) != 0 && ((man & (round_bit - 1)) != 0 || ((bits >> 13) & 1) != 0) {
        // Carry may ripple into the exponent; overflow to infinity is correct.
        out = out.wrapping_add(1 << 13);
    }
    f32::from_bits(out)
}

/// A TF32 value. Stored as the rounded `f32` (32-bit container, like the
/// hardware).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Tf32(f32);

impl Tf32 {
    /// Round an `f32` into TF32.
    pub fn from_f32(v: f32) -> Tf32 {
        Tf32(tf32_round(v))
    }

    /// Round an `f64` into TF32 via `f32`.
    pub fn from_f64(v: f64) -> Tf32 {
        Tf32(tf32_round(v as f32))
    }

    /// The stored (already rounded) value.
    pub fn to_f32(self) -> f32 {
        self.0
    }

    /// Widen to `f64`.
    pub fn to_f64(self) -> f64 {
        self.0 as f64
    }
}

impl From<f32> for Tf32 {
    fn from(v: f32) -> Self {
        Tf32::from_f32(v)
    }
}

impl From<Tf32> for f32 {
    fn from(v: Tf32) -> Self {
        v.to_f32()
    }
}

impl std::ops::Mul for Tf32 {
    type Output = f32;
    /// TF32 × TF32 products are exact in f32 (10+10 ≤ 23 mantissa bits), so
    /// multiplication yields a full-precision `f32`, mirroring the MMA unit.
    fn mul(self, rhs: Tf32) -> f32 {
        self.0 * rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idempotent() {
        for &x in &[1.2345678f32, -9.87e-12, 3.0e30, 0.0, -0.0] {
            let once = tf32_round(x);
            assert_eq!(tf32_round(once).to_bits(), once.to_bits());
        }
    }

    #[test]
    fn keeps_f32_range() {
        for &x in &[1e30f32, 1e-30, -2.5e38] {
            let r = tf32_round(x);
            assert!(r.is_finite());
            let rel = ((r - x) / x).abs();
            assert!(rel <= 1.0 / 2048.0);
        }
    }

    #[test]
    fn matches_f16_mantissa_near_one() {
        // Near 1.0 tf32 and f16 have identical mantissa grids.
        let x = 1.0 + 1.0 / 3.0;
        let t = tf32_round(x) as f64;
        let h = crate::F16::from_f32(x).to_f64();
        assert_eq!(t, h);
    }

    #[test]
    fn low_bits_cleared() {
        let r = tf32_round(std::f32::consts::PI);
        assert_eq!(r.to_bits() & 0x1FFF, 0);
    }

    #[test]
    fn tie_to_even() {
        // 1 + 2^-11 is exactly halfway between tf32 neighbors 1.0 and 1+2^-10.
        let x = f32::from_bits(0x3F80_1000);
        assert_eq!(tf32_round(x), 1.0);
        let y = f32::from_bits(0x3F80_1001);
        assert_eq!(tf32_round(y), f32::from_bits(0x3F80_2000));
    }

    #[test]
    fn products_exact_in_f32() {
        let a = Tf32::from_f32(1.5 + 1.0 / 1024.0);
        let b = Tf32::from_f32(2.25 - 1.0 / 1024.0);
        let p64 = a.to_f64() * b.to_f64();
        assert_eq!((a * b) as f64, p64);
    }

    #[test]
    fn non_finite_passthrough() {
        assert!(tf32_round(f32::INFINITY).is_infinite());
        assert!(tf32_round(f32::NAN).is_nan());
    }
}
