//! Host-side Fock assembly benchmark: serial single-buffer build vs the
//! parallel assembly engine at 1/2/4/8 threads on `sample/water60.xyz`
//! (STO-3G), verifying along the way that every parallel run is **bitwise
//! identical** to the serial baseline — J, K, the two-electron energy, the
//! scheduler stats, and the simulated `device_seconds` may not drift by a
//! single bit (host parallelism must never touch the device clock).
//!
//! Results land in `BENCH_fock.json` (the `gemm` throughput section is
//! added by the companion `gemm_microbench` bin). Wall times are the best
//! of several passes (3 serial, 2 per thread count) — the workload is
//! deterministic, so the minimum is the least-noise estimator on a small
//! shared CI host; the bitwise checks run on *every* pass, so repetition
//! strengthens rather than dilutes the determinism claim. Wall-clock
//! speedup is bounded by the host's actual core count (recorded as
//! `host_cpus`): runs
//! with more threads than CPUs keep their bitwise-identity check but are
//! labeled `oversubscribed: true` instead of reporting a fake speedup. The
//! selected microkernel is recorded in the `kernel` field.
//!
//! ```sh
//! cargo run --release -p mako-bench --bin host_fock_bench
//! ```
//!
//! Knobs: `MAKO_BENCH_SCREEN` (Schwarz threshold, default 1e-5),
//! `MAKO_BENCH_MAX_QUARTETS` (deterministic workload cap, default 40000),
//! `MAKO_THREADS` (comma-separated thread counts to sweep, default
//! `1,2,4,8` — e.g. `MAKO_THREADS=1,2` for a smoke run), `MAKO_BENCH_OUT`
//! (output path, default `BENCH_fock.json` — smoke harnesses point this
//! at scratch), `MAKO_TRACE` (structured-trace output path, JSONL schema
//! in DESIGN.md §11 — tracing is numerically inert, so the bitwise checks
//! hold with it on).

use mako_accel::{CostModel, DeviceSpec};
use mako_chem::basis::sto3g::sto3g;
use mako_chem::{AoLayout, Molecule};
use mako_eri::batch::batch_quartets;
use mako_eri::screening::build_screened_pairs;
use mako_kernels::pipeline::PipelineConfig;
use mako_linalg::Matrix;
use mako_quant::QuantSchedule;
use mako_scf::fock::{build_jk, build_jk_serial, FockBuildStats, JkMatrices};
use std::fmt::Write as _;
use std::time::Instant;

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Comma-separated thread-count list from the environment (`MAKO_THREADS`),
/// e.g. `1,2,4`; falls back to `default` when unset or unparsable.
fn env_thread_list(key: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(key)
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t: &usize| t >= 1)
                .collect::<Vec<usize>>()
        })
        .filter(|l| !l.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn bits_equal(a: &Matrix, b: &Matrix) -> bool {
    a.as_slice().len() == b.as_slice().len()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Two-electron energy `Tr[D(J - K/2)]` — a single scalar that fingerprints
/// both matrices.
fn two_electron_energy(d: &Matrix, jk: &JkMatrices) -> f64 {
    d.dot(&jk.j) - 0.5 * d.dot(&jk.k)
}

fn main() {
    mako_trace::init_from_env();
    let xyz = std::fs::read_to_string("sample/water60.xyz")
        .expect("run from the workspace root: sample/water60.xyz not found");
    let mol = Molecule::from_xyz(&xyz).expect("parse water60.xyz");
    let shells = sto3g().shells_for(&mol);
    let layout = AoLayout::new(&shells);

    let screen = env_f64("MAKO_BENCH_SCREEN", 1e-5);
    let cap = env_usize("MAKO_BENCH_MAX_QUARTETS", 40_000);

    let pairs = build_screened_pairs(&shells, screen);
    let mut batches = batch_quartets(&pairs, 1e-10);
    // Deterministic workload cap so the benchmark fits a single-core CI box:
    // trim every batch proportionally (keeping each class represented, since
    // batches are grouped by angular-momentum class). The cap changes how
    // much work is timed, never what any given build computes.
    let total: usize = batches.iter().map(|b| b.quartets.len()).sum();
    if total > cap {
        for b in &mut batches {
            let keep = (b.quartets.len() * cap / total).max(1);
            b.quartets.truncate(keep);
        }
    }
    batches.retain(|b| !b.quartets.is_empty());
    let quartets: usize = batches.iter().map(|b| b.quartets.len()).sum();

    // A mixed FP64/quantized schedule, as a mid-SCF iteration would see.
    let schedule = QuantSchedule::for_iteration(1.0, 1e-7);
    let model = CostModel::new(DeviceSpec::a100());
    let fp64_cfg = PipelineConfig::kernel_mako_fp64();
    let quant_cfg = PipelineConfig::quant_mako();
    let n = layout.nao;
    let mut density = Matrix::from_fn(n, n, |i, j| 0.3 / (1.0 + (i as f64 - j as f64).abs()));
    density.symmetrize();

    println!(
        "host_fock_bench: water60 STO-3G  nao={n}  pairs={}  quartets={quartets} (screen {screen:.0e}, cap {cap})",
        pairs.len()
    );

    // Best-of-3 serial timing: the workload is deterministic, so the minimum
    // is the least-noise estimator on a small shared CI host (single-pass
    // walls swing ±15% with scheduler luck). Every pass must be bitwise
    // identical to the first — re-running is also a self-consistency check.
    let mut serial_wall = f64::INFINITY;
    let mut serial: Option<(JkMatrices, FockBuildStats)> = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let (jk, st) = build_jk_serial(
            &density, &pairs, &batches, &layout, &schedule, &fp64_cfg, &quant_cfg, &model,
        );
        serial_wall = serial_wall.min(t0.elapsed().as_secs_f64());
        if let Some((jk0, st0)) = &serial {
            assert!(
                bits_equal(&jk.j, &jk0.j) && bits_equal(&jk.k, &jk0.k) && st == *st0,
                "serial Fock build is not reproducible across passes"
            );
        } else {
            serial = Some((jk, st));
        }
    }
    let (jk_serial, st_serial) = serial.expect("at least one serial pass");
    let e_serial = two_electron_energy(&density, &jk_serial);
    println!(
        "  serial baseline: {serial_wall:.3} s  (device clock {:.6} s, E2 {e_serial:.12} Ha)",
        st_serial.device_seconds
    );
    println!(
        "  schedule split: {} fp64 / {} quantized / {} pruned",
        st_serial.fp64_quartets, st_serial.quantized_quartets, st_serial.pruned_quartets
    );

    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let thread_list = env_thread_list("MAKO_THREADS", &[1, 2, 4, 8]);
    let mut rows: Vec<(usize, f64, bool, bool)> = Vec::new();
    let mut all_bitwise = true;
    for threads in thread_list {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("build thread pool");
        // Best-of-2 per thread count (same noise-damping rationale as the
        // serial baseline); the bitwise check runs on every pass.
        let mut wall = f64::INFINITY;
        let mut bitwise = true;
        for _ in 0..2 {
            let t0 = Instant::now();
            let (jk, st): (JkMatrices, FockBuildStats) = pool.install(|| {
                build_jk(
                    &density, &pairs, &batches, &layout, &schedule, &fp64_cfg, &quant_cfg, &model,
                )
            });
            wall = wall.min(t0.elapsed().as_secs_f64());
            bitwise &= bits_equal(&jk.j, &jk_serial.j)
                && bits_equal(&jk.k, &jk_serial.k)
                && st == st_serial
                && st.device_seconds.to_bits() == st_serial.device_seconds.to_bits()
                && two_electron_energy(&density, &jk).to_bits() == e_serial.to_bits();
        }
        all_bitwise &= bitwise;
        // More rayon threads than host CPUs measures scheduler churn, not
        // scaling: keep the run for its bitwise-identity check but label the
        // wall time oversubscribed instead of reporting a fake "speedup".
        let oversubscribed = threads > host_cpus;
        if oversubscribed {
            println!(
                "  {threads} thread(s): {wall:.3} s  (oversubscribed on {host_cpus}-cpu host; \
                 bitwise check only)  bitwise_identical={bitwise}"
            );
        } else {
            println!(
                "  {threads} thread(s): {wall:.3} s  speedup {:.2}x  bitwise_identical={bitwise}",
                serial_wall / wall
            );
        }
        rows.push((threads, wall, bitwise, oversubscribed));
    }

    assert!(
        all_bitwise,
        "parallel Fock build drifted from the serial baseline"
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"host_fock_bench\",");
    let _ = writeln!(json, "  \"molecule\": \"water60 (STO-3G)\",");
    let _ = writeln!(json, "  \"nao\": {n},");
    let _ = writeln!(json, "  \"screened_pairs\": {},", pairs.len());
    let _ = writeln!(json, "  \"quartets\": {quartets},");
    let _ = writeln!(json, "  \"schwarz_threshold\": {screen:e},");
    let _ = writeln!(json, "  \"quartet_cap\": {cap},");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"kernel\": \"{}\",", mako_linalg::kernel_name());
    let _ = writeln!(json, "  \"fp64_quartets\": {},", st_serial.fp64_quartets);
    let _ = writeln!(
        json,
        "  \"quantized_quartets\": {},",
        st_serial.quantized_quartets
    );
    let _ = writeln!(json, "  \"pruned_quartets\": {},", st_serial.pruned_quartets);
    let _ = writeln!(json, "  \"serial_wall_s\": {serial_wall:.6},");
    let _ = writeln!(json, "  \"device_seconds\": {:.9},", st_serial.device_seconds);
    let _ = writeln!(json, "  \"two_electron_energy_ha\": {e_serial:.12},");
    let _ = writeln!(json, "  \"device_seconds_unchanged\": true,");
    let _ = writeln!(json, "  \"bitwise_identical_all\": {all_bitwise},");
    let _ = writeln!(json, "  \"runs\": [");
    for (i, (threads, wall, bitwise, oversubscribed)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        // Oversubscribed rows get no "speedup" field at all — a wall time
        // measured with more threads than CPUs is a scheduler artifact.
        let speedup = if *oversubscribed {
            String::new()
        } else {
            format!("\"speedup\": {:.4}, ", serial_wall / wall)
        };
        let _ = writeln!(
            json,
            "    {{\"threads\": {threads}, \"wall_s\": {wall:.6}, {speedup}\"oversubscribed\": {oversubscribed}, \"bitwise_identical\": {bitwise}}}{comma}",
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    let out =
        std::env::var("MAKO_BENCH_OUT").unwrap_or_else(|_| "BENCH_fock.json".to_string());
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {out}");
    match mako_trace::flush() {
        Some(Ok(path)) => println!("trace written to {path}"),
        Some(Err(e)) => eprintln!("warning: trace write failed: {e}"),
        None => {}
    }
}
