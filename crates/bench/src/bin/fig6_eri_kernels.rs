//! [Figure 6] FP64 ERI kernel microbenchmark: Mako (CompilerMako-tuned)
//! vs the LibintX-like baseline, in shell quartets per second on the
//! simulated A100, across the diagonal classes (ss|ss)…(gg|gg) at
//! contraction degrees {1,1}, {1,5}, {5,5}.
//!
//! Paper result: average speedups 2.67× / 2.34× / 3.11× for the three
//! contraction patterns.
//!
//! ```sh
//! cargo run --release -p mako-bench --bin fig6_eri_kernels
//! ```

use mako_accel::{CostModel, DeviceSpec};
use mako_bench::{diagonal_classes, geomean};
use mako_compiler::KernelCache;
use mako_kernels::pipeline::simulate_batch_cost;
use mako_kernels::LIBINTX_CONFIG;
use mako_precision::Precision;

const BATCH: usize = 200_000;

fn main() {
    let model = CostModel::new(DeviceSpec::a100());
    let cache = KernelCache::new();

    println!("Figure 6: FP64 ERI kernel throughput, Mako vs LibintX-like (simulated A100)");
    println!("metric: shell quartets / second (batch of {BATCH})\n");

    let mut averages = Vec::new();
    for (kab, kcd) in [(1usize, 1usize), (1, 5), (5, 5)] {
        println!("contraction degrees K = {{{kab},{kcd}}}");
        println!(
            "{:<12} {:>16} {:>16} {:>9}",
            "class", "Mako (q/s)", "LibintX (q/s)", "speedup"
        );
        let mut speedups = Vec::new();
        for class in diagonal_classes(kab, kcd) {
            let tuned = cache.get_or_tune(&class, Precision::Fp64, &model);
            let mako_t = simulate_batch_cost(&class, BATCH, &tuned.config, &model);
            let lib_t = simulate_batch_cost(&class, BATCH, &LIBINTX_CONFIG, &model);
            let speedup = lib_t / mako_t;
            speedups.push(speedup);
            println!(
                "{:<12} {:>16.3e} {:>16.3e} {:>8.2}x",
                class.label(),
                BATCH as f64 / mako_t,
                BATCH as f64 / lib_t,
                speedup
            );
        }
        let avg = geomean(&speedups);
        averages.push(((kab, kcd), avg));
        println!("  average speedup: {avg:.2}x\n");
    }

    println!("paper Figure 6 averages: {{1,1}} 2.67x   {{1,5}} 2.34x   {{5,5}} 3.11x");
    print!("this reproduction:      ");
    for ((a, b), avg) in averages {
        print!(" {{{a},{b}}} {avg:.2}x  ");
    }
    println!();
}
