//! [Figure 10] Strong scaling of the ubiquitin (1,231 atoms, def2-TZVP)
//! SCF on 1–64 simulated A100 GPUs, Azure ND A100 v4 cluster model.
//!
//! Paper results: >90% parallel efficiency on 8 GPUs (single node), 70% on
//! 64 GPUs (8 nodes); end-to-end runtime cut from days (QUICK) to 58
//! minutes.
//!
//! ```sh
//! cargo run --release -p mako-bench --bin fig10_scalability
//! ```

use mako_accel::cluster::ClusterSpec;
use mako_accel::{CostModel, DeviceSpec};
use mako_chem::{builders, BasisFamily};
use mako_compiler::KernelCache;
use mako_kernels::quick_like_cost;
use mako_precision::Precision;
use mako_scf::parallel::{batch_costs, build_workload, replicated_serial_seconds, scaling_curve};

fn main() {
    let mol = builders::ubiquitin_like();
    let basis = BasisFamily::Def2TzvpLike.basis_for(&mol.elements());
    let workload = build_workload(&mol, &basis);
    println!("Figure 10: strong scaling on {} / {}", mol.name, basis.name);
    println!("AOs: {}   significant shell pairs: {}\n", workload.nao, workload.n_pairs);

    let model = CostModel::new(DeviceSpec::a100());
    let cache = KernelCache::new();
    let costs = batch_costs(&workload, &model, &cache, Precision::Fp16, 200_000);
    let serial = replicated_serial_seconds(workload.nao, &model);
    let eri_total: f64 = costs.iter().sum();
    println!("one-GPU iteration: ERI {eri_total:.1} s + replicated {serial:.2} s over {} batches", costs.len());

    let curve = scaling_curve(
        &costs,
        workload.nao,
        serial,
        &[1, 2, 4, 8, 16, 32, 64],
        &ClusterSpec::azure_nd_a100_v4(),
    );
    println!(
        "\n{:>5} {:>6} {:>13} {:>12} {:>9} {:>9} {:>9}",
        "GPUs", "nodes", "t_iter/s", "efficiency", "compute", "comm", "serial"
    );
    for p in &curve {
        println!(
            "{:>5} {:>6} {:>13.3} {:>11.1}% {:>9.3} {:>9.3} {:>9.3}",
            p.ranks,
            p.ranks.div_ceil(8),
            p.iteration_seconds,
            p.efficiency * 100.0,
            p.timing.max_rank_compute,
            p.timing.comm,
            p.timing.serial
        );
    }

    // Days-to-minutes comparison against the QUICK-like recursive baseline
    // (single GPU, FP64, no tensor cores; f-capped classes only — the
    // g-free TZVP workload keeps it applicable).
    let quick_iter: Option<f64> = workload
        .classes
        .iter()
        .map(|&(c, n)| quick_like_cost(&c, n.round().max(1.0) as usize, &model))
        .sum();
    let iterations = 15.0;
    let t64 = curve.last().unwrap().iteration_seconds;
    println!("\nend-to-end estimate ({iterations} SCF iterations):");
    if let Some(q) = quick_iter {
        println!(
            "  QUICK-like, 1 GPU : {:.1} hours",
            iterations * q / 3600.0
        );
    }
    println!(
        "  Mako, 64 GPUs     : {:.1} minutes",
        iterations * t64 / 60.0
    );
    println!("\npaper: >90% efficiency at 8 GPUs, 70% at 64; days → 58 minutes.");
}
