//! Serving benchmark: the multi-tenant job runtime under admission
//! pressure, preemption, and seeded chaos — pinning the two serving-layer
//! contracts as hard assertions:
//!
//! 1. **Chaos invariant** — every job that *completes* under worker kills,
//!    checkpoint-write faults, straggler timeouts, and a poisoned Fock
//!    build reports an energy bitwise identical to a quiet solo run of the
//!    same spec.
//! 2. **No starvation** — an interactive job arriving while a long batch
//!    job owns the only worker starts within one preemption quantum.
//!
//! Results land in `BENCH_serve.json` (schema documented in DESIGN.md §9).
//!
//! ```sh
//! cargo run --release -p mako-bench --bin server_bench
//! ```
//!
//! Knobs: `MAKO_SMOKE=1` (small molecules, short thread sweep),
//! `MAKO_FAULT_SEED` (chaos seed, default 11), `MAKO_THREADS`
//! (comma-separated host thread counts for the determinism sweep, default
//! `1,2,4,8`), `MAKO_BENCH_OUT` (output path, default `BENCH_serve.json`).

use mako_chem::builders;
use mako_server::{
    AdmissionConfig, JobOutcome, JobSpec, MakoServer, PriorityClass, RejectReason, ServeReport,
    ServerChaos, ServerConfig,
};
use std::fmt::Write as _;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_list(key: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(key)
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t: &usize| t >= 1)
                .collect::<Vec<usize>>()
        })
        .filter(|l| !l.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn scratch_config() -> ServerConfig {
    ServerConfig {
        checkpoint_dir: std::env::temp_dir().join("mako-server-bench"),
        ..ServerConfig::default()
    }
}

/// The mixed multi-tenant workload of the chaos and determinism legs.
fn workload(smoke: bool) -> Vec<JobSpec> {
    let heavy = if smoke {
        builders::water()
    } else {
        builders::water_cluster(2)
    };
    vec![
        JobSpec::new("alice", PriorityClass::Interactive, builders::water()),
        JobSpec::new("bob", PriorityClass::Batch, builders::methane()).at(1e-4),
        JobSpec::new("bob", PriorityClass::Batch, builders::ammonia()).at(2e-4),
        JobSpec::new("carol", PriorityClass::Batch, heavy).at(3e-4),
        JobSpec::new("carol", PriorityClass::BestEffort, builders::perturbed_water(3, 5e-3))
            .at(4e-4),
        JobSpec::new("alice", PriorityClass::Interactive, builders::water()).at(5e-4),
    ]
}

/// SplitMix64 fold — the digest the determinism sweep compares.
fn mix(h: u64, v: u64) -> u64 {
    let mut z = (h ^ v).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Digest every observable of a serve: outcome labels, energies, retry and
/// preemption counts, the ledger, the makespan. Any scheduling or numeric
/// divergence between two runs changes it.
fn digest(report: &ServeReport) -> u64 {
    let mut h = 0x4D41_4B4F_5345_5256; // b"MAKOSERV"
    for outcome in &report.outcomes {
        for b in outcome.label().bytes() {
            h = mix(h, b as u64);
        }
        if let Some(rep) = outcome.report() {
            h = mix(h, rep.energy.to_bits());
            h = mix(h, rep.iterations as u64);
            h = mix(h, rep.retries as u64);
            h = mix(h, rep.preemptions as u64);
            h = mix(h, rep.finished_at.to_bits());
        }
    }
    let l = &report.ledger;
    for v in [
        l.admitted,
        l.rejected,
        l.completed,
        l.failed,
        l.deadline_exceeded,
        l.preemptions,
        l.quanta,
        l.worker_deaths,
        l.ckpt_write_faults,
        l.timeouts,
    ] {
        h = mix(h, v as u64);
    }
    h = mix(h, l.retries as u64);
    mix(h, report.makespan.to_bits())
}

fn main() {
    mako_trace::init_from_env();
    let smoke = std::env::var("MAKO_SMOKE").map(|v| v == "1").unwrap_or(false);
    let seed = env_usize("MAKO_FAULT_SEED", 11) as u64;
    let default_threads: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let thread_list = env_list("MAKO_THREADS", default_threads);
    println!("server_bench: seed={seed} smoke={smoke} threads={thread_list:?}");

    // ---- Leg 1: admission control under a tenant burst. --------------
    // Tenant "bob" floods the queue; quotas and the shedding ladder must
    // turn the excess away with typed reasons while alice's interactive
    // job gets in untouched.
    let server = MakoServer::new(ServerConfig {
        admission: AdmissionConfig {
            queue_soft_cap: 3,
            queue_hard_cap: 5,
            default_tenant_quota: 3,
            tenant_quotas: Vec::new(),
        },
        ..scratch_config()
    });
    let mut burst: Vec<JobSpec> = (0..5)
        .map(|_| JobSpec::new("bob", PriorityClass::Batch, builders::water()))
        .collect();
    for i in 0..6 {
        let class = if i % 2 == 1 {
            PriorityClass::BestEffort
        } else {
            PriorityClass::Batch
        };
        burst.push(JobSpec::new(&format!("tenant{i}"), class, builders::water()));
    }
    burst.push(JobSpec::new("alice", PriorityClass::Interactive, builders::methane()));
    let admission = server.serve_quiet(&burst);
    let mut quota_rejects = 0usize;
    let mut shed_rejects = 0usize;
    for outcome in &admission.outcomes {
        if let JobOutcome::Rejected { reason } = outcome {
            match reason {
                RejectReason::TenantQuotaExceeded { .. } => quota_rejects += 1,
                RejectReason::QueueFull { .. } | RejectReason::LoadShed { .. } => shed_rejects += 1,
            }
        }
    }
    assert!(quota_rejects >= 1, "the burst must trip bob's tenant quota");
    assert!(shed_rejects >= 1, "the burst must drive the shedding ladder");
    assert!(
        admission.outcomes.last().unwrap().report().is_some(),
        "alice's interactive job must complete through the burst"
    );
    println!(
        "  admission: {} admitted, {} quota-rejected, {} shed (final state {})",
        admission.ledger.admitted,
        quota_rejects,
        shed_rejects,
        admission.final_state.label()
    );

    // ---- Leg 2: no starvation under a long batch job. ----------------
    let server = MakoServer::new(ServerConfig {
        workers: 1,
        ..scratch_config()
    });
    let batch_spec = JobSpec::new(
        "bulk",
        PriorityClass::Batch,
        if smoke { builders::water() } else { builders::water_cluster(2) },
    );
    let ui_spec =
        JobSpec::new("ui", PriorityClass::Interactive, builders::methane()).at(1e-6);
    let solo_batch = server.run_solo(&batch_spec).expect("solo batch");
    let quantum = server.config().quantum_iterations;
    // "One preemption quantum" in virtual seconds: the batch job's first
    // `quantum` iterations.
    let quantum_seconds: f64 = solo_batch.iteration_seconds[..quantum.min(solo_batch.iterations)]
        .iter()
        .sum();
    let starvation = server.serve_quiet(&[batch_spec.clone(), ui_spec.clone()]);
    let batch_rep = starvation.outcomes[0].report().expect("batch completed");
    let ui_rep = starvation.outcomes[1].report().expect("interactive completed");
    let ui_wait = ui_rep.started_at - ui_rep.submitted_at;
    assert!(
        ui_wait <= quantum_seconds + 1e-12,
        "interactive waited {ui_wait} s > one quantum ({quantum_seconds} s)"
    );
    assert!(batch_rep.preemptions >= 1, "the batch job never yielded");
    assert_eq!(
        batch_rep.energy.to_bits(),
        solo_batch.energy.to_bits(),
        "preemption changed the batch job's energy"
    );
    println!(
        "  starvation: interactive waited {:.6} s (bound: one quantum = {:.6} s), batch preempted {}x",
        ui_wait, quantum_seconds, batch_rep.preemptions
    );

    // ---- Leg 3: chaos invariant. -------------------------------------
    // Seeded plan faults + a targeted worker kill, checkpoint-write
    // faults, a straggling worker pushed over the attempt-timeout bar,
    // and one poisoned Fock build.
    let jobs = workload(smoke);
    let solo_reference = MakoServer::new(scratch_config());
    // Straggler bar: generous for healthy attempts, fatal for the 8x
    // straggler. Derived from the heaviest solo job so it scales with the
    // workload.
    let max_solo_seconds = jobs
        .iter()
        .map(|s| solo_reference.run_solo(s).expect("solo run").total_seconds)
        .fold(0.0f64, f64::max);
    let server = MakoServer::new(ServerConfig {
        workers: 3,
        attempt_timeout: 3.0 * max_solo_seconds,
        ..scratch_config()
    });
    let chaos = ServerChaos::seeded(seed, 3)
        .kill_worker(1, 0.1)
        .slow_worker(2, 24.0)
        .with_poison(1, 2)
        .with_ckpt_io_rate(0.2);
    let t0 = Instant::now();
    let chaos_report = server.serve(&jobs, &chaos);
    let chaos_wall = t0.elapsed().as_secs_f64();
    let mut chaos_rows = String::new();
    let mut completed_bitwise = true;
    for (i, (spec, outcome)) in jobs.iter().zip(&chaos_report.outcomes).enumerate() {
        let comma = if i + 1 < jobs.len() { "," } else { "" };
        match outcome.report() {
            Some(rep) => {
                let solo = solo_reference.run_solo(spec).expect("solo run");
                let bitwise = rep.energy.to_bits() == solo.energy.to_bits();
                completed_bitwise &= bitwise;
                let _ = writeln!(
                    chaos_rows,
                    "    {{\"job\": {i}, \"tenant\": \"{}\", \"class\": \"{}\", \"outcome\": \"completed\", \"energy_ha\": {:.12}, \"retries\": {}, \"preemptions\": {}, \"quanta\": {}, \"bitwise_vs_solo\": {bitwise}}}{comma}",
                    spec.tenant,
                    spec.class.label(),
                    rep.energy,
                    rep.retries,
                    rep.preemptions,
                    rep.quanta,
                );
            }
            None => {
                let _ = writeln!(
                    chaos_rows,
                    "    {{\"job\": {i}, \"tenant\": \"{}\", \"class\": \"{}\", \"outcome\": \"{}\"}}{comma}",
                    spec.tenant,
                    spec.class.label(),
                    outcome.label(),
                );
            }
        }
    }
    assert!(
        chaos_report.ledger.completed >= 1,
        "the chaos schedule must leave survivors"
    );
    assert!(
        completed_bitwise,
        "a completed job diverged from its quiet solo run"
    );
    let cl = &chaos_report.ledger;
    println!(
        "  chaos: {}/{} completed  ({} retries, {} deaths, {} ckpt faults, {} timeouts, {} preemptions) — all completed bitwise vs solo",
        cl.completed,
        jobs.len(),
        cl.retries,
        cl.worker_deaths,
        cl.ckpt_write_faults,
        cl.timeouts,
        cl.preemptions
    );

    // ---- Leg 4: host-thread determinism sweep. -----------------------
    // The entire chaotic serve — scheduling, faults, retries, energies —
    // must be bit-for-bit identical whatever the host thread count.
    let mut digests: Vec<(usize, u64, f64)> = Vec::new();
    for &threads in &thread_list {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("build thread pool");
        let server = MakoServer::new(ServerConfig {
            workers: 3,
            attempt_timeout: 3.0 * max_solo_seconds,
            ..scratch_config()
        });
        let t0 = Instant::now();
        let report = pool.install(|| server.serve(&jobs, &chaos));
        digests.push((threads, digest(&report), t0.elapsed().as_secs_f64()));
    }
    let reference_digest = digests[0].1;
    let threads_bitwise = digests.iter().all(|&(_, d, _)| d == reference_digest);
    for &(threads, d, wall) in &digests {
        println!("  threads={threads}: digest={d:016x}  wall={wall:.3} s");
    }
    assert!(
        threads_bitwise,
        "the serve digest varies with host thread count"
    );

    // ---- BENCH_serve.json --------------------------------------------
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"server_bench\",");
    let _ = writeln!(json, "  \"fault_seed\": {seed},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(
        json,
        "  \"admission\": {{\"submitted\": {}, \"admitted\": {}, \"quota_rejected\": {quota_rejects}, \"shed\": {shed_rejects}, \"final_state\": \"{}\"}},",
        burst.len(),
        admission.ledger.admitted,
        admission.final_state.label()
    );
    let _ = writeln!(
        json,
        "  \"starvation\": {{\"interactive_wait_s\": {ui_wait:.9}, \"quantum_bound_s\": {quantum_seconds:.9}, \"within_one_quantum\": {}, \"batch_preemptions\": {}, \"batch_bitwise_vs_solo\": true}},",
        ui_wait <= quantum_seconds + 1e-12,
        batch_rep.preemptions
    );
    let _ = writeln!(json, "  \"chaos\": {{");
    let _ = writeln!(json, "    \"workers\": 3, \"wall_s\": {chaos_wall:.6},");
    let _ = writeln!(
        json,
        "    \"ledger\": {{\"admitted\": {}, \"completed\": {}, \"failed\": {}, \"retries\": {}, \"worker_deaths\": {}, \"ckpt_write_faults\": {}, \"timeouts\": {}, \"preemptions\": {}, \"quanta\": {}}},",
        cl.admitted,
        cl.completed,
        cl.failed,
        cl.retries,
        cl.worker_deaths,
        cl.ckpt_write_faults,
        cl.timeouts,
        cl.preemptions,
        cl.quanta
    );
    let _ = writeln!(json, "    \"makespan_virtual_s\": {:.9},", chaos_report.makespan);
    let _ = writeln!(json, "    \"completed_bitwise_vs_solo\": {completed_bitwise},");
    let _ = writeln!(json, "    \"jobs\": [");
    json.push_str(&chaos_rows);
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"thread_sweep\": [");
    for (i, &(threads, d, wall)) in digests.iter().enumerate() {
        let comma = if i + 1 < digests.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"threads\": {threads}, \"digest\": \"{d:016x}\", \"wall_s\": {wall:.6}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"threads_bitwise_identical\": {threads_bitwise}");
    let _ = writeln!(json, "}}");
    let out = std::env::var("MAKO_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {out}");
    match mako_trace::flush() {
        Some(Ok(path)) => println!("trace written to {path}"),
        Some(Err(e)) => eprintln!("warning: trace write failed: {e}"),
        None => {}
    }
}
