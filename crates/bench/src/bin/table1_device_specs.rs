//! [Table 1] A100 GPU specifications: tensor-core vs CUDA-core peak
//! throughput per precision.
//!
//! ```sh
//! cargo run --release -p mako-bench --bin table1_device_specs
//! ```

use mako_accel::{DeviceKind, DeviceSpec};

fn main() {
    println!("Table 1: A100 GPU SPECIFICATIONS (device model vs paper)\n");
    let d = DeviceSpec::a100();
    println!("{:<12} {:>14} {:>14} {:>9}", "Precision", "Tensor Core", "CUDA Core", "Speedup");
    for (label, tensor, cuda, speedup) in d.table1_rows() {
        println!(
            "{:<12} {:>8.1} TFLOPS {:>8.1} TFLOPS {:>8.0}x",
            label, tensor, cuda, speedup
        );
    }
    println!("\npaper Table 1: FP64 19.5/9.7 (2x)  FP32/TF32 156/19.5 (8x)  BF16 312/78 (4x)  FP16 312/78 (4x)");

    println!("\nOther simulated devices (CompilerMako portability targets):");
    for kind in [DeviceKind::V100, DeviceKind::H100] {
        let d = DeviceSpec::new(kind);
        println!("\n{} — {} SMs, {:.0} GB/s, {} KiB SMEM/SM", d.name, d.num_sms, d.mem_bandwidth / 1e9, d.smem_per_sm / 1024);
        for (label, tensor, cuda, speedup) in d.table1_rows() {
            println!(
                "  {:<12} {:>8.1} TFLOPS {:>8.1} TFLOPS {:>8.1}x",
                label, tensor, cuda, speedup
            );
        }
    }
}
