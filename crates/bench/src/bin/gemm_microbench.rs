//! GEMM microkernel throughput sweep: GFLOP/s for the naive oracle, the
//! generic packed kernel, and the runtime-dispatched kernel at square sizes
//! 64–512, spliced into `BENCH_fock.json` as the `gemm` section.
//!
//! ```sh
//! cargo run --release -p mako-bench --bin gemm_microbench
//! ```
//!
//! Knobs: `MAKO_SMOKE=1` shrinks the sweep (sizes 32/64, reduced FLOP
//! budget) for CI; `MAKO_KERNEL=generic|avx2` pins the dispatched kernel;
//! `MAKO_BENCH_OUT` (default `BENCH_fock.json`) selects the document to
//! splice into — a fresh document is created when it does not exist.

use mako_bench::gemm_bench::{json_object, splice_into_bench_json, sweep};

fn main() {
    mako_trace::init_from_env();
    let smoke = std::env::var("MAKO_SMOKE").is_ok();
    let (sizes, budget): (&[usize], f64) = if smoke {
        (&[32, 64], 2e6)
    } else {
        (&[64, 128, 256, 512], 2e8)
    };

    println!(
        "gemm_microbench: kernel = {} (override with MAKO_KERNEL=generic|avx2)",
        mako_linalg::kernel_name()
    );
    let points = sweep(sizes, budget);
    println!("  size    naive  generic  microkernel   (GFLOP/s)");
    for p in &points {
        println!(
            "  {:>4}  {:>7.3}  {:>7.3}  {:>11.3}",
            p.size, p.gflops_naive, p.gflops_generic, p.gflops_microkernel
        );
    }

    let out = std::env::var("MAKO_BENCH_OUT").unwrap_or_else(|_| "BENCH_fock.json".to_string());
    let existing = std::fs::read_to_string(&out).ok();
    let doc = splice_into_bench_json(existing.as_deref(), &json_object(&points));
    std::fs::write(&out, doc).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nspliced gemm section into {out}");
    match mako_trace::flush() {
        Some(Ok(path)) => println!("trace written to {path}"),
        Some(Err(e)) => eprintln!("warning: trace write failed: {e}"),
        None => {}
    }
}
