//! [Table 3] Mean absolute error of converged total energies.
//!
//! The paper compares Mako's converged B3LYP energies against four external
//! packages (Psi4, PySCF, QUICK, GPU4PySCF) and finds MAEs of 0.004–0.086
//! mHartree — all within the 1 mHartree chemical-accuracy criterion. No
//! external package exists offline, so this reproduction substitutes (per
//! DESIGN.md):
//!
//! * an **independent reference implementation**: a dense RHF whose ERIs
//!   come from the Obara–Saika engine (a completely separate integral
//!   algorithm, the "QUICK-like" code path) — playing the role of the
//!   external CPU package;
//! * the **QuantMako vs FP64** comparison over a 200-molecule accuracy
//!   suite — playing the role of the quantized-vs-reference agreement the
//!   paper highlights.
//!
//! ```sh
//! cargo run --release -p mako-bench --bin table3_accuracy
//! ```

use mako::prelude::*;
use mako_chem::basis::sto3g::sto3g;
use mako_chem::builders;
use mako_eri::{eri_quartet_os, one_electron_matrices};
use mako_linalg::{eigh, gemm, sym_inv_sqrt, Matrix, Transpose};
use mako_precision::ErrorStats;
use rayon::prelude::*;

/// Dense RHF with Obara–Saika ERIs: the independent reference package.
fn rhf_obara_saika(mol: &Molecule) -> f64 {
    let basis = sto3g();
    let shells = basis.shells_for(mol);
    let layout = mako_chem::AoLayout::new(&shells);
    let n = layout.nao;
    let (s, t, v) = one_electron_matrices(&shells, mol);
    let h = t.add(&v);
    let x = sym_inv_sqrt(&s, 1e-10).unwrap();

    // Full dense ERI tensor from the independent engine.
    let mut eri = vec![0.0f64; n * n * n * n];
    let idx = |a: usize, b: usize, c: usize, d: usize| ((a * n + b) * n + c) * n + d;
    for (si, sh_i) in shells.iter().enumerate() {
        for (sj, sh_j) in shells.iter().enumerate() {
            for (sk, sh_k) in shells.iter().enumerate() {
                for (sl, sh_l) in shells.iter().enumerate() {
                    let tq = eri_quartet_os(sh_i, sh_j, sh_k, sh_l).expect("l <= 1 in STO-3G");
                    let (oi, oj, ok, ol) = (
                        layout.shell_offsets[si],
                        layout.shell_offsets[sj],
                        layout.shell_offsets[sk],
                        layout.shell_offsets[sl],
                    );
                    for a in 0..tq.dims[0] {
                        for b in 0..tq.dims[1] {
                            for c in 0..tq.dims[2] {
                                for d in 0..tq.dims[3] {
                                    eri[idx(oi + a, oj + b, ok + c, ol + d)] = tq.get(a, b, c, d);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    let n_occ = mol.n_electrons() / 2;
    let density = |f: &Matrix| -> Matrix {
        let fp = gemm(&gemm(&x, Transpose::Yes, f, Transpose::No), Transpose::No, &x, Transpose::No);
        let ed = eigh(&fp).unwrap();
        let c = gemm(&x, Transpose::No, &ed.vectors, Transpose::No);
        Matrix::from_fn(n, n, |mu, nu| {
            (0..n_occ).map(|o| c[(mu, o)] * c[(nu, o)]).sum()
        })
    };

    let mut d = density(&h);
    let mut e_prev = f64::INFINITY;
    let mut energy = 0.0;
    for _ in 0..100 {
        let mut jm = Matrix::zeros(n, n);
        let mut km = Matrix::zeros(n, n);
        for mu in 0..n {
            for nu in 0..n {
                let mut jv = 0.0;
                let mut kv = 0.0;
                // J_{μν} = Σ_{λσ} D_{λσ} (μν|λσ); K_{μν} = Σ_{λσ} D_{λσ} (μλ|νσ).
                for la in 0..n {
                    for siq in 0..n {
                        jv += d[(la, siq)] * eri[idx(mu, nu, la, siq)];
                        kv += d[(la, siq)] * eri[idx(mu, la, nu, siq)];
                    }
                }
                jm[(mu, nu)] = jv;
                km[(mu, nu)] = kv;
            }
        }
        let mut f = h.clone();
        f.axpy(2.0, &jm);
        f.axpy(-1.0, &km);
        energy = 2.0 * d.dot(&h) + 2.0 * d.dot(&jm) - d.dot(&km) + mol.nuclear_repulsion();
        if (energy - e_prev).abs() < 1e-9 {
            break;
        }
        e_prev = energy;
        d = density(&f);
    }
    energy
}

fn main() {
    // -----------------------------------------------------------------
    // Part 1: Mako vs the independent Obara–Saika reference (the stand-in
    // for the external CPU packages of Table 3).
    let engine = MakoEngine::new();
    let reference_set: Vec<Molecule> = vec![
        builders::water(),
        builders::methane(),
        builders::ammonia(),
        builders::water_cluster(2),
    ];
    println!("Table 3 (part 1): Mako FP64 vs independent Obara-Saika RHF reference\n");
    println!("{:<12} {:>16} {:>16} {:>12}", "molecule", "Mako/Ha", "OS ref/Ha", "|Δ|/mHa");
    let mut st_ref = ErrorStats::new();
    for mol in &reference_set {
        let mako_e = engine.run_rhf(mol, BasisFamily::Sto3g).expect("scf run").energy;
        let os_e = rhf_obara_saika(mol);
        st_ref.push(os_e, mako_e);
        println!(
            "{:<12} {:>16.8} {:>16.8} {:>12.5}",
            mol.name,
            mako_e,
            os_e,
            (mako_e - os_e).abs() * 1e3
        );
    }
    println!("MAE vs independent implementation: {:.4} mHa (criterion: < 1 mHa)\n", st_ref.mae() * 1e3);

    // -----------------------------------------------------------------
    // Part 2: QuantMako vs FP64 over the 200-molecule accuracy suite.
    let suite_size = std::env::var("MAKO_SUITE_SIZE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let suite = builders::accuracy_suite(suite_size);
    let quant_engine = MakoEngine::new().with_quantization(true);
    let diffs: Vec<(f64, f64)> = suite
        .par_iter()
        .map(|mol| {
            let e64 = engine.run_rhf(mol, BasisFamily::Sto3g).expect("scf run").energy;
            let eq = quant_engine.run_rhf(mol, BasisFamily::Sto3g).expect("scf run").energy;
            (e64, eq)
        })
        .collect();
    let mut st = ErrorStats::new();
    let mut within = 0usize;
    for (e64, eq) in &diffs {
        st.push(*e64, *eq);
        if (e64 - eq).abs() < 1e-3 {
            within += 1;
        }
    }
    println!("Table 3 (part 2): QuantMako vs FP64 over {} molecules", suite.len());
    println!("  MAE      : {:.4} mHa", st.mae() * 1e3);
    println!("  max |Δ|  : {:.4} mHa", st.max_abs() * 1e3);
    println!("  within 1 mHa: {}/{}", within, suite.len());
    println!("\npaper Table 3 MAEs: Psi4 0.023, PySCF 0.004, QUICK 0.086, GPU4PySCF 0.004 mHa");
    assert_eq!(within, suite.len(), "every molecule must satisfy chemical accuracy");
}
