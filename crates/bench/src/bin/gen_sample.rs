//! Regenerate the sample XYZ inputs under `sample/` (artifact parity with
//! the paper's `sample/water60.xyz`).
//!
//! ```sh
//! cargo run --release -p mako-bench --bin gen_sample
//! ```

fn main() {
    std::fs::create_dir_all("sample").expect("create sample dir");
    let m = mako_chem::builders::water_cluster(60);
    std::fs::write("sample/water60.xyz", m.to_xyz()).unwrap();
    let w = mako_chem::builders::water();
    std::fs::write("sample/water.xyz", w.to_xyz()).unwrap();
    let g = mako_chem::builders::polyglycine(2);
    std::fs::write("sample/gly2.xyz", g.to_xyz()).unwrap();
    println!("wrote sample/water60.xyz, sample/water.xyz, sample/gly2.xyz");
}
