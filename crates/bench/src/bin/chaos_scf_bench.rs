//! Chaos benchmark: distributed SCF under injected faults vs the quiet
//! cluster, plus a checkpoint → kill → restart leg — quantifying what
//! recovery costs on the simulated cluster clock while proving it costs
//! *nothing* in the numbers (bitwise-identical converged energies).
//!
//! Results land in `BENCH_chaos.json` (schema documented in DESIGN.md §10).
//!
//! ```sh
//! cargo run --release -p mako-bench --bin chaos_scf_bench
//! ```
//!
//! Knobs: `MAKO_SMOKE=1` (small molecule, single rank count — for CI
//! boxes), `MAKO_BENCH_WATERS=n` (built-in n-water cluster, default 4),
//! `MAKO_FAULT_SEED` (fault-plan seed, default 6 — drawn so the chaotic
//! config kills at least one rank at both default rank counts),
//! `MAKO_THREADS` (comma-separated simulated rank counts, default `2,4`),
//! `MAKO_BENCH_ETOL` (energy tolerance, default 1e-9), `MAKO_BENCH_OUT`
//! (output path, default `BENCH_chaos.json` — smoke harnesses point this
//! at scratch).

use mako_accel::cluster::ClusterSpec;
use mako_accel::fault::{FaultConfig, FaultPlan, RecoveryLedger};
use mako_chem::basis::sto3g::sto3g;
use mako_chem::builders;
use mako_scf::scf::{CheckpointPolicy, DistributedScf, ScfConfig, ScfDriver, ScfRunOptions};
use mako_scf::{ScfCheckpoint, ScfError};
use std::fmt::Write as _;
use std::time::Instant;

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Comma-separated rank-count list (`MAKO_THREADS`), e.g. `2,4`; falls back
/// to `default` when unset or unparsable.
fn env_rank_list(key: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(key)
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t: &usize| t >= 1)
                .collect::<Vec<usize>>()
        })
        .filter(|l| !l.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

struct RankRow {
    ranks: usize,
    quiet_wall: f64,
    chaos_wall: f64,
    energy: f64,
    iterations: usize,
    device_seconds: f64,
    recovery: RecoveryLedger,
    bitwise: bool,
}

fn main() {
    mako_trace::init_from_env();
    let smoke = std::env::var("MAKO_SMOKE").map(|v| v == "1").unwrap_or(false);
    let waters = env_usize("MAKO_BENCH_WATERS", if smoke { 2 } else { 4 });
    let mol = builders::water_cluster(waters);
    let label = format!("water{waters} cluster (STO-3G{})", if smoke { ", smoke" } else { "" });
    let seed = std::env::var("MAKO_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(6);
    let e_tol = env_f64("MAKO_BENCH_ETOL", if smoke { 1e-8 } else { 1e-9 });
    let default_ranks: &[usize] = if smoke { &[2] } else { &[2, 4] };
    let rank_list = env_rank_list("MAKO_THREADS", default_ranks);

    let config = |dist: DistributedScf| ScfConfig {
        e_tol,
        max_iterations: 60,
        distributed: Some(dist),
        ..ScfConfig::default()
    };
    let probe = ScfDriver::new(&mol, &sto3g(), ScfConfig { e_tol, ..ScfConfig::default() });
    println!(
        "chaos_scf_bench: {label}  nao={}  batches={}  quartets={}  fault_seed={seed}",
        probe.nao(),
        probe.nbatches(),
        probe.nquartets()
    );

    // ---- Rank sweep: quiet cluster vs chaotic cluster, same seed. ----
    let mut rows: Vec<RankRow> = Vec::new();
    let mut all_bitwise = true;
    for &ranks in &rank_list {
        let quiet_driver = ScfDriver::new(&mol, &sto3g(), config(DistributedScf::new(ranks)));
        let t0 = Instant::now();
        let quiet = quiet_driver.run().expect("quiet distributed scf");
        let quiet_wall = t0.elapsed().as_secs_f64();
        assert!(quiet.converged, "quiet {ranks}-rank SCF failed to converge");
        assert!(
            quiet.clock.total_recovery().quiet(),
            "quiet cluster fired recovery"
        );

        let plan = FaultPlan::seeded(seed, ranks, &FaultConfig::chaotic());
        let chaos_driver = ScfDriver::new(
            &mol,
            &sto3g(),
            config(DistributedScf {
                fault_plan: Some(plan),
                cluster: Some(ClusterSpec::azure_nd_a100_v4()),
                ..DistributedScf::new(ranks)
            }),
        );
        let t0 = Instant::now();
        let chaos = chaos_driver.run().expect("chaotic distributed scf");
        let chaos_wall = t0.elapsed().as_secs_f64();
        assert!(chaos.converged, "chaotic {ranks}-rank SCF failed to converge");

        let bitwise = chaos.energy.to_bits() == quiet.energy.to_bits()
            && chaos.iterations == quiet.iterations
            && chaos.total_seconds.to_bits() == quiet.total_seconds.to_bits();
        all_bitwise &= bitwise;
        let recovery = chaos.clock.total_recovery();
        println!(
            "  {ranks} rank(s): E = {:.12} Ha  ({} iterations)  bitwise_identical={bitwise}",
            chaos.energy, chaos.iterations
        );
        println!(
            "    recovery: {} retries  {} stolen  {} re-run  {} lost  {} allreduce retries  overhead {:.4} s ({:.4} → {:.4})",
            recovery.transient_retries,
            recovery.stolen_batches,
            recovery.rerun_batches,
            recovery.ranks_lost,
            recovery.allreduce_retries,
            recovery.overhead_seconds(),
            recovery.fault_free_seconds,
            recovery.degraded_seconds
        );
        rows.push(RankRow {
            ranks,
            quiet_wall,
            chaos_wall,
            energy: chaos.energy,
            iterations: chaos.iterations,
            device_seconds: chaos.total_seconds,
            recovery,
            bitwise,
        });
    }
    assert!(all_bitwise, "faults changed converged numerics somewhere");

    // ---- Checkpoint → kill → restart leg, on the chaotic cluster. ----
    let restart_ranks = rank_list[0];
    let plan = FaultPlan::seeded(seed, restart_ranks, &FaultConfig::chaotic());
    let restart_driver = ScfDriver::new(
        &mol,
        &sto3g(),
        config(DistributedScf {
            fault_plan: Some(plan),
            ..DistributedScf::new(restart_ranks)
        }),
    );
    let full = restart_driver.run().expect("uninterrupted chaotic scf");
    let kill_after = (full.iterations / 2).max(1);
    let ckpt_path = std::env::temp_dir().join(format!("mako_chaos_bench_{}.ckpt", std::process::id()));
    let err = restart_driver
        .run_with(ScfRunOptions {
            checkpoint: Some(CheckpointPolicy::new(1, ckpt_path.clone())),
            kill_after: Some(kill_after),
            ..ScfRunOptions::default()
        })
        .expect_err("killed run must not return Ok");
    assert_eq!(err, ScfError::Killed { iterations: kill_after });
    let checkpoint_bytes = std::fs::metadata(&ckpt_path).map(|m| m.len()).unwrap_or(0);
    let ck = ScfCheckpoint::load(&ckpt_path).expect("load checkpoint");
    let t0 = Instant::now();
    let resumed = restart_driver
        .run_with(ScfRunOptions {
            resume: Some(ck),
            ..ScfRunOptions::default()
        })
        .expect("resumed scf");
    let resume_wall = t0.elapsed().as_secs_f64();
    let restart_bitwise = resumed.energy.to_bits() == full.energy.to_bits()
        && resumed.iterations == full.iterations
        && resumed.total_seconds.to_bits() == full.total_seconds.to_bits();
    let _ = std::fs::remove_file(&ckpt_path);
    println!(
        "  restart: killed @ iter {kill_after}, resumed to E = {:.12} Ha in {} iterations  bitwise_identical={restart_bitwise}  ({checkpoint_bytes} checkpoint bytes)",
        resumed.energy, resumed.iterations
    );
    assert!(
        restart_bitwise,
        "resumed trajectory diverged from the uninterrupted run"
    );

    // ---- BENCH_chaos.json ----
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"chaos_scf_bench\",");
    let _ = writeln!(json, "  \"molecule\": \"{label}\",");
    let _ = writeln!(json, "  \"nao\": {},", probe.nao());
    let _ = writeln!(json, "  \"fault_seed\": {seed},");
    let _ = writeln!(json, "  \"e_tol\": {e_tol:e},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"ranks\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let rec = &r.recovery;
        let _ = writeln!(
            json,
            "    {{\"ranks\": {}, \"energy_ha\": {:.12}, \"iterations\": {}, \"device_seconds\": {:.9}, \"quiet_wall_s\": {:.6}, \"chaos_wall_s\": {:.6}, \"bitwise_identical\": {}, \"recovery\": {{\"transient_retries\": {}, \"backoff_seconds\": {:.6}, \"straggler_ranks\": {}, \"stolen_batches\": {}, \"rerun_batches\": {}, \"ranks_lost\": {}, \"allreduce_retries\": {}, \"fault_free_seconds\": {:.9}, \"degraded_seconds\": {:.9}, \"overhead_seconds\": {:.9}}}}}{comma}",
            r.ranks,
            r.energy,
            r.iterations,
            r.device_seconds,
            r.quiet_wall,
            r.chaos_wall,
            r.bitwise,
            rec.transient_retries,
            rec.backoff_seconds,
            rec.straggler_ranks,
            rec.stolen_batches,
            rec.rerun_batches,
            rec.ranks_lost,
            rec.allreduce_retries,
            rec.fault_free_seconds,
            rec.degraded_seconds,
            rec.overhead_seconds()
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"restart\": {{\"ranks\": {restart_ranks}, \"kill_after\": {kill_after}, \"checkpoint_bytes\": {checkpoint_bytes}, \"resume_wall_s\": {resume_wall:.6}, \"bitwise_identical\": {restart_bitwise}}},"
    );
    let _ = writeln!(json, "  \"bitwise_identical_all\": {}", all_bitwise && restart_bitwise);
    let _ = writeln!(json, "}}");
    let out =
        std::env::var("MAKO_BENCH_OUT").unwrap_or_else(|_| "BENCH_chaos.json".to_string());
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {out}");
    match mako_trace::flush() {
        Some(Ok(path)) => println!("trace written to {path}"),
        Some(Err(e)) => eprintln!("warning: trace write failed: {e}"),
        None => {}
    }
}
