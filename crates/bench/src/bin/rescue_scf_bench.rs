//! Self-healing SCF benchmark: the watchdog's overhead on a healthy run
//! (which must be zero in every observable — bitwise — and near zero in
//! wall time), the staged rescue ladder's recovery of a pathological
//! stretched-water SCF that plain DIIS cannot converge, and the bitwise
//! reproducibility of the *rescued* trajectory across host thread counts.
//!
//! Results land in `BENCH_rescue.json` (schema documented in DESIGN.md §12).
//!
//! ```sh
//! cargo run --release -p mako-bench --bin rescue_scf_bench
//! ```
//!
//! Knobs: `MAKO_SMOKE=1` (water dimer + 1/2 threads — for CI boxes),
//! `MAKO_THREADS` (comma-separated thread counts, default `1,2,4,8`),
//! `MAKO_BENCH_STRETCH` (O–H stretch factor of the pathological geometry,
//! default 3.5 — the full five-stage ladder; plain DIIS converges
//! milder stretches since the packed-tile engine landed), `MAKO_BENCH_OUT` (output
//! path, default `BENCH_rescue.json` — smoke harnesses point this at
//! scratch).

use mako_chem::basis::sto3g::sto3g;
use mako_chem::builders;
use mako_scf::{RescueConfig, ScfConfig, ScfDriver, ScfResult};
use std::fmt::Write as _;
use std::time::Instant;

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_thread_list(key: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(key)
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t: &usize| t >= 1)
                .collect::<Vec<usize>>()
        })
        .filter(|l| !l.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

/// Bitwise identity across every observable the rescue layer could have
/// perturbed: energy, device clock, iteration count, and the converged
/// density.
fn runs_bitwise_equal(a: &ScfResult, b: &ScfResult) -> bool {
    a.energy.to_bits() == b.energy.to_bits()
        && a.total_seconds.to_bits() == b.total_seconds.to_bits()
        && a.iterations == b.iterations
        && a.density
            .as_slice()
            .iter()
            .zip(b.density.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn main() {
    mako_trace::init_from_env();
    let smoke = std::env::var("MAKO_SMOKE").map(|v| v == "1").unwrap_or(false);
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let stretch = env_f64("MAKO_BENCH_STRETCH", 3.5);

    // ---- Part 1: healthy overhead — rescue enabled must cost nothing. ----
    let (healthy_mol, healthy_label) = if smoke {
        (builders::water_cluster(2), "water2 (STO-3G, smoke)")
    } else {
        (builders::water_cluster(3), "water3 (STO-3G)")
    };
    let healthy_cfg = ScfConfig {
        e_tol: 1e-10,
        ..ScfConfig::default()
    };
    let plain_driver = ScfDriver::new(&healthy_mol, &sto3g(), healthy_cfg.clone());
    let rescued_driver = ScfDriver::new(
        &healthy_mol,
        &sto3g(),
        ScfConfig {
            rescue: Some(RescueConfig::default()),
            ..healthy_cfg
        },
    );
    println!(
        "rescue_scf_bench: healthy workload {healthy_label}  nao={}  quartets={}",
        plain_driver.nao(),
        plain_driver.nquartets()
    );
    let t0 = Instant::now();
    let plain = plain_driver.run().expect("healthy plain run");
    let plain_wall = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let rescued = rescued_driver.run().expect("healthy rescued run");
    let rescued_wall = t0.elapsed().as_secs_f64();
    assert!(plain.converged && rescued.converged);
    assert!(
        rescued.rescue.is_empty(),
        "watchdog intervened on the healthy workload: {}",
        rescued.rescue.summary()
    );
    let healthy_bitwise = runs_bitwise_equal(&plain, &rescued);
    assert!(
        healthy_bitwise,
        "rescue-enabled healthy run is not bitwise identical to rescue-disabled"
    );
    let overhead_pct = 100.0 * (rescued_wall - plain_wall) / plain_wall.max(1e-12);
    println!(
        "  rescue off: E = {:.12} Ha  ({} iterations, {plain_wall:.3} s wall)",
        plain.energy, plain.iterations
    );
    println!(
        "  rescue on:  E = {:.12} Ha  ({} iterations, {rescued_wall:.3} s wall)  \
         bitwise_identical={healthy_bitwise}  overhead={overhead_pct:+.1}%",
        rescued.energy, rescued.iterations
    );

    // ---- Part 2: pathological recovery — the ladder earns its keep. ----
    let patho_mol = builders::stretched_water(stretch);
    let patho_cfg = |rescue: Option<RescueConfig>| ScfConfig {
        e_tol: 1e-8,
        max_iterations: 60,
        rescue,
        ..ScfConfig::default()
    };
    let t0 = Instant::now();
    let patho_plain = ScfDriver::new(&patho_mol, &sto3g(), patho_cfg(None))
        .run()
        .expect("pathological plain run");
    let patho_plain_wall = t0.elapsed().as_secs_f64();
    let rescue_driver = ScfDriver::new(&patho_mol, &sto3g(), patho_cfg(Some(RescueConfig::default())));
    let t0 = Instant::now();
    let patho_rescued = rescue_driver.run().expect("pathological rescued run");
    let patho_rescued_wall = t0.elapsed().as_secs_f64();
    let ladder: Vec<&str> = patho_rescued
        .rescue
        .stage_sequence()
        .iter()
        .map(|s| s.label())
        .collect();
    println!(
        "  pathological {} (stretch {stretch}):",
        patho_mol.name
    );
    println!(
        "    plain:   converged={}  E = {:.12} Ha  ({} iterations, {patho_plain_wall:.3} s wall)",
        patho_plain.converged, patho_plain.energy, patho_plain.iterations
    );
    println!(
        "    rescued: converged={}  E = {:.12} Ha  ({} iterations, {patho_rescued_wall:.3} s wall)  ladder=[{}]",
        patho_rescued.converged,
        patho_rescued.energy,
        patho_rescued.iterations,
        ladder.join(" → ")
    );
    assert!(
        !patho_plain.converged,
        "pathological geometry converged without rescue; raise MAKO_BENCH_STRETCH"
    );
    assert!(
        patho_rescued.converged,
        "rescue ladder failed to recover the pathological geometry"
    );
    assert!(
        !patho_rescued.rescue.is_empty(),
        "recovery claimed without any ladder interventions"
    );

    // ---- Part 3: the rescued trajectory is bitwise thread-invariant. ----
    let default_threads: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let thread_list = env_thread_list("MAKO_THREADS", default_threads);
    let mut rows: Vec<(usize, f64, bool)> = Vec::new();
    let mut all_bitwise = true;
    for &threads in &thread_list {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("build thread pool");
        let t0 = Instant::now();
        let run = pool.install(|| rescue_driver.run().expect("rescued run"));
        let wall = t0.elapsed().as_secs_f64();
        let bitwise = runs_bitwise_equal(&run, &patho_rescued)
            && run.rescue.stage_sequence() == patho_rescued.rescue.stage_sequence();
        all_bitwise &= bitwise;
        println!("  {threads} thread(s): {wall:.3} s wall  bitwise_identical={bitwise}");
        rows.push((threads, wall, bitwise));
    }
    assert!(
        all_bitwise,
        "rescued SCF trajectory drifted across thread counts"
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"rescue_scf_bench\",");
    let _ = writeln!(json, "  \"healthy_molecule\": \"{healthy_label}\",");
    let _ = writeln!(json, "  \"pathological_molecule\": \"{}\",", patho_mol.name);
    let _ = writeln!(json, "  \"stretch\": {stretch},");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(
        json,
        "  \"healthy\": {{\"energy_ha\": {:.12}, \"iterations\": {}, \"wall_off_s\": {plain_wall:.6}, \"wall_on_s\": {rescued_wall:.6}, \"overhead_percent\": {overhead_pct:.2}, \"interventions\": {}, \"bitwise_identical\": {healthy_bitwise}}},",
        rescued.energy,
        rescued.iterations,
        rescued.rescue.len()
    );
    let _ = writeln!(
        json,
        "  \"pathological_plain\": {{\"converged\": {}, \"energy_ha\": {:.12}, \"iterations\": {}, \"wall_s\": {patho_plain_wall:.6}}},",
        patho_plain.converged, patho_plain.energy, patho_plain.iterations
    );
    let _ = writeln!(
        json,
        "  \"pathological_rescued\": {{\"converged\": {}, \"energy_ha\": {:.12}, \"iterations\": {}, \"wall_s\": {patho_rescued_wall:.6}, \"ladder\": [{}]}},",
        patho_rescued.converged,
        patho_rescued.energy,
        patho_rescued.iterations,
        ladder
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "  \"threads\": [");
    for (i, (threads, wall, bitwise)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"threads\": {threads}, \"wall_s\": {wall:.6}, \"bitwise_identical\": {bitwise}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"bitwise_identical_all\": {all_bitwise}");
    let _ = writeln!(json, "}}");
    let out =
        std::env::var("MAKO_BENCH_OUT").unwrap_or_else(|_| "BENCH_rescue.json".to_string());
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {out}");
    match mako_trace::flush() {
        Some(Ok(path)) => println!("trace written to {path}"),
        Some(Err(e)) => eprintln!("warning: trace write failed: {e}"),
        None => {}
    }
}
