//! Ensemble throughput benchmark: N perturbed water clusters run
//! one-at-a-time vs in lockstep through the [`mako_scf::EnsembleDriver`],
//! which fuses same-class quartet sub-batches *across molecules* into shared
//! kernel launches and shares one tuner cache fleet-wide.
//!
//! Reported both ways: **molecules/s** and **device-seconds/molecule** (the
//! simulated-device clock, the paper's currency), plus host wall time. The
//! batched run must beat the solo baseline on the device clock — launch
//! latency is amortized across the fleet — while every member stays
//! **bitwise identical** to its one-at-a-time run (energy, density,
//! iterations; the device clock is the one observable fusion may change).
//!
//! Results land in `BENCH_batch.json` (schema documented in DESIGN.md §9).
//!
//! ```sh
//! cargo run --release -p mako-bench --bin ensemble_bench
//! ```
//!
//! Knobs: `MAKO_SMOKE=1` (6 water monomers, 1/2 threads — for CI boxes),
//! `MAKO_ENSEMBLE_SIZE` (member count, default 100), `MAKO_CLUSTER_WATERS`
//! (waters per cluster, default 2), `MAKO_THREADS` (comma-separated thread
//! counts, default `1,2,4,8`), `MAKO_BENCH_OUT` (output path, default
//! `BENCH_batch.json` — smoke harnesses point this at scratch).

use mako_chem::basis::sto3g::sto3g;
use mako_chem::builders;
use mako_scf::{EnsembleConfig, EnsembleDriver, ScfConfig, ScfDriver, ScfResult};
use std::fmt::Write as _;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n >= 1)
        .unwrap_or(default)
}

fn env_thread_list(key: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(key)
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t: &usize| t >= 1)
                .collect::<Vec<usize>>()
        })
        .filter(|l| !l.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

/// Bitwise identity on every observable the fusion must not touch. The
/// device clock (`total_seconds`, `iteration_seconds`) is deliberately
/// excluded: fused launch pricing is the thing this benchmark measures.
fn members_bitwise_equal(a: &ScfResult, b: &ScfResult) -> bool {
    a.energy.to_bits() == b.energy.to_bits()
        && a.iterations == b.iterations
        && a.converged == b.converged
        && a.density
            .as_slice()
            .iter()
            .zip(b.density.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn main() {
    mako_trace::init_from_env();
    let smoke = std::env::var("MAKO_SMOKE").map(|v| v == "1").unwrap_or(false);
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let (n_default, waters_default) = if smoke { (6, 1) } else { (100, 2) };
    let n = env_usize("MAKO_ENSEMBLE_SIZE", n_default);
    let waters = env_usize("MAKO_CLUSTER_WATERS", waters_default);
    let config = ScfConfig::default();

    let mols: Vec<_> = (0..n as u64)
        .map(|seed| builders::perturbed_water_cluster(waters, seed, 0.02))
        .collect();
    println!(
        "ensemble_bench: {n} perturbed (H2O){waters} clusters (STO-3G, ±0.02 Å)  \
         host_cpus={host_cpus}  smoke={smoke}"
    );

    // ---- Solo baseline: one driver (and one tuning pass) per molecule. ----
    let t0 = Instant::now();
    let solo: Vec<ScfResult> = mols
        .iter()
        .map(|mol| {
            ScfDriver::new(mol, &sto3g(), config.clone())
                .run()
                .expect("solo run")
        })
        .collect();
    let solo_wall = t0.elapsed().as_secs_f64();
    assert!(solo.iter().all(|r| r.converged), "solo baseline diverged");
    let solo_device: f64 = solo.iter().map(|r| r.total_seconds).sum();

    // ---- Batched: one fleet, shared tuning, fused launches. ----
    let t0 = Instant::now();
    let driver = EnsembleDriver::try_new(&mols, &sto3g(), config.clone(), EnsembleConfig::default())
        .expect("ensemble driver");
    let batch = driver.run();
    let batch_wall = t0.elapsed().as_secs_f64();
    assert!(batch.all_converged(), "batched run diverged");
    let batch_device = batch.total_member_device_seconds();

    // ---- Per-molecule bitwise identity (the fusion contract). ----
    let mut identical = true;
    for (m, member) in batch.members.iter().enumerate() {
        let got = member.as_ref().expect("member result");
        if !members_bitwise_equal(got, &solo[m]) {
            identical = false;
            eprintln!("member {m} diverged from its solo run: {}", mols[m].name);
        }
    }
    assert!(identical, "fusion perturbed member numerics");

    let ledger = &batch.ledger;
    let solo_rate = n as f64 / solo_device;
    let batch_rate = n as f64 / batch_device;
    println!(
        "  solo:    {solo_device:.6} device-s total  {:.6} device-s/molecule  \
         {solo_rate:.2} molecules/device-s  ({solo_wall:.2} s wall)",
        solo_device / n as f64
    );
    println!(
        "  batched: {batch_device:.6} device-s total  {:.6} device-s/molecule  \
         {batch_rate:.2} molecules/device-s  ({batch_wall:.2} s wall)",
        batch_device / n as f64
    );
    println!(
        "  fusion:  {} launches → {} ({} avoided)  saving {:.6} device-s  \
         tuner: {} sweeps, {} cache hits",
        ledger.solo_launches,
        ledger.fused_launches,
        ledger.launches_avoided(),
        ledger.fusion_savings_seconds(),
        driver.cache_tunes(),
        driver.cache_hits(),
    );
    assert!(
        batch_device < solo_device,
        "batched device time did not beat solo: {batch_device} vs {solo_device}"
    );

    // ---- Thread sweep: the batched fleet is bitwise thread-invariant, ----
    // ---- device clock included (fused pricing is deterministic).      ----
    let default_threads: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let thread_list = env_thread_list("MAKO_THREADS", default_threads);
    let mut rows: Vec<(usize, f64, bool)> = Vec::new();
    let mut all_bitwise = true;
    for &threads in &thread_list {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("build thread pool");
        let t0 = Instant::now();
        let rerun = pool.install(|| driver.run());
        let wall = t0.elapsed().as_secs_f64();
        let bitwise = rerun
            .members
            .iter()
            .zip(&batch.members)
            .all(|(a, b)| {
                let (a, b) = (
                    a.as_ref().expect("member result"),
                    b.as_ref().expect("member result"),
                );
                members_bitwise_equal(a, b)
                    && a.total_seconds.to_bits() == b.total_seconds.to_bits()
            })
            && rerun.ledger.fused_device_seconds.to_bits()
                == ledger.fused_device_seconds.to_bits();
        all_bitwise &= bitwise;
        println!(
            "  {threads} thread(s): {wall:.2} s wall  {:.2} molecules/s  bitwise_identical={bitwise}",
            n as f64 / wall
        );
        rows.push((threads, wall, bitwise));
    }
    assert!(all_bitwise, "batched fleet drifted across thread counts");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"ensemble_bench\",");
    let _ = writeln!(json, "  \"molecules\": {n},");
    let _ = writeln!(json, "  \"waters_per_cluster\": {waters},");
    let _ = writeln!(json, "  \"perturbation_angstrom\": 0.02,");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(
        json,
        "  \"solo\": {{\"wall_s\": {solo_wall:.6}, \"device_s\": {solo_device:.9}, \
         \"device_s_per_molecule\": {:.9}, \"molecules_per_device_s\": {solo_rate:.6}, \
         \"molecules_per_wall_s\": {:.6}}},",
        solo_device / n as f64,
        n as f64 / solo_wall
    );
    let _ = writeln!(
        json,
        "  \"batched\": {{\"wall_s\": {batch_wall:.6}, \"device_s\": {batch_device:.9}, \
         \"device_s_per_molecule\": {:.9}, \"molecules_per_device_s\": {batch_rate:.6}, \
         \"molecules_per_wall_s\": {:.6}}},",
        batch_device / n as f64,
        n as f64 / batch_wall
    );
    let _ = writeln!(
        json,
        "  \"device_speedup\": {:.6},",
        solo_device / batch_device
    );
    let _ = writeln!(
        json,
        "  \"fusion\": {{\"super_iterations\": {}, \"fused_launches\": {}, \
         \"solo_launches\": {}, \"launches_avoided\": {}, \"savings_device_s\": {:.9}}},",
        ledger.super_iterations,
        ledger.fused_launches,
        ledger.solo_launches,
        ledger.launches_avoided(),
        ledger.fusion_savings_seconds()
    );
    let _ = writeln!(
        json,
        "  \"tuner\": {{\"sweeps\": {}, \"cache_hits\": {}}},",
        driver.cache_tunes(),
        driver.cache_hits()
    );
    let _ = writeln!(json, "  \"threads\": [");
    for (i, (threads, wall, bitwise)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"threads\": {threads}, \"wall_s\": {wall:.6}, \"bitwise_identical\": {bitwise}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"bitwise_identical_all\": {all_bitwise}");
    let _ = writeln!(json, "}}");
    let out =
        std::env::var("MAKO_BENCH_OUT").unwrap_or_else(|_| "BENCH_batch.json".to_string());
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {out}");
    match mako_trace::flush() {
        Some(Ok(path)) => println!("trace written to {path}"),
        Some(Err(e)) => eprintln!("warning: trace write failed: {e}"),
        None => {}
    }
}
