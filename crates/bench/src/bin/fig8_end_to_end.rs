//! [Figure 8] End-to-end SCF-iteration time vs GPU4PySCF on polyglycine
//! chains and water clusters of increasing size, def2-TZVP(-like) and
//! def2-QZVP(-like).
//!
//! The paper's metric is the average SCF-iteration time (excluding the
//! first iteration) on a single A100. Here the per-iteration ERI + XC +
//! diagonalization device time is produced by the statistical workload
//! model with architecture-tuned kernels — the same machinery the real
//! numerics run through, extended to basis sizes a CPU can't integrate
//! explicitly (DESIGN.md documents this substitution).
//!
//! ```sh
//! cargo run --release -p mako-bench --bin fig8_end_to_end
//! ```

use mako_accel::{CostModel, DeviceSpec};
use mako_chem::{builders, BasisFamily, Molecule};
use mako_compiler::KernelCache;
use mako_kernels::gpu4pyscf_like_cost;
use mako_precision::Precision;
use mako_scf::parallel::{batch_costs, build_workload, replicated_serial_seconds};

fn iteration_time_mako(
    mol: &Molecule,
    family: BasisFamily,
    model: &CostModel,
    cache: &KernelCache,
) -> (usize, f64) {
    let basis = family.basis_for(&mol.elements());
    let w = build_workload(mol, &basis);
    let eri: f64 = batch_costs(&w, model, cache, Precision::Fp16, 200_000).iter().sum();
    (w.nao, eri + replicated_serial_seconds(w.nao, model))
}

fn iteration_time_gpu4pyscf(mol: &Molecule, family: BasisFamily, model: &CostModel) -> f64 {
    let basis = family.basis_for(&mol.elements());
    let w = build_workload(mol, &basis);
    let eri: f64 = w
        .classes
        .iter()
        .map(|&(class, count)| gpu4pyscf_like_cost(&class, count.round().max(1.0) as usize, model))
        .sum();
    eri + replicated_serial_seconds(w.nao, model)
}

fn main() {
    let model = CostModel::new(DeviceSpec::a100());
    let cache = KernelCache::new();

    println!("Figure 8: average SCF-iteration time on a single A100 (modeled)\n");
    for family in [BasisFamily::Def2TzvpLike, BasisFamily::Def2QzvpLike] {
        println!("=== {} ===", family.name());

        println!("polyglycine chains (linear):");
        println!(
            "{:<10} {:>6} {:>12} {:>14} {:>9}",
            "system", "nao", "Mako t/s", "GPU4PySCF t/s", "speedup"
        );
        for n in [1usize, 2, 4, 6, 8] {
            let mol = builders::polyglycine(n);
            let (nao, mako) = iteration_time_mako(&mol, family, &model, &cache);
            let base = iteration_time_gpu4pyscf(&mol, family, &model);
            println!(
                "(gly){:<5} {:>6} {:>12.4} {:>14.4} {:>8.1}x",
                n,
                nao,
                mako,
                base,
                base / mako
            );
        }

        println!("water clusters (globular):");
        println!(
            "{:<10} {:>6} {:>12} {:>14} {:>9}",
            "system", "nao", "Mako t/s", "GPU4PySCF t/s", "speedup"
        );
        for n in [2usize, 5, 10, 15, 20] {
            let mol = builders::water_cluster(n);
            let (nao, mako) = iteration_time_mako(&mol, family, &model, &cache);
            let base = iteration_time_gpu4pyscf(&mol, family, &model);
            println!(
                "(H2O){:<5} {:>6} {:>12.4} {:>14.4} {:>8.1}x",
                n,
                nao,
                mako,
                base,
                base / mako
            );
        }
        println!();
    }
    println!("paper trend: Mako's advantage over GPU4PySCF grows with system size");
    println!("and especially with the basis set's angular momentum (TZVP → QZVP).");
}
