//! [Figure 7] Ablation study.
//!
//! * 7a: baseline (unfused) → +KernelMako (fusion + swizzle + coalescing)
//!   → +CompilerMako (autotuning); paper reports 3.98× average overall.
//! * 7b: QuantMako quantized kernels vs the FP64 kernels; paper reports
//!   4.8× average.
//! * extra design ablations DESIGN.md calls out: swizzle on/off,
//!   GEMM coalescing on/off, ILP factor sweep.
//!
//! ```sh
//! cargo run --release -p mako-bench --bin fig7_ablation
//! ```

use mako_accel::{CostModel, DeviceSpec, SmemLayout};
use mako_bench::{diagonal_classes, geomean};
use mako_compiler::KernelCache;
use mako_kernels::pipeline::{simulate_batch_cost, FusionStrategy, PipelineConfig};
use mako_kernels::LIBINTX_CONFIG;
use mako_precision::Precision;

const BATCH: usize = 200_000;

fn main() {
    let model = CostModel::new(DeviceSpec::a100());
    let cache = KernelCache::new();
    let classes: Vec<_> = [(1usize, 1usize), (1, 5), (5, 5)]
        .iter()
        .flat_map(|&(a, b)| diagonal_classes(a, b))
        .collect();

    // ------------------------------------------------------------------
    println!("Figure 7(a): incremental speedup over the unfused FP64 baseline\n");
    println!(
        "{:<18} {:>10} {:>14} {:>14}",
        "class", "baseline", "+KernelMako", "+CompilerMako"
    );
    let mut kernel_speedups = Vec::new();
    let mut tuned_speedups = Vec::new();
    for class in &classes {
        let base = simulate_batch_cost(class, BATCH, &LIBINTX_CONFIG, &model);
        // KernelMako: fused + swizzled with a fixed, untuned configuration
        // (fall back to FuseRPq when full fusion can't launch).
        let fixed = PipelineConfig::kernel_mako_fp64();
        let mut km = simulate_batch_cost(class, BATCH, &fixed, &model);
        if !km.is_finite() {
            km = simulate_batch_cost(
                class,
                BATCH,
                &PipelineConfig {
                    fusion: FusionStrategy::FuseRPq,
                    ..fixed
                },
                &model,
            );
        }
        if !km.is_finite() {
            km = base;
        }
        // CompilerMako: plan + tune.
        let tuned = cache.get_or_tune(class, Precision::Fp64, &model);
        let cm = tuned.cost_s / tuned_probe_ratio(BATCH);
        let cm = if cm.is_finite() && cm > 0.0 {
            simulate_batch_cost(class, BATCH, &tuned.config, &model)
        } else {
            km
        };
        kernel_speedups.push(base / km);
        tuned_speedups.push(base / cm);
        println!(
            "{:<18} {:>9.1}x {:>13.2}x {:>13.2}x",
            class.label(),
            1.0,
            base / km,
            base / cm
        );
    }
    println!(
        "\naverage: +KernelMako {:.2}x, +CompilerMako {:.2}x   (paper overall: 3.98x)",
        geomean(&kernel_speedups),
        geomean(&tuned_speedups)
    );

    // ------------------------------------------------------------------
    println!("\nFigure 7(b): QuantMako quantized kernels vs FP64 kernels\n");
    println!("{:<18} {:>12}", "class", "speedup");
    let mut quant_speedups = Vec::new();
    for class in &classes {
        let fp64 = cache.get_or_tune(class, Precision::Fp64, &model);
        let q = cache.get_or_tune(class, Precision::Fp16, &model);
        let t64 = simulate_batch_cost(class, BATCH, &fp64.config, &model);
        let tq = simulate_batch_cost(class, BATCH, &q.config, &model);
        quant_speedups.push(t64 / tq);
        println!("{:<18} {:>11.2}x", class.label(), t64 / tq);
    }
    println!(
        "\naverage QuantMako speedup: {:.2}x   (paper: 4.8x)",
        geomean(&quant_speedups)
    );

    // ------------------------------------------------------------------
    println!("\nExtra ablations (DESIGN.md):");

    // Swizzle on/off for a transpose-heavy class.
    let c = &classes[7]; // (dd|dd) K={1,5}
    let tuned = cache.get_or_tune(c, Precision::Fp64, &model).config;
    let with = simulate_batch_cost(c, BATCH, &tuned, &model);
    let without = simulate_batch_cost(
        c,
        BATCH,
        &PipelineConfig {
            layout: SmemLayout::Linear,
            ..tuned
        },
        &model,
    );
    println!("  layout swizzle off on {}: {:.2}x slower", c.label(), without / with);

    // Coalescing on/off for the K=1 g class.
    let g = mako_eri::batch::EriClass {
        la: 4,
        lb: 4,
        lc: 4,
        ld: 4,
        kab: 1,
        kcd: 1,
    };
    let quant_g = cache.get_or_tune(&g, Precision::Fp16, &model).config;
    let coal = simulate_batch_cost(&g, BATCH, &quant_g, &model);
    let uncoal = simulate_batch_cost(
        &g,
        BATCH,
        &PipelineConfig {
            fusion: FusionStrategy::FuseRPq,
            ..quant_g
        },
        &model,
    );
    println!(
        "  GEMM coalescing off on (gg|gg) K={{1,1}} quantized: {:.2}x slower",
        uncoal / coal
    );

    // ILP sweep on a compute-bound fused class.
    let c2 = mako_eri::batch::EriClass {
        la: 2,
        lb: 2,
        lc: 2,
        ld: 2,
        kab: 5,
        kcd: 5,
    };
    print!("  ILP sweep on (dd|dd) K={{5,5}} (seconds): ");
    for ilp in [1usize, 2, 4, 8, 16, 32] {
        let cfg = PipelineConfig {
            ilp,
            ..PipelineConfig::kernel_mako_fp64()
        };
        print!("ilp{}={:.4} ", ilp, simulate_batch_cost(&c2, BATCH, &cfg, &model));
    }
    println!();
}

fn tuned_probe_ratio(_batch: usize) -> f64 {
    1.0
}
