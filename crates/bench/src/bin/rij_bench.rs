//! RI-J density-fitting benchmark: adaptive-precision tiled Coulomb builds
//! vs the dense quartet path on water clusters (STO-3G AO basis, the
//! even-tempered RI-J universal auxiliary basis).
//!
//! Two sections:
//!
//! **Fit section** (`MAKO_RIJ_FIT_WATERS`, default 4): the dense quartet
//! J is *evaluated* uncapped on a sub-cluster small enough for host time,
//! and the FP64 RI-J `E_J` is asserted variationally bounded above by the
//! dense value and within `MAKO_RIJ_FIT_TOL` (relative) of it. This is
//! the ground-truth physics check.
//!
//! **Scale section** (`MAKO_RIJ_WATERS`, default 60): the full cluster.
//! Evaluating ~18M dense quartets is not host-feasible, so the dense
//! baseline is priced *analytically*: the bench tallies the surviving
//! quartets per [`EriClass`] with the same bra ≥ ket / Schwarz-product
//! rule `batch_quartets` uses, then prices one launch per class through
//! the same [`batch_device_seconds`] call `build_jk`'s FP64-reference
//! plan would make — identical device arithmetic, no quartet storage.
//! The RI-J side is fully evaluated (3c/2c build + tiled contractions).
//! Measures, Table-2 style:
//!
//! * per-tier J accuracy — every tile pinned to one of int8 / fp16 /
//!   bf16 / tf32, RMSE and max deviation against the RI-J FP64 reference;
//! * the adaptive schedule under `MAKO_RIJ_BUDGET`: tier census, the
//!   rigorous per-pass error bounds (asserted ≤ budget), and the measured
//!   end-to-end deviation (asserted ≤ budget × `MAKO_RIJ_AMP` — the
//!   metric solve amplifies pass-1 error by at most the metric's
//!   conditioning);
//! * device-clock economics: the dense J path re-pays its quartet
//!   evaluation on every SCF iteration, while RI-J pays a one-time 3c/2c
//!   build and then two cheap tiled contractions per iteration. Asserts
//!   per-iteration device speedup ≥ `MAKO_RIJ_MIN_SPEEDUP` (default 2)
//!   and reports the build's break-even iteration count. (The dense
//!   baseline prices the shared quartet evaluation of a J+K build; a
//!   J-only dense build evaluates the same quartets, so the comparison
//!   holds for it too.)
//! * bitwise thread-invariance: the adaptive build is repeated under
//!   rayon pools of `MAKO_THREADS` (default `1,2,4,8`) and every J digest
//!   and device-clock bit pattern must match — asserted, not just logged.
//!
//! Results land in `BENCH_rij.json` (`MAKO_BENCH_OUT` overrides).
//!
//! ```sh
//! cargo run --release -p mako-bench --bin rij_bench
//! ```
//!
//! Knobs: `MAKO_RIJ_WATERS` (scale-section cluster, default 60;
//! `MAKO_SMOKE=1` drops it to 2), `MAKO_RIJ_FIT_WATERS` (fit-section
//! cluster, default 4, clamped to `MAKO_RIJ_WATERS`), `MAKO_BENCH_SCREEN`
//! (Schwarz pair threshold, default 1e-5), `MAKO_RIJ_BUDGET` (adaptive
//! per-element error budget, default 1e-6), `MAKO_RIJ_BUDGET_LOOSE` (the
//! second, tier-mixing adaptive point, default 1e-2), `MAKO_RIJ_FIT_TOL`
//! (relative
//! `E_J` fit tolerance vs dense, default 5e-3), `MAKO_RIJ_AMP`
//! (end-to-end amplification allowance over the budget, default 1e3),
//! `MAKO_RIJ_MIN_SPEEDUP` (per-iteration device speedup floor, default
//! 2), `MAKO_THREADS`, `MAKO_BENCH_OUT`, `MAKO_TRACE` (tracing is
//! numerically inert).

use mako_accel::{CostModel, DeviceSpec};
use mako_chem::basis::{rij_universal, sto3g::sto3g};
use mako_chem::builders::water_cluster;
use mako_chem::{AoLayout, Element};
use mako_eri::batch::{batch_quartets, EriClass};
use mako_eri::rij::AuxBasis;
use mako_eri::screening::{build_screened_pairs, ScreenedPair};
use mako_kernels::pipeline::{batch_device_seconds, PipelineConfig};
use mako_linalg::Matrix;
use mako_precision::TilePrecision;
use mako_quant::{QuantSchedule, RijSchedule};
use mako_scf::fock::build_jk;
use mako_scf::rij::{RijConfig, RijEngine, RijJStats};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_thread_list(key: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(key)
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t: &usize| t >= 1)
                .collect::<Vec<usize>>()
        })
        .filter(|l| !l.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

/// FNV-1a over the bit patterns of a matrix — the cross-thread digest.
fn digest(m: &Matrix) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for x in m.as_slice() {
        for byte in x.to_bits().to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

fn rmse(a: &Matrix, b: &Matrix) -> f64 {
    let n = a.as_slice().len();
    let ss: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y) * (x - y))
        .sum();
    (ss / n as f64).sqrt()
}

fn tier_json(name: &str, stats: &RijJStats, r: f64, mx: f64, de: f64) -> String {
    format!(
        "{{\"tier\": \"{name}\", \"rmse_vs_fp64\": {r:e}, \"max_abs_vs_fp64\": {mx:e}, \
         \"delta_ej_ha\": {de:e}, \"device_seconds\": {:.9}, \"tiles\": {:?}}}",
        stats.device_seconds, stats.tile_counts
    )
}

/// Price the dense FP64 J+K build analytically: tally surviving quartets
/// per class with `batch_quartets`' bra ≥ ket / Schwarz-product rule, then
/// one [`batch_device_seconds`] launch per class — the same pricing the
/// FP64-reference `build_jk` plan performs, without materializing the
/// quartet list. Returns (quartet count, device seconds).
fn dense_device_analytic(
    pairs: &[ScreenedPair],
    threshold: f64,
    cfg: &PipelineConfig,
    model: &CostModel,
) -> (usize, f64) {
    let mut counts: BTreeMap<EriClass, usize> = BTreeMap::new();
    for (pi, pab) in pairs.iter().enumerate() {
        for pcd in pairs.iter().take(pi + 1) {
            if pab.bound * pcd.bound < threshold {
                continue;
            }
            let class = EriClass {
                la: pab.data.la,
                lb: pab.data.lb,
                lc: pcd.data.la,
                ld: pcd.data.lb,
                kab: pab.data.degree(),
                kcd: pcd.data.degree(),
            };
            *counts.entry(class).or_insert(0) += 1;
        }
    }
    let quartets = counts.values().sum();
    let device = counts
        .iter()
        .map(|(class, &n)| batch_device_seconds(class, n, cfg, model))
        .sum();
    (quartets, device)
}

/// Molecule + engine for one cluster size.
struct Setup {
    layout: AoLayout,
    pairs: Vec<ScreenedPair>,
    aux_naux: usize,
    eng: RijEngine,
    build_wall: f64,
    density: Matrix,
}

fn setup(nwaters: usize, screen: f64, cfg: &PipelineConfig, model: &CostModel) -> Setup {
    let mol = water_cluster(nwaters);
    let shells = sto3g().shells_for(&mol);
    let layout = AoLayout::new(&shells);
    let pairs = build_screened_pairs(&shells, screen);
    let aux_shells = rij_universal(&[Element::H, Element::O]).shells_for(&mol);
    let aux = AuxBasis::new(&aux_shells);
    let t0 = Instant::now();
    let eng = RijEngine::build(&pairs, &layout, &aux, &RijConfig::default(), cfg, model)
        .expect("RI-J Coulomb metric must be positive definite");
    let build_wall = t0.elapsed().as_secs_f64();
    let n = layout.nao;
    let mut density = Matrix::from_fn(n, n, |i, j| 0.3 / (1.0 + (i as f64 - j as f64).abs()));
    density.symmetrize();
    let aux_naux = aux.naux();
    Setup {
        layout,
        pairs,
        aux_naux,
        eng,
        build_wall,
        density,
    }
}

fn main() {
    mako_trace::init_from_env();
    let smoke = std::env::var("MAKO_SMOKE").map(|v| v == "1").unwrap_or(false);
    let nwaters = env_usize("MAKO_RIJ_WATERS", if smoke { 2 } else { 60 });
    let fit_waters = env_usize("MAKO_RIJ_FIT_WATERS", 4).min(nwaters);
    let screen = env_f64("MAKO_BENCH_SCREEN", 1e-5);
    let budget = env_f64("MAKO_RIJ_BUDGET", 1e-6);
    let fit_tol = env_f64("MAKO_RIJ_FIT_TOL", 5e-3);
    let amp = env_f64("MAKO_RIJ_AMP", 1e3);
    let min_speedup = env_f64("MAKO_RIJ_MIN_SPEEDUP", 2.0);

    let model = CostModel::new(DeviceSpec::a100());
    let fp64_cfg = PipelineConfig::kernel_mako_fp64();

    // ==== fit section: evaluated dense ground truth on the sub-cluster ====
    let fit = setup(fit_waters, screen, &fp64_cfg, &model);
    let fit_nao = fit.layout.nao;
    let batches = batch_quartets(&fit.pairs, 1e-10);
    let fit_quartets: usize = batches.iter().map(|b| b.quartets.len()).sum();
    println!(
        "rij_bench fit: water{fit_waters} STO-3G  nao={}  pairs={}  naux={}  ({fit_quartets} dense quartets)",
        fit.layout.nao,
        fit.pairs.len(),
        fit.aux_naux
    );
    let t0 = Instant::now();
    let (jk_dense, dense_fit_stats) = build_jk(
        &fit.density,
        &fit.pairs,
        &batches,
        &fit.layout,
        &QuantSchedule::fp64_reference(1e-12),
        &fp64_cfg,
        &fp64_cfg,
        &model,
    );
    let dense_fit_wall = t0.elapsed().as_secs_f64();
    let e_dense = 0.5 * fit.density.dot(&jk_dense.j);
    let (j_fit, _) = fit.eng.build_j(&fit.density, &RijSchedule::fp64_reference(), &model);
    let e_fit = 0.5 * fit.density.dot(&j_fit);
    let fit_rel = (e_fit - e_dense).abs() / e_dense.abs();
    println!(
        "  dense E_J {e_dense:.9} Ha (wall {dense_fit_wall:.3} s)  rij E_J {e_fit:.9} Ha  fit {fit_rel:.2e} rel"
    );
    assert!(
        e_fit <= e_dense * (1.0 + 1e-12),
        "robust fitting must bound E_J from below: {e_fit} vs {e_dense}"
    );
    assert!(
        fit_rel <= fit_tol,
        "RI-J fit error {fit_rel:.3e} exceeds MAKO_RIJ_FIT_TOL {fit_tol:.0e}"
    );

    // ==== scale section: the full cluster ================================
    let sc = if nwaters == fit_waters {
        fit
    } else {
        setup(nwaters, screen, &fp64_cfg, &model)
    };
    let n = sc.layout.nao;
    println!(
        "rij_bench scale: water{nwaters} STO-3G  nao={n}  pairs={}  naux={} (screen {screen:.0e})",
        sc.pairs.len(),
        sc.aux_naux
    );
    println!(
        "  rij build: B {} x {} ({:.1} MiB), wall {:.3} s, device {:.6} s, \
         3c blocks {} evaluated / {} screened",
        sc.eng.nrows(),
        sc.eng.naux(),
        sc.eng.b_bytes() as f64 / (1024.0 * 1024.0),
        sc.build_wall,
        sc.eng.build_device_seconds,
        sc.eng.threec_evaluated,
        sc.eng.threec_screened
    );

    // Dense baseline, priced analytically (same class grouping + pricing
    // call as the FP64-reference build_jk plan; see header).
    let (quartets, dense_device) = dense_device_analytic(&sc.pairs, 1e-10, &fp64_cfg, &model);
    println!("  dense baseline: {quartets} quartets, device {dense_device:.6} s (analytic)");

    // FP64 RI reference for the tier table and the adaptive check.
    let t0 = Instant::now();
    let (j_fp64, fp64_stats) = sc.eng.build_j(&sc.density, &RijSchedule::fp64_reference(), &model);
    let fp64_wall = t0.elapsed().as_secs_f64();
    let e_fp64 = 0.5 * sc.density.dot(&j_fp64);
    println!(
        "  rij fp64: wall {fp64_wall:.3} s, device {:.6} s, E_J {e_fp64:.9} Ha",
        fp64_stats.device_seconds
    );

    // ---- per-tier forced sweeps (Table-2 style) ------------------------
    let mut tier_rows: Vec<String> = Vec::new();
    for tier in [
        TilePrecision::Int8,
        TilePrecision::Fp16,
        TilePrecision::Bf16,
        TilePrecision::Tf32,
    ] {
        let (j_t, stats) = sc.eng.build_j(&sc.density, &RijSchedule::forced(tier), &model);
        let r = rmse(&j_t, &j_fp64);
        let mx = j_t.sub(&j_fp64).max_abs();
        let de = 0.5 * sc.density.dot(&j_t) - e_fp64;
        println!(
            "  forced {tier}: rmse {r:.3e}, max {mx:.3e}, dE_J {de:+.3e} Ha, device {:.6} s",
            stats.device_seconds
        );
        tier_rows.push(tier_json(tier.name(), &stats, r, mx, de));
    }

    // ---- adaptive schedule ---------------------------------------------
    let sched = RijSchedule::with_budget(budget);
    let (j_ad, ad_stats) = sc.eng.build_j(&sc.density, &sched, &model);
    let ad_max = j_ad.sub(&j_fp64).max_abs();
    println!(
        "  adaptive (budget {budget:.0e}): tiles {:?} (int8/fp16/bf16/tf32/fp64), \
         bounds {:.2e}/{:.2e}, measured max dJ {ad_max:.2e}, device {:.6} s",
        ad_stats.tile_counts, ad_stats.pass1_bound, ad_stats.pass2_bound, ad_stats.device_seconds
    );
    assert!(
        ad_stats.pass1_bound <= budget * (1.0 + 1e-12),
        "pass-1 bound {} exceeds the budget {budget}",
        ad_stats.pass1_bound
    );
    assert!(
        ad_stats.pass2_bound <= budget * (1.0 + 1e-12),
        "pass-2 bound {} exceeds the budget {budget}",
        ad_stats.pass2_bound
    );
    assert!(
        ad_max <= budget * amp,
        "adaptive J drifted {ad_max:.3e} from fp64 — over budget {budget:.0e} x amp {amp:.0e}"
    );

    // A second adaptive point at a loose budget, where the picker actually
    // mixes tiers (the tight default collapses to all-FP64 on this
    // cluster); same bound asserts, scaled to its own budget.
    let budget_loose = env_f64("MAKO_RIJ_BUDGET_LOOSE", 1e-2);
    let sched_loose = RijSchedule::with_budget(budget_loose);
    let (j_loose, loose_stats) = sc.eng.build_j(&sc.density, &sched_loose, &model);
    let loose_max = j_loose.sub(&j_fp64).max_abs();
    println!(
        "  adaptive (budget {budget_loose:.0e}): tiles {:?}, bounds {:.2e}/{:.2e}, \
         measured max dJ {loose_max:.2e}, device {:.6} s",
        loose_stats.tile_counts,
        loose_stats.pass1_bound,
        loose_stats.pass2_bound,
        loose_stats.device_seconds
    );
    assert!(
        loose_stats.pass1_bound <= budget_loose * (1.0 + 1e-12)
            && loose_stats.pass2_bound <= budget_loose * (1.0 + 1e-12),
        "loose-budget pass bounds {}/{} exceed {budget_loose}",
        loose_stats.pass1_bound,
        loose_stats.pass2_bound
    );
    assert!(
        loose_max <= budget_loose * amp,
        "loose adaptive J drifted {loose_max:.3e} over budget {budget_loose:.0e} x amp {amp:.0e}"
    );

    // ---- device economics ----------------------------------------------
    let speedup = dense_device / ad_stats.device_seconds;
    let breakeven = sc.eng.build_device_seconds
        / (dense_device - ad_stats.device_seconds).max(f64::MIN_POSITIVE);
    println!(
        "  per-iteration device speedup {speedup:.1}x (dense J re-pays its quartets every \
         iteration); build amortizes after {breakeven:.2} iterations"
    );
    assert!(
        speedup >= min_speedup,
        "per-iteration device speedup {speedup:.2}x below the {min_speedup}x floor"
    );

    // ---- bitwise thread-invariance -------------------------------------
    let d0 = digest(&j_ad);
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let thread_list = env_thread_list("MAKO_THREADS", &[1, 2, 4, 8]);
    let mut rows: Vec<(usize, f64, u64, bool)> = Vec::new();
    let mut all_bitwise = true;
    for threads in thread_list {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("build thread pool");
        let t0 = Instant::now();
        let (j_t, st) = pool.install(|| sc.eng.build_j(&sc.density, &sched, &model));
        let wall = t0.elapsed().as_secs_f64();
        let dt = digest(&j_t);
        let bitwise = dt == d0
            && st == ad_stats
            && st.device_seconds.to_bits() == ad_stats.device_seconds.to_bits();
        all_bitwise &= bitwise;
        println!(
            "  {threads} thread(s): wall {wall:.3} s, digest {dt:016x}, bitwise_identical={bitwise}"
        );
        rows.push((threads, wall, dt, bitwise));
    }
    assert!(
        all_bitwise,
        "adaptive RI-J build is not bitwise thread-invariant"
    );

    // ---- JSON -----------------------------------------------------------
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"rij_bench\",");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"schwarz_threshold\": {screen:e},");
    let _ = writeln!(json, "  \"fit\": {{");
    let _ = writeln!(json, "    \"molecule\": \"water{fit_waters} (STO-3G / RI-J-universal)\",");
    let _ = writeln!(json, "    \"nao\": {fit_nao},");
    let _ = writeln!(json, "    \"dense_quartets\": {fit_quartets},");
    let _ = writeln!(json, "    \"dense_wall_s\": {dense_fit_wall:.6},");
    let _ = writeln!(json, "    \"dense_device_seconds\": {:.9},", dense_fit_stats.device_seconds);
    let _ = writeln!(json, "    \"dense_ej_ha\": {e_dense:.12},");
    let _ = writeln!(json, "    \"rij_fp64_ej_ha\": {e_fit:.12},");
    let _ = writeln!(json, "    \"fit_rel_error\": {fit_rel:e}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"scale\": {{");
    let _ = writeln!(json, "    \"molecule\": \"water{nwaters} (STO-3G / RI-J-universal)\",");
    let _ = writeln!(json, "    \"nao\": {n},");
    let _ = writeln!(json, "    \"naux\": {},", sc.eng.naux());
    let _ = writeln!(json, "    \"b_rows\": {},", sc.eng.nrows());
    let _ = writeln!(json, "    \"screened_pairs\": {},", sc.pairs.len());
    let _ = writeln!(json, "    \"threec_evaluated\": {},", sc.eng.threec_evaluated);
    let _ = writeln!(json, "    \"threec_screened\": {},", sc.eng.threec_screened);
    let _ = writeln!(json, "    \"rij_build_wall_s\": {:.6},", sc.build_wall);
    let _ = writeln!(json, "    \"rij_build_device_seconds\": {:.9},", sc.eng.build_device_seconds);
    let _ = writeln!(json, "    \"dense_quartets\": {quartets},");
    let _ = writeln!(json, "    \"dense_pricing\": \"analytic\",");
    let _ = writeln!(json, "    \"dense_device_seconds\": {dense_device:.9},");
    let _ = writeln!(json, "    \"rij_fp64_ej_ha\": {e_fp64:.12},");
    let _ = writeln!(json, "    \"tiers\": [");
    for (i, row) in tier_rows.iter().enumerate() {
        let comma = if i + 1 < tier_rows.len() { "," } else { "" };
        let _ = writeln!(json, "      {row}{comma}");
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"adaptive\": {{");
    let _ = writeln!(json, "      \"budget\": {budget:e},");
    let _ = writeln!(json, "      \"tiles\": {:?},", ad_stats.tile_counts);
    let _ = writeln!(json, "      \"pass1_bound\": {:e},", ad_stats.pass1_bound);
    let _ = writeln!(json, "      \"pass2_bound\": {:e},", ad_stats.pass2_bound);
    let _ = writeln!(json, "      \"measured_max_dj\": {ad_max:e},");
    let _ = writeln!(json, "      \"device_seconds\": {:.9}", ad_stats.device_seconds);
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"adaptive_loose\": {{");
    let _ = writeln!(json, "      \"budget\": {budget_loose:e},");
    let _ = writeln!(json, "      \"tiles\": {:?},", loose_stats.tile_counts);
    let _ = writeln!(json, "      \"pass1_bound\": {:e},", loose_stats.pass1_bound);
    let _ = writeln!(json, "      \"pass2_bound\": {:e},", loose_stats.pass2_bound);
    let _ = writeln!(json, "      \"measured_max_dj\": {loose_max:e},");
    let _ = writeln!(json, "      \"device_seconds\": {:.9}", loose_stats.device_seconds);
    let _ = writeln!(json, "    }},");
    let _ = writeln!(json, "    \"device_speedup_per_iteration\": {speedup:.2},");
    let _ = writeln!(json, "    \"build_breakeven_iterations\": {breakeven:.3},");
    let _ = writeln!(json, "    \"bitwise_identical_all\": {all_bitwise},");
    let _ = writeln!(json, "    \"runs\": [");
    for (i, (threads, wall, dt, bitwise)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"threads\": {threads}, \"wall_s\": {wall:.6}, \"digest\": \"{dt:016x}\", \
             \"bitwise_identical\": {bitwise}}}{comma}"
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    let out = std::env::var("MAKO_BENCH_OUT").unwrap_or_else(|_| "BENCH_rij.json".to_string());
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {out}");
    match mako_trace::flush() {
        Some(Ok(path)) => println!("trace written to {path}"),
        Some(Err(e)) => eprintln!("warning: trace write failed: {e}"),
        None => {}
    }
}
