//! Durability benchmark: the crash-consistency contract of the store-backed
//! server, pinned as hard assertions across an exhaustive crash-point sweep.
//!
//! 1. **Crash-point sweep** — a probe run counts the storage operations of a
//!    quiet store-backed serve; the sweep then re-runs the serve with the
//!    simulated process killed at each operation index in that domain,
//!    recovers from the write-ahead journal, and asserts every completed
//!    job's energy is **bitwise identical** to the quiet run — at *every*
//!    crash point.
//! 2. **Double recovery** — recovering a recovered store is idempotent (the
//!    full-report digests match).
//! 3. **Corruption** — on-media rot in the persistent screen/kernel
//!    artifacts is quarantined and recomputed; energies stay bitwise.
//! 4. **Host-thread sweep** — the whole crash+recover sequence produces the
//!    same digest at 1/2/4/8 host threads.
//!
//! Results land in `BENCH_durability.json`.
//!
//! ```sh
//! cargo run --release -p mako-bench --bin durability_bench
//! ```
//!
//! Knobs: `MAKO_SMOKE=1` (strided sweep, short thread list),
//! `MAKO_FAULT_SEED` (crash-world seed, default 23), `MAKO_THREADS`
//! (comma-separated host thread counts, default `1,2,4,8`),
//! `MAKO_BENCH_OUT` (output path, default `BENCH_durability.json`).

use mako_chem::builders;
use mako_server::{JobSpec, MakoServer, PriorityClass, ServeReport, ServerChaos, ServerConfig};
use mako_store::{ArtifactStore, FaultProfile, FaultVfs, Vfs};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_list(key: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(key)
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t: &usize| t >= 1)
                .collect::<Vec<usize>>()
        })
        .filter(|l| !l.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

/// The served workload: mixed classes so the journal carries admissions,
/// checkpoints, yields, and completions.
fn workload() -> Vec<JobSpec> {
    vec![
        JobSpec::new("alice", PriorityClass::Interactive, builders::water()),
        JobSpec::new("bob", PriorityClass::Batch, builders::methane()).at(1e-4),
        JobSpec::new("carol", PriorityClass::Batch, builders::ammonia()).at(2e-4),
    ]
}

fn open_server(vfs: Arc<FaultVfs>) -> MakoServer {
    MakoServer::with_store(
        ServerConfig::default(),
        vfs as Arc<dyn Vfs>,
        PathBuf::from("/srv"),
    )
    .expect("open store-backed server")
}

/// SplitMix64 fold.
fn mix(h: u64, v: u64) -> u64 {
    let mut z = (h ^ v).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Digest every observable of a serve report (outcome labels, energy bits,
/// ledger, makespan) — any divergence between two runs changes it.
fn digest(report: &ServeReport) -> u64 {
    let mut h = 0x4455_5241_4249_4C49; // b"DURABILI"
    for outcome in &report.outcomes {
        for b in outcome.label().bytes() {
            h = mix(h, b as u64);
        }
        if let Some(rep) = outcome.report() {
            h = mix(h, rep.energy.to_bits());
            h = mix(h, rep.iterations as u64);
            h = mix(h, rep.retries as u64);
        }
    }
    let l = &report.ledger;
    for v in [l.admitted, l.rejected, l.completed, l.failed, l.preemptions, l.quanta] {
        h = mix(h, v as u64);
    }
    mix(h, report.crashed as u64)
}

/// Digest only the durable observables — per-job outcomes with their full
/// reports (energy bits, iteration/retry counts, virtual timing) and the
/// job-level ledger. Execution-local counters (quanta dispatched *in this
/// process*) are excluded: a replayed outcome is re-seated, not re-run.
fn outcome_digest(report: &ServeReport) -> u64 {
    let mut h = 0x4944_454D_504F_5445; // b"IDEMPOTE"
    for outcome in &report.outcomes {
        for b in outcome.label().bytes() {
            h = mix(h, b as u64);
        }
        if let Some(rep) = outcome.report() {
            for v in [
                rep.energy.to_bits(),
                rep.iterations as u64,
                rep.retries as u64,
                rep.preemptions as u64,
                rep.submitted_at.to_bits(),
                rep.started_at.to_bits(),
                rep.finished_at.to_bits(),
            ] {
                h = mix(h, v);
            }
        }
    }
    let l = &report.ledger;
    for v in [l.rejected, l.completed, l.failed, l.deadline_exceeded] {
        h = mix(h, v as u64);
    }
    mix(h, report.crashed as u64)
}

fn energies(report: &ServeReport) -> Vec<Option<u64>> {
    report
        .outcomes
        .iter()
        .map(|o| o.report().map(|r| r.energy.to_bits()))
        .collect()
}

/// One crash-point trial: serve (dies at `crash_op`), recover, return the
/// recovered report plus whether the crash actually fired. A crash during
/// server *open* (the earliest sweep points) is a process dying at startup:
/// the restart re-opens and the serve proceeds.
fn crash_and_recover(seed: u64, crash_op: u64, specs: &[JobSpec]) -> (ServeReport, bool) {
    let vfs = Arc::new(FaultVfs::new(FaultProfile::crash_at(seed, crash_op)));
    let (server, mut crashed) = match MakoServer::with_store(
        ServerConfig::default(),
        vfs.clone() as Arc<dyn Vfs>,
        PathBuf::from("/srv"),
    ) {
        Ok(server) => (server, false),
        Err(_) => {
            // Died during startup; each crash point fires exactly once, so
            // the reopened server runs clean.
            vfs.recover_crash();
            (open_server(vfs), true)
        }
    };
    crashed |= server.serve_quiet(specs).crashed;
    let recovered = server
        .recover(specs, &ServerChaos::quiet(server.config().workers))
        .expect("recover");
    (recovered, crashed)
}

fn main() {
    mako_trace::init_from_env();
    let smoke = std::env::var("MAKO_SMOKE").map(|v| v == "1").unwrap_or(false);
    let seed = env_usize("MAKO_FAULT_SEED", 23) as u64;
    let default_threads: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let thread_list = env_list("MAKO_THREADS", default_threads);
    let specs = workload();
    println!("durability_bench: seed={seed} smoke={smoke} threads={thread_list:?}");

    // ---- Probe: a quiet store-backed serve defines the truth and the
    // crash-point domain.
    let probe_vfs = Arc::new(FaultVfs::quiet());
    let probe = open_server(probe_vfs.clone());
    let quiet = probe.serve_quiet(&specs);
    assert!(!quiet.crashed);
    assert_eq!(quiet.ledger.completed, specs.len(), "quiet serve completes all jobs");
    let quiet_energies = energies(&quiet);
    let domain = probe_vfs.ops();
    assert!(domain > 8, "a store-backed serve must journal and checkpoint");
    println!("  probe: {} jobs quiet-complete, crash-point domain = {domain} storage ops", specs.len());

    // ---- Leg 1: the crash-point sweep. -------------------------------
    let stride = if smoke { (domain / 12).max(1) } else { 1 };
    let t0 = Instant::now();
    let mut points_swept = 0usize;
    let mut points_crashed = 0usize;
    let mut salvage_resumes = 0usize;
    for k in (0..domain).step_by(stride as usize) {
        let (recovered, crashed) = crash_and_recover(seed, k, &specs);
        points_swept += 1;
        points_crashed += crashed as usize;
        assert!(!recovered.crashed, "crash point {k}: recovery crashed");
        assert_eq!(
            recovered.ledger.completed,
            specs.len(),
            "crash point {k}: recovery lost jobs"
        );
        let got = energies(&recovered);
        assert_eq!(
            got, quiet_energies,
            "crash point {k}: recovered energies are not bitwise the quiet run's"
        );
        salvage_resumes += recovered
            .outcomes
            .iter()
            .filter_map(|o| o.report())
            .filter(|r| r.retries == 0 && r.preemptions > 0)
            .count();
    }
    let sweep_wall = t0.elapsed().as_secs_f64();
    assert!(points_crashed >= 1, "the sweep never actually killed a serve");
    println!(
        "  sweep: {points_swept} points (stride {stride}), {points_crashed} crashed+recovered, all bitwise vs quiet  [{sweep_wall:.2} s]"
    );
    let _ = salvage_resumes; // informational only; resume shape varies by point

    // ---- Leg 2: double recovery is idempotent. -----------------------
    let mid = domain / 2;
    let vfs = Arc::new(FaultVfs::new(FaultProfile::crash_at(seed, mid)));
    let server = open_server(vfs);
    assert!(server.serve_quiet(&specs).crashed, "mid-point crash must fire");
    let first = server
        .recover(&specs, &ServerChaos::quiet(server.config().workers))
        .expect("first recovery");
    let second = server
        .recover(&specs, &ServerChaos::quiet(server.config().workers))
        .expect("second recovery");
    let double_recovery_idempotent =
        outcome_digest(&first) == outcome_digest(&second) && energies(&second) == quiet_energies;
    assert!(double_recovery_idempotent, "recovering twice diverged");
    println!(
        "  double-recovery: outcome digest {:016x} both times",
        outcome_digest(&first)
    );

    // ---- Leg 3: artifact corruption is quarantined, never consumed. ---
    let rot_vfs = Arc::new(FaultVfs::quiet());
    let warmup = open_server(rot_vfs.clone());
    let baseline = warmup.serve_quiet(&specs);
    assert!(!baseline.crashed);
    // Rot one byte in every persisted artifact (screen tables + the tuned
    // kernel table).
    let arts = ArtifactStore::open(rot_vfs.clone() as Arc<dyn Vfs>, PathBuf::from("/srv/artifacts"))
        .expect("open artifacts");
    let mut rotted = 0usize;
    for spec in &specs {
        let key = mako_server::ArtifactKey::for_job(spec).content_hash();
        if rot_vfs.corrupt(&arts.path_for("screen", key), 30, 0x40) {
            rotted += 1;
        }
    }
    if rot_vfs.corrupt(
        &arts.path_for("kernels", mako_server::persist::KERNELS_KEY),
        30,
        0x40,
    ) {
        rotted += 1;
    }
    assert!(rotted >= 2, "the warmup serve persisted artifacts to rot");
    let reopened = open_server(rot_vfs.clone());
    let healed = reopened.serve_quiet(&specs);
    let quarantined = reopened.artifact_store().expect("store-backed").quarantined();
    assert!(
        quarantined >= rotted.saturating_sub(1),
        "rotted artifacts were not quarantined ({quarantined} < {rotted})"
    );
    let corruption_bitwise = energies(&healed) == quiet_energies;
    assert!(corruption_bitwise, "recomputed-after-rot energies diverged");
    println!("  corruption: {rotted} artifacts rotted, {quarantined} quarantined, recomputed bitwise");

    // ---- Leg 4: host-thread determinism sweep. -----------------------
    let mut sweeps: Vec<(usize, u64, f64)> = Vec::new();
    for &threads in &thread_list {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("build thread pool");
        let t0 = Instant::now();
        let (recovered, crashed) = pool.install(|| crash_and_recover(seed, mid, &specs));
        assert!(crashed, "threads={threads}: mid-point crash must fire");
        sweeps.push((threads, digest(&recovered), t0.elapsed().as_secs_f64()));
    }
    let reference = sweeps[0].1;
    let threads_bitwise = sweeps.iter().all(|&(_, d, _)| d == reference);
    for &(threads, d, wall) in &sweeps {
        println!("  threads={threads}: digest={d:016x}  wall={wall:.3} s");
    }
    assert!(threads_bitwise, "the crash+recover digest varies with host thread count");

    // ---- BENCH_durability.json ---------------------------------------
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"durability_bench\",");
    let _ = writeln!(json, "  \"fault_seed\": {seed},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"jobs\": {},", specs.len());
    let _ = writeln!(
        json,
        "  \"crash_sweep\": {{\"domain_ops\": {domain}, \"stride\": {stride}, \"points_swept\": {points_swept}, \"points_crashed\": {points_crashed}, \"recovered_bitwise_vs_quiet\": true, \"wall_s\": {sweep_wall:.6}}},"
    );
    let _ = writeln!(
        json,
        "  \"double_recovery_idempotent\": {double_recovery_idempotent},"
    );
    let _ = writeln!(
        json,
        "  \"corruption\": {{\"artifacts_rotted\": {rotted}, \"quarantined\": {quarantined}, \"recomputed_bitwise\": {corruption_bitwise}}},"
    );
    let _ = writeln!(json, "  \"thread_sweep\": [");
    for (i, &(threads, d, wall)) in sweeps.iter().enumerate() {
        let comma = if i + 1 < sweeps.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"threads\": {threads}, \"digest\": \"{d:016x}\", \"wall_s\": {wall:.6}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"threads_bitwise_identical\": {threads_bitwise}");
    let _ = writeln!(json, "}}");
    let out =
        std::env::var("MAKO_BENCH_OUT").unwrap_or_else(|_| "BENCH_durability.json".to_string());
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {out}");
    match mako_trace::flush() {
        Some(Ok(path)) => println!("trace written to {path}"),
        Some(Err(e)) => eprintln!("warning: trace write failed: {e}"),
        None => {}
    }
}
