//! Incremental direct-SCF benchmark: full-rebuild SCF vs the incremental
//! (ΔD) engine on `sample/water60.xyz` (STO-3G), tracking the
//! quartets-per-iteration trajectory, the wall and simulated-device clocks,
//! and the final-energy agreement between the two engines — then re-running
//! the incremental SCF at several thread counts to verify the whole
//! trajectory (energies, ledgers, device clock) is **bitwise identical**
//! regardless of host parallelism.
//!
//! Results land in `BENCH_scf.json` (schema documented in DESIGN.md §9).
//!
//! ```sh
//! cargo run --release -p mako-bench --bin incremental_scf_bench
//! ```
//!
//! Knobs: `MAKO_SMOKE=1` (small molecule, fewer thread counts, relaxed
//! assertions — for CI boxes), `MAKO_BENCH_WATERS=n` (replace water60 with
//! a built-in n-water cluster, for weaker boxes / parameter probing),
//! `MAKO_BENCH_SCREEN` (Schwarz threshold, default 1e-5), `MAKO_BENCH_QT`
//! (quartet batching threshold, default 5e-1 — sized so the ten-iteration
//! water60 run fits a single-core box), `MAKO_BENCH_TAU` (ΔD screen τ,
//! default 3e-11 — engages two to three iterations before convergence;
//! certified convergence keeps the final energy full-rebuild quality),
//! `MAKO_BENCH_ETOL` (energy tolerance, default 1e-11), `MAKO_THREADS`
//! (comma-separated thread counts, default `1,2,4,8`), `MAKO_BENCH_DRY=1`
//! (print the workload shape and exit), `MAKO_BENCH_OUT` (output path,
//! default `BENCH_scf.json` — smoke harnesses point this at scratch).

use mako_chem::builders;
use mako_chem::basis::sto3g::sto3g;
use mako_chem::Molecule;
use mako_scf::scf::{IncrementalPolicy, ScfConfig, ScfDriver, ScfResult};
use std::fmt::Write as _;
use std::time::Instant;

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Comma-separated thread-count list from the environment (`MAKO_THREADS`),
/// e.g. `1,2,4`; falls back to `default` when unset or unparsable.
fn env_thread_list(key: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(key)
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t: &usize| t >= 1)
                .collect::<Vec<usize>>()
        })
        .filter(|l| !l.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

/// Two SCF runs are bitwise identical when every energy, every ledger entry
/// and the device clock agree to the bit (ledger floats compare exactly).
fn runs_bitwise_equal(a: &ScfResult, b: &ScfResult) -> bool {
    a.energy.to_bits() == b.energy.to_bits()
        && a.total_seconds.to_bits() == b.total_seconds.to_bits()
        && a.iterations == b.iterations
        && a.clock.iterations() == b.clock.iterations()
}

fn main() {
    mako_trace::init_from_env();
    let smoke = std::env::var("MAKO_SMOKE").map(|v| v == "1").unwrap_or(false);
    let waters = std::env::var("MAKO_BENCH_WATERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0);
    let (mol, label): (Molecule, String) = if smoke {
        (
            builders::water_cluster(4),
            "water4 (STO-3G, smoke)".to_string(),
        )
    } else if waters > 0 {
        // Scaled-down workload for weaker boxes / parameter probing: a
        // built-in water cluster instead of the water60 sample geometry.
        (
            builders::water_cluster(waters),
            format!("water{waters} cluster (STO-3G)"),
        )
    } else {
        let xyz = std::fs::read_to_string("sample/water60.xyz")
            .expect("run from the workspace root: sample/water60.xyz not found");
        (
            Molecule::from_xyz(&xyz).expect("parse water60.xyz"),
            "water60 (STO-3G)".to_string(),
        )
    };
    let label = label.as_str();

    let screen = env_f64("MAKO_BENCH_SCREEN", 1e-5);
    let qt = env_f64("MAKO_BENCH_QT", 5e-1);
    let tau = env_f64("MAKO_BENCH_TAU", 3e-11);
    let e_tol = env_f64("MAKO_BENCH_ETOL", if smoke { 1e-9 } else { 1e-11 });
    let base = ScfConfig {
        e_tol,
        max_iterations: 50,
        screening: screen,
        quartet_threshold: Some(qt),
        ..ScfConfig::default()
    };

    // Full-rebuild reference: the classic direct SCF, every iteration a
    // complete build.
    let full_driver = ScfDriver::new(&mol, &sto3g(), base.clone());
    println!(
        "incremental_scf_bench: {label}  nao={}  batches={}  quartets={} (screen {screen:.0e}, quartet threshold {qt:.0e})",
        full_driver.nao(),
        full_driver.nbatches(),
        full_driver.nquartets()
    );
    if std::env::var("MAKO_BENCH_DRY").map(|v| v == "1").unwrap_or(false) {
        return;
    }
    let t0 = Instant::now();
    let full = full_driver.run().expect("scf run");
    let full_wall = t0.elapsed().as_secs_f64();
    assert!(full.converged, "full-rebuild SCF failed to converge");
    let full_per_iter =
        (full.stats.fp64_quartets + full.stats.quantized_quartets) / full.iterations;
    println!(
        "  full rebuild:  E = {:.12} Ha  ({} iterations, {full_wall:.2} s wall, {:.4} s device, {full_per_iter} quartets/iter)",
        full.energy, full.iterations, full.total_seconds
    );

    // Incremental engine: ΔD builds under the dynamic Schwarz screen. The
    // periodic rebuild is disabled so the trajectory cleanly shows the
    // shrinking-ΔD effect; the drift cap stays as the guardrail.
    let inc_cfg = ScfConfig {
        incremental: true,
        incremental_policy: IncrementalPolicy {
            tau,
            rebuild_period: 0,
            drift_cap: 1e-2,
            divergence_factor: 10.0,
        },
        ..base
    };
    let inc_driver = ScfDriver::new(&mol, &sto3g(), inc_cfg);
    let t0 = Instant::now();
    let inc = inc_driver.run().expect("scf run");
    let inc_wall = t0.elapsed().as_secs_f64();
    assert!(inc.converged, "incremental SCF failed to converge");
    println!(
        "  incremental:   E = {:.12} Ha  ({} iterations, {inc_wall:.2} s wall, {:.4} s device)",
        inc.energy, inc.iterations, inc.total_seconds
    );

    println!("  trajectory (evaluated / skipped quartets per iteration):");
    for (i, l) in inc.clock.iterations().iter().enumerate() {
        println!(
            "    iter {i:>2}: {:>8} evaluated  {:>8} skipped  {:>7} pruned  {:.5} s eri  rebuild={}",
            l.evaluated_quartets, l.skipped_quartets, l.pruned_quartets, l.eri_seconds, l.rebuild
        );
    }

    let delta_e = (inc.energy - full.energy).abs();
    let ledger = inc.clock.iterations();
    // Quartet-work contraction: evaluated quartets of the first incremental
    // iteration (iteration 1 — iteration 0 is the full build of the guess
    // density) over the last *incremental* iteration's. Rebuild iterations
    // (including the certification rebuild that ends every converged
    // incremental run) deliberately do full work and are excluded.
    let last_inc = ledger.iter().rev().find(|l| !l.rebuild);
    let ratio = match last_inc {
        Some(last) if ledger.len() > 2 => {
            ledger[1].evaluated_quartets as f64 / last.evaluated_quartets.max(1) as f64
        }
        _ => 1.0,
    };
    let monotone = inc.clock.monotone_decline_from(2);
    println!(
        "  |E_inc - E_full| = {delta_e:.3e} Ha   quartets iter1/final = {ratio:.1}x   monotone after iter 2: {monotone}"
    );

    // Thread sweep: the incremental trajectory may not depend on host
    // parallelism in any bit.
    let host_cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let default_threads: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let thread_list = env_thread_list("MAKO_THREADS", default_threads);
    let mut rows: Vec<(usize, f64, bool)> = Vec::new();
    let mut all_bitwise = true;
    for &threads in &thread_list {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("build thread pool");
        let t0 = Instant::now();
        let run = pool.install(|| inc_driver.run().expect("scf run"));
        let wall = t0.elapsed().as_secs_f64();
        let bitwise = runs_bitwise_equal(&run, &inc);
        all_bitwise &= bitwise;
        println!("  {threads} thread(s): {wall:.2} s wall  bitwise_identical={bitwise}");
        rows.push((threads, wall, bitwise));
    }

    assert!(
        all_bitwise,
        "incremental SCF trajectory drifted across thread counts"
    );
    if !smoke {
        assert!(
            delta_e <= 1e-10,
            "incremental energy drifted {delta_e:e} Ha from the full rebuild (> 1e-10)"
        );
        assert!(
            monotone,
            "quartets/iteration did not fall monotonically after iteration 2"
        );
        assert!(
            ratio >= 5.0,
            "final iteration ran only {ratio:.1}x fewer quartets than iteration 1 (< 5x)"
        );
    } else {
        assert!(delta_e <= 1e-7, "smoke-mode energy drift {delta_e:e} Ha");
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"benchmark\": \"incremental_scf_bench\",");
    let _ = writeln!(json, "  \"molecule\": \"{label}\",");
    let _ = writeln!(json, "  \"nao\": {},", full_driver.nao());
    let _ = writeln!(json, "  \"schwarz_threshold\": {screen:e},");
    let _ = writeln!(json, "  \"quartet_threshold\": {qt:e},");
    let _ = writeln!(json, "  \"delta_tau\": {tau:e},");
    let _ = writeln!(json, "  \"e_tol\": {e_tol:e},");
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(
        json,
        "  \"full\": {{\"energy_ha\": {:.12}, \"iterations\": {}, \"wall_s\": {full_wall:.6}, \"device_seconds\": {:.9}, \"quartets_per_iteration\": {full_per_iter}}},",
        full.energy, full.iterations, full.total_seconds
    );
    let _ = writeln!(
        json,
        "  \"incremental\": {{\"energy_ha\": {:.12}, \"iterations\": {}, \"wall_s\": {inc_wall:.6}, \"device_seconds\": {:.9}, \"evaluated_total\": {}, \"skipped_total\": {}, \"skipped_bound_total\": {:e}}},",
        inc.energy,
        inc.iterations,
        inc.total_seconds,
        inc.clock.total_evaluated(),
        inc.clock.total_skipped(),
        inc.stats.skipped_bound
    );
    let _ = writeln!(json, "  \"final_energy_delta_ha\": {delta_e:e},");
    let _ = writeln!(json, "  \"quartet_ratio_iter1_vs_final\": {ratio:.4},");
    let _ = writeln!(json, "  \"monotone_decline_after_iter2\": {monotone},");
    let _ = writeln!(json, "  \"trajectory\": [");
    for (i, l) in ledger.iter().enumerate() {
        let comma = if i + 1 < ledger.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"iter\": {i}, \"evaluated\": {}, \"skipped\": {}, \"pruned\": {}, \"eri_device_s\": {:.9}, \"total_device_s\": {:.9}, \"skipped_bound\": {:e}, \"rebuild\": {}}}{comma}",
            l.evaluated_quartets,
            l.skipped_quartets,
            l.pruned_quartets,
            l.eri_seconds,
            l.total_seconds,
            l.skipped_bound,
            l.rebuild
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"threads\": [");
    for (i, (threads, wall, bitwise)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"threads\": {threads}, \"wall_s\": {wall:.6}, \"bitwise_identical\": {bitwise}}}{comma}"
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"bitwise_identical_all\": {all_bitwise}");
    let _ = writeln!(json, "}}");
    let out =
        std::env::var("MAKO_BENCH_OUT").unwrap_or_else(|_| "BENCH_scf.json".to_string());
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {out}");
    match mako_trace::flush() {
        Some(Ok(path)) => println!("trace written to {path}"),
        Some(Err(e)) => eprintln!("warning: trace write failed: {e}"),
        None => {}
    }
}
