//! [Figure 9] Average speedup of Mako over QUICK and GPU4PySCF across four
//! basis families with progressively higher angular momentum: def2-TZVP,
//! cc-pVTZ (f functions) and def2-QZVP, cc-pVQZ (g functions).
//!
//! QUICK does not support g-type functions, so its def2-QZVP / cc-pVQZ
//! entries are absent — exactly as in the paper. Paper headline: ~20×
//! speedup over GPU4PySCF on the quadruple-zeta sets.
//!
//! ```sh
//! cargo run --release -p mako-bench --bin fig9_speedup
//! ```

use mako_accel::{CostModel, DeviceSpec};
use mako_bench::geomean;
use mako_chem::{builders, BasisFamily, Molecule};
use mako_compiler::KernelCache;
use mako_kernels::{gpu4pyscf_like_cost, quick_like_cost};
use mako_precision::Precision;
use mako_scf::parallel::{batch_costs, build_workload};

fn main() {
    let model = CostModel::new(DeviceSpec::a100());
    let cache = KernelCache::new();

    let dataset: Vec<Molecule> = vec![
        builders::polyglycine(2),
        builders::polyglycine(4),
        builders::water_cluster(5),
        builders::water_cluster(10),
    ];

    println!("Figure 9: average Mako speedup across basis sets (modeled A100 iteration time)\n");
    println!(
        "{:<12} {:>7} {:>18} {:>18}",
        "basis", "max l", "vs QUICK", "vs GPU4PySCF"
    );

    for family in [
        BasisFamily::Def2TzvpLike,
        BasisFamily::CcPvtzLike,
        BasisFamily::Def2QzvpLike,
        BasisFamily::CcPvqzLike,
    ] {
        let mut vs_quick = Vec::new();
        let mut vs_gpu4pyscf = Vec::new();
        let mut quick_supported = true;
        for mol in &dataset {
            let basis = family.basis_for(&mol.elements());
            let w = build_workload(mol, &basis);
            let mako: f64 = batch_costs(&w, &model, &cache, Precision::Fp16, 200_000)
                .iter()
                .sum();
            let gpu: f64 = w
                .classes
                .iter()
                .map(|&(c, n)| gpu4pyscf_like_cost(&c, n.round().max(1.0) as usize, &model))
                .sum();
            vs_gpu4pyscf.push(gpu / mako);

            let quick: Option<f64> = w
                .classes
                .iter()
                .map(|&(c, n)| quick_like_cost(&c, n.round().max(1.0) as usize, &model))
                .sum::<Option<f64>>();
            match quick {
                Some(q) => vs_quick.push(q / mako),
                None => quick_supported = false,
            }
        }
        let quick_col = if quick_supported {
            format!("{:>16.1}x", geomean(&vs_quick))
        } else {
            format!("{:>17}", "n/a (no g)")
        };
        println!(
            "{:<12} {:>7} {} {:>16.1}x",
            family.name(),
            family.heavy_max_l(),
            quick_col,
            geomean(&vs_gpu4pyscf)
        );
    }

    println!("\npaper: speedups grow with angular momentum, reaching ~20x over");
    println!("GPU4PySCF on def2-QZVP/cc-pVQZ; QUICK lacks g-function support.");
}
