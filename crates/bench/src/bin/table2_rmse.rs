//! [Table 2 / Figure 7c] Numerical error of the quantized (AB|CD) kernels,
//! measured on *real* shell-quartet integrals computed through the
//! software-emulated reduced-precision pipelines, with the FP64 output as
//! reference.
//!
//! Paper values: RMSE 2.67e-6 (baseline FP32), 3.36e-5 (QuantMako),
//! 1.46e-4 (baseline FP16), i.e. QuantMako recovers ~4.3× accuracy over
//! naive FP16 and sits close to FP32.
//!
//! ```sh
//! cargo run --release -p mako-bench --bin table2_rmse
//! ```

use mako_accel::{CostModel, DeviceSpec};
use mako_bench::random_class_batch;
use mako_eri::batch::EriClass;
use mako_kernels::pipeline::{run_batch, PipelineConfig};
use mako_precision::{ErrorStats, Precision};

fn main() {
    let model = CostModel::new(DeviceSpec::a100());
    let variants: Vec<(&str, PipelineConfig)> = vec![
        ("Baseline FP32", PipelineConfig::baseline_low_precision(Precision::Fp32)),
        ("Baseline TF32", PipelineConfig::baseline_low_precision(Precision::Tf32)),
        ("QuantMako", PipelineConfig::quant_mako()),
        ("Baseline FP16", PipelineConfig::baseline_low_precision(Precision::Fp16)),
    ];

    // A mix of classes with K = 1 and K = 4, s through f, 24 quartets each.
    let mut stats: Vec<ErrorStats> = vec![ErrorStats::new(); variants.len()];
    let mut overflows = vec![0usize; variants.len()];
    let mut class_rows = Vec::new();
    for l in 0..=3usize {
        for &k in &[1usize, 4] {
            let class = EriClass {
                la: l,
                lb: l,
                lc: l,
                ld: l,
                kab: k,
                kcd: k,
            };
            let (pairs, batch) = random_class_batch(&class, 24, 0xBEEF + l as u64 * 31 + k as u64);
            let reference = run_batch(&batch, &pairs, &PipelineConfig::kernel_mako_fp64(), &model);
            let mut row = vec![class.label()];
            for (vi, (_, cfg)) in variants.iter().enumerate() {
                let out = run_batch(&batch, &pairs, cfg, &model);
                let mut local = ErrorStats::new();
                for (t, r) in out.tensors.iter().zip(&reference.tensors) {
                    for (rv, tv) in r.data.iter().zip(&t.data) {
                        if tv.is_finite() {
                            local.push(*rv, *tv);
                        } else {
                            overflows[vi] += 1;
                        }
                    }
                }
                stats[vi].merge(&local);
                if vi == 2 {
                    row.push(format!("{:.2e}", local.rmse()));
                }
            }
            class_rows.push(row);
        }
    }

    println!("Table 2: numerical error of (AB|CD) kernels vs FP64 reference\n");
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>10}",
        "Kernel version", "RMSE*", "MAE*", "max|err|*", "overflows"
    );
    for (vi, ((name, _), st)) in variants.iter().zip(&stats).enumerate() {
        println!(
            "{:<16} {:>12.3e} {:>12.3e} {:>12.3e} {:>10}",
            name,
            st.rmse(),
            st.mae(),
            st.max_abs(),
            overflows[vi]
        );
    }
    println!("(* over finite outputs; 'overflows' counts integrals the kernel");
    println!("   returned as inf/NaN — naive FP16 cannot even represent the");
    println!("   Hermite intermediates of tight shells, the failure mode the");
    println!("   paper's angular-momentum-aware scaling exists to prevent.)");

    let ratio = stats[3].rmse() / stats[2].rmse();
    println!("\nQuantMako improves finite-part RMSE {ratio:.2}x over baseline FP16");
    println!("and eliminates all {} overflow events (paper ratio: 4.34x)", overflows[3]);
    println!("paper values: FP32 2.67e-6, QuantMako 3.36e-5, FP16 1.46e-4");
    println!("(absolute RMSEs depend on the integral magnitudes of the sampled");
    println!(" shells; the ordering FP32 < QuantMako << FP16 is the claim.)");

    println!("\nper-class QuantMako RMSE:");
    for row in class_rows {
        println!("  {:<18} {}", row[0], row[1]);
    }
}
