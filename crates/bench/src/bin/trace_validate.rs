//! Validate a `mako-trace` JSONL file against the `mako-trace/1` schema
//! (DESIGN.md §11) and print a one-line summary. Exit code 0 on a valid
//! trace, 1 otherwise — the tier-2 smoke harness runs this on the trace a
//! benchmark emitted under `MAKO_TRACE`.
//!
//! `--require CAT.NAME` (repeatable) additionally asserts that the event
//! appeared in the trace *and* is registered in the documented schema
//! (`KNOWN_EVENTS`), so a subsystem's instrumentation can't silently vanish
//! or drift to an undocumented name.
//!
//! ```sh
//! MAKO_TRACE=target/trace.jsonl cargo run --release -p mako-bench --bin host_fock_bench
//! cargo run --release -p mako-bench --bin trace_validate -- target/trace.jsonl \
//!     --require scf.iteration --require fock.launch
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut path: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--require" {
            match args.next() {
                Some(name) => required.push(name),
                None => {
                    eprintln!("--require needs an event name");
                    return ExitCode::FAILURE;
                }
            }
        } else if path.is_none() {
            path = Some(arg);
        } else {
            eprintln!("unexpected argument: {arg}");
            return ExitCode::FAILURE;
        }
    }
    let Some(path) = path else {
        eprintln!("usage: trace_validate FILE.jsonl [--require CAT.NAME]...");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match mako_trace::schema::validate_jsonl(&text) {
        Ok(summary) => {
            let mut missing = false;
            for name in &required {
                if !mako_trace::schema::is_known_event(name) {
                    eprintln!(
                        "{path}: required event {name} is not in the documented \
                         schema (mako-trace KNOWN_EVENTS)"
                    );
                    missing = true;
                } else if !summary.names.contains(name) {
                    eprintln!("{path}: required event {name} never appeared in the trace");
                    missing = true;
                }
            }
            if missing {
                return ExitCode::FAILURE;
            }
            println!(
                "{path}: valid mako-trace/1 — {} spans, {} instants, {} counters ({} recorded, {} dropped)",
                summary.spans, summary.instants, summary.counters, summary.recorded, summary.dropped
            );
            println!("event names: {:?}", summary.names);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: INVALID trace: {e}");
            ExitCode::FAILURE
        }
    }
}
