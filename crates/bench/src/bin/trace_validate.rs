//! Validate a `mako-trace` JSONL file against the `mako-trace/1` schema
//! (DESIGN.md §11) and print a one-line summary. Exit code 0 on a valid
//! trace, 1 otherwise — the tier-2 smoke harness runs this on the trace a
//! benchmark emitted under `MAKO_TRACE`.
//!
//! ```sh
//! MAKO_TRACE=target/trace.jsonl cargo run --release -p mako-bench --bin host_fock_bench
//! cargo run --release -p mako-bench --bin trace_validate -- target/trace.jsonl
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_validate FILE.jsonl");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match mako_trace::schema::validate_jsonl(&text) {
        Ok(summary) => {
            println!(
                "{path}: valid mako-trace/1 — {} spans, {} instants, {} counters ({} recorded, {} dropped)",
                summary.spans, summary.instants, summary.counters, summary.recorded, summary.dropped
            );
            println!("event names: {:?}", summary.names);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: INVALID trace: {e}");
            ExitCode::FAILURE
        }
    }
}
