//! Shared GEMM throughput sweep for `gemm_microbench` and the `gemm`
//! section of `BENCH_fock.json`.
//!
//! Times three square-GEMM implementations at each size: the `gemm_naive`
//! accuracy oracle, the packed microkernel engine pinned to the generic
//! kernel, and the engine under its runtime-dispatched kernel (AVX2 where
//! available). Every dispatched product is checked bitwise against the
//! generic kernel before timings are reported — the determinism contract
//! of DESIGN.md §13 holds in the benchmark itself, not just in tests.

use mako_linalg::microkernel::gemm_with_kernel;
use mako_linalg::{gemm_naive, gemm_tiled, KernelId, Matrix, Transpose};
use std::fmt::Write as _;
use std::time::Instant;

/// Throughput of the three GEMM paths at one square size.
pub struct GemmPoint {
    /// Square dimension (m = k = n).
    pub size: usize,
    /// Triple-loop oracle, GFLOP/s.
    pub gflops_naive: f64,
    /// Packed engine with the generic (autovectorized) kernel, GFLOP/s.
    pub gflops_generic: f64,
    /// Packed engine with the runtime-dispatched kernel, GFLOP/s.
    pub gflops_microkernel: f64,
}

fn fill(seed: u64, rows: usize, cols: usize) -> Matrix {
    let mut s = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

/// Time `body` over enough repetitions to amortize clock noise and return
/// GFLOP/s for a `size³` matmul.
fn time_gflops(size: usize, reps: usize, mut body: impl FnMut()) -> f64 {
    let flops = 2.0 * (size as f64).powi(3);
    // One warmup to fault in buffers and settle the dispatcher.
    body();
    let t0 = Instant::now();
    for _ in 0..reps {
        body();
    }
    flops * reps as f64 / t0.elapsed().as_secs_f64() / 1e9
}

/// Repetition count targeting a fixed FLOP budget per measurement so small
/// sizes are not dominated by timer resolution.
fn reps_for(size: usize, budget_flops: f64) -> usize {
    ((budget_flops / (2.0 * (size as f64).powi(3))) as usize).max(2)
}

/// Run the sweep at the given square sizes. `budget_flops` is the per-point
/// FLOP budget (≈2e8 for the full run, smaller for smoke).
///
/// Panics if the dispatched kernel ever disagrees bitwise with the generic
/// kernel — throughput numbers for a non-deterministic engine would be
/// meaningless.
pub fn sweep(sizes: &[usize], budget_flops: f64) -> Vec<GemmPoint> {
    sizes
        .iter()
        .map(|&size| {
            let a = fill(1, size, size);
            let b = fill(2, size, size);
            let mut c = Matrix::zeros(size, size);

            let mut generic = Matrix::zeros(size, size);
            assert!(
                gemm_with_kernel(
                    KernelId::Generic,
                    1.0,
                    &a,
                    Transpose::No,
                    &b,
                    Transpose::No,
                    0.0,
                    &mut generic,
                ),
                "generic kernel must always be available"
            );
            let mut dispatched = Matrix::zeros(size, size);
            gemm_tiled(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut dispatched);
            assert!(
                generic
                    .as_slice()
                    .iter()
                    .zip(dispatched.as_slice())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "dispatched kernel drifted bitwise from generic at size {size}"
            );

            // The naive oracle is ~an order of magnitude slower; give it a
            // tenth of the budget so the sweep stays snappy.
            let reps = reps_for(size, budget_flops);
            let gflops_naive = time_gflops(size, reps_for(size, budget_flops / 10.0), || {
                gemm_naive(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
            });
            let gflops_generic = time_gflops(size, reps, || {
                gemm_with_kernel(
                    KernelId::Generic,
                    1.0,
                    &a,
                    Transpose::No,
                    &b,
                    Transpose::No,
                    0.0,
                    &mut c,
                );
            });
            let gflops_microkernel = time_gflops(size, reps, || {
                gemm_tiled(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut c);
            });
            GemmPoint {
                size,
                gflops_naive,
                gflops_generic,
                gflops_microkernel,
            }
        })
        .collect()
}

/// Render the sweep as the `"gemm"` JSON object (no key, no trailing
/// comma): `{"kernel": ..., "points": [...]}`.
pub fn json_object(points: &[GemmPoint]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "    \"kernel\": \"{}\",", mako_linalg::kernel_name());
    let _ = writeln!(s, "    \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      {{\"size\": {}, \"gflops_naive\": {:.3}, \"gflops_generic\": {:.3}, \"gflops_microkernel\": {:.3}}}{comma}",
            p.size, p.gflops_naive, p.gflops_generic, p.gflops_microkernel
        );
    }
    let _ = writeln!(s, "    ]");
    s.push_str("  }");
    s
}

/// Splice a `"gemm": {...}` section into a `BENCH_fock.json` document
/// produced by `host_fock_bench` (or start a fresh document when the file
/// does not exist yet). An existing `"gemm"` section is replaced.
///
/// This is a line-oriented splice, not a JSON parser: both writers live in
/// this crate and emit two-space-indented top-level keys, which is all the
/// structure the splice relies on.
pub fn splice_into_bench_json(doc: Option<&str>, gemm_object: &str) -> String {
    let section = format!("  \"gemm\": {gemm_object},\n");
    let Some(doc) = doc else {
        return format!("{{\n{}\n}}\n", section.trim_end().trim_end_matches(','));
    };
    let mut out = String::with_capacity(doc.len() + section.len());
    let mut skipping = false;
    let mut inserted = false;
    for line in doc.lines() {
        if skipping {
            // The old section ends at the first top-level close at indent 2.
            if line.starts_with("  }") {
                skipping = false;
            }
            continue;
        }
        if line.starts_with("  \"gemm\":") {
            skipping = true;
            continue;
        }
        out.push_str(line);
        out.push('\n');
        if !inserted && line.trim_end() == "{" {
            out.push_str(&section);
            inserted = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splice_inserts_and_replaces() {
        let gemm = "{\n    \"kernel\": \"x\",\n    \"points\": [\n    ]\n  }";
        let doc = "{\n  \"benchmark\": \"host_fock_bench\",\n  \"runs\": [\n  ]\n}\n";
        let once = splice_into_bench_json(Some(doc), gemm);
        assert!(once.contains("\"gemm\":"), "{once}");
        assert!(once.contains("\"benchmark\""));
        let twice = splice_into_bench_json(Some(&once), gemm);
        assert_eq!(twice.matches("\"gemm\":").count(), 1, "{twice}");
        assert!(twice.contains("\"runs\""));
    }

    #[test]
    fn splice_creates_fresh_document() {
        let gemm = "{\n    \"kernel\": \"x\",\n    \"points\": [\n    ]\n  }";
        let doc = splice_into_bench_json(None, gemm);
        assert!(doc.starts_with("{\n"), "{doc}");
        assert!(doc.trim_end().ends_with('}'), "{doc}");
    }

    #[test]
    fn tiny_sweep_produces_finite_throughput() {
        let pts = sweep(&[16], 1e5);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].gflops_naive > 0.0 && pts[0].gflops_naive.is_finite());
        assert!(pts[0].gflops_microkernel > 0.0);
    }
}
