//! # mako-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! Mako paper's evaluation section. Each paper element has a dedicated
//! binary (see DESIGN.md §3 for the full index):
//!
//! | target | paper element |
//! |---|---|
//! | `table1_device_specs` | Table 1 (A100 tensor/CUDA throughput) |
//! | `fig6_eri_kernels` | Figure 6 (FP64 ERI kernels vs LibintX) |
//! | `fig7_ablation` | Figure 7a/7b (+ extra design ablations) |
//! | `table2_rmse` | Table 2 / Figure 7c (quantization RMSE) |
//! | `table3_accuracy` | Table 3 (converged-energy MAE) |
//! | `fig8_end_to_end` | Figure 8 (SCF iteration time vs GPU4PySCF) |
//! | `fig9_speedup` | Figure 9 (speedup across basis sets) |
//! | `fig10_scalability` | Figure 10 (1–64 GPU strong scaling) |
//!
//! Run one with `cargo run --release -p mako-bench --bin <target>`.
//! The `benches/` directory adds Criterion microbenchmarks of the real
//! (CPU-executed) numerical kernels.
#![deny(rust_2018_idioms)]


pub mod gemm_bench;

use mako_chem::basis::ShellDef;
use mako_chem::Shell;
use mako_eri::batch::EriClass;

/// A deterministic linear-congruential stream for reproducible workloads.
pub struct Lcg(pub u64);

impl Lcg {
    /// Uniform in [0, 1).
    pub fn unit(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as f64 / (1u64 << 31) as f64
    }

    /// Uniform in [lo, hi).
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }
}

/// The diagonal ERI classes (ll|ll) for l = 0..=4 with contraction degree
/// pattern {ka, kc} — the microbenchmark axis of Figures 6–7.
pub fn diagonal_classes(kab: usize, kcd: usize) -> Vec<EriClass> {
    (0..=4usize)
        .map(|l| EriClass {
            la: l,
            lb: l,
            lc: l,
            ld: l,
            kab,
            kcd,
        })
        .collect()
}

/// Build a batch of `n` random shell quartet inputs of one class, returned
/// as screened pairs + a quartet batch over them. Shell centers sit inside a
/// 3-Bohr box so the integrals are non-negligible.
pub fn random_class_batch(
    class: &EriClass,
    n: usize,
    seed: u64,
) -> (Vec<mako_eri::ScreenedPair>, mako_eri::QuartetBatch) {
    let mut rng = Lcg(seed | 1);
    let mut shell = |l: usize, k: usize| -> Shell {
        let center = [
            rng.range(-1.5, 1.5),
            rng.range(-1.5, 1.5),
            rng.range(-1.5, 1.5),
        ];
        let exps: Vec<f64> = (0..k).map(|i| rng.range(0.4, 2.2) * 1.9f64.powi(i as i32)).collect();
        let coefs: Vec<f64> = (0..k).map(|_| rng.range(0.2, 1.0)).collect();
        ShellDef { l, exps, coefs }.at(0, center)
    };

    let mut pairs = Vec::with_capacity(2 * n);
    let mut quartets = Vec::with_capacity(n);
    for q in 0..n {
        // Contraction degree pattern: pick primitive counts whose product
        // equals the class K (factored as evenly as possible).
        let (ka1, ka2) = factor(class.kab);
        let (kc1, kc2) = factor(class.kcd);
        let sa = shell(class.la, ka1);
        let sb = shell(class.lb, ka2);
        let sc = shell(class.lc, kc1);
        let sd = shell(class.ld, kc2);
        let dab = mako_eri::shell_pair(&sa, &sb);
        let dcd = mako_eri::shell_pair(&sc, &sd);
        let bab = mako_eri::schwarz_bound(&dab);
        let bcd = mako_eri::schwarz_bound(&dcd);
        pairs.push(mako_eri::ScreenedPair {
            i: 0,
            j: 0,
            data: dab,
            bound: bab,
        });
        pairs.push(mako_eri::ScreenedPair {
            i: 0,
            j: 0,
            data: dcd,
            bound: bcd,
        });
        quartets.push((2 * q, 2 * q + 1));
    }
    let batch = mako_eri::QuartetBatch {
        class: *class,
        quartets,
    };
    (pairs, batch)
}

fn factor(k: usize) -> (usize, usize) {
    let mut a = (k as f64).sqrt() as usize;
    while a > 1 && !k.is_multiple_of(a) {
        a -= 1;
    }
    (a.max(1), k / a.max(1))
}

/// Geometric-mean helper for "average speedup" rows.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_cover_s_through_g() {
        let cs = diagonal_classes(1, 1);
        assert_eq!(cs.len(), 5);
        assert_eq!(cs[4].la, 4);
    }

    #[test]
    fn factoring() {
        assert_eq!(factor(1), (1, 1));
        assert_eq!(factor(5), (1, 5));
        assert_eq!(factor(25), (5, 5));
        assert_eq!(factor(6), (2, 3));
    }

    #[test]
    fn random_batches_are_deterministic_and_valid() {
        let class = EriClass {
            la: 1,
            lb: 1,
            lc: 0,
            ld: 0,
            kab: 1,
            kcd: 1,
        };
        let (p1, b1) = random_class_batch(&class, 4, 7);
        let (p2, _) = random_class_batch(&class, 4, 7);
        assert_eq!(b1.len(), 4);
        assert_eq!(p1.len(), 8);
        for (a, b) in p1.iter().zip(&p2) {
            assert_eq!(a.bound, b.bound);
        }
        assert!(p1.iter().all(|p| p.bound > 0.0));
    }

    #[test]
    fn geomean_of_constant_is_constant() {
        assert!((geomean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }
}
