//! Criterion microbenchmarks of the real (CPU-executed) numerical kernels:
//! Boys function, GEMM variants, MMD quartets per ERI class, and the
//! quantized pipelines. These measure *host* performance of this
//! reproduction's engines (the per-figure binaries report the simulated
//! device times).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mako_bench::random_class_batch;
use mako_eri::batch::EriClass;
use mako_eri::{boys_reference, eri_quartet_mmd, BoysTable};
use mako_kernels::pipeline::{run_batch, PipelineConfig};
use mako_linalg::{gemm_naive, gemm_par, gemm_tiled, Matrix, Transpose};

fn bench_boys(c: &mut Criterion) {
    let mut group = c.benchmark_group("boys");
    let table = BoysTable::new(16);
    let mut out = [0.0f64; 21];
    group.bench_function("reference_m16", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..64 {
                boys_reference(16, 0.37 * i as f64, &mut out);
                acc += out[16];
            }
            acc
        })
    });
    group.bench_function("table_m16", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..64 {
                table.eval(16, 0.37 * i as f64, &mut out);
                acc += out[16];
            }
            acc
        })
    });
    group.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &n in &[64usize, 128] {
        let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 7) % 97) as f64 * 0.013);
        let b = Matrix::from_fn(n, n, |i, j| ((i * 17 + j * 3) % 89) as f64 * 0.017);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            let mut out = Matrix::zeros(n, n);
            bench.iter(|| gemm_naive(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut out))
        });
        group.bench_with_input(BenchmarkId::new("tiled", n), &n, |bench, _| {
            let mut out = Matrix::zeros(n, n);
            bench.iter(|| gemm_tiled(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut out))
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |bench, _| {
            let mut out = Matrix::zeros(n, n);
            bench.iter(|| gemm_par(1.0, &a, Transpose::No, &b, Transpose::No, 0.0, &mut out))
        });
    }
    group.finish();
}

fn bench_eri_classes(c: &mut Criterion) {
    let mut group = c.benchmark_group("eri_quartet_mmd");
    group.sample_size(20);
    for l in 0..=3usize {
        let class = EriClass {
            la: l,
            lb: l,
            lc: l,
            ld: l,
            kab: 1,
            kcd: 1,
        };
        let (pairs, _batch) = random_class_batch(&class, 1, 42 + l as u64);
        let (pab, pcd) = (&pairs[0].data, &pairs[1].data);
        group.bench_with_input(BenchmarkId::new("class", class.label()), &l, |bench, _| {
            bench.iter(|| eri_quartet_mmd(pab, pcd))
        });
    }
    group.finish();
}

fn bench_pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_batch16");
    group.sample_size(10);
    let model = mako_accel::CostModel::new(mako_accel::DeviceSpec::a100());
    let class = EriClass {
        la: 2,
        lb: 2,
        lc: 2,
        ld: 2,
        kab: 1,
        kcd: 1,
    };
    let (pairs, batch) = random_class_batch(&class, 16, 99);
    group.bench_function("fp64", |bench| {
        bench.iter(|| run_batch(&batch, &pairs, &PipelineConfig::kernel_mako_fp64(), &model))
    });
    group.bench_function("quantized", |bench| {
        bench.iter(|| run_batch(&batch, &pairs, &PipelineConfig::quant_mako(), &model))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Single-core CI machine: keep measurement windows short.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_boys, bench_gemm, bench_eri_classes, bench_pipelines
}
criterion_main!(benches);
