//! On-disk codecs for the persistent artifact cache.
//!
//! Two driver-construction artifacts survive process restarts through the
//! [`mako_store::ArtifactStore`]:
//!
//! * **Screened shell-pair lists** (`kind = "screen"`, keyed by
//!   [`ArtifactKey::content_hash`](crate::cache::ArtifactKey::content_hash))
//!   — the Schwarz-screening output, including the precomputed
//!   [`ShellPairData`] tensors, so a warm restart skips the O(nshell²)
//!   screening pass entirely.
//! * **The tuned-kernel table** (`kind = "kernels"`, fixed key
//!   [`KERNELS_KEY`]) — every `(EriClass, Precision, DeviceKind)` winner the
//!   tuner has memoized, seeded back into the
//!   [`KernelCache`](mako_compiler::KernelCache) on
//!   [`MakoServer::with_store`](crate::MakoServer::with_store).
//!
//! Both artifacts are pure caches of deterministic computations: a decoded
//! entry is bitwise the recomputed one, so consuming a persisted artifact
//! can never change results — and every `f64` travels as
//! [`f64::to_bits`], never text, to keep that exact. Enum fields travel as
//! explicit stable codes (not `as` casts of source order), so reordering a
//! variant in source cannot silently reinterpret an existing file; an
//! unknown code makes the whole decode fail, and the
//! [`ArtifactStore`](mako_store::ArtifactStore) caller treats that like any
//! other corrupt artifact — quarantine and recompute.

use mako_accel::DeviceKind;
use mako_compiler::TunedKernel;
use mako_eri::batch::EriClass;
use mako_eri::mmd::{PrimPair, ShellPairData};
use mako_eri::screening::ScreenedPair;
use mako_kernels::pipeline::{FusionStrategy, PipelineConfig};
use mako_linalg::Matrix;
use mako_precision::{Precision, ScalePolicy};
use mako_accel::SmemLayout;

/// Artifact-store key of the single tuned-kernel table (`b"MAKOKRNL"`).
pub const KERNELS_KEY: u64 = 0x4D41_4B4F_4B52_4E4C;

/// One persisted kernel-table entry.
pub type KernelEntry = ((EriClass, Precision, DeviceKind), TunedKernel);

// ---------------------------------------------------------------------------
// Screened shell-pair lists
// ---------------------------------------------------------------------------

/// Encode a screened pair list.
pub fn encode_pairs(pairs: &[ScreenedPair]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + pairs.len() * 128);
    put_u64(&mut out, pairs.len() as u64);
    for p in pairs {
        put_u64(&mut out, p.i as u64);
        put_u64(&mut out, p.j as u64);
        put_u64(&mut out, p.bound.to_bits());
        put_u64(&mut out, p.data.la as u64);
        put_u64(&mut out, p.data.lb as u64);
        put_u64(&mut out, p.data.nsph_pair as u64);
        put_u64(&mut out, p.data.nherm as u64);
        put_u64(&mut out, p.data.prims.len() as u64);
        for prim in &p.data.prims {
            put_u64(&mut out, prim.p.to_bits());
            for &c in &prim.center {
                put_u64(&mut out, c.to_bits());
            }
            put_matrix(&mut out, &prim.e_sph);
        }
    }
    out
}

/// Decode a screened pair list. `None` on any structural mismatch — the
/// caller quarantines and recomputes.
pub fn decode_pairs(bytes: &[u8]) -> Option<Vec<ScreenedPair>> {
    let mut r = Rd::new(bytes);
    let n = r.len_checked(96)?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let i = r.u64()? as usize;
        let j = r.u64()? as usize;
        let bound = f64::from_bits(r.u64()?);
        let la = r.u64()? as usize;
        let lb = r.u64()? as usize;
        let nsph_pair = r.u64()? as usize;
        let nherm = r.u64()? as usize;
        let nprims = r.len_checked(32)?;
        let mut prims = Vec::with_capacity(nprims);
        for _ in 0..nprims {
            let p = f64::from_bits(r.u64()?);
            let center = [
                f64::from_bits(r.u64()?),
                f64::from_bits(r.u64()?),
                f64::from_bits(r.u64()?),
            ];
            let e_sph = r.matrix()?;
            prims.push(PrimPair { p, center, e_sph });
        }
        pairs.push(ScreenedPair {
            i,
            j,
            data: ShellPairData {
                la,
                lb,
                prims,
                nsph_pair,
                nherm,
            },
            bound,
        });
    }
    r.done().then_some(pairs)
}

// ---------------------------------------------------------------------------
// The tuned-kernel table
// ---------------------------------------------------------------------------

/// Encode the kernel table, sorted by stable key codes so the image is
/// deterministic whatever the in-memory map's iteration order was.
pub fn encode_kernels(entries: &[KernelEntry]) -> Vec<u8> {
    let mut sorted: Vec<&KernelEntry> = entries.iter().collect();
    sorted.sort_by_key(|((c, p, d), _)| {
        (c.la, c.lb, c.lc, c.ld, c.kab, c.kcd, precision_code(*p), device_code(*d))
    });
    let mut out = Vec::with_capacity(16 + sorted.len() * 96);
    put_u64(&mut out, sorted.len() as u64);
    for ((class, precision, device), kernel) in sorted {
        put_u64(&mut out, class.la as u64);
        put_u64(&mut out, class.lb as u64);
        put_u64(&mut out, class.lc as u64);
        put_u64(&mut out, class.ld as u64);
        put_u64(&mut out, class.kab as u64);
        put_u64(&mut out, class.kcd as u64);
        out.push(precision_code(*precision));
        out.push(device_code(*device));
        put_config(&mut out, &kernel.config);
        put_u64(&mut out, kernel.cost_s.to_bits());
        put_u64(&mut out, kernel.candidates_evaluated as u64);
        put_u64(&mut out, kernel.eq13_rejections as u64);
    }
    out
}

/// Decode the kernel table. `None` on any mismatch or unknown enum code.
pub fn decode_kernels(bytes: &[u8]) -> Option<Vec<KernelEntry>> {
    let mut r = Rd::new(bytes);
    let n = r.len_checked(96)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let class = EriClass {
            la: r.u64()? as usize,
            lb: r.u64()? as usize,
            lc: r.u64()? as usize,
            ld: r.u64()? as usize,
            kab: r.u64()? as usize,
            kcd: r.u64()? as usize,
        };
        let precision = precision_from(r.u8()?)?;
        let device = device_from(r.u8()?)?;
        let config = r.config()?;
        let kernel = TunedKernel {
            config,
            cost_s: f64::from_bits(r.u64()?),
            candidates_evaluated: r.u64()? as usize,
            eq13_rejections: r.u64()? as usize,
        };
        entries.push(((class, precision, device), kernel));
    }
    r.done().then_some(entries)
}

// ---------------------------------------------------------------------------
// Stable enum codes
// ---------------------------------------------------------------------------

fn precision_code(p: Precision) -> u8 {
    match p {
        Precision::Fp64 => 0,
        Precision::Fp32 => 1,
        Precision::Tf32 => 2,
        Precision::Bf16 => 3,
        Precision::Fp16 => 4,
    }
}

fn precision_from(code: u8) -> Option<Precision> {
    Some(match code {
        0 => Precision::Fp64,
        1 => Precision::Fp32,
        2 => Precision::Tf32,
        3 => Precision::Bf16,
        4 => Precision::Fp16,
        _ => return None,
    })
}

fn device_code(d: DeviceKind) -> u8 {
    match d {
        DeviceKind::A100_40G => 0,
        DeviceKind::A100_80G => 1,
        DeviceKind::V100 => 2,
        DeviceKind::H100 => 3,
    }
}

fn device_from(code: u8) -> Option<DeviceKind> {
    Some(match code {
        0 => DeviceKind::A100_40G,
        1 => DeviceKind::A100_80G,
        2 => DeviceKind::V100,
        3 => DeviceKind::H100,
        _ => return None,
    })
}

fn fusion_code(f: FusionStrategy) -> u8 {
    match f {
        FusionStrategy::Unfused => 0,
        FusionStrategy::FuseRPq => 1,
        FusionStrategy::FuseAll => 2,
        FusionStrategy::FuseAllCoalesced => 3,
    }
}

fn fusion_from(code: u8) -> Option<FusionStrategy> {
    Some(match code {
        0 => FusionStrategy::Unfused,
        1 => FusionStrategy::FuseRPq,
        2 => FusionStrategy::FuseAll,
        3 => FusionStrategy::FuseAllCoalesced,
        _ => return None,
    })
}

fn layout_code(l: SmemLayout) -> u8 {
    match l {
        SmemLayout::Linear => 0,
        SmemLayout::Swizzled => 1,
    }
}

fn layout_from(code: u8) -> Option<SmemLayout> {
    Some(match code {
        0 => SmemLayout::Linear,
        1 => SmemLayout::Swizzled,
        _ => return None,
    })
}

fn scale_code(s: ScalePolicy) -> u8 {
    match s {
        ScalePolicy::Global => 0,
        ScalePolicy::PerGroup => 1,
        ScalePolicy::Unscaled => 2,
    }
}

fn scale_from(code: u8) -> Option<ScalePolicy> {
    Some(match code {
        0 => ScalePolicy::Global,
        1 => ScalePolicy::PerGroup,
        2 => ScalePolicy::Unscaled,
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_matrix(out: &mut Vec<u8>, m: &Matrix) {
    put_u64(out, m.rows() as u64);
    put_u64(out, m.cols() as u64);
    for &v in m.as_slice() {
        put_u64(out, v.to_bits());
    }
}

fn put_config(out: &mut Vec<u8>, cfg: &PipelineConfig) {
    out.push(fusion_code(cfg.fusion));
    out.push(layout_code(cfg.layout));
    put_u64(out, cfg.ilp as u64);
    put_u64(out, cfg.threads_per_block as u64);
    out.push(precision_code(cfg.precision));
    out.push(scale_code(cfg.scale_policy));
    put_u64(out, cfg.tile as u64);
}

struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8]) -> Rd<'a> {
        Rd { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// A length prefix, sanity-bounded by the bytes actually remaining
    /// (each element needs at least `min_elem_bytes`) so a corrupt count
    /// cannot drive a huge allocation before the decode fails.
    fn len_checked(&mut self, min_elem_bytes: usize) -> Option<usize> {
        let n = self.u64()? as usize;
        let remaining = self.buf.len().saturating_sub(self.pos);
        (n == 0 || n.checked_mul(min_elem_bytes)? <= remaining.checked_mul(8)?).then_some(n)
    }

    fn matrix(&mut self) -> Option<Matrix> {
        let rows = self.u64()? as usize;
        let cols = self.u64()? as usize;
        let count = rows.checked_mul(cols)?;
        if count.checked_mul(8)? > self.buf.len().saturating_sub(self.pos) {
            return None;
        }
        let mut data = Vec::with_capacity(count);
        for _ in 0..count {
            data.push(f64::from_bits(self.u64()?));
        }
        Some(Matrix::from_vec(rows, cols, data))
    }

    fn config(&mut self) -> Option<PipelineConfig> {
        Some(PipelineConfig {
            fusion: fusion_from(self.u8()?)?,
            layout: layout_from(self.u8()?)?,
            ilp: self.u64()? as usize,
            threads_per_block: self.u64()? as usize,
            precision: precision_from(self.u8()?)?,
            scale_policy: scale_from(self.u8()?)?,
            tile: self.u64()? as usize,
        })
    }

    /// The buffer must be fully consumed — trailing bytes mean the payload
    /// is not what the codec wrote.
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mako_chem::builders;
    use mako_eri::screening::build_screened_pairs;

    fn water_pairs() -> Vec<ScreenedPair> {
        let mol = builders::water();
        let elements: Vec<_> = mol.atoms.iter().map(|a| a.element).collect();
        let basis = mako_chem::BasisFamily::Sto3g.basis_for(&elements);
        let shells = basis.shells_for(&mol);
        build_screened_pairs(&shells, 1e-12)
    }

    #[test]
    fn pairs_roundtrip_bitwise() {
        let pairs = water_pairs();
        assert!(!pairs.is_empty());
        let bytes = encode_pairs(&pairs);
        let back = decode_pairs(&bytes).expect("decode");
        assert_eq!(back.len(), pairs.len());
        for (a, b) in pairs.iter().zip(&back) {
            assert_eq!((a.i, a.j), (b.i, b.j));
            assert_eq!(a.bound.to_bits(), b.bound.to_bits());
            assert_eq!(a.data.prims.len(), b.data.prims.len());
            for (pa, pb) in a.data.prims.iter().zip(&b.data.prims) {
                assert_eq!(pa.p.to_bits(), pb.p.to_bits());
                assert_eq!(pa.e_sph.as_slice().len(), pb.e_sph.as_slice().len());
                for (x, y) in pa.e_sph.as_slice().iter().zip(pb.e_sph.as_slice()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "bitwise matrix payload");
                }
            }
        }
    }

    #[test]
    fn truncated_or_padded_pairs_fail_closed() {
        let bytes = encode_pairs(&water_pairs());
        for cut in [1, 7, 8, 9, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_pairs(&bytes[..cut]).is_none(),
                "truncation at {cut} must not decode"
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_pairs(&padded).is_none(), "trailing bytes must fail");
        // An absurd length prefix must fail fast, not allocate.
        let mut huge = bytes;
        huge[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_pairs(&huge).is_none());
    }

    #[test]
    fn kernel_table_roundtrips_and_is_deterministic() {
        use mako_accel::{CostModel, DeviceSpec};
        let model = CostModel::new(DeviceSpec::a100());
        let classes = [
            EriClass { la: 0, lb: 0, lc: 0, ld: 0, kab: 1, kcd: 1 },
            EriClass { la: 2, lb: 2, lc: 2, ld: 2, kab: 5, kcd: 5 },
        ];
        let mut entries: Vec<KernelEntry> = Vec::new();
        for c in &classes {
            for p in [Precision::Fp64, Precision::Fp16] {
                entries.push(((*c, p, model.device.kind), mako_compiler::tune_class(c, p, &model)));
            }
        }
        let bytes = encode_kernels(&entries);
        // Deterministic image: encoding a shuffled copy yields identical bytes.
        let mut shuffled = entries.clone();
        shuffled.reverse();
        assert_eq!(bytes, encode_kernels(&shuffled));
        let back = decode_kernels(&bytes).expect("decode");
        assert_eq!(back.len(), entries.len());
        for ((key, kernel), (bkey, bkernel)) in
            decode_kernels(&encode_kernels(&entries)).unwrap().iter().zip(&back)
        {
            assert_eq!(key, bkey);
            assert_eq!(kernel.cost_s.to_bits(), bkernel.cost_s.to_bits());
            assert_eq!(kernel.config, bkernel.config);
        }
        // Unknown enum codes fail the whole decode.
        let mut poisoned = encode_kernels(&entries);
        poisoned[8 + 48] = 0xFF; // first entry's precision code
        assert!(decode_kernels(&poisoned).is_none());
    }
}
