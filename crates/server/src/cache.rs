//! Cross-request artifact promotion: the screening-pair cache.
//!
//! Production traffic is repetitive — the same molecule/basis/device
//! combinations arrive again and again (conformer sweeps, retries, popular
//! systems). Two driver-construction artifacts are worth promoting across
//! requests:
//!
//! * tuned kernel configurations — handled by the (now size-bounded)
//!   [`mako_compiler::KernelCache`] the server owns;
//! * the screened shell-pair list — a pure function of (shells, screening
//!   threshold), cached here keyed by the problem inputs that determine it.
//!
//! Both caches only amortize *wall time*: screening and tuning are
//! deterministic, so a cache-served driver is indistinguishable from a
//! freshly built one and the trajectory contract is untouched.

use crate::job::JobSpec;
use mako_accel::DeviceKind;
use mako_chem::BasisFamily;
use mako_eri::screening::ScreenedPair;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Key of one screening artifact: every input of
/// `mako_eri::screening::build_screened_pairs` for a job, plus the device
/// kind (kept in the key so per-device observability stays separable even
/// though screening itself is device-independent — a collision across
/// devices would merely be a wall-time win, but a per-device key keeps the
/// cache's behavior trivially auditable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// Content hash of the molecule geometry (elements + position bits).
    pub molecule: u64,
    /// Basis family (with the molecule, determines the shells).
    pub basis: BasisFamily,
    /// Device kind the job runs on.
    pub device: DeviceKind,
    /// `ScfConfig::screening` bits.
    pub screening: u64,
}

impl ArtifactKey {
    /// The key for one job spec.
    pub fn for_job(spec: &JobSpec) -> ArtifactKey {
        let mut h = 0x4D41_4B4F_4D4F_4C00u64; // b"MAKOMOL\0"
        for atom in &spec.molecule.atoms {
            h = mix(h, atom.element.z() as u64);
            for &c in &atom.position {
                h = mix(h, c.to_bits());
            }
        }
        ArtifactKey {
            molecule: h,
            basis: spec.basis,
            device: spec.config.device.kind,
            screening: spec.config.screening.to_bits(),
        }
    }

    /// Collapse the key to one u64 — the file-name key of the persistent
    /// [`mako_store::ArtifactStore`]. Enum fields enter through explicit
    /// stable codes, not `as` casts of source order, so reordering a
    /// variant cannot silently alias two on-disk artifacts.
    pub fn content_hash(&self) -> u64 {
        let basis = match self.basis {
            BasisFamily::Sto3g => 0u64,
            BasisFamily::Def2TzvpLike => 1,
            BasisFamily::Def2QzvpLike => 2,
            BasisFamily::CcPvtzLike => 3,
            BasisFamily::CcPvqzLike => 4,
        };
        let device = match self.device {
            DeviceKind::A100_40G => 0u64,
            DeviceKind::A100_80G => 1,
            DeviceKind::V100 => 2,
            DeviceKind::H100 => 3,
        };
        let mut h = mix(0x4152_5446_4143_5431, self.molecule);
        h = mix(h, self.screening);
        h = mix(h, basis);
        mix(h, device)
    }
}

/// SplitMix64 finalizer — the repo's standard content-hash mixer.
#[inline]
fn mix(h: u64, v: u64) -> u64 {
    let mut z = (h ^ v).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct ScreenMap {
    map: HashMap<ArtifactKey, (u64, Vec<ScreenedPair>)>,
    tick: u64,
}

/// Size-bounded LRU cache of screened shell-pair lists.
pub struct ScreenCache {
    inner: Mutex<ScreenMap>,
    /// Maximum entries; 0 = unbounded.
    capacity: usize,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
}

impl ScreenCache {
    /// Empty cache bounded to `capacity` entries (0 = unbounded).
    pub fn with_capacity(capacity: usize) -> ScreenCache {
        ScreenCache {
            inner: Mutex::new(ScreenMap {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
        }
    }

    /// Look up the pair list for a key, refreshing its recency.
    pub fn get(&self, key: &ArtifactKey) -> Option<Vec<ScreenedPair>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some((last_used, pairs)) => {
                *last_used = tick;
                let pairs = pairs.clone();
                drop(inner);
                let hits = self.hits.fetch_add(1, Ordering::Relaxed) + 1;
                mako_trace::counter("server", "screen_cache.hits", hits as f64);
                Some(pairs)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a freshly screened pair list, evicting the LRU entry when the
    /// bound is hit. Ticks are unique, so the victim is deterministic.
    pub fn insert(&self, key: ArtifactKey, pairs: Vec<ScreenedPair>) {
        let mut inner = self.inner.lock();
        if self.capacity > 0
            && inner.map.len() >= self.capacity
            && !inner.map.contains_key(&key)
        {
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| *k)
            {
                inner.map.remove(&victim);
                let ev = self.evictions.fetch_add(1, Ordering::Relaxed) + 1;
                mako_trace::counter("server", "screen_cache.evictions", ev as f64);
            }
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(key, (tick, pairs));
    }

    /// Cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the LRU bound.
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::PriorityClass;
    use mako_chem::builders;

    fn key_for(mol: mako_chem::Molecule) -> ArtifactKey {
        ArtifactKey::for_job(&JobSpec::new("t", PriorityClass::Batch, mol))
    }

    #[test]
    fn key_separates_problems_and_matches_repeats() {
        let a = key_for(builders::water());
        let b = key_for(builders::water());
        assert_eq!(a, b, "same problem, same key");
        assert_ne!(
            a,
            key_for(builders::perturbed_water(7, 1e-4)),
            "a perturbed geometry is a different artifact"
        );
        let mut spec = JobSpec::new("t", PriorityClass::Batch, builders::water());
        spec.basis = BasisFamily::Def2TzvpLike;
        assert_ne!(a, ArtifactKey::for_job(&spec), "basis is part of the key");
    }

    #[test]
    fn lru_bound_holds_and_counts() {
        let cache = ScreenCache::with_capacity(2);
        let (ka, kb, kc) = (
            key_for(builders::water()),
            key_for(builders::methane()),
            key_for(builders::ammonia()),
        );
        cache.insert(ka, Vec::new());
        cache.insert(kb, Vec::new());
        assert!(cache.get(&ka).is_some(), "touch A so B is the victim");
        cache.insert(kc, Vec::new());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(&ka).is_some(), "hot entry survived");
        assert!(cache.get(&kb).is_none(), "LRU entry evicted");
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
    }
}
