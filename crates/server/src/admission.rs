//! Admission control: per-tenant quotas, queue-depth caps, and the
//! three-state load-shedding machine.
//!
//! The server refuses to build an unbounded backlog. Pressure is measured
//! by the ready-queue depth and mapped onto an explicit state machine:
//!
//! ```text
//!            depth < soft_cap         soft_cap ≤ depth < hard_cap      depth ≥ hard_cap
//!          ┌───────────────┐         ┌──────────────────┐            ┌──────────────┐
//!          │    Normal     │ ──────▶ │     Degraded     │ ─────────▶ │   Shedding   │
//!          │ admit all     │ ◀────── │ shed best-effort │ ◀───────── │ shed batch + │
//!          │ classes       │         │ downgrade batch  │            │ best-effort  │
//!          └───────────────┘         └──────────────────┘            └──────────────┘
//! ```
//!
//! * **Normal** — every class admitted (quota permitting).
//! * **Degraded** — best-effort jobs are rejected with
//!   [`RejectReason::LoadShed`]; batch jobs are still admitted but
//!   *downgraded* to the short preemption quantum, so they yield more often
//!   and the interactive tier sees less head-of-line blocking.
//! * **Shedding** — batch and best-effort are rejected
//!   ([`RejectReason::QueueFull`]); only interactive work gets in.
//!
//! The interactive tier is **never** shed by depth — only its tenant quota
//! bounds it. Per-tenant quotas cap jobs in flight (queued + running) per
//! tenant and apply to every class, so one tenant cannot monopolize even
//! the interactive tier.

use crate::job::{JobSpec, PriorityClass, RejectReason};
use std::collections::BTreeMap;

/// Admission-control configuration.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Ready-queue depth at which the server degrades (sheds best-effort,
    /// downgrades batch to the short quantum).
    pub queue_soft_cap: usize,
    /// Ready-queue depth at which batch is rejected too.
    pub queue_hard_cap: usize,
    /// In-flight jobs (queued + running) allowed per tenant unless
    /// overridden.
    pub default_tenant_quota: usize,
    /// Per-tenant quota overrides.
    pub tenant_quotas: Vec<(String, usize)>,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            queue_soft_cap: 8,
            queue_hard_cap: 16,
            default_tenant_quota: 4,
            tenant_quotas: Vec::new(),
        }
    }
}

/// The load-shedding state (see the module docs for the machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionState {
    /// Every class admitted.
    Normal,
    /// Best-effort shed; batch downgraded to the short quantum.
    Degraded,
    /// Batch and best-effort shed; interactive only.
    Shedding,
}

impl AdmissionState {
    /// Stable lowercase label (trace fields, bench JSON).
    pub fn label(self) -> &'static str {
        match self {
            AdmissionState::Normal => "normal",
            AdmissionState::Degraded => "degraded",
            AdmissionState::Shedding => "shedding",
        }
    }
}

/// What admission granted: whether the job was downgraded to the short
/// (degraded) preemption quantum.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AdmissionTicket {
    /// Batch job admitted under pressure: use the degraded quantum.
    pub(crate) degraded: bool,
}

/// The admission controller: quota ledger plus the shedding state machine.
/// Deterministic by construction — tenant accounting lives in a `BTreeMap`
/// and every decision is a pure function of (config, ledger, queue depth).
pub(crate) struct AdmissionController {
    cfg: AdmissionConfig,
    state: AdmissionState,
    in_flight: BTreeMap<String, usize>,
}

impl AdmissionController {
    pub(crate) fn new(cfg: AdmissionConfig) -> AdmissionController {
        AdmissionController {
            cfg,
            state: AdmissionState::Normal,
            in_flight: BTreeMap::new(),
        }
    }

    /// Current shedding state.
    pub(crate) fn state(&self) -> AdmissionState {
        self.state
    }

    fn quota_for(&self, tenant: &str) -> usize {
        self.cfg
            .tenant_quotas
            .iter()
            .find(|(t, _)| t == tenant)
            .map(|(_, q)| *q)
            .unwrap_or(self.cfg.default_tenant_quota)
    }

    /// Re-derive the shedding state from the queue depth; returns the
    /// previous state when a transition happened (for tracing).
    pub(crate) fn evaluate(&mut self, depth: usize) -> Option<AdmissionState> {
        let next = if depth >= self.cfg.queue_hard_cap {
            AdmissionState::Shedding
        } else if depth >= self.cfg.queue_soft_cap {
            AdmissionState::Degraded
        } else {
            AdmissionState::Normal
        };
        let prev = self.state;
        self.state = next;
        (prev != next).then_some(prev)
    }

    /// Admit or reject one arriving job against the current depth.
    pub(crate) fn admit(
        &mut self,
        spec: &JobSpec,
        depth: usize,
    ) -> Result<AdmissionTicket, RejectReason> {
        self.evaluate(depth);
        let quota = self.quota_for(&spec.tenant);
        let used = self.in_flight.get(&spec.tenant).copied().unwrap_or(0);
        if used >= quota {
            return Err(RejectReason::TenantQuotaExceeded {
                tenant: spec.tenant.clone(),
                limit: quota,
            });
        }
        let degraded = match (spec.class, self.state) {
            // Interactive is never depth-shed.
            (PriorityClass::Interactive, _) => false,
            (PriorityClass::Batch, AdmissionState::Normal) => false,
            (PriorityClass::Batch, AdmissionState::Degraded) => true,
            (PriorityClass::Batch, AdmissionState::Shedding) => {
                return Err(RejectReason::QueueFull {
                    depth,
                    cap: self.cfg.queue_hard_cap,
                });
            }
            (PriorityClass::BestEffort, AdmissionState::Normal) => false,
            (PriorityClass::BestEffort, _) => {
                return Err(RejectReason::LoadShed { class: spec.class });
            }
        };
        *self.in_flight.entry(spec.tenant.clone()).or_insert(0) += 1;
        Ok(AdmissionTicket { degraded })
    }

    /// Re-occupy a tenant slot for an admission replayed from the journal.
    /// The decision was already made, logged, and billed before the crash;
    /// recovery must not re-run the gauntlet (the queue may look different
    /// now, and a replayed admit that suddenly rejected would lose a job).
    pub(crate) fn occupy(&mut self, tenant: &str) {
        *self.in_flight.entry(tenant.to_string()).or_insert(0) += 1;
    }

    /// Release one in-flight slot when a job reaches a terminal outcome.
    pub(crate) fn release(&mut self, tenant: &str) {
        if let Some(n) = self.in_flight.get_mut(tenant) {
            *n = n.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mako_chem::builders;

    fn spec(tenant: &str, class: PriorityClass) -> JobSpec {
        JobSpec::new(tenant, class, builders::water())
    }

    fn ctl() -> AdmissionController {
        AdmissionController::new(AdmissionConfig {
            queue_soft_cap: 2,
            queue_hard_cap: 4,
            default_tenant_quota: 2,
            tenant_quotas: vec![("whale".to_string(), 5)],
        })
    }

    #[test]
    fn tenant_quota_binds_across_classes() {
        let mut c = ctl();
        assert!(c.admit(&spec("a", PriorityClass::Interactive), 0).is_ok());
        assert!(c.admit(&spec("a", PriorityClass::Batch), 0).is_ok());
        // Third in-flight job for tenant "a" — rejected regardless of class.
        match c.admit(&spec("a", PriorityClass::Interactive), 0) {
            Err(RejectReason::TenantQuotaExceeded { tenant, limit }) => {
                assert_eq!(tenant, "a");
                assert_eq!(limit, 2);
            }
            other => panic!("expected quota rejection, got {other:?}"),
        }
        // Another tenant is unaffected; the override tenant has more room.
        assert!(c.admit(&spec("b", PriorityClass::Batch), 0).is_ok());
        for _ in 0..5 {
            assert!(c.admit(&spec("whale", PriorityClass::Interactive), 0).is_ok());
        }
        assert!(c.admit(&spec("whale", PriorityClass::Interactive), 0).is_err());
        // Releasing frees the slot.
        c.release("a");
        assert!(c.admit(&spec("a", PriorityClass::Batch), 0).is_ok());
    }

    #[test]
    fn state_machine_follows_depth() {
        let mut c = ctl();
        assert_eq!(c.state(), AdmissionState::Normal);
        assert_eq!(c.evaluate(2), Some(AdmissionState::Normal));
        assert_eq!(c.state(), AdmissionState::Degraded);
        assert_eq!(c.evaluate(4), Some(AdmissionState::Degraded));
        assert_eq!(c.state(), AdmissionState::Shedding);
        // No transition → None.
        assert_eq!(c.evaluate(5), None);
        assert_eq!(c.evaluate(0), Some(AdmissionState::Shedding));
        assert_eq!(c.state(), AdmissionState::Normal);
    }

    #[test]
    fn shedding_ladder_degrades_gracefully() {
        let mut c = ctl();
        // Normal: everything admitted, nothing degraded.
        let t = c.admit(&spec("a", PriorityClass::Batch), 0).expect("admit");
        assert!(!t.degraded);
        assert!(c.admit(&spec("b", PriorityClass::BestEffort), 1).is_ok());

        // Degraded: best-effort shed, batch admitted but downgraded.
        match c.admit(&spec("c", PriorityClass::BestEffort), 2) {
            Err(RejectReason::LoadShed { class }) => {
                assert_eq!(class, PriorityClass::BestEffort)
            }
            other => panic!("expected load-shed, got {other:?}"),
        }
        let t = c.admit(&spec("c", PriorityClass::Batch), 3).expect("admit");
        assert!(t.degraded, "batch under pressure runs the short quantum");

        // Shedding: batch rejected too; interactive still admitted.
        match c.admit(&spec("d", PriorityClass::Batch), 4) {
            Err(RejectReason::QueueFull { depth, cap }) => {
                assert_eq!((depth, cap), (4, 4))
            }
            other => panic!("expected queue-full, got {other:?}"),
        }
        assert!(
            c.admit(&spec("d", PriorityClass::Interactive), 100).is_ok(),
            "interactive is never depth-shed"
        );
    }
}
