//! The write-ahead job journal: every scheduling decision `MakoServer`
//! makes is appended (and fsync'd) *before* it takes effect, so a crash at
//! any point leaves a durable prefix of the serve from which
//! [`MakoServer::recover`] reconstructs the queue and finishes the run.
//!
//! ## Record stream
//!
//! Records ride the CRC-framed append-only format of
//! [`mako_store::records`] (`[len][crc][payload]`); a crash mid-append
//! leaves a torn tail the replay tolerates (the record simply never
//! committed), and bit rot is detected rather than replayed. Each payload
//! is a tag byte plus little-endian fields; `f64` values travel as
//! [`f64::to_bits`] so a replayed energy is *bitwise* the energy that was
//! journaled — the recovery invariant is bitwise identity, and text
//! round-trips would forfeit it.
//!
//! ## What is journaled
//!
//! Admission decisions ([`JournalRecord::Admitted`] /
//! [`JournalRecord::Rejected`]) are durable: a job admitted before a crash
//! does not re-run the admission gauntlet on recovery (the quota decision
//! was already made and billed), and a rejected job stays rejected.
//! Terminal outcomes ([`JournalRecord::Completed`] /
//! [`JournalRecord::Failed`] / [`JournalRecord::DeadlineExceeded`]) carry
//! everything needed to reconstruct the [`JobOutcome`] without re-running
//! the job. Progress records ([`JournalRecord::Started`],
//! [`JournalRecord::Checkpointed`], [`JournalRecord::Yielded`]) tell
//! recovery which per-job checkpoint files are worth salvaging.
//! [`JournalRecord::RecoveryMark`] separates generations so a journal that
//! survived several crashes still replays unambiguously.
//!
//! [`MakoServer::recover`]: crate::MakoServer::recover

use crate::job::{JobError, JobOutcome, JobReport, JobSpec, RejectReason};
use mako_store::records::{frame, read_all_framed, Tail};
use mako_store::write_durable;
use mako_store::{Vfs, VfsError};
use std::path::PathBuf;
use std::sync::Arc;

/// One durable entry in the write-ahead journal.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A serve started: job count and a content hash of the workload, so
    /// recovery can refuse to continue a journal against the wrong specs.
    ServeBegin {
        /// Submitted jobs.
        jobs: u64,
        /// SplitMix64 content hash of the job specs.
        workload: u64,
    },
    /// Admission admitted the job (possibly into degraded mode).
    Admitted {
        /// Job id.
        job: u64,
        /// Whether the server was degraded at admission (affects the
        /// iteration budget the job runs with).
        degraded: bool,
    },
    /// Admission rejected the job. `code`/`a`/`b` encode the
    /// [`RejectReason`] (tenant string and class are reconstructed from
    /// the resubmitted spec).
    Rejected {
        /// Job id.
        job: u64,
        /// 0 = tenant quota (`a` = limit), 1 = queue full (`a` = depth,
        /// `b` = cap), 2 = load shed.
        code: u8,
        /// First parameter.
        a: u64,
        /// Second parameter.
        b: u64,
    },
    /// The job was dispatched for the first time.
    Started {
        /// Job id.
        job: u64,
        /// Virtual dispatch time (bits).
        at: u64,
    },
    /// A quantum boundary persisted a checkpoint for the job.
    Checkpointed {
        /// Job id.
        job: u64,
        /// First iteration the checkpoint's resume executes.
        next_iteration: u64,
    },
    /// The job yielded at a quantum boundary and re-entered the queue.
    Yielded {
        /// Job id.
        job: u64,
        /// Iterations completed at the yield.
        iteration: u64,
    },
    /// Terminal: the job completed. Carries the full [`JobReport`] so the
    /// outcome replays without re-running a single SCF iteration.
    Completed {
        /// Job id.
        job: u64,
        /// `energy.to_bits()` — bitwise, never text.
        energy: u64,
        /// Whether the SCF converged.
        converged: bool,
        /// Iterations executed.
        iterations: u64,
        /// Device seconds (bits).
        device_seconds: u64,
        /// Arrival time (bits).
        submitted_at: u64,
        /// First dispatch time (bits).
        started_at: u64,
        /// Completion time (bits).
        finished_at: u64,
        /// Faulted attempts retried.
        retries: u32,
        /// Preemption count.
        preemptions: u64,
        /// Quanta run.
        quanta: u64,
    },
    /// Terminal: the job failed. The typed error is journaled as its
    /// display string; recovery surfaces it as [`JobError::Replayed`].
    Failed {
        /// Job id.
        job: u64,
        /// Retries consumed.
        retries: u32,
        /// Display form of the final error.
        description: String,
    },
    /// Terminal: the deadline passed while work remained.
    DeadlineExceeded {
        /// Job id.
        job: u64,
        /// The deadline (bits).
        deadline_seconds: u64,
        /// Iterations completed before it fired.
        completed_iterations: u64,
        /// Retries consumed.
        retries: u32,
    },
    /// A recovery replayed everything above and resumed the serve.
    RecoveryMark {
        /// 1 for the first recovery, 2 for a recovery of the recovery, …
        generation: u32,
    },
    /// The serve finished cleanly.
    ServeEnd {
        /// Makespan (bits).
        makespan: u64,
    },
}

impl JournalRecord {
    /// Encode to the tagged little-endian payload (one CRC frame's worth).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            JournalRecord::ServeBegin { jobs, workload } => {
                out.push(0);
                put_u64(&mut out, *jobs);
                put_u64(&mut out, *workload);
            }
            JournalRecord::Admitted { job, degraded } => {
                out.push(1);
                put_u64(&mut out, *job);
                out.push(*degraded as u8);
            }
            JournalRecord::Rejected { job, code, a, b } => {
                out.push(2);
                put_u64(&mut out, *job);
                out.push(*code);
                put_u64(&mut out, *a);
                put_u64(&mut out, *b);
            }
            JournalRecord::Started { job, at } => {
                out.push(3);
                put_u64(&mut out, *job);
                put_u64(&mut out, *at);
            }
            JournalRecord::Checkpointed { job, next_iteration } => {
                out.push(4);
                put_u64(&mut out, *job);
                put_u64(&mut out, *next_iteration);
            }
            JournalRecord::Yielded { job, iteration } => {
                out.push(5);
                put_u64(&mut out, *job);
                put_u64(&mut out, *iteration);
            }
            JournalRecord::Completed {
                job,
                energy,
                converged,
                iterations,
                device_seconds,
                submitted_at,
                started_at,
                finished_at,
                retries,
                preemptions,
                quanta,
            } => {
                out.push(6);
                put_u64(&mut out, *job);
                put_u64(&mut out, *energy);
                out.push(*converged as u8);
                put_u64(&mut out, *iterations);
                put_u64(&mut out, *device_seconds);
                put_u64(&mut out, *submitted_at);
                put_u64(&mut out, *started_at);
                put_u64(&mut out, *finished_at);
                out.extend_from_slice(&retries.to_le_bytes());
                put_u64(&mut out, *preemptions);
                put_u64(&mut out, *quanta);
            }
            JournalRecord::Failed {
                job,
                retries,
                description,
            } => {
                out.push(7);
                put_u64(&mut out, *job);
                out.extend_from_slice(&retries.to_le_bytes());
                put_u64(&mut out, description.len() as u64);
                out.extend_from_slice(description.as_bytes());
            }
            JournalRecord::DeadlineExceeded {
                job,
                deadline_seconds,
                completed_iterations,
                retries,
            } => {
                out.push(8);
                put_u64(&mut out, *job);
                put_u64(&mut out, *deadline_seconds);
                put_u64(&mut out, *completed_iterations);
                out.extend_from_slice(&retries.to_le_bytes());
            }
            JournalRecord::RecoveryMark { generation } => {
                out.push(9);
                out.extend_from_slice(&generation.to_le_bytes());
            }
            JournalRecord::ServeEnd { makespan } => {
                out.push(10);
                put_u64(&mut out, *makespan);
            }
        }
        out
    }

    /// Decode a payload. `None` on an unknown tag or short payload — the
    /// caller treats it like a corrupt frame and stops replaying.
    pub fn decode(payload: &[u8]) -> Option<JournalRecord> {
        let mut r = Rd { buf: payload, pos: 1 };
        let rec = match *payload.first()? {
            0 => JournalRecord::ServeBegin {
                jobs: r.u64()?,
                workload: r.u64()?,
            },
            1 => JournalRecord::Admitted {
                job: r.u64()?,
                degraded: r.u8()? != 0,
            },
            2 => JournalRecord::Rejected {
                job: r.u64()?,
                code: r.u8()?,
                a: r.u64()?,
                b: r.u64()?,
            },
            3 => JournalRecord::Started {
                job: r.u64()?,
                at: r.u64()?,
            },
            4 => JournalRecord::Checkpointed {
                job: r.u64()?,
                next_iteration: r.u64()?,
            },
            5 => JournalRecord::Yielded {
                job: r.u64()?,
                iteration: r.u64()?,
            },
            6 => JournalRecord::Completed {
                job: r.u64()?,
                energy: r.u64()?,
                converged: r.u8()? != 0,
                iterations: r.u64()?,
                device_seconds: r.u64()?,
                submitted_at: r.u64()?,
                started_at: r.u64()?,
                finished_at: r.u64()?,
                retries: r.u32()?,
                preemptions: r.u64()?,
                quanta: r.u64()?,
            },
            7 => {
                let job = r.u64()?;
                let retries = r.u32()?;
                let n = r.u64()? as usize;
                let bytes = r.take(n)?;
                JournalRecord::Failed {
                    job,
                    retries,
                    description: String::from_utf8_lossy(bytes).into_owned(),
                }
            }
            8 => JournalRecord::DeadlineExceeded {
                job: r.u64()?,
                deadline_seconds: r.u64()?,
                completed_iterations: r.u64()?,
                retries: r.u32()?,
            },
            9 => JournalRecord::RecoveryMark {
                generation: r.u32()?,
            },
            10 => JournalRecord::ServeEnd { makespan: r.u64()? },
            _ => return None,
        };
        Some(rec)
    }

    /// The terminal record for a finished job's outcome (`None` for
    /// outcomes that are not journaled per-job this way).
    pub fn terminal_for(job: u64, outcome: &JobOutcome) -> Option<JournalRecord> {
        match outcome {
            JobOutcome::Completed(r) => Some(JournalRecord::Completed {
                job,
                energy: r.energy.to_bits(),
                converged: r.converged,
                iterations: r.iterations as u64,
                device_seconds: r.device_seconds.to_bits(),
                submitted_at: r.submitted_at.to_bits(),
                started_at: r.started_at.to_bits(),
                finished_at: r.finished_at.to_bits(),
                retries: r.retries,
                preemptions: r.preemptions as u64,
                quanta: r.quanta as u64,
            }),
            JobOutcome::Failed { error, retries } => Some(JournalRecord::Failed {
                job,
                retries: *retries,
                description: error.to_string(),
            }),
            JobOutcome::DeadlineExceeded {
                deadline_seconds,
                completed_iterations,
                retries,
            } => Some(JournalRecord::DeadlineExceeded {
                job,
                deadline_seconds: deadline_seconds.to_bits(),
                completed_iterations: *completed_iterations as u64,
                retries: *retries,
            }),
            JobOutcome::Rejected { reason } => {
                let (code, a, b) = match reason {
                    RejectReason::TenantQuotaExceeded { limit, .. } => (0u8, *limit as u64, 0),
                    RejectReason::QueueFull { depth, cap } => (1, *depth as u64, *cap as u64),
                    RejectReason::LoadShed { .. } => (2, 0, 0),
                };
                Some(JournalRecord::Rejected { job, code, a, b })
            }
        }
    }

    /// Reconstruct the [`JobOutcome`] a terminal record stands for, given
    /// the resubmitted spec (source of the tenant string / class the
    /// compact encoding drops). `None` for non-terminal records.
    pub fn outcome(&self, spec: &JobSpec) -> Option<JobOutcome> {
        match self {
            JournalRecord::Completed {
                energy,
                converged,
                iterations,
                device_seconds,
                submitted_at,
                started_at,
                finished_at,
                retries,
                preemptions,
                quanta,
                ..
            } => Some(JobOutcome::Completed(JobReport {
                energy: f64::from_bits(*energy),
                converged: *converged,
                iterations: *iterations as usize,
                device_seconds: f64::from_bits(*device_seconds),
                submitted_at: f64::from_bits(*submitted_at),
                started_at: f64::from_bits(*started_at),
                finished_at: f64::from_bits(*finished_at),
                retries: *retries,
                preemptions: *preemptions as usize,
                quanta: *quanta as usize,
            })),
            JournalRecord::Failed {
                retries,
                description,
                ..
            } => Some(JobOutcome::Failed {
                error: JobError::Replayed {
                    description: description.clone(),
                },
                retries: *retries,
            }),
            JournalRecord::DeadlineExceeded {
                deadline_seconds,
                completed_iterations,
                retries,
                ..
            } => Some(JobOutcome::DeadlineExceeded {
                deadline_seconds: f64::from_bits(*deadline_seconds),
                completed_iterations: *completed_iterations as usize,
                retries: *retries,
            }),
            JournalRecord::Rejected { code, a, b, .. } => {
                let reason = match code {
                    0 => RejectReason::TenantQuotaExceeded {
                        tenant: spec.tenant.clone(),
                        limit: *a as usize,
                    },
                    1 => RejectReason::QueueFull {
                        depth: *a as usize,
                        cap: *b as usize,
                    },
                    _ => RejectReason::LoadShed { class: spec.class },
                };
                Some(JobOutcome::Rejected { reason })
            }
            _ => None,
        }
    }

    /// The job id this record is about, if any.
    pub fn job(&self) -> Option<u64> {
        match self {
            JournalRecord::Admitted { job, .. }
            | JournalRecord::Rejected { job, .. }
            | JournalRecord::Started { job, .. }
            | JournalRecord::Checkpointed { job, .. }
            | JournalRecord::Yielded { job, .. }
            | JournalRecord::Completed { job, .. }
            | JournalRecord::Failed { job, .. }
            | JournalRecord::DeadlineExceeded { job, .. } => Some(*job),
            _ => None,
        }
    }
}

/// The append-only journal file on a [`Vfs`].
#[derive(Debug, Clone)]
pub struct Journal {
    vfs: Arc<dyn Vfs>,
    path: PathBuf,
}

impl Journal {
    /// Bind a journal to `path` on `vfs` (the file is created lazily by
    /// the first append).
    pub fn new(vfs: Arc<dyn Vfs>, path: PathBuf) -> Journal {
        Journal { vfs, path }
    }

    /// The journal file path.
    pub fn path(&self) -> &PathBuf {
        &self.path
    }

    /// Durably append one record: frame, append, fsync. The record has
    /// *happened* only once this returns — callers journal the decision
    /// before acting on it (write-ahead discipline).
    pub fn append(&self, rec: &JournalRecord) -> Result<(), VfsError> {
        let payload = rec.encode();
        self.vfs.append(&self.path, &frame(&payload))?;
        self.vfs.sync(&self.path)?;
        mako_trace::instant(
            "store",
            "append",
            vec![mako_trace::field("bytes", (payload.len() + 8) as f64)],
        );
        Ok(())
    }

    /// Replay the journal: every decodable record up to the first torn or
    /// corrupt frame, plus the tail classification. A missing file is an
    /// empty, clean journal (the crash happened before the first append
    /// became durable).
    pub fn replay(&self) -> Result<(Vec<JournalRecord>, Tail), VfsError> {
        let (records, tail, _) = self.read_valid()?;
        Ok((records, tail))
    }

    /// [`replay`](Journal::replay), then — when the tail is torn or corrupt
    /// — durably truncate the file to its valid prefix so future appends
    /// commit *after* the last good record. Without this, records appended
    /// by a recovery would sit behind the garbage tail, unreachable to
    /// every later replay (prefix semantics stop at the first bad frame).
    pub fn replay_and_repair(&self) -> Result<(Vec<JournalRecord>, Tail), VfsError> {
        let (records, tail, valid_len) = self.read_valid()?;
        if tail != Tail::Clean {
            let bytes = match self.vfs.read(&self.path) {
                Ok(b) => b,
                Err(VfsError::NotFound) => return Ok((records, tail)),
                Err(e) => return Err(e),
            };
            if valid_len < bytes.len() {
                write_durable(self.vfs.as_ref(), &self.path, &bytes[..valid_len])?;
                mako_trace::instant(
                    "store",
                    "truncate",
                    vec![
                        mako_trace::field("valid_bytes", valid_len),
                        mako_trace::field("dropped_bytes", bytes.len() - valid_len),
                        mako_trace::field("tail", if tail == Tail::Torn { "torn" } else { "corrupt" }),
                    ],
                );
            }
        }
        Ok((records, tail))
    }

    fn read_valid(&self) -> Result<(Vec<JournalRecord>, Tail, usize), VfsError> {
        let bytes = match self.vfs.read(&self.path) {
            Ok(b) => b,
            Err(VfsError::NotFound) => return Ok((Vec::new(), Tail::Clean, 0)),
            Err(e) => return Err(e),
        };
        let (frames, mut tail, mut valid_len) = read_all_framed(&bytes);
        let mut records = Vec::with_capacity(frames.len());
        for payload in &frames {
            match JournalRecord::decode(payload) {
                Some(rec) => records.push(rec),
                None => {
                    // A CRC-valid frame that doesn't decode is structural
                    // corruption; stop here, keep the prefix.
                    tail = Tail::Corrupt;
                    valid_len = frames[..records.len()]
                        .iter()
                        .map(|f| 8 + f.len())
                        .sum();
                    break;
                }
            }
        }
        Ok((records, tail, valid_len))
    }
}

/// SplitMix64 content hash of a workload. [`JournalRecord::ServeBegin`]
/// carries it so recovery can refuse to replay a journal against a
/// *different* resubmitted workload — continuing someone else's serve with
/// these specs would attribute journaled outcomes to the wrong jobs.
pub fn workload_hash(specs: &[JobSpec]) -> u64 {
    let mut h = 0x574C_4F41_4448_5348u64; // salt
    for spec in specs {
        let key = crate::cache::ArtifactKey::for_job(spec);
        h = mix(h, key.molecule);
        h = mix(h, key.screening);
        h = mix(h, spec.class.rank() as u64);
        h = mix(h, spec.submit_at.to_bits());
        h = mix(h, spec.deadline.unwrap_or(f64::NEG_INFINITY).to_bits());
        for b in spec.tenant.as_bytes() {
            h = mix(h, *b as u64);
        }
    }
    h
}

/// SplitMix64 finalizer (the repo's standard mixer).
fn mix(h: u64, v: u64) -> u64 {
    let mut z = (h ^ v).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::PriorityClass;
    use mako_chem::builders;
    use mako_store::FaultVfs;

    fn all_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::ServeBegin { jobs: 4, workload: 0xABCD },
            JournalRecord::Admitted { job: 0, degraded: false },
            JournalRecord::Rejected { job: 1, code: 1, a: 9, b: 8 },
            JournalRecord::Started { job: 0, at: 1.5f64.to_bits() },
            JournalRecord::Checkpointed { job: 0, next_iteration: 3 },
            JournalRecord::Yielded { job: 0, iteration: 3 },
            JournalRecord::Completed {
                job: 0,
                energy: (-74.9630287f64).to_bits(),
                converged: true,
                iterations: 17,
                device_seconds: 0.25f64.to_bits(),
                submitted_at: 0f64.to_bits(),
                started_at: 0.01f64.to_bits(),
                finished_at: 0.26f64.to_bits(),
                retries: 1,
                preemptions: 2,
                quanta: 5,
            },
            JournalRecord::Failed {
                job: 2,
                retries: 3,
                description: "worker 1 died mid-quantum".to_string(),
            },
            JournalRecord::DeadlineExceeded {
                job: 3,
                deadline_seconds: 0.5f64.to_bits(),
                completed_iterations: 6,
                retries: 0,
            },
            JournalRecord::RecoveryMark { generation: 1 },
            JournalRecord::ServeEnd { makespan: 0.3f64.to_bits() },
        ]
    }

    #[test]
    fn every_record_roundtrips() {
        for rec in all_records() {
            let back = JournalRecord::decode(&rec.encode()).expect("decode");
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn journal_append_replay_roundtrip() {
        let vfs = Arc::new(FaultVfs::quiet());
        let j = Journal::new(vfs, PathBuf::from("/serve.wal"));
        for rec in all_records() {
            j.append(&rec).expect("append");
        }
        let (records, tail) = j.replay().expect("replay");
        assert_eq!(tail, Tail::Clean);
        assert_eq!(records, all_records());
    }

    #[test]
    fn missing_journal_is_empty_and_clean() {
        let vfs = Arc::new(FaultVfs::quiet());
        let j = Journal::new(vfs, PathBuf::from("/nothing.wal"));
        let (records, tail) = j.replay().expect("replay");
        assert!(records.is_empty());
        assert_eq!(tail, Tail::Clean);
    }

    #[test]
    fn torn_tail_keeps_the_committed_prefix() {
        let vfs = Arc::new(FaultVfs::quiet());
        let j = Journal::new(vfs.clone(), PathBuf::from("/serve.wal"));
        for rec in all_records() {
            j.append(&rec).expect("append");
        }
        let full = vfs.raw(&PathBuf::from("/serve.wal")).unwrap();
        // Tear mid-record: drop the last 3 bytes.
        assert!(vfs.truncate(&PathBuf::from("/serve.wal"), full.len() - 3));
        let (records, tail) = j.replay().expect("replay");
        assert_eq!(tail, Tail::Torn);
        let all = all_records();
        assert_eq!(records, all[..all.len() - 1].to_vec());
    }

    #[test]
    fn repair_truncates_the_tear_so_later_appends_stay_reachable() {
        let vfs = Arc::new(FaultVfs::quiet());
        let path = PathBuf::from("/serve.wal");
        let j = Journal::new(vfs.clone(), path.clone());
        let all = all_records();
        for rec in &all {
            j.append(rec).expect("append");
        }
        let full = vfs.raw(&path).unwrap();
        assert!(vfs.truncate(&path, full.len() - 3), "tear the tail");

        // Without repair, a record appended after the tear is unreachable:
        // replay stops at the torn frame.
        let marker = JournalRecord::RecoveryMark { generation: 9 };
        j.append(&marker).expect("append past the tear");
        let (lost, tail) = j.replay().expect("replay");
        // The torn frame swallows the marker's leading bytes, so the stream
        // reads Torn or Corrupt depending on how the lengths line up —
        // either way the committed marker is unreachable.
        assert_ne!(tail, Tail::Clean);
        assert!(!lost.contains(&marker), "the tear shadows later appends");

        // Repair truncates to the valid prefix; appends now commit after
        // the last good record and replay cleanly.
        assert!(vfs.truncate(&path, full.len() - 3), "re-tear");
        let (records, tail) = j.replay_and_repair().expect("repair");
        assert_eq!(tail, Tail::Torn);
        assert_eq!(records, all[..all.len() - 1].to_vec());
        j.append(&marker).expect("append after repair");
        let (records, tail) = j.replay().expect("replay");
        assert_eq!(tail, Tail::Clean);
        assert_eq!(records.len(), all.len(), "prefix + the new record");
        assert_eq!(records.last(), Some(&marker));
    }

    #[test]
    fn outcome_reconstruction_is_bitwise() {
        let spec = JobSpec::new("acme", PriorityClass::Batch, builders::water());
        let energy = -74.96302864577f64;
        let report = JobReport {
            energy,
            converged: true,
            iterations: 12,
            device_seconds: 0.125,
            submitted_at: 0.0,
            started_at: 0.5,
            finished_at: 0.625,
            retries: 2,
            preemptions: 1,
            quanta: 4,
        };
        let rec = JournalRecord::terminal_for(7, &JobOutcome::Completed(report.clone()))
            .expect("terminal");
        let back = rec.outcome(&spec).expect("outcome");
        let r = back.report().expect("report");
        assert_eq!(r.energy.to_bits(), energy.to_bits(), "bitwise energy");
        assert_eq!(r.iterations, report.iterations);
        assert_eq!(r.retries, report.retries);

        let rej = JournalRecord::terminal_for(
            1,
            &JobOutcome::Rejected {
                reason: RejectReason::TenantQuotaExceeded {
                    tenant: "acme".to_string(),
                    limit: 2,
                },
            },
        )
        .expect("terminal");
        match rej.outcome(&spec) {
            Some(JobOutcome::Rejected {
                reason: RejectReason::TenantQuotaExceeded { tenant, limit },
            }) => {
                assert_eq!(tenant, "acme");
                assert_eq!(limit, 2);
            }
            other => panic!("bad reconstruction: {other:?}"),
        }
    }
}
