//! The job runtime: a deterministic discrete-event scheduler over a pool of
//! simulated device workers.
//!
//! # Execution model
//!
//! [`MakoServer::serve`] runs one closed workload — a list of [`JobSpec`]s
//! with virtual arrival times — to completion on a **virtual clock**
//! denominated in simulated device seconds (the same currency as
//! [`mako_scf::ScfResult::total_seconds`]). Scheduling is a discrete-event
//! simulation: the only events are job arrivals, attempt completions, and
//! retry-backoff expiries, processed in deterministic order (ties break
//! arrivals-first, then by worker index, then by job id). Given the same
//! specs, config, and chaos schedule, `serve` is bit-for-bit reproducible —
//! including every scheduling decision — regardless of host thread count.
//!
//! # Preemption
//!
//! Batch and best-effort jobs run in **checkpoint-backed quanta**: each
//! dispatch executes at most `quantum_iterations` SCF iterations (the
//! degraded quantum under load), persists an [`ScfCheckpoint`] at the
//! boundary, and requeues. Interactive jobs run to completion. Because a
//! preempted job resumes from its checkpoint bitwise-identically (the PR-3
//! contract), preemption is invisible in the numbers — it only moves time.
//!
//! # Fault containment
//!
//! Worker deaths, straggler timeouts, checkpoint-write failures, and
//! poisoned Fock builds (all injected by [`ServerChaos`]) void the attempt
//! they strike: the job's in-memory resume state is untouched, the fault is
//! recorded as a typed [`JobError`], and the job retries under capped
//! exponential backoff from the last acknowledged checkpoint. A fault never
//! panics and never leaks into another job's numbers — the chaos invariant
//! (completed energy bitwise equal to a quiet solo run) holds because a
//! voided attempt contributes nothing but virtual time.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mako_chem::Element;
use mako_compiler::KernelCache;
use mako_scf::{
    CheckpointError, CheckpointPolicy, ScfCheckpoint, ScfDriver, ScfError, ScfResult,
    ScfRunOptions,
};
use mako_store::{ArtifactStore, Vfs, VfsError};

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionState};
use crate::cache::{ArtifactKey, ScreenCache};
use crate::chaos::ServerChaos;
use crate::job::{JobError, JobId, JobOutcome, JobReport, JobSpec, PriorityClass};
use crate::journal::{workload_hash, Journal, JournalRecord};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Simulated device workers.
    pub workers: usize,
    /// Batch preemption quantum, SCF iterations per dispatch.
    pub quantum_iterations: usize,
    /// The shorter quantum batch jobs get when admitted under pressure.
    pub degraded_quantum_iterations: usize,
    /// Faulted attempts retried before a job fails.
    pub max_retries: u32,
    /// First retry backoff, virtual seconds.
    pub retry_backoff_base: f64,
    /// Cap on the exponential retry backoff, virtual seconds.
    pub retry_backoff_cap: f64,
    /// Straggler bar: attempts running longer than this (virtual seconds)
    /// are killed and retried. `INFINITY` disables the bar.
    pub attempt_timeout: f64,
    /// Screening-pair cache bound, entries (0 = unbounded).
    pub screen_cache_capacity: usize,
    /// Kernel cache bound, entries (0 = unbounded).
    pub kernel_cache_capacity: usize,
    /// Directory for preemption checkpoints.
    pub checkpoint_dir: PathBuf,
    /// Admission control knobs.
    pub admission: AdmissionConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            quantum_iterations: 4,
            degraded_quantum_iterations: 2,
            max_retries: 3,
            retry_backoff_base: 1e-3,
            retry_backoff_cap: 0.25,
            attempt_timeout: f64::INFINITY,
            screen_cache_capacity: 64,
            kernel_cache_capacity: 64,
            checkpoint_dir: std::env::temp_dir().join("mako-server"),
            admission: AdmissionConfig::default(),
        }
    }
}

impl ServerConfig {
    fn backoff(&self, attempt: u32) -> f64 {
        let exp = attempt.saturating_sub(1).min(52);
        (self.retry_backoff_base * (1u64 << exp) as f64).min(self.retry_backoff_cap)
    }
}

/// Aggregate accounting of one [`serve`] call.
///
/// [`serve`]: MakoServer::serve
#[derive(Debug, Clone, Default)]
pub struct ServeLedger {
    /// Jobs past admission control.
    pub admitted: usize,
    /// Jobs turned away at admission.
    pub rejected: usize,
    /// Jobs that completed.
    pub completed: usize,
    /// Jobs that failed (typed, after retries).
    pub failed: usize,
    /// Jobs that blew their deadline.
    pub deadline_exceeded: usize,
    /// Faulted attempts that were retried.
    pub retries: u32,
    /// Quantum-boundary yields to higher-priority work.
    pub preemptions: usize,
    /// Scheduling quanta dispatched (including voided attempts).
    pub quanta: usize,
    /// Workers permanently lost.
    pub worker_deaths: usize,
    /// Simulated checkpoint-write failures.
    pub ckpt_write_faults: usize,
    /// Attempts killed at the straggler bar.
    pub timeouts: usize,
    /// Admission state-machine transitions.
    pub state_transitions: usize,
}

/// Everything one [`serve`] call returns.
///
/// [`serve`]: MakoServer::serve
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Terminal outcome per submitted job, in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Aggregate accounting.
    pub ledger: ServeLedger,
    /// Virtual clock when the last event fired (makespan).
    pub makespan: f64,
    /// Admission state when the run ended.
    pub final_state: AdmissionState,
    /// The serve was cut short by a storage crash (injected or real).
    /// Unresolved jobs carry [`JobError::Crashed`]; call
    /// [`MakoServer::recover`] to finish the run from the journal.
    pub crashed: bool,
}

/// The durable-store context of a server opened with
/// [`MakoServer::with_store`]: the [`Vfs`] every byte goes through, the
/// root directory, and the persistent artifact cache.
pub(crate) struct StoreCtx {
    pub(crate) vfs: Arc<dyn Vfs>,
    pub(crate) root: PathBuf,
    pub(crate) artifacts: ArtifactStore,
}

/// The multi-tenant job server. Owns the cross-request caches; each
/// [`serve`](MakoServer::serve) call is an independent deterministic
/// simulation that shares them.
pub struct MakoServer {
    config: ServerConfig,
    kernels: KernelCache,
    screens: ScreenCache,
    serve_seq: AtomicUsize,
    store: Option<StoreCtx>,
}

impl Default for MakoServer {
    fn default() -> MakoServer {
        MakoServer::new(ServerConfig::default())
    }
}

impl MakoServer {
    /// A server with the given configuration and empty caches.
    pub fn new(config: ServerConfig) -> MakoServer {
        let kernels = KernelCache::with_capacity(config.kernel_cache_capacity);
        let screens = ScreenCache::with_capacity(config.screen_cache_capacity);
        MakoServer {
            config,
            kernels,
            screens,
            serve_seq: AtomicUsize::new(0),
            store: None,
        }
    }

    /// A server whose checkpoints, write-ahead journal, and artifact cache
    /// all live under `root` on `vfs`. This is what makes a serve
    /// *recoverable*: every scheduling decision is journaled before it
    /// takes effect, so a crash at any write leaves a durable prefix
    /// [`MakoServer::recover`] can finish the run from.
    pub fn with_store(
        config: ServerConfig,
        vfs: Arc<dyn Vfs>,
        root: PathBuf,
    ) -> Result<MakoServer, VfsError> {
        vfs.create_dir_all(&root)?;
        let artifacts = ArtifactStore::open(vfs.clone(), root.join("artifacts"))?;
        let mut server = MakoServer::new(config);
        // Warm the kernel cache from the persisted tuner table: corrupt or
        // truncated images are quarantined by the artifact store / decoder
        // and simply re-tuned — never consumed.
        match artifacts.load("kernels", crate::persist::KERNELS_KEY) {
            Ok(Some(bytes)) => match crate::persist::decode_kernels(&bytes) {
                Some(entries) => server.kernels.seed(entries),
                None => {
                    let _ = artifacts
                        .quarantine_undecodable("kernels", crate::persist::KERNELS_KEY);
                }
            },
            Ok(None) => {}
            Err(e) => return Err(e),
        }
        server.store = Some(StoreCtx {
            vfs,
            root,
            artifacts,
        });
        Ok(server)
    }

    /// The persistent artifact cache, when the server was opened
    /// [`with_store`](MakoServer::with_store).
    pub fn artifact_store(&self) -> Option<&ArtifactStore> {
        self.store.as_ref().map(|c| &c.artifacts)
    }

    /// The durable-store root, when the server was opened
    /// [`with_store`](MakoServer::with_store).
    pub fn store_root(&self) -> Option<&PathBuf> {
        self.store.as_ref().map(|c| &c.root)
    }

    /// The configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The cross-request kernel cache.
    pub fn kernel_cache(&self) -> &KernelCache {
        &self.kernels
    }

    /// The cross-request screening-pair cache.
    pub fn screen_cache(&self) -> &ScreenCache {
        &self.screens
    }

    /// Run one job spec directly, outside the scheduler, with no faults —
    /// the reference the chaos invariant compares against. Uses the shared
    /// caches (which only amortize wall time, never change results).
    pub fn run_solo(&self, spec: &JobSpec) -> Result<ScfResult, ScfError> {
        let driver = self.build_driver(spec)?;
        driver.run_with(ScfRunOptions::default())
    }

    /// Serve a closed workload with no injected faults.
    pub fn serve_quiet(&self, specs: &[JobSpec]) -> ServeReport {
        self.serve(specs, &ServerChaos::quiet(self.config.workers))
    }

    /// Serve a closed workload under a chaos schedule. Deterministic: the
    /// same `(specs, config, chaos)` triple reproduces every scheduling
    /// decision and every number bit-for-bit.
    pub fn serve(&self, specs: &[JobSpec], chaos: &ServerChaos) -> ServeReport {
        let seq = self.serve_seq.fetch_add(1, Ordering::Relaxed);
        let mut run_span = mako_trace::span("server", "run");
        if run_span.is_recording() {
            run_span.add_field("jobs", specs.len());
            run_span.add_field("workers", self.config.workers);
        }
        let _ = std::fs::create_dir_all(&self.config.checkpoint_dir);
        let mut sim = Sim::new(self, chaos, specs, seq);
        if let Some(ctx) = self.store.as_ref() {
            // A fresh serve owns the journal: forget any previous run's.
            let wal = ctx.root.join("serve.wal");
            let _ = ctx.vfs.remove(&wal);
            sim.journal = Some(Journal::new(ctx.vfs.clone(), wal));
            sim.jappend(&JournalRecord::ServeBegin {
                jobs: specs.len() as u64,
                workload: workload_hash(specs),
            });
        }
        sim.run();
        let report = sim.into_report();
        if !report.crashed {
            self.persist_kernels();
        }
        if run_span.is_recording() {
            run_span.add_field("completed", report.ledger.completed);
            run_span.add_field("makespan", report.makespan);
        }
        report
    }

    /// Finish a crashed serve from its write-ahead journal.
    ///
    /// Call after a [`serve`](MakoServer::serve) on a
    /// [`with_store`](MakoServer::with_store) server was cut short (storage
    /// crash, process death). Replays the durable journal prefix, re-seats
    /// every decision it records — admissions stand, rejected jobs stay
    /// rejected, terminal outcomes are reconstructed **bitwise** without
    /// re-running an iteration — salvages per-job checkpoints where they
    /// validate (quarantining the ones that don't), and re-runs only the
    /// work the crash actually lost. Completed energies are bitwise
    /// identical to a quiet uninterrupted run; virtual timing restarts
    /// (the clock died with the process).
    ///
    /// `specs` must be the same workload the crashed serve ran
    /// ([`workload_hash`] is checked against the journal's `ServeBegin`).
    pub fn recover(&self, specs: &[JobSpec], chaos: &ServerChaos) -> Result<ServeReport, VfsError> {
        let ctx = self.store.as_ref().ok_or_else(|| {
            VfsError::Io("recover requires a server opened with_store".to_string())
        })?;
        ctx.vfs.recover_crash();
        let seq = self.serve_seq.fetch_add(1, Ordering::Relaxed);
        let journal = Journal::new(ctx.vfs.clone(), ctx.root.join("serve.wal"));
        let mut replay_span = mako_trace::span("recover", "replay");
        let (records, tail) = journal.replay_and_repair()?;

        let mut generation = 1u32;
        let mut seed_admitted: Vec<Option<bool>> = vec![None; specs.len()];
        let mut seed_outcomes: Vec<Option<JobOutcome>> = vec![None; specs.len()];
        for rec in &records {
            match rec {
                JournalRecord::ServeBegin { jobs, workload } => {
                    if *jobs as usize != specs.len() || *workload != workload_hash(specs) {
                        return Err(VfsError::Io(
                            "journal does not match the resubmitted workload".to_string(),
                        ));
                    }
                }
                JournalRecord::RecoveryMark { generation: g } => generation = g + 1,
                JournalRecord::Admitted { job, degraded } => {
                    if let Some(slot) = seed_admitted.get_mut(*job as usize) {
                        *slot = Some(*degraded);
                    }
                }
                rec => {
                    if let Some(jid) = rec.job() {
                        let jid = jid as usize;
                        if jid < specs.len() {
                            if let Some(outcome) = rec.outcome(&specs[jid]) {
                                seed_outcomes[jid] = Some(outcome);
                            }
                        }
                    }
                }
            }
        }
        if replay_span.is_recording() {
            replay_span.add_field("records", records.len());
            replay_span.add_field(
                "tail",
                match tail {
                    mako_store::Tail::Clean => "clean",
                    mako_store::Tail::Torn => "torn",
                    mako_store::Tail::Corrupt => "corrupt",
                },
            );
            replay_span.add_field("generation", generation);
        }
        drop(replay_span);

        let mut sim = Sim::new(self, chaos, specs, seq);
        sim.journal = Some(journal);
        sim.jappend(&JournalRecord::RecoveryMark { generation });

        // Re-seat journaled terminal outcomes: these jobs are done and never
        // re-enter the queue.
        for id in 0..specs.len() {
            let Some(outcome) = seed_outcomes[id].take() else {
                continue;
            };
            match &outcome {
                JobOutcome::Completed(_) => sim.ledger.completed += 1,
                JobOutcome::Failed { .. } => sim.ledger.failed += 1,
                JobOutcome::DeadlineExceeded { .. } => sim.ledger.deadline_exceeded += 1,
                JobOutcome::Rejected { .. } => sim.ledger.rejected += 1,
            }
            if seed_admitted[id].is_some() {
                sim.ledger.admitted += 1;
            }
            sim.outcomes[id] = Some(outcome);
        }
        sim.arrivals.retain(|&id| sim.outcomes[id].is_none());
        sim.seed_admitted = seed_admitted;

        // Salvage on-disk checkpoints for admitted-but-unfinished jobs: a
        // valid one shrinks the replay; a corrupt or mismatched one is
        // quarantined and the job recomputes from scratch — never consumed.
        let mut salvaged = 0usize;
        for (id, spec) in specs.iter().enumerate() {
            if sim.outcomes[id].is_some() || sim.seed_admitted[id].is_none() {
                continue;
            }
            let path = sim.jobs[id].ckpt_path.clone();
            if !ctx.vfs.exists(&path) {
                continue;
            }
            let Ok(driver) = self.build_driver(spec) else {
                continue;
            };
            let valid = ScfCheckpoint::load_via(ctx.vfs.as_ref(), &path)
                .ok()
                .filter(|c| {
                    c.validate(
                        driver.nao(),
                        driver.nbatches(),
                        driver.nquartets(),
                        driver.problem_fingerprint(),
                    )
                    .is_ok()
                        && c.next_iteration > 0
                });
            match valid {
                Some(ckpt) => {
                    mako_trace::instant(
                        "recover",
                        "salvage",
                        vec![
                            mako_trace::field("job", id),
                            mako_trace::field("next_iteration", ckpt.next_iteration),
                        ],
                    );
                    sim.jobs[id].driver = Some(driver);
                    sim.jobs[id].resume = Some(Box::new(ckpt));
                    salvaged += 1;
                }
                None => {
                    let mut name = path
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_default();
                    name.push_str(".quarantine");
                    let qpath = path.with_file_name(name);
                    if ctx.vfs.rename(&path, &qpath).is_err() {
                        let _ = ctx.vfs.remove(&path);
                    }
                    mako_trace::instant(
                        "store",
                        "quarantine",
                        vec![
                            mako_trace::field("kind", "checkpoint"),
                            mako_trace::field("fault", "invalid"),
                        ],
                    );
                }
            }
        }
        mako_trace::instant(
            "recover",
            "serve",
            vec![
                mako_trace::field("generation", generation),
                mako_trace::field("resolved", sim.outcomes.iter().filter(|o| o.is_some()).count()),
                mako_trace::field("salvaged", salvaged),
            ],
        );
        sim.run();
        let report = sim.into_report();
        if !report.crashed {
            self.persist_kernels();
        }
        Ok(report)
    }

    fn build_driver(&self, spec: &JobSpec) -> Result<ScfDriver, ScfError> {
        let mut elements: Vec<Element> = Vec::new();
        for atom in &spec.molecule.atoms {
            if !elements.contains(&atom.element) {
                elements.push(atom.element);
            }
        }
        let basis = spec.basis.basis_for(&elements);
        let mut config = spec.config.clone();
        // Placement belongs to the server, not the tenant.
        config.distributed = None;
        let key = ArtifactKey::for_job(spec);
        let mut pairs = self.screens.get(&key);
        let memory_hit = pairs.is_some();
        let mut disk_hit = false;
        if pairs.is_none() {
            // Memory miss: consult the persistent artifact cache. A corrupt
            // or undecodable entry is quarantined and recomputed below —
            // never consumed.
            if let Some(ctx) = self.store.as_ref() {
                let hash = key.content_hash();
                if let Ok(Some(bytes)) = ctx.artifacts.load("screen", hash) {
                    match crate::persist::decode_pairs(&bytes) {
                        Some(decoded) => {
                            disk_hit = true;
                            pairs = Some(decoded);
                        }
                        None => {
                            let _ = ctx.artifacts.quarantine_undecodable("screen", hash);
                        }
                    }
                }
            }
        }
        let driver =
            ScfDriver::try_new_with_artifacts(&spec.molecule, &basis, config, &self.kernels, pairs)?;
        if !memory_hit {
            if !disk_hit {
                if let Some(ctx) = self.store.as_ref() {
                    let _ = ctx.artifacts.store(
                        "screen",
                        key.content_hash(),
                        &crate::persist::encode_pairs(driver.screened_pairs()),
                    );
                }
            }
            self.screens.insert(key, driver.screened_pairs().to_vec());
        }
        Ok(driver)
    }

    /// Persist the tuned-kernel table (no-op without a store; best-effort —
    /// a failed store only costs re-tuning wall time on the next open).
    fn persist_kernels(&self) {
        if let Some(ctx) = self.store.as_ref() {
            let snapshot = self.kernels.snapshot();
            if !snapshot.is_empty() {
                let _ = ctx.artifacts.store(
                    "kernels",
                    crate::persist::KERNELS_KEY,
                    &crate::persist::encode_kernels(&snapshot),
                );
            }
        }
    }
}

/// Per-job mutable scheduling state.
struct JobState {
    spec: JobSpec,
    driver: Option<ScfDriver>,
    /// Last acknowledged checkpoint — the in-memory source of truth a
    /// voided attempt falls back to.
    resume: Option<Box<ScfCheckpoint>>,
    ckpt_path: PathBuf,
    retries: u32,
    preemptions: usize,
    quanta: usize,
    device_seconds: f64,
    started_at: Option<f64>,
    /// Chaos poison fires on the first attempt only (transient corruption).
    poison_spent: bool,
    /// Admitted under pressure: runs the short quantum.
    degraded: bool,
}

impl JobState {
    fn completed_iterations(&self) -> usize {
        self.resume.as_ref().map(|c| c.next_iteration).unwrap_or(0)
    }

    fn deadline_at(&self) -> f64 {
        match self.spec.deadline {
            Some(d) => self.spec.submit_at + d,
            None => f64::INFINITY,
        }
    }
}

/// What an attempt resolved to (decided eagerly at dispatch; applied when
/// the virtual clock reaches the worker's `free_at`).
enum AttemptEnd {
    /// The job ran to its SCF terminus (converged or budget-exhausted).
    Done(Box<ScfResult>),
    /// Quantum boundary: adopt the checkpoint and requeue.
    Yield(Box<ScfCheckpoint>),
    /// The attempt was voided or errored; maybe salvage partial progress.
    Fault {
        error: JobError,
        salvage: Option<Box<ScfCheckpoint>>,
    },
}

struct Pending {
    job: JobId,
    end: AttemptEnd,
    /// The chaos schedule kills this worker when the attempt resolves.
    kills_worker: bool,
}

struct Worker {
    free_at: f64,
    dead: bool,
    pending: Option<Pending>,
    /// Quanta dispatched on this worker (the death-schedule index).
    quanta_run: usize,
    /// Checkpoint-adoption draws consumed (the ckpt-fault stream index).
    saves: u64,
}

struct ReadyEntry {
    job: JobId,
    rank: u8,
    ready_at: f64,
}

struct Sim<'a> {
    server: &'a MakoServer,
    chaos: &'a ServerChaos,
    jobs: Vec<JobState>,
    /// Submission order indices sorted by (submit_at, id); `next_arrival`
    /// walks it.
    arrivals: Vec<JobId>,
    next_arrival: usize,
    workers: Vec<Worker>,
    ready: Vec<ReadyEntry>,
    outcomes: Vec<Option<JobOutcome>>,
    adm: AdmissionController,
    ledger: ServeLedger,
    clock: f64,
    /// The write-ahead journal (store-backed serves only).
    journal: Option<Journal>,
    /// A storage crash fired: the simulated process is dead. The run loop
    /// exits at the next crash check and unresolved jobs report
    /// [`JobError::Crashed`].
    aborted: bool,
    /// Journaling hit a non-crash write fault. Appending past a torn frame
    /// would leave committed records *after* garbage, breaking replay's
    /// prefix semantics — so journaling stops entirely (the serve itself
    /// continues; it just loses recoverability from this point).
    journal_dead: bool,
    /// Per-job admission replayed from the journal by recovery:
    /// `Some(degraded)` means the gauntlet already ran and was billed.
    seed_admitted: Vec<Option<bool>>,
}

impl<'a> Sim<'a> {
    fn new(server: &'a MakoServer, chaos: &'a ServerChaos, specs: &[JobSpec], seq: usize) -> Sim<'a> {
        let pid = std::process::id();
        let jobs: Vec<JobState> = specs
            .iter()
            .enumerate()
            .map(|(id, spec)| JobState {
                spec: spec.clone(),
                driver: None,
                resume: None,
                // Store-backed serves use stable names so recovery can find
                // (and salvage) the files; ephemeral serves stay collision-
                // proof across processes.
                ckpt_path: match &server.store {
                    Some(ctx) => ctx.root.join(format!("job{id}.ckpt")),
                    None => server
                        .config
                        .checkpoint_dir
                        .join(format!("serve{pid}-{seq}-job{id}.ckpt")),
                },
                retries: 0,
                preemptions: 0,
                quanta: 0,
                device_seconds: 0.0,
                started_at: None,
                poison_spent: false,
                degraded: false,
            })
            .collect();
        let mut arrivals: Vec<JobId> = (0..jobs.len()).collect();
        arrivals.sort_by(|&a, &b| {
            jobs[a]
                .spec
                .submit_at
                .total_cmp(&jobs[b].spec.submit_at)
                .then(a.cmp(&b))
        });
        let workers = (0..server.config.workers)
            .map(|_| Worker {
                free_at: 0.0,
                dead: false,
                pending: None,
                quanta_run: 0,
                saves: 0,
            })
            .collect();
        Sim {
            server,
            chaos,
            outcomes: vec![None; jobs.len()],
            seed_admitted: vec![None; jobs.len()],
            jobs,
            arrivals,
            next_arrival: 0,
            workers,
            ready: Vec::new(),
            adm: AdmissionController::new(server.config.admission.clone()),
            ledger: ServeLedger::default(),
            clock: 0.0,
            journal: None,
            aborted: false,
            journal_dead: false,
        }
    }

    /// Durably append one journal record (no-op without a journal). A
    /// [`VfsError::Crashed`] means the simulated process just died: mark
    /// the serve aborted. Any other fault permanently stops journaling —
    /// see [`Sim::journal_dead`].
    fn jappend(&mut self, rec: &JournalRecord) {
        if self.aborted || self.journal_dead {
            return;
        }
        let Some(journal) = &self.journal else {
            return;
        };
        match journal.append(rec) {
            Ok(()) => {}
            Err(VfsError::Crashed) => {
                self.aborted = true;
                self.journal_dead = true;
            }
            Err(_) => {
                self.journal_dead = true;
            }
        }
    }

    /// Whether the storage layer has crashed (checked between events: the
    /// crash kills the simulated process wherever the write landed).
    fn crash_check(&mut self) -> bool {
        if self.aborted {
            return true;
        }
        if let Some(ctx) = self.server.store.as_ref() {
            if ctx.vfs.crashed() {
                self.aborted = true;
            }
        }
        self.aborted
    }

    fn run(&mut self) {
        loop {
            self.dispatch_ready();
            if self.crash_check() {
                return;
            }
            let Some(t) = self.next_event_time() else {
                break;
            };
            self.clock = self.clock.max(t);
            // Arrivals first on time ties, then completions in worker order.
            while self.next_arrival < self.arrivals.len()
                && self.jobs[self.arrivals[self.next_arrival]].spec.submit_at <= self.clock
            {
                let id = self.arrivals[self.next_arrival];
                self.next_arrival += 1;
                self.arrive(id);
            }
            if self.crash_check() {
                return;
            }
            for w in 0..self.workers.len() {
                if self.workers[w].pending.is_some() && self.workers[w].free_at <= self.clock {
                    self.complete(w);
                    if self.crash_check() {
                        return;
                    }
                }
            }
            if self.workers.iter().all(|w| w.dead) {
                self.drain_all_workers_lost();
                break;
            }
        }
        // Anything still queued when events ran out has nowhere to run.
        self.drain_all_workers_lost();
    }

    /// The next instant something happens, or `None` when the run is over.
    fn next_event_time(&self) -> Option<f64> {
        let mut t: Option<f64> = None;
        let mut fold = |cand: f64| {
            t = Some(match t {
                Some(cur) => cur.min(cand),
                None => cand,
            });
        };
        if let Some(&id) = self.arrivals.get(self.next_arrival) {
            fold(self.jobs[id].spec.submit_at);
        }
        for w in &self.workers {
            if w.pending.is_some() {
                fold(w.free_at);
            }
        }
        // A backoff expiry only matters if a worker could pick the job up.
        if self
            .workers
            .iter()
            .any(|w| !w.dead && w.pending.is_none())
        {
            for e in &self.ready {
                if e.ready_at > self.clock {
                    fold(e.ready_at);
                }
            }
        }
        t
    }

    fn arrive(&mut self, id: JobId) {
        let spec = &self.jobs[id].spec;
        mako_trace::instant(
            "job",
            "submit",
            vec![
                mako_trace::field("job", id),
                mako_trace::field("tenant", spec.tenant.clone()),
                mako_trace::field("class", spec.class.label()),
            ],
        );
        if let Some(degraded) = self.seed_admitted[id] {
            // Admission replayed from the journal: the decision was made,
            // logged, and billed before the crash. Re-seat it — re-running
            // the gauntlet against recovery's (different-looking) queue
            // could reject a job the tenant was already promised.
            self.ledger.admitted += 1;
            let tenant = self.jobs[id].spec.tenant.clone();
            self.adm.occupy(&tenant);
            mako_trace::instant(
                "server",
                "admission",
                vec![
                    mako_trace::field("job", id),
                    mako_trace::field("decision", "replayed"),
                    mako_trace::field("state", self.adm.state().label()),
                ],
            );
            self.jobs[id].degraded = degraded;
            let rank = self.jobs[id].spec.class.rank();
            self.ready.push(ReadyEntry {
                job: id,
                rank,
                ready_at: self.clock,
            });
            return;
        }
        let depth = self.ready.len();
        if let Some(prev) = self.adm.evaluate(depth) {
            self.ledger.state_transitions += 1;
            mako_trace::instant(
                "server",
                "state",
                vec![
                    mako_trace::field("from", prev.label()),
                    mako_trace::field("to", self.adm.state().label()),
                    mako_trace::field("depth", depth),
                ],
            );
        }
        match self.adm.admit(spec, depth) {
            Ok(ticket) => {
                // Write-ahead: the admission is durable before the job can
                // enter the queue (recovery must not re-run the gauntlet).
                self.jappend(&JournalRecord::Admitted {
                    job: id as u64,
                    degraded: ticket.degraded,
                });
                self.ledger.admitted += 1;
                mako_trace::instant(
                    "server",
                    "admission",
                    vec![
                        mako_trace::field("job", id),
                        mako_trace::field("decision", "admitted"),
                        mako_trace::field("state", self.adm.state().label()),
                    ],
                );
                self.jobs[id].degraded = ticket.degraded;
                let rank = self.jobs[id].spec.class.rank();
                self.ready.push(ReadyEntry {
                    job: id,
                    rank,
                    ready_at: self.clock,
                });
            }
            Err(reason) => {
                self.ledger.rejected += 1;
                mako_trace::instant(
                    "server",
                    "admission",
                    vec![
                        mako_trace::field("job", id),
                        mako_trace::field("decision", reason.label()),
                        mako_trace::field("state", self.adm.state().label()),
                    ],
                );
                self.finish(id, JobOutcome::Rejected { reason }, false);
            }
        }
    }

    /// Fill every idle worker with the best dispatchable job.
    fn dispatch_ready(&mut self) {
        for w in 0..self.workers.len() {
            if self.workers[w].dead || self.workers[w].pending.is_some() {
                continue;
            }
            while let Some(pos) = self.pop_best_ready() {
                let id = self.ready.remove(pos).job;
                if self.clock > self.jobs[id].deadline_at() {
                    let outcome = JobOutcome::DeadlineExceeded {
                        deadline_seconds: self.jobs[id].spec.deadline.unwrap_or(0.0),
                        completed_iterations: self.jobs[id].completed_iterations(),
                        retries: self.jobs[id].retries,
                    };
                    self.finish(id, outcome, true);
                    continue;
                }
                if self.dispatch(w, id) {
                    break;
                }
                // Driver construction failed terminally; try the next job.
            }
        }
    }

    /// Index into `ready` of the best dispatchable entry: lowest
    /// (class rank, job id) among those whose backoff has expired.
    fn pop_best_ready(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, e) in self.ready.iter().enumerate() {
            if e.ready_at > self.clock {
                continue;
            }
            best = Some(match best {
                None => i,
                Some(b) => {
                    let (br, bj) = (self.ready[b].rank, self.ready[b].job);
                    if (e.rank, e.job) < (br, bj) {
                        i
                    } else {
                        b
                    }
                }
            });
        }
        best
    }

    /// Dispatch one quantum of `id` on worker `w`. Returns false when the
    /// job reached a terminal outcome instead of occupying the worker.
    fn dispatch(&mut self, w: usize, id: JobId) -> bool {
        if self.jobs[id].driver.is_none() {
            match self.server.build_driver(&self.jobs[id].spec) {
                Ok(d) => self.jobs[id].driver = Some(d),
                Err(e) => {
                    let retries = self.jobs[id].retries;
                    self.finish(
                        id,
                        JobOutcome::Failed {
                            error: JobError::Scf(e),
                            retries,
                        },
                        true,
                    );
                    return false;
                }
            }
        }
        if self.jobs[id].started_at.is_none() {
            self.jobs[id].started_at = Some(self.clock);
            self.jappend(&JournalRecord::Started {
                job: id as u64,
                at: self.clock.to_bits(),
            });
            mako_trace::instant(
                "job",
                "start",
                vec![mako_trace::field("job", id), mako_trace::field("worker", w)],
            );
        }
        let dies = self.worker_death_quantum(w) == Some(self.workers[w].quanta_run);
        let start_iter = self.jobs[id].completed_iterations();
        let quantum = self.quantum_len(id);
        mako_trace::instant(
            "server",
            "quantum",
            vec![
                mako_trace::field("job", id),
                mako_trace::field("worker", w),
                mako_trace::field("start_iteration", start_iter),
                mako_trace::field("iterations", quantum.unwrap_or(0)),
            ],
        );
        let (raw, dt_raw) = self.run_quantum(w, id, start_iter, quantum);
        self.jobs[id].quanta += 1;
        self.workers[w].quanta_run += 1;
        self.ledger.quanta += 1;

        let slowdown = self.worker_slowdown(w);
        let dt_slow = dt_raw * slowdown;
        let cfg = &self.server.config;
        let (end, dt_observed) = if dies {
            // The worker dies mid-quantum; the attempt is voided whatever
            // it computed.
            (
                AttemptEnd::Fault {
                    error: JobError::WorkerLost { worker: w },
                    salvage: None,
                },
                0.5 * dt_slow,
            )
        } else if dt_slow > cfg.attempt_timeout {
            (
                AttemptEnd::Fault {
                    error: JobError::AttemptTimeout {
                        limit_seconds: cfg.attempt_timeout,
                    },
                    salvage: None,
                },
                cfg.attempt_timeout,
            )
        } else {
            (raw, dt_slow)
        };
        self.jobs[id].device_seconds += dt_observed;
        self.workers[w].free_at = self.clock + dt_observed;
        self.workers[w].pending = Some(Pending {
            job: id,
            end,
            kills_worker: dies,
        });
        true
    }

    /// Execute one quantum eagerly and interpret the SCF outcome. Returns
    /// the raw attempt end (before death/timeout precedence) and the
    /// quantum's unslowed virtual duration.
    fn run_quantum(
        &mut self,
        w: usize,
        id: JobId,
        start_iter: usize,
        quantum: Option<usize>,
    ) -> (AttemptEnd, f64) {
        let job = &self.jobs[id];
        let poison = if job.poison_spent {
            None
        } else {
            self.chaos.poison_for(id)
        };
        let opts = ScfRunOptions {
            checkpoint: Some(match self.server.store.as_ref() {
                Some(ctx) => CheckpointPolicy::new(1, job.ckpt_path.clone()).via(ctx.vfs.clone()),
                None => CheckpointPolicy::new(1, job.ckpt_path.clone()),
            }),
            resume: job.resume.as_deref().cloned(),
            kill_after: quantum.map(|q| start_iter + q),
            poison_fock: poison,
        };
        let driver = job.driver.as_ref().expect("driver built at dispatch");
        match driver.run_with(opts) {
            Ok(res) => {
                let dt = segment_seconds(&res.iteration_seconds, start_iter);
                (AttemptEnd::Done(Box::new(res)), dt)
            }
            Err(ScfError::Killed { iterations }) => {
                // Quantum boundary. Adopt the freshly persisted checkpoint —
                // unless the chaos schedule says this write was lost.
                let save = self.workers[w].saves;
                self.workers[w].saves += 1;
                if self.chaos.checkpoint_write_fails(w, save) {
                    self.ledger.ckpt_write_faults += 1;
                    self.fault_event(id, w, "ckpt_write");
                    let dt = self
                        .load_valid_ckpt(id, start_iter)
                        .map(|c| segment_seconds(&c.iteration_seconds, start_iter))
                        .unwrap_or(0.0);
                    let error = JobError::Scf(ScfError::Checkpoint(CheckpointError::Io(
                        "simulated checkpoint write failure".to_string(),
                    )));
                    return (
                        AttemptEnd::Fault {
                            error,
                            salvage: None,
                        },
                        dt,
                    );
                }
                match self.load_valid_ckpt(id, start_iter) {
                    Some(ckpt) => {
                        debug_assert_eq!(ckpt.next_iteration, iterations);
                        let dt = segment_seconds(&ckpt.iteration_seconds, start_iter);
                        (AttemptEnd::Yield(ckpt), dt)
                    }
                    None => {
                        // The checkpoint genuinely failed to land; replay the
                        // quantum through the standard retry path.
                        let error = JobError::Scf(ScfError::Checkpoint(CheckpointError::Io(
                            "quantum checkpoint missing or invalid".to_string(),
                        )));
                        (
                            AttemptEnd::Fault {
                                error,
                                salvage: None,
                            },
                            0.0,
                        )
                    }
                }
            }
            Err(e) => {
                if poison.is_some() && matches!(e, ScfError::NonFinite { .. }) {
                    self.jobs[id].poison_spent = true;
                }
                self.fault_event(id, w, "scf_error");
                // Salvage: iterations the attempt completed before the error
                // are on disk; adopting them is safe (same trajectory
                // prefix) and shrinks the replay.
                let salvage = self.load_valid_ckpt(id, start_iter);
                let dt = salvage
                    .as_ref()
                    .map(|c| segment_seconds(&c.iteration_seconds, start_iter))
                    .unwrap_or(0.0);
                (
                    AttemptEnd::Fault {
                        error: JobError::Scf(e),
                        salvage,
                    },
                    dt,
                )
            }
        }
    }

    /// Load the job's on-disk checkpoint if it exists, fingerprints match
    /// this job's problem, and it is ahead of the in-memory resume point.
    fn load_valid_ckpt(&self, id: JobId, start_iter: usize) -> Option<Box<ScfCheckpoint>> {
        let job = &self.jobs[id];
        let driver = job.driver.as_ref()?;
        let ckpt = match self.server.store.as_ref() {
            Some(ctx) => ScfCheckpoint::load_via(ctx.vfs.as_ref(), &job.ckpt_path).ok()?,
            None => ScfCheckpoint::load(&job.ckpt_path).ok()?,
        };
        ckpt.validate(
            driver.nao(),
            driver.nbatches(),
            driver.nquartets(),
            driver.problem_fingerprint(),
        )
        .ok()?;
        (ckpt.next_iteration > start_iter).then(|| Box::new(ckpt))
    }

    /// Resolve a worker's pending attempt at its completion instant.
    fn complete(&mut self, w: usize) {
        let Pending {
            job: id,
            end,
            kills_worker,
        } = self.workers[w].pending.take().expect("busy worker");
        if kills_worker {
            self.workers[w].dead = true;
            self.ledger.worker_deaths += 1;
            self.fault_event(id, w, "worker_death");
        }
        match end {
            AttemptEnd::Done(res) => {
                let job = &self.jobs[id];
                let report = JobReport {
                    energy: res.energy,
                    converged: res.converged,
                    iterations: res.iterations,
                    device_seconds: job.device_seconds,
                    submitted_at: job.spec.submit_at,
                    started_at: job.started_at.unwrap_or(job.spec.submit_at),
                    finished_at: self.clock,
                    retries: job.retries,
                    preemptions: job.preemptions,
                    quanta: job.quanta,
                };
                self.finish(id, JobOutcome::Completed(report), true);
            }
            AttemptEnd::Yield(ckpt) => {
                let next_iteration = ckpt.next_iteration as u64;
                self.jappend(&JournalRecord::Checkpointed {
                    job: id as u64,
                    next_iteration,
                });
                self.jappend(&JournalRecord::Yielded {
                    job: id as u64,
                    iteration: next_iteration,
                });
                self.jobs[id].resume = Some(ckpt);
                if self.clock > self.jobs[id].deadline_at() {
                    let outcome = JobOutcome::DeadlineExceeded {
                        deadline_seconds: self.jobs[id].spec.deadline.unwrap_or(0.0),
                        completed_iterations: self.jobs[id].completed_iterations(),
                        retries: self.jobs[id].retries,
                    };
                    self.finish(id, outcome, true);
                    return;
                }
                let rank = self.jobs[id].spec.class.rank();
                // Count a preemption only when the yield actually cedes the
                // worker to someone more important.
                if self
                    .ready
                    .iter()
                    .any(|e| e.rank < rank && e.ready_at <= self.clock)
                {
                    self.jobs[id].preemptions += 1;
                    self.ledger.preemptions += 1;
                    mako_trace::instant(
                        "server",
                        "preempt",
                        vec![
                            mako_trace::field("job", id),
                            mako_trace::field("class", self.jobs[id].spec.class.label()),
                        ],
                    );
                }
                self.ready.push(ReadyEntry {
                    job: id,
                    rank,
                    ready_at: self.clock,
                });
            }
            AttemptEnd::Fault { error, salvage } => {
                if let Some(ckpt) = salvage {
                    self.jobs[id].resume = Some(ckpt);
                }
                self.retry_or_fail(id, error);
            }
        }
    }

    fn retry_or_fail(&mut self, id: JobId, error: JobError) {
        if matches!(error, JobError::AttemptTimeout { .. }) {
            self.ledger.timeouts += 1;
        }
        let job = &mut self.jobs[id];
        if retryable(&error) && job.retries < self.server.config.max_retries {
            job.retries += 1;
            self.ledger.retries += 1;
            let backoff = self.server.config.backoff(job.retries);
            mako_trace::instant(
                "job",
                "retry",
                vec![
                    mako_trace::field("job", id),
                    mako_trace::field("attempt", job.retries),
                    mako_trace::field("backoff_seconds", backoff),
                    mako_trace::field("error", error.to_string()),
                ],
            );
            let ready_at = self.clock + backoff;
            if ready_at > self.jobs[id].deadline_at() {
                let outcome = JobOutcome::DeadlineExceeded {
                    deadline_seconds: self.jobs[id].spec.deadline.unwrap_or(0.0),
                    completed_iterations: self.jobs[id].completed_iterations(),
                    retries: self.jobs[id].retries,
                };
                self.finish(id, outcome, true);
                return;
            }
            let rank = self.jobs[id].spec.class.rank();
            self.ready.push(ReadyEntry {
                job: id,
                rank,
                ready_at,
            });
        } else {
            let retries = job.retries;
            self.finish(id, JobOutcome::Failed { error, retries }, true);
        }
    }

    /// Record a job's terminal outcome; `admitted` releases its tenant slot.
    fn finish(&mut self, id: JobId, outcome: JobOutcome, admitted: bool) {
        // Write-ahead: the outcome is durable before the checkpoint that
        // could reproduce it is deleted.
        if let Some(rec) = JournalRecord::terminal_for(id as u64, &outcome) {
            self.jappend(&rec);
        }
        match &outcome {
            JobOutcome::Completed(_) => self.ledger.completed += 1,
            JobOutcome::Failed { .. } => self.ledger.failed += 1,
            JobOutcome::DeadlineExceeded { .. } => self.ledger.deadline_exceeded += 1,
            JobOutcome::Rejected { .. } => {}
        }
        mako_trace::instant(
            "job",
            "outcome",
            vec![
                mako_trace::field("job", id),
                mako_trace::field("outcome", outcome.label()),
            ],
        );
        if admitted {
            let tenant = self.jobs[id].spec.tenant.clone();
            self.adm.release(&tenant);
        }
        match self.server.store.as_ref() {
            Some(ctx) => {
                let _ = ctx.vfs.remove(&self.jobs[id].ckpt_path);
            }
            None => {
                let _ = std::fs::remove_file(&self.jobs[id].ckpt_path);
            }
        }
        self.outcomes[id] = Some(outcome);
    }

    /// Fail everything still queued (and any unprocessed arrivals) when no
    /// worker is left alive.
    fn drain_all_workers_lost(&mut self) {
        while let Some(e) = self.ready.pop() {
            let retries = self.jobs[e.job].retries;
            self.finish(
                e.job,
                JobOutcome::Failed {
                    error: JobError::AllWorkersLost,
                    retries,
                },
                true,
            );
        }
        while self.next_arrival < self.arrivals.len() {
            let id = self.arrivals[self.next_arrival];
            self.next_arrival += 1;
            self.finish(
                id,
                JobOutcome::Failed {
                    error: JobError::AllWorkersLost,
                    retries: 0,
                },
                false,
            );
        }
    }

    fn fault_event(&self, id: JobId, w: usize, kind: &'static str) {
        mako_trace::instant(
            "server",
            "fault",
            vec![
                mako_trace::field("job", id),
                mako_trace::field("worker", w),
                mako_trace::field("kind", kind),
            ],
        );
    }

    fn quantum_len(&self, id: JobId) -> Option<usize> {
        match self.jobs[id].spec.class {
            PriorityClass::Interactive => None,
            PriorityClass::Batch | PriorityClass::BestEffort => Some(if self.jobs[id].degraded {
                self.server.config.degraded_quantum_iterations.max(1)
            } else {
                self.server.config.quantum_iterations.max(1)
            }),
        }
    }

    fn worker_death_quantum(&self, w: usize) -> Option<usize> {
        (w < self.chaos.workers())
            .then(|| self.chaos.death_quantum(w))
            .flatten()
    }

    fn worker_slowdown(&self, w: usize) -> f64 {
        if w < self.chaos.workers() {
            self.chaos.slowdown(w)
        } else {
            1.0
        }
    }

    fn into_report(mut self) -> ServeReport {
        if !self.aborted {
            self.jappend(&JournalRecord::ServeEnd {
                makespan: self.clock.to_bits(),
            });
        }
        let aborted = self.aborted;
        // Every job must have resolved unless the storage layer crashed —
        // then unresolved jobs died with the process and recovery finishes
        // them. A hole in a quiet run is a scheduler bug, surfaced as a
        // typed failure rather than a panic.
        let outcomes = self
            .outcomes
            .into_iter()
            .map(|o| {
                o.unwrap_or(JobOutcome::Failed {
                    error: if aborted {
                        JobError::Crashed
                    } else {
                        JobError::AllWorkersLost
                    },
                    retries: 0,
                })
            })
            .collect();
        self.adm.evaluate(self.ready.len());
        ServeReport {
            outcomes,
            ledger: self.ledger,
            makespan: self.clock,
            final_state: self.adm.state(),
            crashed: aborted,
        }
    }
}

/// Virtual seconds of the trajectory segment starting at `start_iter`
/// (iteration timings before that belong to earlier attempts).
fn segment_seconds(iteration_seconds: &[f64], start_iter: usize) -> f64 {
    let from = start_iter.min(iteration_seconds.len());
    iteration_seconds[from..].iter().sum()
}

/// Whether a fault class is worth retrying. Worker loss, straggler
/// timeouts, checkpoint IO, and non-finite (poisoned) Fock builds are
/// transient; everything else is a property of the problem and retrying
/// cannot fix it.
fn retryable(e: &JobError) -> bool {
    match e {
        JobError::Scf(ScfError::NonFinite { .. }) => true,
        JobError::Scf(ScfError::Checkpoint(_)) => true,
        JobError::Scf(_) => false,
        JobError::WorkerLost { .. } => true,
        JobError::AttemptTimeout { .. } => true,
        JobError::AllWorkersLost => false,
        // A crashed serve is finished by `recover`, not by retrying; a
        // replayed failure already exhausted its retries before the crash.
        JobError::Crashed => false,
        JobError::Replayed { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ServerChaos;
    use crate::job::PriorityClass;
    use mako_chem::builders;

    fn tmp_config() -> ServerConfig {
        ServerConfig {
            checkpoint_dir: std::env::temp_dir().join("mako-server-unit"),
            ..ServerConfig::default()
        }
    }

    fn energy(outcome: &JobOutcome) -> f64 {
        outcome.energy().expect("completed job")
    }

    #[test]
    fn quiet_serve_matches_solo_bitwise() {
        let server = MakoServer::new(tmp_config());
        let specs = vec![
            JobSpec::new("a", PriorityClass::Batch, builders::water()),
            JobSpec::new("b", PriorityClass::Interactive, builders::methane()).at(0.0),
        ];
        let report = server.serve_quiet(&specs);
        assert_eq!(report.ledger.completed, 2);
        for (spec, outcome) in specs.iter().zip(&report.outcomes) {
            let solo = server.run_solo(spec).expect("solo run");
            assert_eq!(
                energy(outcome).to_bits(),
                solo.energy.to_bits(),
                "scheduled energy must be bitwise identical to the solo run"
            );
        }
        assert!(report.makespan > 0.0);
    }

    #[test]
    fn batch_yields_to_interactive_within_one_quantum() {
        let server = MakoServer::new(ServerConfig {
            workers: 1,
            ..tmp_config()
        });
        // The batch job arrives first and hogs the only worker; the
        // interactive job lands mid-run and must start within a quantum.
        let specs = vec![
            JobSpec::new("bulk", PriorityClass::Batch, builders::water()),
            JobSpec::new("ui", PriorityClass::Interactive, builders::methane()).at(1e-6),
        ];
        let report = server.serve_quiet(&specs);
        assert_eq!(report.ledger.completed, 2);
        let batch = report.outcomes[0].report().expect("batch completed");
        let ui = report.outcomes[1].report().expect("interactive completed");
        assert!(batch.preemptions >= 1, "batch must have yielded");
        assert!(
            ui.started_at < batch.finished_at,
            "interactive started before the batch job finished"
        );
        // No-starvation bound: the wait is at most one quantum of the
        // running batch job (its first quantum, which began at t = 0).
        let first_quantum_end = report
            .outcomes
            .iter()
            .filter_map(|o| o.report())
            .map(|r| r.started_at)
            .fold(f64::INFINITY, f64::min);
        assert!(ui.started_at - first_quantum_end <= batch.device_seconds);
    }

    #[test]
    fn worker_death_is_contained_and_bitwise_safe() {
        let server = MakoServer::new(tmp_config());
        let specs = vec![JobSpec::new("a", PriorityClass::Batch, builders::water())];
        let chaos = ServerChaos::quiet(2).kill_worker(0, 0.0);
        let report = server.serve(&specs, &chaos);
        assert_eq!(report.ledger.worker_deaths, 1);
        let rep = report.outcomes[0].report().expect("job survived the death");
        assert!(rep.retries >= 1, "the voided attempt was retried");
        let solo = server.run_solo(&specs[0]).expect("solo");
        assert_eq!(rep.energy.to_bits(), solo.energy.to_bits());
    }

    #[test]
    fn poison_is_retried_clean_and_bitwise_safe() {
        let server = MakoServer::new(tmp_config());
        let specs = vec![JobSpec::new("a", PriorityClass::Batch, builders::water())];
        let chaos = ServerChaos::quiet(2).with_poison(0, 2);
        let report = server.serve(&specs, &chaos);
        let rep = report.outcomes[0].report().expect("job survived the poison");
        assert!(rep.retries >= 1);
        let solo = server.run_solo(&specs[0]).expect("solo");
        assert_eq!(rep.energy.to_bits(), solo.energy.to_bits());
    }

    #[test]
    fn persistent_ckpt_faults_fail_typed_not_panic() {
        let server = MakoServer::new(tmp_config());
        let specs = vec![JobSpec::new("a", PriorityClass::Batch, builders::water())];
        let chaos = ServerChaos::quiet(2).with_ckpt_io_rate(1.0);
        let report = server.serve(&specs, &chaos);
        match &report.outcomes[0] {
            JobOutcome::Failed { error, retries } => {
                assert!(
                    matches!(error, JobError::Scf(ScfError::Checkpoint(_))),
                    "expected a typed checkpoint error, got {error:?}"
                );
                assert_eq!(*retries, server.config().max_retries);
            }
            other => panic!("expected typed failure, got {other:?}"),
        }
        assert!(report.ledger.ckpt_write_faults > 0);
    }

    #[test]
    fn impossible_deadline_is_reported_not_run_forever() {
        let server = MakoServer::new(tmp_config());
        let specs = vec![
            JobSpec::new("a", PriorityClass::Batch, builders::water()).with_deadline(1e-12)
        ];
        let report = server.serve_quiet(&specs);
        match &report.outcomes[0] {
            JobOutcome::DeadlineExceeded {
                deadline_seconds, ..
            } => assert_eq!(*deadline_seconds, 1e-12),
            other => panic!("expected deadline outcome, got {other:?}"),
        }
    }

    #[test]
    fn losing_every_worker_fails_queued_jobs_typed() {
        let server = MakoServer::new(tmp_config());
        let specs = vec![
            JobSpec::new("a", PriorityClass::Batch, builders::water()),
            JobSpec::new("a", PriorityClass::Batch, builders::methane()),
            JobSpec::new("b", PriorityClass::Batch, builders::ammonia()).at(1e3),
        ];
        let chaos = ServerChaos::quiet(2).kill_worker(0, 0.0).kill_worker(1, 0.0);
        let report = server.serve(&specs, &chaos);
        assert_eq!(report.ledger.completed, 0);
        for outcome in &report.outcomes {
            match outcome {
                JobOutcome::Failed { error, .. } => assert!(matches!(
                    error,
                    JobError::AllWorkersLost | JobError::WorkerLost { .. }
                )),
                other => panic!("expected failure, got {other:?}"),
            }
        }
    }

    #[test]
    fn crashed_serve_recovers_to_bitwise_outcomes() {
        use mako_store::{FaultProfile, FaultVfs};
        let specs = vec![
            JobSpec::new("a", PriorityClass::Batch, builders::water()),
            JobSpec::new("b", PriorityClass::Interactive, builders::methane()),
        ];
        // Probe: count the storage ops of a quiet store-backed serve, then
        // crash a fresh one halfway through and recover it.
        let probe_vfs = Arc::new(FaultVfs::quiet());
        let probe = MakoServer::with_store(
            tmp_config(),
            probe_vfs.clone() as Arc<dyn Vfs>,
            PathBuf::from("/srv"),
        )
        .expect("store");
        let quiet = probe.serve_quiet(&specs);
        assert!(!quiet.crashed);
        assert_eq!(quiet.ledger.completed, 2);
        let total_ops = probe_vfs.ops();
        assert!(total_ops > 4, "a store-backed serve must hit storage");

        let vfs = Arc::new(FaultVfs::new(FaultProfile::crash_at(7, total_ops / 2)));
        let server = MakoServer::with_store(
            tmp_config(),
            vfs.clone() as Arc<dyn Vfs>,
            PathBuf::from("/srv"),
        )
        .expect("store");
        let crashed = server.serve_quiet(&specs);
        assert!(crashed.crashed, "the injected crash point must fire");
        let recovered = server
            .recover(&specs, &ServerChaos::quiet(2))
            .expect("recover");
        assert!(!recovered.crashed);
        assert_eq!(recovered.ledger.completed, 2);
        for (q, r) in quiet.outcomes.iter().zip(&recovered.outcomes) {
            assert_eq!(
                energy(q).to_bits(),
                energy(r).to_bits(),
                "recovered energies are bitwise the quiet serve's"
            );
        }
    }

    #[test]
    fn recover_refuses_a_mismatched_workload() {
        use mako_store::FaultVfs;
        let vfs = Arc::new(FaultVfs::quiet());
        let server = MakoServer::with_store(
            tmp_config(),
            vfs as Arc<dyn Vfs>,
            PathBuf::from("/srv"),
        )
        .expect("store");
        let specs = vec![JobSpec::new("a", PriorityClass::Batch, builders::water())];
        let _ = server.serve_quiet(&specs);
        let other = vec![
            JobSpec::new("a", PriorityClass::Batch, builders::water()),
            JobSpec::new("z", PriorityClass::Batch, builders::methane()),
        ];
        assert!(
            server.recover(&other, &ServerChaos::quiet(2)).is_err(),
            "a journal must never be replayed against a different workload"
        );
    }

    #[test]
    fn persisted_artifacts_warm_a_fresh_server_process() {
        use mako_store::FaultVfs;
        let vfs = Arc::new(FaultVfs::quiet());
        let specs = vec![JobSpec::new("a", PriorityClass::Batch, builders::water())];

        let first = MakoServer::with_store(
            tmp_config(),
            vfs.clone() as Arc<dyn Vfs>,
            PathBuf::from("/srv"),
        )
        .expect("store");
        let cold = first.serve_quiet(&specs);
        assert_eq!(cold.ledger.completed, 1);
        assert!(
            first.artifact_store().unwrap().stored() >= 2,
            "a cold serve persists its screen artifact and kernel table"
        );

        // A "new process": same storage, fresh in-memory caches.
        let second = MakoServer::with_store(
            tmp_config(),
            vfs.clone() as Arc<dyn Vfs>,
            PathBuf::from("/srv"),
        )
        .expect("store");
        assert!(
            !second.kernels.snapshot().is_empty(),
            "the tuned-kernel table is seeded from disk at open"
        );
        let warm = second.serve_quiet(&specs);
        assert!(
            second.artifact_store().unwrap().loaded() >= 1,
            "the screen artifact is served from disk, not recomputed"
        );
        assert_eq!(
            energy(&cold.outcomes[0]).to_bits(),
            energy(&warm.outcomes[0]).to_bits(),
            "persisted artifacts change nothing"
        );

        // Rot the screen artifact: a third process quarantines and
        // recomputes — a corrupt artifact is never consumed.
        let key = ArtifactKey::for_job(&specs[0]).content_hash();
        let screen_path = second.artifact_store().unwrap().path_for("screen", key);
        assert!(vfs.corrupt(&screen_path, 40, 0x10), "artifact exists to rot");
        let third = MakoServer::with_store(
            tmp_config(),
            vfs.clone() as Arc<dyn Vfs>,
            PathBuf::from("/srv"),
        )
        .expect("store");
        let healed = third.serve_quiet(&specs);
        assert!(third.artifact_store().unwrap().quarantined() >= 1, "rot quarantined");
        assert_eq!(
            energy(&cold.outcomes[0]).to_bits(),
            energy(&healed.outcomes[0]).to_bits(),
            "recomputed-after-rot energy is bitwise the cold one"
        );
    }

    #[test]
    fn screen_cache_serves_repeat_submissions() {
        let server = MakoServer::new(tmp_config());
        let spec = JobSpec::new("a", PriorityClass::Interactive, builders::water());
        let r1 = server.serve_quiet(std::slice::from_ref(&spec));
        let misses = server.screen_cache().misses();
        let r2 = server.serve_quiet(std::slice::from_ref(&spec));
        assert_eq!(server.screen_cache().misses(), misses, "second serve hit");
        assert!(server.screen_cache().hits() >= 1);
        assert_eq!(
            energy(&r1.outcomes[0]).to_bits(),
            energy(&r2.outcomes[0]).to_bits(),
            "cache-served artifacts change nothing"
        );
    }
}
