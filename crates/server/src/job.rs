//! The job model: what tenants submit and the typed outcome taxonomy they
//! get back.
//!
//! Every anomaly a job can hit — quota rejection, load shedding, worker
//! death, straggler timeout, a poisoned Fock build, a blown deadline — is a
//! value of [`JobOutcome`], never a panic and never a silent wrong number.
//! That is the serving-layer extension of the library contract in
//! `mako_scf::error`.

use mako_chem::{BasisFamily, Molecule};
use mako_scf::{ScfConfig, ScfError};

/// Job identifier: the submission index within one [`serve`] call.
///
/// [`serve`]: crate::MakoServer::serve
pub type JobId = usize;

/// Scheduling tier of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PriorityClass {
    /// Latency-sensitive tier: never load-shed, never preempted, and
    /// guaranteed to start within one preemption quantum of a worker
    /// becoming schedulable (the no-starvation contract).
    Interactive,
    /// Throughput tier: runs in checkpoint-preemptible quanta and yields to
    /// interactive work at iteration boundaries.
    Batch,
    /// Scavenger tier: first to be shed under pressure.
    BestEffort,
}

impl PriorityClass {
    /// Stable lowercase label (trace fields, bench JSON).
    pub fn label(self) -> &'static str {
        match self {
            PriorityClass::Interactive => "interactive",
            PriorityClass::Batch => "batch",
            PriorityClass::BestEffort => "best_effort",
        }
    }

    /// Dispatch rank: lower runs first.
    pub(crate) fn rank(self) -> u8 {
        match self {
            PriorityClass::Interactive => 0,
            PriorityClass::Batch => 1,
            PriorityClass::BestEffort => 2,
        }
    }
}

/// One tenant request: a molecule, a basis, an SCF configuration, and the
/// scheduling envelope (class, arrival time, deadline).
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Tenant the job is billed to (quota key).
    pub tenant: String,
    /// Scheduling tier.
    pub class: PriorityClass,
    /// The molecule to solve.
    pub molecule: Molecule,
    /// Basis family (instantiated per job on the molecule's elements).
    pub basis: BasisFamily,
    /// SCF configuration. `distributed` is ignored — placement belongs to
    /// the server, not the tenant.
    pub config: ScfConfig,
    /// Arrival time on the virtual clock (simulated device seconds).
    pub submit_at: f64,
    /// Completion deadline, virtual seconds after `submit_at`; `None` means
    /// no deadline. Checked whenever the job would (re)enter the queue.
    pub deadline: Option<f64>,
}

impl JobSpec {
    /// A job with the default STO-3G RHF configuration, arriving at t = 0.
    pub fn new(tenant: &str, class: PriorityClass, molecule: Molecule) -> JobSpec {
        JobSpec {
            tenant: tenant.to_string(),
            class,
            molecule,
            basis: BasisFamily::Sto3g,
            config: ScfConfig::default(),
            submit_at: 0.0,
            deadline: None,
        }
    }

    /// Set the arrival time (virtual seconds).
    pub fn at(mut self, submit_at: f64) -> JobSpec {
        self.submit_at = submit_at;
        self
    }

    /// Set a completion deadline (virtual seconds after arrival).
    pub fn with_deadline(mut self, deadline: f64) -> JobSpec {
        self.deadline = Some(deadline);
        self
    }

    /// Replace the SCF configuration.
    pub fn with_config(mut self, config: ScfConfig) -> JobSpec {
        self.config = config;
        self
    }

    /// Replace the basis family.
    pub fn with_basis(mut self, basis: BasisFamily) -> JobSpec {
        self.basis = basis;
        self
    }
}

/// Why admission control turned a job away.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// The tenant already has its quota of jobs in flight.
    TenantQuotaExceeded {
        /// The offending tenant.
        tenant: String,
        /// Its in-flight limit.
        limit: usize,
    },
    /// The ready queue is at its hard cap; only interactive work is
    /// admitted.
    QueueFull {
        /// Waiting jobs at admission time.
        depth: usize,
        /// The hard cap that was hit.
        cap: usize,
    },
    /// Load shedding: the server is degraded and this class is below the
    /// shedding bar.
    LoadShed {
        /// Class of the rejected job.
        class: PriorityClass,
    },
}

impl RejectReason {
    /// Stable lowercase label (trace fields, bench JSON).
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::TenantQuotaExceeded { .. } => "tenant_quota",
            RejectReason::QueueFull { .. } => "queue_full",
            RejectReason::LoadShed { .. } => "load_shed",
        }
    }
}

/// Why a job's attempt (or the whole job) failed.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The SCF stack reported a typed error ([`ScfError`] re-used verbatim).
    Scf(ScfError),
    /// The worker executing the attempt died mid-quantum.
    WorkerLost {
        /// Which worker died.
        worker: usize,
    },
    /// Every worker died; queued work has nowhere to run.
    AllWorkersLost,
    /// The attempt overran the straggler bar and was killed by the runtime.
    AttemptTimeout {
        /// The per-attempt limit, virtual seconds.
        limit_seconds: f64,
    },
    /// The serve was cut short by a storage-layer crash (injected or real):
    /// the job had no terminal outcome when the process died. Recovery
    /// replays the journal and finishes the job; this outcome only survives
    /// in the aborted report itself.
    Crashed,
    /// A terminal failure replayed from the write-ahead journal after a
    /// crash. The original typed error was journaled as its display string;
    /// the job is *not* re-run (its failure was already final).
    Replayed {
        /// Display form of the original error.
        description: String,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Scf(e) => write!(f, "scf error: {e}"),
            JobError::WorkerLost { worker } => write!(f, "worker {worker} died mid-quantum"),
            JobError::AllWorkersLost => write!(f, "all workers lost"),
            JobError::AttemptTimeout { limit_seconds } => {
                write!(f, "attempt exceeded the {limit_seconds} s straggler bar")
            }
            JobError::Crashed => {
                write!(f, "serve aborted by a storage crash before the job resolved")
            }
            JobError::Replayed { description } => {
                write!(f, "replayed from journal: {description}")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// Everything a completed job reports back.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Converged (or budget-exhausted) total energy, Hartree — bitwise
    /// identical to a quiet solo [`mako_scf::ScfDriver`] run of the same
    /// spec, whatever faults the job survived (the chaos invariant).
    pub energy: f64,
    /// Whether the SCF converged.
    pub converged: bool,
    /// SCF iterations executed (replayed iterations not double-counted).
    pub iterations: usize,
    /// Virtual device seconds charged to the job, including voided
    /// (faulted) attempts.
    pub device_seconds: f64,
    /// Arrival time (virtual clock).
    pub submitted_at: f64,
    /// First dispatch time (virtual clock).
    pub started_at: f64,
    /// Completion time (virtual clock).
    pub finished_at: f64,
    /// Faulted attempts that were retried.
    pub retries: u32,
    /// Times the job was preempted at a quantum boundary for
    /// higher-priority work.
    pub preemptions: usize,
    /// Scheduling quanta the job ran (including voided attempts).
    pub quanta: usize,
}

/// Terminal outcome of one submitted job.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// The job ran to completion.
    Completed(JobReport),
    /// Admission control turned the job away before it ran.
    Rejected {
        /// Why.
        reason: RejectReason,
    },
    /// The job failed after exhausting its retry budget (or on a
    /// non-retryable error).
    Failed {
        /// The final error.
        error: JobError,
        /// Retries consumed before giving up.
        retries: u32,
    },
    /// The deadline passed while work remained.
    DeadlineExceeded {
        /// The deadline, virtual seconds after arrival.
        deadline_seconds: f64,
        /// SCF iterations completed before the deadline fired.
        completed_iterations: usize,
        /// Retries consumed.
        retries: u32,
    },
}

impl JobOutcome {
    /// Stable lowercase label (trace fields, bench JSON).
    pub fn label(&self) -> &'static str {
        match self {
            JobOutcome::Completed(_) => "completed",
            JobOutcome::Rejected { .. } => "rejected",
            JobOutcome::Failed { .. } => "failed",
            JobOutcome::DeadlineExceeded { .. } => "deadline_exceeded",
        }
    }

    /// The completed report, if any.
    pub fn report(&self) -> Option<&JobReport> {
        match self {
            JobOutcome::Completed(r) => Some(r),
            _ => None,
        }
    }

    /// The completed energy, if any.
    pub fn energy(&self) -> Option<f64> {
        self.report().map(|r| r.energy)
    }
}
