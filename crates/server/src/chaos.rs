//! The chaos harness: seeded fault injection for the serving layer.
//!
//! [`ServerChaos`] wraps an [`mako_accel::fault::FaultPlan`] and extends it
//! with the serving-specific fault surfaces the device-level plan does not
//! model:
//!
//! * **worker death** — a worker permanently dies after a plan-chosen
//!   number of scheduling quanta; the attempt it was running is voided and
//!   retried elsewhere from the last acknowledged checkpoint;
//! * **checkpoint write failures** — a quantum's checkpoint persist fails
//!   (disk full, torn write); the server keeps the previous in-memory
//!   checkpoint, so the quantum is replayed rather than resumed from a
//!   half-written file;
//! * **poisoned Fock builds** — one iteration of a chosen job produces a
//!   non-finite Fock matrix (via `ScfRunOptions::poison_fock`), exercising
//!   the typed `ScfError::NonFinite` containment path.
//!
//! Every decision is a pure function of `(seed, worker, sequence number)`,
//! so a chaos run is exactly reproducible — which is what lets the chaos
//! invariant ("every completed job's energy is bitwise identical to a quiet
//! solo run") be a hard assertion rather than a statistical claim.

use mako_accel::fault::{FaultConfig, FaultPlan};
use std::collections::BTreeMap;

use crate::job::JobId;

/// How many scheduling quanta the death-point lottery spans: a worker the
/// plan marks as dying does so within its first `DEATH_HORIZON` quanta.
pub const DEATH_HORIZON: usize = 16;

/// Seeded fault schedule for one [`serve`] call.
///
/// [`serve`]: crate::MakoServer::serve
#[derive(Debug, Clone)]
pub struct ServerChaos {
    seed: u64,
    plan: FaultPlan,
    /// Probability a checkpoint persist fails, per (worker, save).
    ckpt_io_rate: f64,
    /// Jobs whose Fock build is poisoned, and at which absolute iteration.
    poison: BTreeMap<JobId, usize>,
    /// Targeted worker kills (worker → death quantum), layered over the
    /// plan's seeded deaths. Unlike `FaultPlan`, the server is allowed to
    /// lose *every* worker — total loss is a failure mode the runtime must
    /// contain, so the harness must be able to express it.
    deaths: BTreeMap<usize, usize>,
}

impl ServerChaos {
    /// No faults at all.
    pub fn quiet(workers: usize) -> ServerChaos {
        ServerChaos {
            seed: 0,
            plan: FaultPlan::quiet(workers),
            ckpt_io_rate: 0.0,
            poison: BTreeMap::new(),
            deaths: BTreeMap::new(),
        }
    }

    /// A seeded chaotic schedule: worker deaths and stragglers from
    /// [`FaultConfig::chaotic`], plus a 20 % checkpoint-write failure rate.
    pub fn seeded(seed: u64, workers: usize) -> ServerChaos {
        ServerChaos {
            seed,
            plan: FaultPlan::seeded(seed, workers, &FaultConfig::chaotic()),
            ckpt_io_rate: 0.2,
            poison: BTreeMap::new(),
            deaths: BTreeMap::new(),
        }
    }

    /// Deterministically kill one worker partway through its schedule
    /// (`fraction` of the death horizon, in `[0, 1]`). Unlike the
    /// device-level plan, killing every worker is allowed — total loss is a
    /// containment path the runtime pins.
    pub fn kill_worker(mut self, worker: usize, fraction: f64) -> ServerChaos {
        let q = ((fraction.clamp(0.0, 1.0) * DEATH_HORIZON as f64) as usize)
            .min(DEATH_HORIZON - 1);
        self.deaths.insert(worker, q);
        self
    }

    /// Make one worker a straggler (`slowdown` ≥ 1 multiplies its virtual
    /// execution time, which is how attempts come to overrun the straggler
    /// bar).
    pub fn slow_worker(mut self, worker: usize, slowdown: f64) -> ServerChaos {
        self.plan = self.plan.slow_rank(worker, slowdown);
        self
    }

    /// Poison the Fock build of job `job` at absolute SCF iteration
    /// `iteration` (first attempt only — the retry runs clean, which is the
    /// transient-corruption model).
    pub fn with_poison(mut self, job: JobId, iteration: usize) -> ServerChaos {
        self.poison.insert(job, iteration);
        self
    }

    /// Override the checkpoint-write failure probability.
    pub fn with_ckpt_io_rate(mut self, rate: f64) -> ServerChaos {
        self.ckpt_io_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Workers the schedule covers.
    pub fn workers(&self) -> usize {
        self.plan.ranks()
    }

    /// Whether this schedule injects no faults.
    pub fn is_quiet(&self) -> bool {
        !self.plan.lossy()
            && self.deaths.is_empty()
            && self.ckpt_io_rate == 0.0
            && self.poison.is_empty()
            && (0..self.plan.ranks()).all(|w| self.plan.slowdown(w) == 1.0)
    }

    /// The quantum (0-based, counted per worker) during which `worker`
    /// dies, or `None` if it survives the run.
    pub fn death_quantum(&self, worker: usize) -> Option<usize> {
        self.deaths
            .get(&worker)
            .copied()
            .or_else(|| self.plan.death_point(worker, DEATH_HORIZON))
    }

    /// Straggler slowdown multiplier for `worker` (1.0 = healthy).
    pub fn slowdown(&self, worker: usize) -> f64 {
        self.plan.slowdown(worker)
    }

    /// Whether `worker`'s `save`-th checkpoint persist fails. Independent
    /// hash stream from the device-fault plan, so adding checkpoint chaos
    /// does not reshuffle the death/straggler schedule.
    pub fn checkpoint_write_fails(&self, worker: usize, save: u64) -> bool {
        if self.ckpt_io_rate <= 0.0 {
            return false;
        }
        let h = mix(mix(self.seed ^ 0x434B_5054_4641_494C, worker as u64), save);
        // Map the top 53 bits onto [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < self.ckpt_io_rate
    }

    /// The absolute iteration at which `job`'s Fock build is poisoned, if
    /// any.
    pub fn poison_for(&self, job: JobId) -> Option<usize> {
        self.poison.get(&job).copied()
    }
}

/// SplitMix64 finalizer (independent stream from `FaultPlan`'s).
#[inline]
fn mix(h: u64, v: u64) -> u64 {
    let mut z = (h ^ v).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_schedule_is_quiet() {
        let c = ServerChaos::quiet(4);
        assert!(c.is_quiet());
        for w in 0..4 {
            assert_eq!(c.death_quantum(w), None);
            assert_eq!(c.slowdown(w), 1.0);
            assert!(!c.checkpoint_write_fails(w, 0));
        }
    }

    #[test]
    fn targeted_faults_land_where_aimed() {
        let c = ServerChaos::quiet(3)
            .kill_worker(1, 0.5)
            .slow_worker(2, 4.0)
            .with_poison(7, 3);
        assert!(!c.is_quiet());
        assert_eq!(c.death_quantum(0), None);
        assert_eq!(c.death_quantum(1), Some(DEATH_HORIZON / 2));
        assert_eq!(c.slowdown(2), 4.0);
        assert_eq!(c.poison_for(7), Some(3));
        assert_eq!(c.poison_for(8), None);
    }

    #[test]
    fn checkpoint_faults_are_seeded_and_reproducible() {
        let a = ServerChaos::seeded(42, 4);
        let b = ServerChaos::seeded(42, 4);
        let c = ServerChaos::seeded(43, 4);
        let pattern = |s: &ServerChaos| {
            (0..4)
                .flat_map(|w| (0..32).map(move |i| (w, i)))
                .map(|(w, i)| s.checkpoint_write_fails(w, i))
                .collect::<Vec<_>>()
        };
        assert_eq!(pattern(&a), pattern(&b), "same seed, same schedule");
        assert_ne!(pattern(&a), pattern(&c), "different seed, different schedule");
        let fails = pattern(&a).iter().filter(|&&f| f).count();
        assert!(fails > 0, "a 20% rate over 128 draws should fire at least once");
        assert!(fails < 128, "and should not fire always");
    }
}
