//! `mako-server` — fault-contained multi-tenant SCF job runtime.
//!
//! The rest of the workspace turns one SCF problem into a deterministic
//! trajectory on a simulated accelerator. This crate turns *many* problems
//! from *many* tenants into a served workload on a pool of such devices,
//! without giving up a single bit of that determinism:
//!
//! * **Admission control** ([`admission`]) — per-tenant in-flight quotas,
//!   queue-depth caps, and a three-state load-shedding machine
//!   (`Normal → Degraded → Shedding`) that degrades batch work to a shorter
//!   preemption quantum before it rejects anything, and never sheds the
//!   interactive tier.
//! * **Checkpoint-backed preemption** ([`server`]) — batch jobs run in
//!   iteration-bounded quanta, persist an [`mako_scf::ScfCheckpoint`] at
//!   each boundary, and yield the worker; the resumed trajectory is bitwise
//!   identical to the uninterrupted one, so scheduling policy can never
//!   change chemistry.
//! * **Deadlines, timeouts, retries** — every job carries an optional
//!   deadline; straggling attempts are killed at a configurable bar; faulted
//!   attempts retry from the last acknowledged checkpoint under capped
//!   exponential backoff. Every failure mode is a typed
//!   [`JobOutcome`] / [`JobError`] — the serving layer never panics on a
//!   tenant's job.
//! * **Cross-request caches** ([`cache`]) — tuned-kernel and screening-pair
//!   artifacts are promoted across requests (size-bounded, LRU, eviction
//!   counters), amortizing cold-start wall time without touching results.
//! * **Chaos harness** ([`chaos`]) — seeded worker deaths, checkpoint-write
//!   failures, straggler slowdowns, and poisoned Fock builds, with the
//!   pinned invariant that every *completed* job's energy is bitwise
//!   identical to a quiet solo run of the same spec.
//!
//! The scheduler itself is a discrete-event simulation on a virtual clock
//! (simulated device seconds), so an entire multi-tenant, fault-riddled
//! serve is exactly reproducible from `(specs, config, chaos seed)` — the
//! serving-layer extension of the paper's determinism story.
//!
//! ```
//! use mako_server::{JobSpec, MakoServer, PriorityClass, ServerChaos, ServerConfig};
//!
//! let server = MakoServer::new(ServerConfig::default());
//! let jobs = vec![
//!     JobSpec::new("alice", PriorityClass::Interactive, mako_chem::builders::water()),
//!     JobSpec::new("bob", PriorityClass::Batch, mako_chem::builders::methane()),
//! ];
//! // A worker dies mid-run; the affected job retries from its checkpoint.
//! let chaos = ServerChaos::quiet(2).kill_worker(1, 0.5);
//! let report = server.serve(&jobs, &chaos);
//! assert_eq!(report.ledger.completed, 2);
//! ```

pub mod admission;
pub mod cache;
pub mod chaos;
pub mod job;
pub mod journal;
pub mod persist;
pub mod server;

pub use admission::{AdmissionConfig, AdmissionState};
pub use cache::{ArtifactKey, ScreenCache};
pub use chaos::{ServerChaos, DEATH_HORIZON};
pub use job::{JobError, JobId, JobOutcome, JobReport, JobSpec, PriorityClass, RejectReason};
pub use journal::{workload_hash, Journal, JournalRecord};
pub use server::{MakoServer, ServeLedger, ServeReport, ServerConfig};
