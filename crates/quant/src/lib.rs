//! # mako-quant
//!
//! QuantMako (paper §3.2): physics-informed quantization for the ERI
//! pipeline.
//!
//! The three components map onto this workspace as follows:
//!
//! * **Fine-Grained Quantization** — per-angular-momentum-group operand
//!   scaling lives in `mako-precision` ([`mako_precision::GroupQuantizer`])
//!   and is applied inside the pipelines of `mako-kernels`
//!   (`ScalePolicy::PerGroup`); this crate re-exports the pieces and adds
//!   the per-class scale selection used by the SCF driver.
//! * **Dual-Stage Accumulation** — [`accumulate::DualStageAccumulator`]:
//!   FP32 accumulation + dequantization at the integral stage, FP64
//!   accumulation at the Fock stage.
//! * **Convergence-Aware Scheduling** — [`scheduler::QuantSchedule`]:
//!   density-weighted Schwarz classification of quartet batches into
//!   FP64 / quantized / pruned, with thresholds that relax in early SCF
//!   iterations and tighten as the DIIS residual shrinks.

pub mod accumulate;
pub mod scheduler;

pub use accumulate::DualStageAccumulator;
pub use scheduler::{ExecClass, QuantSchedule, SchedulePhase};

pub use mako_precision::{GroupQuantizer, QuantizedBlock, ScalePolicy};
