//! # mako-quant
//!
//! QuantMako (paper §3.2): physics-informed quantization for the ERI
//! pipeline.
//!
//! The three components map onto this workspace as follows:
//!
//! * **Fine-Grained Quantization** — per-angular-momentum-group operand
//!   scaling lives in `mako-precision` ([`mako_precision::GroupQuantizer`])
//!   and is applied inside the pipelines of `mako-kernels`
//!   (`ScalePolicy::PerGroup`); this crate re-exports the pieces and adds
//!   the per-class scale selection used by the SCF driver.
//! * **Dual-Stage Accumulation** — [`accumulate::DualStageAccumulator`]:
//!   FP32 accumulation + dequantization at the integral stage, FP64
//!   accumulation at the Fock stage.
//! * **Convergence-Aware Scheduling** — [`scheduler::QuantSchedule`]:
//!   density-weighted Schwarz classification of quartet batches into
//!   FP64 / quantized / pruned, with thresholds that relax in early SCF
//!   iterations and tighten as the DIIS residual shrinks.
//!
//! The RI-J density-fitting path adds a fourth component:
//!
//! * **Error-budgeted tile picking** — [`picker::RijSchedule`]: per-tile
//!   fp64/tf32/bf16/fp16/int8 selection from block norms of the 3-center
//!   tensor against an absolute error budget (Huang/Shao/Hammond int8
//!   density fitting + Dawson et al. error budgeting), tightening with SCF
//!   convergence exactly like [`scheduler::QuantSchedule`].

pub mod accumulate;
pub mod picker;
pub mod scheduler;

pub use accumulate::DualStageAccumulator;
pub use picker::{tile_error_bound, RijSchedule, TileStats};
pub use scheduler::{ExecClass, QuantSchedule, SchedulePhase};

pub use mako_precision::{GroupQuantizer, QuantizedBlock, ScalePolicy};
