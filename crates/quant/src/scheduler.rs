//! Convergence-Aware Scheduling (paper §3.2.3).
//!
//! Two coordinated dimensions decide how each quartet batch executes:
//!
//! * **integral level (mixed precision)** — density-weighted Schwarz
//!   estimates classify batches: critical → FP64 kernels, moderate →
//!   quantized kernels, negligible → pruned;
//! * **iterative level (dynamic precision)** — early SCF iterations
//!   tolerate error, so the FP64 threshold starts high (almost everything
//!   quantized) and tightens as the convergence measure (|ΔE| or the DIIS
//!   residual) shrinks, approaching an all-FP64 final iteration.

use mako_eri::screening::{classify, ImportanceClass};

/// How a quartet batch should execute this iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecClass {
    /// Evaluate with the FP64 pipeline.
    Fp64,
    /// Evaluate with the quantized pipeline.
    Quantized,
    /// Skip entirely.
    Pruned,
}

/// Convergence phase, used for reporting and threshold selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePhase {
    /// Early SCF: relaxed thresholds, quantized kernels dominate.
    Early,
    /// Mid SCF: mixed.
    Mid,
    /// Near convergence: FP64 dominates.
    Final,
}

/// The per-iteration scheduling state.
///
/// The FP64/quantized split is **relative** to the magnitude of the largest
/// integral estimate in the system (`scale`, supplied by the Fock builder):
/// early on only the dominant quartets — the ones whose absolute error would
/// exceed the current SCF error — stay FP64, and the bar rises as
/// convergence tightens. The pruning floor stays absolute (physical
/// insignificance does not depend on the iteration).
#[derive(Debug, Clone)]
pub struct QuantSchedule {
    /// Quartets whose estimate exceeds `rel_fp64_threshold · scale` run in
    /// FP64.
    pub rel_fp64_threshold: f64,
    /// Quartets whose absolute estimate falls below this are pruned.
    pub prune_threshold: f64,
    /// Whether quantized kernels are allowed at all (disabled for pure-FP64
    /// reference runs).
    pub allow_quantized: bool,
}

impl QuantSchedule {
    /// A pure-FP64 reference schedule (quantization off, standard Schwarz
    /// pruning only).
    pub fn fp64_reference(prune_threshold: f64) -> QuantSchedule {
        QuantSchedule {
            rel_fp64_threshold: 0.0,
            prune_threshold,
            allow_quantized: false,
        }
    }

    /// The rescue ladder's quantization backoff (stage 4 of the SCF
    /// self-healing ladder): when convergence stalls and the watchdog
    /// suspects quantization noise, the driver abandons convergence-aware
    /// scheduling for the rest of the run and pins every batch to FP64.
    ///
    /// Defined as exactly the reference schedule a *non-quantized* run uses
    /// (`fp64_reference(tol · 1e-5)`), so a backed-off quantized run lands
    /// bit-for-bit on the trajectory a pure-FP64 run would follow from the
    /// same state — the backstop Dawson et al. (arXiv:2407.13299) argue
    /// low-precision SCF must keep in reserve.
    pub fn rescue_backoff(tol: f64) -> QuantSchedule {
        QuantSchedule::fp64_reference(tol * 1e-5)
    }

    /// The schedule for an SCF iteration with convergence measure
    /// `residual` (|ΔE| of the previous iteration or the DIIS error norm)
    /// and target convergence `tol` (e.g. 1e-7).
    ///
    /// While the SCF error is large, integrals only need to be as accurate
    /// as the error they feed; quantization noise (relative ~1e-3) is then
    /// tolerable for everything except the dominant quartets. As `residual`
    /// falls, the FP64 bar drops toward zero and the final iterations run
    /// entirely in FP64.
    pub fn for_iteration(residual: f64, tol: f64) -> QuantSchedule {
        let residual = residual.max(tol);
        // Relative bar: at residual 1.0 only the top ~30% of estimates stay
        // FP64; each decade of convergence drops the bar by a decade.
        let rel = (residual * 0.3).clamp(tol * 10.0, 0.5);
        QuantSchedule {
            rel_fp64_threshold: rel,
            prune_threshold: (tol * 1e-5).max(1e-14),
            allow_quantized: residual > tol * 10.0,
        }
    }

    /// Phase label for reporting.
    pub fn phase(&self) -> SchedulePhase {
        if !self.allow_quantized {
            SchedulePhase::Final
        } else if self.rel_fp64_threshold >= 1e-2 {
            SchedulePhase::Early
        } else {
            SchedulePhase::Mid
        }
    }

    /// Decide the execution class of a quartet population from its pairs'
    /// Schwarz bounds, the largest relevant density element, and the
    /// system-wide estimate `scale` (max bound² × max density).
    ///
    /// The FP64/quantized split is relative to `scale`, so a degenerate
    /// scale would poison the bar: `scale == 0` (all-pruned batches, empty
    /// pair lists), a non-finite scale (overflowed bounds, NaN density), or
    /// a non-finite `rel_fp64_threshold` would previously make
    /// `estimate >= bar` false for *every* quartet and classify the whole
    /// system as quantized. Any such degenerate input now collapses the bar
    /// to `0.0`, which deterministically promotes every surviving quartet
    /// to FP64 — the conservative direction (pruning, which is absolute,
    /// is unaffected).
    pub fn decide(&self, bound_ab: f64, bound_cd: f64, density_max: f64, scale: f64) -> ExecClass {
        let degenerate =
            !(scale.is_finite() && scale > 0.0 && self.rel_fp64_threshold.is_finite());
        let fp64_threshold = if degenerate {
            0.0
        } else {
            self.rel_fp64_threshold * scale
        };
        let class = classify(
            bound_ab,
            bound_cd,
            density_max,
            fp64_threshold,
            self.prune_threshold,
        );
        match class {
            ImportanceClass::Negligible => ExecClass::Pruned,
            ImportanceClass::Critical => ExecClass::Fp64,
            ImportanceClass::Moderate => {
                if self.allow_quantized {
                    ExecClass::Quantized
                } else {
                    ExecClass::Fp64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rescue_backoff_is_the_reference_schedule() {
        // The backstop contract: a backed-off quantized run must follow the
        // exact schedule of a non-quantized run (same prune bar, no
        // quantization, zero relative FP64 bar), so the trajectories fuse.
        let b = QuantSchedule::rescue_backoff(1e-7);
        let r = QuantSchedule::fp64_reference(1e-7 * 1e-5);
        assert_eq!(b.rel_fp64_threshold.to_bits(), r.rel_fp64_threshold.to_bits());
        assert_eq!(b.prune_threshold.to_bits(), r.prune_threshold.to_bits());
        assert!(!b.allow_quantized);
        assert_eq!(b.phase(), SchedulePhase::Final);
    }

    #[test]
    fn early_iterations_quantize_most_work() {
        let early = QuantSchedule::for_iteration(1.0, 1e-7);
        assert_eq!(early.phase(), SchedulePhase::Early);
        let scale = 100.0; // max estimate in the system
        // A mid-magnitude quartet runs quantized early on.
        assert_eq!(early.decide(1.0, 1.0, 0.5, scale), ExecClass::Quantized);
        // The dominant quartets stay FP64 even early.
        assert_eq!(early.decide(10.0, 10.0, 1.0, scale), ExecClass::Fp64);
    }

    #[test]
    fn thresholds_tighten_with_convergence() {
        let tol = 1e-7;
        let mut prev = f64::INFINITY;
        for &res in &[1.0, 1e-2, 1e-4, 1e-6, 1e-8] {
            let s = QuantSchedule::for_iteration(res, tol);
            assert!(s.rel_fp64_threshold <= prev);
            prev = s.rel_fp64_threshold;
        }
    }

    #[test]
    fn final_iterations_are_fp64() {
        let s = QuantSchedule::for_iteration(5e-7, 1e-7);
        assert!(!s.allow_quantized);
        assert_eq!(s.phase(), SchedulePhase::Final);
        assert_eq!(s.decide(1e-2, 1e-2, 0.5, 1.0), ExecClass::Fp64);
    }

    #[test]
    fn pruning_survives_all_phases() {
        for &res in &[1.0, 1e-5, 1e-8] {
            let s = QuantSchedule::for_iteration(res, 1e-7);
            assert_eq!(s.decide(1e-10, 1e-10, 1.0, 1.0), ExecClass::Pruned, "res={res}");
        }
    }

    #[test]
    fn reference_schedule_never_quantizes() {
        let s = QuantSchedule::fp64_reference(1e-12);
        for bounds in [(1.0, 1.0), (1e-3, 1e-3), (1e-5, 1e-4)] {
            assert_eq!(s.decide(bounds.0, bounds.1, 1.0, 1.0), ExecClass::Fp64);
        }
        assert_eq!(s.decide(1e-8, 1e-8, 1.0, 1.0), ExecClass::Pruned);
    }

    /// Regression: degenerate `scale` values (zero from all-pruned batches,
    /// NaN/∞ from poisoned bounds or densities) must deterministically fall
    /// back to FP64 for every surviving quartet — never classify the system
    /// as quantized. Before the fix, `scale = ∞` put the FP64 bar at ∞ and
    /// quantized everything.
    #[test]
    fn degenerate_scale_falls_back_to_fp64() {
        let early = QuantSchedule::for_iteration(1.0, 1e-7);
        assert!(early.allow_quantized, "precondition: quantization is on");
        for &scale in &[0.0, -3.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            // Mid-magnitude quartets that a healthy scale would quantize...
            assert_eq!(
                early.decide(1.0, 1.0, 0.5, scale),
                ExecClass::Fp64,
                "scale={scale}"
            );
            assert_eq!(
                early.decide(1e-2, 1e-2, 1.0, scale),
                ExecClass::Fp64,
                "scale={scale}"
            );
            // ...while absolute pruning is unaffected.
            assert_eq!(
                early.decide(1e-10, 1e-10, 1.0, scale),
                ExecClass::Pruned,
                "scale={scale}"
            );
        }
        // Sanity: a healthy scale still quantizes the mid-magnitude quartet.
        assert_eq!(early.decide(1.0, 1.0, 0.5, 100.0), ExecClass::Quantized);
    }

    /// Regression: a non-finite relative threshold (corrupted schedule
    /// state) is degenerate too — FP64 fallback, not blanket quantization.
    #[test]
    fn non_finite_threshold_falls_back_to_fp64() {
        for bad in [f64::NAN, f64::INFINITY] {
            let s = QuantSchedule {
                rel_fp64_threshold: bad,
                prune_threshold: 1e-14,
                allow_quantized: true,
            };
            assert_eq!(s.decide(1.0, 1.0, 0.5, 100.0), ExecClass::Fp64);
            assert_eq!(s.decide(1e-10, 1e-10, 1e-14, 100.0), ExecClass::Pruned);
        }
    }

    #[test]
    fn quantized_fraction_grows_early() {
        // Over a synthetic population of batches, the early schedule should
        // quantize strictly more work than the late schedule.
        let bounds: Vec<f64> = (0..60).map(|i| 10f64.powf(-(i as f64) / 6.0)).collect();
        let count_quantized = |s: &QuantSchedule| {
            bounds
                .iter()
                .filter(|&&b| s.decide(b, b, 1.0, 1.0) == ExecClass::Quantized)
                .count()
        };
        let early = QuantSchedule::for_iteration(1.0, 1e-7);
        let late = QuantSchedule::for_iteration(1e-6, 1e-7);
        assert!(count_quantized(&early) > count_quantized(&late));
    }
}
