//! Dual-Stage Accumulation (paper §3.2.2).
//!
//! Stage 1: the FP16 basis-transformation outputs accumulate in FP32 and are
//! rescaled by the inverse quantization factors (this happens inside
//! `mako_kernels::gemm_rounded`).
//!
//! Stage 2: integral contributions accumulate into **FP64** Fock buffers —
//! the Fock matrix is maintained at full double precision throughout the
//! pipeline regardless of how the integrals were produced. This module
//! provides that second stage, plus a deliberately degraded single-stage
//! variant used by the ablation benches to show why the design matters.

/// FP64 accumulation buffer fed by (possibly low-precision) contributions —
/// the Fock-stage accumulator.
#[derive(Debug, Clone)]
pub struct DualStageAccumulator {
    buf: Vec<f64>,
}

impl DualStageAccumulator {
    /// Zeroed accumulator of length `n`.
    pub fn new(n: usize) -> DualStageAccumulator {
        DualStageAccumulator { buf: vec![0.0; n] }
    }

    /// Stage-2 accumulate: `buf[i] += contribution` in FP64. The
    /// contribution is expected to be an already-dequantized stage-1 result.
    pub fn add(&mut self, i: usize, contribution: f64) {
        self.buf[i] += contribution;
    }

    /// Accumulate a whole slice.
    pub fn add_slice(&mut self, contributions: &[f64]) {
        assert_eq!(contributions.len(), self.buf.len());
        for (b, c) in self.buf.iter_mut().zip(contributions) {
            *b += c;
        }
    }

    /// The accumulated FP64 values.
    pub fn values(&self) -> &[f64] {
        &self.buf
    }

    /// Consume into the buffer.
    pub fn into_values(self) -> Vec<f64> {
        self.buf
    }
}

/// Ablation foil: accumulate everything in FP32, including the running
/// total (what a precision-naive port would do). Exposes the drift that
/// dual-stage accumulation avoids.
#[derive(Debug, Clone)]
pub struct SingleStageF32Accumulator {
    buf: Vec<f32>,
}

impl SingleStageF32Accumulator {
    /// Zeroed accumulator of length `n`.
    pub fn new(n: usize) -> SingleStageF32Accumulator {
        SingleStageF32Accumulator { buf: vec![0.0; n] }
    }

    /// FP32 accumulate.
    pub fn add(&mut self, i: usize, contribution: f64) {
        self.buf[i] += contribution as f32;
    }

    /// Widen the result.
    pub fn values(&self) -> Vec<f64> {
        self.buf.iter().map(|&x| x as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp64_stage_preserves_small_contributions() {
        // Accumulate 1e6 contributions of 1e-8 on top of an initial 1.0:
        // FP32 running totals stall (1.0 + 1e-8 rounds to 1.0), FP64 doesn't.
        let n = 1usize;
        let mut dual = DualStageAccumulator::new(n);
        let mut single = SingleStageF32Accumulator::new(n);
        dual.add(0, 1.0);
        single.add(0, 1.0);
        for _ in 0..1_000_000 {
            dual.add(0, 1e-8);
            single.add(0, 1e-8);
        }
        let exact = 1.0 + 1e-2;
        let err_dual = (dual.values()[0] - exact).abs();
        let err_single = (single.values()[0] - exact).abs();
        assert!(err_dual < 1e-9, "dual-stage error {err_dual}");
        assert!(
            err_single > 1e-3,
            "single-stage FP32 must visibly stall: {err_single}"
        );
    }

    #[test]
    fn slice_accumulation_matches_elementwise() {
        let mut a = DualStageAccumulator::new(4);
        let mut b = DualStageAccumulator::new(4);
        let contributions = [0.1, -0.2, 0.3, 0.4];
        a.add_slice(&contributions);
        for (i, &c) in contributions.iter().enumerate() {
            b.add(i, c);
        }
        assert_eq!(a.values(), b.values());
    }

    #[test]
    fn into_values_roundtrip() {
        let mut a = DualStageAccumulator::new(2);
        a.add(1, 2.5);
        assert_eq!(a.clone().into_values(), vec![0.0, 2.5]);
    }
}
