//! Error-budgeted per-tile precision picking for the RI-J contraction path.
//!
//! Grounding: Huang, Shao & Hammond ("Accelerating Density Fitting with
//! Adaptive-precision and 8-bit Integer on AI Accelerators") pick per-tile
//! storage formats from block norms of the 3-center tensor; Dawson et al.
//! ("Reducing Numerical Precision Requirements in Quantum Chemistry
//! Calculations") frame the choice as an explicit error budget. This module
//! combines both: each tile of a `B · v` contraction gets the **cheapest**
//! tier of [`TilePrecision`] whose worst-case error bound fits its share of
//! a user-supplied absolute budget on the output elements.
//!
//! The per-tile bounds are rigorous (see [`tile_error_bound`]), so the sum
//! over a row of tiles bounds the total error of each output element:
//! if every tile passes `bound ≤ budget / ntiles`, then
//! `|y_adaptive − y_fp64| ≤ budget` elementwise. The RI-J bench asserts
//! exactly this.
//!
//! Like `QuantSchedule`, the schedule tightens with SCF convergence: early
//! iterations run against a slack budget proportional to the convergence
//! residual, and the final iterations collapse to pure FP64.

use mako_precision::TilePrecision;

/// Summary statistics of one `B`-tile × vector-segment product, computed
/// once per build (block norms) and once per contraction (vector weights).
#[derive(Debug, Clone, Copy)]
pub struct TileStats {
    /// `max |B_ij|` over the tile.
    pub block_norm: f64,
    /// `Σ |v_k|` over the contracted vector segment.
    pub vec_l1: f64,
    /// `max |v_k|` over the contracted vector segment.
    pub vec_max: f64,
    /// Length of the contracted vector segment.
    pub vec_len: usize,
}

/// Worst-case absolute error a tile contributes to one output element when
/// its `B`-block and vector segment are stored in `tier` (both operands
/// rounded; int8 quantized with per-tile scales; accumulation as the real
/// kernels do it: i32 exact for int8, FP32 partial sums for the float
/// tiers, FP64 for fp64).
///
/// * Float tiers: `(factor + len·2⁻²⁴) · ‖B‖_∞ · ‖v‖₁` — two half-ulp
///   operand roundings (`factor = 2·2⁻⁽ᵐ⁺¹⁾`) plus the FP32 accumulation
///   drift — plus a subnormal-flush term `½·q·(‖v‖₁ + len·‖B‖_∞)` with `q`
///   the tier's smallest positive subnormal (only material for fp16).
/// * Int8: quantization error is **absolute** w.r.t. each tile max
///   (`½·scale = max/254`), giving
///   `‖B‖_∞/254 · (‖v‖₁ + len·‖v‖_∞)`; the i32 accumulation is exact.
pub fn tile_error_bound(tier: TilePrecision, s: &TileStats) -> f64 {
    let len = s.vec_len as f64;
    match tier {
        TilePrecision::Int8 => s.block_norm / 254.0 * (s.vec_l1 + len * s.vec_max),
        _ => {
            let subnormal_quantum = match tier {
                TilePrecision::Fp16 => 2.0f64.powi(-24),
                TilePrecision::Bf16 => 2.0f64.powi(-133),
                TilePrecision::Tf32 => 2.0f64.powi(-136),
                _ => 0.0,
            };
            // Accumulation drift: FP32 partial sums for the tensor-core
            // tiers, FP64 for fp64 tiles.
            let accum_ulp = if tier == TilePrecision::Fp64 {
                2.0f64.powi(-53)
            } else {
                2.0f64.powi(-24)
            };
            let factor = tier.err_factor() + len * accum_ulp;
            factor * s.block_norm * s.vec_l1
                + 0.5 * subnormal_quantum * (s.vec_l1 + len * s.block_norm)
        }
    }
}

/// The per-contraction adaptive-precision schedule for RI-J tiles.
#[derive(Debug, Clone, Copy)]
pub struct RijSchedule {
    /// Absolute error budget per output element of a `B · v` contraction.
    pub budget: f64,
    /// Whether sub-FP64 tiers are allowed at all (off for reference runs
    /// and the final SCF iterations).
    pub allow_quantized: bool,
    /// Pin every tile to one tier regardless of the budget (benchmark
    /// sweeps measuring per-tier RMSE). `None` for adaptive picking.
    pub force: Option<TilePrecision>,
}

impl RijSchedule {
    /// Pure-FP64 reference schedule: every tile runs in full precision.
    pub fn fp64_reference() -> RijSchedule {
        RijSchedule {
            budget: 0.0,
            allow_quantized: false,
            force: None,
        }
    }

    /// Adaptive schedule against an absolute per-element error budget.
    pub fn with_budget(budget: f64) -> RijSchedule {
        RijSchedule {
            budget,
            allow_quantized: true,
            force: None,
        }
    }

    /// Pin every tile to `tier` (per-tier RMSE sweeps).
    pub fn forced(tier: TilePrecision) -> RijSchedule {
        RijSchedule {
            budget: f64::INFINITY,
            allow_quantized: true,
            force: Some(tier),
        }
    }

    /// The schedule for an SCF iteration with convergence measure
    /// `residual` and target `tol`, tightening exactly like
    /// `QuantSchedule::for_iteration`: while the SCF error is large the
    /// effective budget is slack (proportional to the residual — the J
    /// matrix only needs to be as accurate as the error it feeds), it
    /// tightens to the configured floor as convergence approaches, and the
    /// final iterations (`residual ≤ 10·tol`) run pure FP64.
    pub fn for_iteration(base_budget: f64, residual: f64, tol: f64) -> RijSchedule {
        let residual = residual.max(tol);
        RijSchedule {
            budget: base_budget.max((residual * 0.1).min(0.5)),
            allow_quantized: residual > tol * 10.0,
            force: None,
        }
    }

    /// Pick the cheapest eligible tier for one tile.
    ///
    /// Walks [`TilePrecision::ALL`] in cost order (int8 → fp16 → bf16 →
    /// tf32) and returns the first tier whose [`tile_error_bound`] fits
    /// `budget / ntiles` **and** whose representable range covers both
    /// operands; FP64 is the unconditional fallback. Degenerate inputs —
    /// non-finite stats or a non-positive/non-finite budget — and disabled
    /// quantization deterministically return FP64, mirroring
    /// `QuantSchedule::decide`'s degenerate-scale fallback.
    ///
    /// Eligibility is monotone in the budget, so a tighter budget can never
    /// select a *cheaper* (lower-[`TilePrecision::rank`]) tier for the same
    /// tile — the monotonicity the proptest suite pins.
    pub fn pick(&self, stats: &TileStats, ntiles: usize) -> TilePrecision {
        if let Some(t) = self.force {
            return t;
        }
        if !self.allow_quantized {
            return TilePrecision::Fp64;
        }
        if !(self.budget.is_finite() && self.budget > 0.0) {
            return TilePrecision::Fp64;
        }
        if !(stats.block_norm.is_finite()
            && stats.vec_l1.is_finite()
            && stats.vec_max.is_finite())
        {
            return TilePrecision::Fp64;
        }
        let per_tile = self.budget / ntiles.max(1) as f64;
        for &tier in TilePrecision::ALL[..TilePrecision::ALL.len() - 1].iter() {
            let range_ok =
                stats.block_norm <= tier.max_finite() && stats.vec_max <= tier.max_finite();
            if range_ok && tile_error_bound(tier, stats) <= per_tile {
                return tier;
            }
        }
        TilePrecision::Fp64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(norm: f64, l1: f64, max: f64, len: usize) -> TileStats {
        TileStats {
            block_norm: norm,
            vec_l1: l1,
            vec_max: max,
            vec_len: len,
        }
    }

    #[test]
    fn loose_budget_picks_int8_tight_budget_picks_fp64() {
        let s = stats(1.0, 10.0, 1.0, 64);
        assert_eq!(
            RijSchedule::with_budget(1e3).pick(&s, 4),
            TilePrecision::Int8
        );
        assert_eq!(
            RijSchedule::with_budget(1e-14).pick(&s, 4),
            TilePrecision::Fp64
        );
    }

    #[test]
    fn budget_sweep_is_monotone_and_hits_every_float_tier() {
        let s = stats(1.0, 10.0, 1.0, 64);
        let mut prev_rank = 0usize;
        let mut seen = std::collections::HashSet::new();
        let mut b = 1e4;
        while b > 1e-15 {
            let t = RijSchedule::with_budget(b).pick(&s, 4);
            assert!(t.rank() >= prev_rank, "budget {b}: rank regressed");
            prev_rank = t.rank();
            seen.insert(t);
            b *= 0.5;
        }
        assert!(seen.contains(&TilePrecision::Int8));
        assert!(seen.contains(&TilePrecision::Fp16));
        assert!(seen.contains(&TilePrecision::Fp64));
    }

    #[test]
    fn fp16_range_overflow_falls_through_to_bf16() {
        // Block values beyond 65504 cannot be stored in fp16 no matter how
        // loose the budget; bf16 (fp32 range) takes the tile.
        let s = stats(1e6, 10.0, 1.0, 64);
        let t = RijSchedule::with_budget(1e12).pick(&s, 1);
        assert_eq!(t, TilePrecision::Int8, "int8 rescales, range never blocks it");
        // Force the int8 bound to fail so the float walk decides.
        let s2 = stats(1e6, 10.0, 1e6, 64);
        let budget = tile_error_bound(TilePrecision::Bf16, &s2) * 2.0;
        assert_eq!(
            RijSchedule::with_budget(budget).pick(&s2, 1),
            TilePrecision::Bf16
        );
    }

    #[test]
    fn tf32_takes_large_range_tight_error_tiles() {
        // Budget below the bf16 bound but above the tf32 bound, with a
        // block norm beyond fp16 range: only tf32 fits both constraints.
        let s = stats(1e6, 10.0, 1e6, 64);
        let budget = tile_error_bound(TilePrecision::Tf32, &s) * 2.0;
        assert!(budget < tile_error_bound(TilePrecision::Bf16, &s));
        assert_eq!(
            RijSchedule::with_budget(budget).pick(&s, 1),
            TilePrecision::Tf32
        );
    }

    #[test]
    fn degenerate_inputs_fall_back_to_fp64() {
        let healthy = stats(1.0, 1.0, 1.0, 8);
        for s in [
            stats(f64::NAN, 1.0, 1.0, 8),
            stats(1.0, f64::INFINITY, 1.0, 8),
            stats(1.0, 1.0, f64::NAN, 8),
        ] {
            assert_eq!(
                RijSchedule::with_budget(1e3).pick(&s, 1),
                TilePrecision::Fp64
            );
        }
        for sched in [
            RijSchedule::with_budget(f64::NAN),
            RijSchedule::with_budget(0.0),
            RijSchedule::with_budget(-1.0),
            RijSchedule::with_budget(f64::INFINITY),
            RijSchedule::fp64_reference(),
        ] {
            assert_eq!(sched.pick(&healthy, 1), TilePrecision::Fp64);
        }
    }

    #[test]
    fn forced_schedule_ignores_budget() {
        let s = stats(1.0, 1.0, 1.0, 8);
        for t in TilePrecision::ALL {
            assert_eq!(RijSchedule::forced(t).pick(&s, 1), t);
        }
    }

    #[test]
    fn iteration_schedule_tightens_like_quant_schedule() {
        let base = 1e-8;
        let tol = 1e-7;
        // Early: slack budget proportional to the residual, quantization on.
        let early = RijSchedule::for_iteration(base, 1.0, tol);
        assert!(early.allow_quantized);
        assert!(early.budget > base);
        // Budgets tighten monotonically with the residual.
        let mut prev = f64::INFINITY;
        for &res in &[1.0, 1e-2, 1e-4, 1e-6] {
            let s = RijSchedule::for_iteration(base, res, tol);
            assert!(s.budget <= prev, "res={res}");
            prev = s.budget;
        }
        // Final iterations: pure FP64, like QuantSchedule::for_iteration.
        let fin = RijSchedule::for_iteration(base, 5e-7, tol);
        assert!(!fin.allow_quantized);
        assert_eq!(fin.pick(&stats(1.0, 1.0, 1.0, 8), 1), TilePrecision::Fp64);
        // The configured budget is a floor — never loosened below it.
        assert!(RijSchedule::for_iteration(base, 1e-12, tol).budget >= base);
    }

    #[test]
    fn error_bound_shares_sum_to_the_budget() {
        // The contract the RI-J bench asserts: if every tile of a row
        // passes `bound ≤ budget/ntiles`, the row's total bound ≤ budget.
        let sched = RijSchedule::with_budget(1e-6);
        let tiles: Vec<TileStats> = (0..7)
            .map(|i| stats(10f64.powi(-i), 3.0, 1.0, 64))
            .collect();
        let total: f64 = tiles
            .iter()
            .map(|s| {
                let t = sched.pick(s, tiles.len());
                tile_error_bound(t, s)
            })
            .sum();
        assert!(total <= sched.budget * (1.0 + 1e-12), "total={total}");
    }
}
