//! The KernelMako execution pipelines: real quartet numerics + simulated
//! device cost, per ERI-class batch.

use crate::mixed_gemm::{round_into, round_into_extend};
use std::cell::RefCell;
use mako_accel::{
    avg_column_conflict, CostModel, KernelProfile, SmemLayout,
};
use mako_eri::batch::{EriClass, QuartetBatch};
use mako_eri::mmd::{pq_geometry, pq_matrix_from_boys_geom, pq_matrix_into, PqIndex, PqScratch};
use mako_eri::screening::ScreenedPair;
use mako_eri::tensor::Tensor4;
use mako_chem::cart::{nherm, nsph};
use mako_linalg::{gemm_rounded_engine, gemm_tiled, Matrix, Transpose};
use mako_precision::{Precision, ScalePolicy};
use rayon::prelude::*;

/// Kernel-fusion strategies of the KernelMako design space (§3.1 / §3.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FusionStrategy {
    /// Every stage (r, pq, two transforms) is a separate kernel with
    /// global-memory intermediates — the LibintX-like baseline.
    Unfused,
    /// r-integrals and `[p|q]` assembly fused; transform GEMMs separate.
    FuseRPq,
    /// One fully fused kernel; intermediates live in shared memory.
    FuseAll,
    /// Fully fused plus back-to-back GEMM coalescing: the `(ab|q]`
    /// intermediate stays in warp-local registers. Valid only when
    /// `K_AB = K_CD = 1` (paper §3.1.3).
    FuseAllCoalesced,
}

/// Configuration of a pipeline run — the tunables CompilerMako sweeps.
///
/// Equality and hashing are derived so callers can group quartet sub-batches
/// by *launch identity* `(EriClass, PipelineConfig)`: two sub-batches with
/// equal keys would compile to the same kernel and can share one launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipelineConfig {
    /// Fusion strategy.
    pub fusion: FusionStrategy,
    /// Shared-memory layout for the r→pq transpose.
    pub layout: SmemLayout,
    /// Implicit-ILP factor applied to the non-MatMul operators (1..=32).
    pub ilp: usize,
    /// Threads per threadblock.
    pub threads_per_block: usize,
    /// Input precision of the basis-transformation GEMMs.
    pub precision: Precision,
    /// Operand scaling policy for reduced-precision runs.
    pub scale_policy: ScalePolicy,
    /// GEMM tile edge for the fused pipelines' shared-memory staging — the
    /// unified N-dimension tiling of the paper's Figure 4. `usize::MAX`
    /// models an untiled kernel that must hold whole operands resident.
    pub tile: usize,
}

impl PipelineConfig {
    /// KernelMako's hand-reasonable FP64 configuration (before autotuning).
    pub fn kernel_mako_fp64() -> PipelineConfig {
        PipelineConfig {
            fusion: FusionStrategy::FuseAll,
            layout: SmemLayout::Swizzled,
            ilp: 4,
            threads_per_block: 256,
            precision: Precision::Fp64,
            scale_policy: ScalePolicy::Unscaled,
            tile: 16,
        }
    }

    /// The QuantMako quantized configuration (FP16 inputs, group scaling).
    pub fn quant_mako() -> PipelineConfig {
        PipelineConfig {
            precision: Precision::Fp16,
            scale_policy: ScalePolicy::PerGroup,
            ..PipelineConfig::kernel_mako_fp64()
        }
    }

    /// Unscaled reduced-precision baseline (Table 2's "Baseline FP16").
    pub fn baseline_low_precision(p: Precision) -> PipelineConfig {
        PipelineConfig {
            precision: p,
            scale_policy: ScalePolicy::Unscaled,
            ..PipelineConfig::kernel_mako_fp64()
        }
    }
}

/// Effective efficiency of the non-MatMul operators after implicit-ILP
/// restructuring (Eq. 8): aligning them to MatMul granularity costs a 4×
/// parallelism deficit that ILP recovers, until register pressure bites.
pub fn ilp_efficiency(fusion: FusionStrategy, ilp: usize) -> f64 {
    match fusion {
        // Separate kernels run each operator at its own optimal granularity.
        FusionStrategy::Unfused => 1.0,
        _ => {
            let gain = 0.25 * ilp as f64;
            let pressure = if ilp > 8 {
                let r = 8.0 / ilp as f64;
                r * r
            } else {
                1.0
            };
            (gain * pressure).clamp(0.05, 1.0)
        }
    }
}

/// Live shared-memory footprint per threadblock (one quartet in flight),
/// bytes — the `S(F)` of CompilerMako's Eq. (12).
///
/// Fused pipelines stage their GEMM operands through `cfg.tile`-edge tiles
/// (the unified N-dimension tiling of the paper's Figure 4), so the
/// footprint of a class grows with its Hermite dimensions only through the
/// always-resident r tensor and the output accumulator — which is what
/// keeps even (gg|gg) fusable.
pub fn smem_footprint(class: &EriClass, cfg: &PipelineConfig) -> usize {
    let (hb, hk) = class.herm_dims();
    let nab = nsph(class.la) * nsph(class.lb);
    let ncd = nsph(class.lc) * nsph(class.ld);
    let in_size = cfg.precision.size_bytes();
    let l_sum = class.l_bra() + class.l_ket();
    let kt = hb.min(cfg.tile); // K-dim tile over bra Hermite
    let nt = hk.min(cfg.tile); // N-dim tile over ket Hermite
    let r_tile = nherm(l_sum) * 8; // r stays FP64 (numerically fragile)
    // First GEMM tiles: E_AB (nab×kt), [p|q] (kt×nt), (ab|q] (nab×nt, FP32).
    let gemm1 = (nab * kt + kt * nt) * in_size + nab * nt * 4;
    // Second GEMM tile: E_CDᵀ (nt×ncd).
    let gemm2 = nt * ncd * in_size;
    // Output accumulator spans all n-tiles: nab×ncd in FP32.
    let out_tile = nab * ncd * 4;
    match cfg.fusion {
        FusionStrategy::Unfused => 0, // streaming stages, negligible SMEM
        FusionStrategy::FuseRPq => r_tile + (kt * nt) * in_size,
        FusionStrategy::FuseAll => r_tile + gemm1 + gemm2 + out_tile,
        // Coalescing keeps (ab|q] in registers instead of SMEM.
        FusionStrategy::FuseAllCoalesced => r_tile + gemm1 - nab * nt * 4 + gemm2 + out_tile,
    }
}

/// The kernel profiles one batch emits under a configuration. Multiple
/// profiles = multiple kernel launches whose times add.
pub fn batch_profiles(class: &EriClass, n: usize, cfg: &PipelineConfig) -> Vec<KernelProfile> {
    let nf = n as f64;
    let (hb, hk) = class.herm_dims();
    let nab = nsph(class.la) * nsph(class.lb);
    let l_sum = class.l_bra() + class.l_ket();
    let in_size = cfg.precision.size_bytes() as f64;
    let kprod = (class.kab * class.kcd) as f64;

    let t_flops = class.transform_flops() * nf;
    let r_flops = class.rpq_flops() * nf * 0.6;
    let pq_flops = class.rpq_flops() * nf * 0.4;

    let input_bytes = nf
        * ((class.kab * nab * hb + class.kcd * nsph(class.lc) * nsph(class.ld) * hk) as f64 * in_size
            + 96.0);
    let out_bytes = nf * class.out_size() as f64 * 8.0;
    let r_bytes = nf * kprod * nherm(l_sum) as f64 * 8.0;
    let pq_bytes = nf * kprod * (hb * hk) as f64 * in_size;
    let abq_bytes = nf * class.kcd as f64 * (nab * hk) as f64 * 4.0;

    let ilp_eff = ilp_efficiency(cfg.fusion, cfg.ilp);
    let conflict = avg_column_conflict(cfg.layout, 32, 32, 8, 32).max(1.0)
        / avg_column_conflict(SmemLayout::Swizzled, 32, 32, 8, 32).max(1.0);
    let smem = smem_footprint(class, cfg);
    let base = |name: &str| {
        let mut p = KernelProfile::named(format!("{name} {}", class.label()));
        p.threads_per_block = cfg.threads_per_block;
        p.smem_per_block = smem;
        p.ilp_efficiency = ilp_eff;
        p
    };

    match cfg.fusion {
        FusionStrategy::Unfused => {
            // Four streaming kernels; intermediates round-trip global
            // memory, and the r→pq transpose is an explicit extra pass.
            let mut r = base("r_integrals");
            r.cuda_flops.push((Precision::Fp64, r_flops));
            r.global_read = input_bytes * 0.3;
            r.global_write = r_bytes;
            r.smem_per_block = 0;

            let mut transpose = base("transpose_r");
            transpose.cuda_flops.push((Precision::Fp64, r_bytes / 8.0));
            transpose.global_read = r_bytes;
            transpose.global_write = r_bytes;
            transpose.bank_conflict_factor = conflict;
            transpose.smem_per_block = 32 * 1024;

            let mut pq = base("pq_integrals");
            pq.cuda_flops.push((Precision::Fp64, pq_flops));
            pq.global_read = r_bytes;
            pq.global_write = pq_bytes;
            pq.smem_per_block = 0;

            let mut gemm1 = base("transform_1");
            gemm1.tensor_flops.push((cfg.precision, t_flops * 0.7));
            gemm1.global_read = pq_bytes + input_bytes * 0.35;
            gemm1.global_write = abq_bytes;
            gemm1.smem_per_block = 48 * 1024;

            let mut gemm2 = base("transform_2");
            gemm2.tensor_flops.push((cfg.precision, t_flops * 0.3));
            gemm2.global_read = abq_bytes + input_bytes * 0.35;
            gemm2.global_write = out_bytes;
            gemm2.smem_per_block = 48 * 1024;

            vec![r, transpose, pq, gemm1, gemm2]
        }
        FusionStrategy::FuseRPq => {
            let mut rpq = base("fused_r_pq");
            rpq.cuda_flops.push((Precision::Fp64, r_flops + pq_flops));
            rpq.global_read = input_bytes * 0.3;
            rpq.global_write = pq_bytes;
            rpq.bank_conflict_factor = conflict;

            let mut gemms = base("transforms");
            gemms.tensor_flops.push((cfg.precision, t_flops));
            gemms.global_read = pq_bytes + input_bytes * 0.7;
            gemms.global_write = out_bytes + abq_bytes;
            gemms.smem_per_block = 48 * 1024;
            vec![rpq, gemms]
        }
        FusionStrategy::FuseAll | FusionStrategy::FuseAllCoalesced => {
            let mut fused = base("fused_eri");
            fused.tensor_flops.push((cfg.precision, t_flops));
            fused
                .cuda_flops
                .push((Precision::Fp64, r_flops + pq_flops));
            fused.global_read = input_bytes;
            fused.global_write = out_bytes;
            fused.bank_conflict_factor = conflict;
            vec![fused]
        }
    }
}

/// Simulated seconds to run a batch of `n` quartets of `class` under `cfg`
/// on the device of `model`. Returns `f64::INFINITY` when the configuration
/// cannot launch (SMEM footprint exceeds the device).
pub fn simulate_batch_cost(class: &EriClass, n: usize, cfg: &PipelineConfig, model: &CostModel) -> f64 {
    if cfg.fusion == FusionStrategy::FuseAllCoalesced && (class.kab != 1 || class.kcd != 1) {
        return f64::INFINITY;
    }
    let mut total = 0.0;
    for p in batch_profiles(class, n, cfg) {
        let rec = model.evaluate(&p);
        if !rec.total_s.is_finite() {
            return f64::INFINITY;
        }
        total += rec.total_s;
    }
    total
}

/// Sweep the fusion strategies and ILP factors for a class at the given
/// precision and return the cheapest legal configuration with its cost —
/// a lightweight preview of CompilerMako's Algorithm 2 used by tests and
/// baselines (the full tuner in `mako-compiler` also sweeps threadblock
/// shapes and layouts).
///
/// "Legal" includes the Eq. 13 occupancy budget: candidates whose
/// live-tensor footprint exceeds `smem_per_sm / 2` are rejected outright
/// (not merely priced with degraded occupancy), matching the full tuner's
/// admissibility contract. `Unfused` has zero footprint, so a winner always
/// exists.
pub fn best_config_cost(
    class: &EriClass,
    n: usize,
    precision: Precision,
    scale_policy: ScalePolicy,
    model: &CostModel,
) -> (PipelineConfig, f64) {
    let budget = model.device.smem_per_sm / 2; // Eq. (13)
    let mut best = (PipelineConfig::kernel_mako_fp64(), f64::INFINITY);
    for fusion in [
        FusionStrategy::FuseAllCoalesced,
        FusionStrategy::FuseAll,
        FusionStrategy::FuseRPq,
        FusionStrategy::Unfused,
    ] {
        for ilp in [1usize, 2, 4, 8, 16] {
            let cfg = PipelineConfig {
                fusion,
                layout: SmemLayout::Swizzled,
                ilp,
                threads_per_block: 256,
                precision,
                scale_policy,
                tile: 16,
            };
            if smem_footprint(class, &cfg) > budget {
                continue;
            }
            let cost = simulate_batch_cost(class, n, &cfg, model);
            if cost < best.1 {
                best = (cfg, cost);
            }
        }
    }
    best
}

/// Simulated device seconds for a batch of `n` quartets of `class` under
/// `cfg` — exactly the clock [`run_batch`] charges. The device is priced per
/// *batched launch*, so this figure is independent of how the host later
/// chunks the numerics across worker threads: parallelizing the host never
/// changes the simulated device time.
pub fn batch_device_seconds(
    class: &EriClass,
    n: usize,
    cfg: &PipelineConfig,
    model: &CostModel,
) -> f64 {
    batch_profiles(class, n, cfg)
        .iter()
        .map(|p| model.evaluate(p).total_s)
        .sum()
}

/// Price one *fused* launch covering several same-class, same-config quartet
/// sub-batches (typically from independent molecules run in lockstep), and
/// the per-launch baseline it replaces.
///
/// Returns `(fused_seconds, solo_seconds)`: the cost of a single launch over
/// `Σ counts` quartets versus the sum of one launch per sub-batch. Because
/// every [`KernelProfile`] carries fixed per-launch latency on top of its
/// throughput terms, `fused ≤ solo` always, with strict savings whenever
/// `counts.len() > 1` — that gap is exactly the launch-amortization win the
/// ensemble driver banks. Pricing only: the numerics of each sub-batch are
/// evaluated per molecule and never mixed.
pub fn fused_batch_device_seconds(
    class: &EriClass,
    counts: &[usize],
    cfg: &PipelineConfig,
    model: &CostModel,
) -> (f64, f64) {
    let total: usize = counts.iter().sum();
    let fused = batch_device_seconds(class, total, cfg, model);
    let solo = counts
        .iter()
        .map(|&n| batch_device_seconds(class, n, cfg, model))
        .sum();
    (fused, solo)
}

/// Group scale for the E operands of one quartet population: one scale per
/// ERI class (angular-momentum-aware grouping, §3.2.1), from the
/// population-wide max magnitude. Returns 1.0 for unscaled policies.
///
/// The scale is a property of the *whole* sub-batch: callers that chunk the
/// quartet list for host parallelism must compute it once over the full list
/// and pass it to every chunk, or the numerics would depend on the chunking.
pub fn batch_group_scale(
    quartets: &[(usize, usize)],
    pairs: &[ScreenedPair],
    cfg: &PipelineConfig,
) -> f64 {
    let target = Precision::Fp16.max_finite().sqrt() / 4.0;
    match cfg.scale_policy {
        ScalePolicy::PerGroup => {
            let mut m = 0.0f64;
            for &(pi, qi) in quartets {
                for pp in &pairs[pi].data.prims {
                    m = m.max(pp.e_sph.max_abs());
                }
                for pp in &pairs[qi].data.prims {
                    m = m.max(pp.e_sph.max_abs());
                }
            }
            if m > 0.0 {
                target / m
            } else {
                1.0
            }
        }
        _ => 1.0,
    }
}

/// A reusable per-class quartet evaluator: owns the `[p|q]` index table, the
/// pipeline configuration, and the frozen group scale, so chunked callers
/// (the parallel Fock assembly engine) evaluate quartets without rebuilding
/// per-class state.
pub struct QuartetRunner {
    idx: PqIndex,
    cfg: PipelineConfig,
    e_scale: f64,
    target: f64,
    rounded: Option<RoundedPairCache>,
}

/// One shell pair's `E` matrices rounded at the frozen group scale: the
/// per-primitive `round(e_sph · e_scale)` blocks, concatenated, with
/// `off[i]` the start of primitive `i`'s block. A quartet reads its bra's
/// entry as the A operand of the first transform and its ket's per-primitive
/// blocks as the (transposed) B operand of the second — both consume the
/// same rounded data, so a single entry serves a pair in either role.
struct RoundedPair {
    flat: Vec<f64>,
    off: Vec<usize>,
}

/// Lazily-initialized per-batch cache of [`RoundedPair`]s, indexed by
/// screened-pair index. Rounding at the group scale is a pure elementwise
/// function, so it is pair-invariant across the whole batch — without the
/// cache the hot loop re-rounds the same `E_AB`/`E_CD` blocks for every
/// quartet the pair participates in (hundreds, for a water cluster).
///
/// Thread-safe via `OnceLock`: racing workers may both compute an entry,
/// but they compute identical bits, so whichever wins preserves the
/// pipeline's bitwise determinism.
struct RoundedPairCache {
    precision: Precision,
    e_scale: f64,
    slots: Vec<std::sync::OnceLock<RoundedPair>>,
}

impl RoundedPairCache {
    fn new(cfg: &PipelineConfig, e_scale: f64, npairs: usize) -> RoundedPairCache {
        RoundedPairCache {
            precision: cfg.precision,
            e_scale,
            slots: (0..npairs).map(|_| std::sync::OnceLock::new()).collect(),
        }
    }

    fn get(&self, i: usize, pair: &ScreenedPair) -> &RoundedPair {
        self.slots[i].get_or_init(|| {
            let mut flat = Vec::new();
            let mut off = Vec::with_capacity(pair.data.prims.len());
            for prim in &pair.data.prims {
                off.push(flat.len());
                round_into_extend(self.precision, self.e_scale, prim.e_sph.as_slice(), &mut flat);
            }
            RoundedPair { flat, off }
        })
    }
}

impl QuartetRunner {
    /// Build a runner for one ERI class. `e_scale` must come from
    /// [`batch_group_scale`] over the *full* quartet population the runner
    /// will serve (see there).
    pub fn new(class: &EriClass, cfg: &PipelineConfig, e_scale: f64) -> QuartetRunner {
        QuartetRunner {
            idx: PqIndex::new(class.l_bra(), class.l_ket()),
            cfg: *cfg,
            e_scale,
            target: Precision::Fp16.max_finite().sqrt() / 4.0,
            rounded: None,
        }
    }

    /// [`QuartetRunner::new`] plus a rounded-operand cache over a screened
    /// pair population of `npairs` — quartets submitted through
    /// [`QuartetRunner::run_indexed`] then share each pair's rounded `E`
    /// blocks instead of re-rounding them per quartet. (The FP64 pipeline
    /// never rounds, so it skips the cache entirely.)
    pub fn for_pairs(
        class: &EriClass,
        cfg: &PipelineConfig,
        e_scale: f64,
        npairs: usize,
    ) -> QuartetRunner {
        let mut runner = QuartetRunner::new(class, cfg, e_scale);
        if cfg.precision != Precision::Fp64 {
            runner.rounded = Some(RoundedPairCache::new(cfg, e_scale, npairs));
        }
        runner
    }

    /// Evaluate one quartet into `out`, reusing its allocation.
    pub fn run_into(&self, pab: &ScreenedPair, pcd: &ScreenedPair, out: &mut Tensor4) {
        quartet_numerics_into(
            pab, pcd, &self.idx, &self.cfg, self.e_scale, self.target, None, out,
        );
    }

    /// [`QuartetRunner::run_into`] by screened-pair index, hitting the
    /// rounded-operand cache of [`QuartetRunner::for_pairs`] (identical
    /// bits either way — the cache only memoizes a pure function).
    pub fn run_indexed(
        &self,
        pairs: &[ScreenedPair],
        pi: usize,
        qi: usize,
        out: &mut Tensor4,
    ) {
        let (pab, pcd) = (&pairs[pi], &pairs[qi]);
        let rounded = self
            .rounded
            .as_ref()
            .map(|c| (c.get(pi, pab), c.get(qi, pcd)));
        quartet_numerics_into(
            pab, pcd, &self.idx, &self.cfg, self.e_scale, self.target, rounded, out,
        );
    }

    /// Evaluate one quartet into a fresh tensor.
    pub fn run(&self, pab: &ScreenedPair, pcd: &ScreenedPair) -> Tensor4 {
        let mut t = Tensor4::zeros([0; 4]);
        self.run_into(pab, pcd, &mut t);
        t
    }
}

/// Output of a numerically executed batch.
#[derive(Debug)]
pub struct BatchOutput {
    /// The class that ran.
    pub class: EriClass,
    /// One spherical quartet tensor per batch entry (same order).
    pub tensors: Vec<Tensor4>,
    /// Simulated device seconds for the batch.
    pub seconds: f64,
    /// The emitted kernel profiles (for SimTimer aggregation).
    pub profiles: Vec<KernelProfile>,
}

/// Execute a quartet batch: real ERI numerics under the configured
/// precision/scaling, plus simulated cost under the device model.
pub fn run_batch(
    batch: &QuartetBatch,
    pairs: &[ScreenedPair],
    cfg: &PipelineConfig,
    model: &CostModel,
) -> BatchOutput {
    let class = batch.class;
    let mut tensors = Vec::new();
    run_batch_tensors_into(batch, pairs, cfg, &mut tensors);
    let profiles = batch_profiles(&class, batch.len(), cfg);
    let seconds: f64 = profiles.iter().map(|p| model.evaluate(p).total_s).sum();

    BatchOutput {
        class,
        tensors,
        seconds,
        profiles,
    }
}

/// Execute a quartet batch's numerics into a caller-owned tensor vector,
/// reusing both the vector and (where shapes match) the individual tensor
/// allocations — the buffer-reuse path for drivers that rebuild the same
/// batches every SCF iteration.
pub fn run_batch_tensors_into(
    batch: &QuartetBatch,
    pairs: &[ScreenedPair],
    cfg: &PipelineConfig,
    out: &mut Vec<Tensor4>,
) {
    let e_scale = batch_group_scale(&batch.quartets, pairs, cfg);
    let runner = QuartetRunner::for_pairs(&batch.class, cfg, e_scale, pairs.len());
    out.truncate(batch.len());
    out.resize_with(batch.len(), || Tensor4::zeros([0; 4]));
    out.par_iter_mut()
        .zip(batch.quartets.par_iter())
        .for_each(|(t, &(pi, qi))| runner.run_indexed(pairs, pi, qi, t));
}

/// Per-thread workspace for [`quartet_numerics_into`]: every matrix,
/// Boys batch, and rounded-operand buffer of the per-quartet hot loop is
/// reused across the (tens of thousands of) quartets a worker evaluates.
struct QuartetScratch {
    /// `(ab|cd)` spherical-pair accumulator.
    out: Matrix,
    /// `(ab|q]` half-transformed accumulator.
    abq: Matrix,
    /// `[p|q]` matrix of the current primitive-pair combination.
    pq: Matrix,
    /// Hermite/Boys workspace for `[p|q]` assembly.
    pqs: PqScratch,
    /// Boys arguments for every (ket, bra) combination of the quartet.
    ts: Vec<f64>,
    /// `pq_geometry` precursors `(α, P−Q)` for the same combinations —
    /// computed once while gathering `ts`, fed back to the `[p|q]` assembly.
    geom: Vec<(f64, [f64; 3])>,
    /// Batched Boys rows (stride `l_tot + 1`).
    boys: Vec<f64>,
    /// Pre-rounded bra `E_AB` operands, concatenated per primitive.
    ra: Vec<f64>,
    /// Start offset of each bra primitive's block in `ra`.
    ra_off: Vec<usize>,
    /// Rounded `[p|q]` of the current combination.
    rb: Vec<f64>,
    /// Rounded `(ab|q]` for the second transform.
    rabq: Vec<f64>,
    /// Rounded ket `E_CD` (untransposed; the engine reads it transposed).
    rcd: Vec<f64>,
}

thread_local! {
    static QSCRATCH: RefCell<QuartetScratch> = RefCell::new(QuartetScratch {
        out: Matrix::zeros(0, 0),
        abq: Matrix::zeros(0, 0),
        pq: Matrix::zeros(0, 0),
        pqs: PqScratch::default(),
        ts: Vec::new(),
        geom: Vec::new(),
        boys: Vec::new(),
        ra: Vec::new(),
        ra_off: Vec::new(),
        rb: Vec::new(),
        rabq: Vec::new(),
        rcd: Vec::new(),
    });
}

#[allow(clippy::too_many_arguments)]
fn quartet_numerics_into(
    pab: &ScreenedPair,
    pcd: &ScreenedPair,
    idx: &PqIndex,
    cfg: &PipelineConfig,
    e_scale: f64,
    target: f64,
    rounded: Option<(&RoundedPair, &RoundedPair)>,
    t: &mut Tensor4,
) {
    let ab = &pab.data;
    let cd = &pcd.data;
    let na = nsph(ab.la);
    let nb = nsph(ab.lb);
    let nc = nsph(cd.la);
    let nd = nsph(cd.lb);
    QSCRATCH.with(|s| {
        let mut s = s.borrow_mut();
        let QuartetScratch {
            out,
            abq,
            pq,
            pqs,
            ts,
            geom,
            boys,
            ra,
            ra_off,
            rb,
            rabq,
            rcd,
        } = &mut *s;
        out.reset(ab.nsph_pair, cd.nsph_pair);
        abq.reset(ab.nsph_pair, cd.nherm);

        if cfg.precision == Precision::Fp64 {
            // Exact path: full-precision Boys (series reference) and plain
            // FP64 GEMMs through the packed engine. The ket transform reads
            // E_CD transposed in place — no copy.
            for ket in &cd.prims {
                for x in abq.as_mut_slice() {
                    *x = 0.0;
                }
                for bra in &ab.prims {
                    pq_matrix_into(bra, ket, ab.l_total(), cd.l_total(), idx, pqs, pq);
                    gemm_tiled(1.0, &bra.e_sph, Transpose::No, pq, Transpose::No, 1.0, abq);
                }
                gemm_tiled(1.0, abq, Transpose::No, &ket.e_sph, Transpose::Yes, 1.0, out);
            }
        } else {
            // Quantized path. Three hoists keep the per-combination work to
            // "assemble [p|q], round it, one packed small-GEMM":
            //  1. Boys values for the whole quartet go through the shared
            //     lookup table in one batch (fixed trip counts, no
            //     data-dependent series) at the class's exact order;
            //  2. bra E_AB rounding at the frozen group scale is
            //     ket-invariant, so it happens once per quartet;
            //  3. the ket transform feeds rounded E_CD to the engine as a
            //     transposed view instead of materializing a transpose.
            let l_tot = ab.l_total() + cd.l_total();
            let stride = l_tot + 1;
            let table = mako_eri::shared_table(l_tot);
            ts.clear();
            geom.clear();
            for ket in &cd.prims {
                for bra in &ab.prims {
                    let (alpha, pq_sep, t_arg) = pq_geometry(bra, ket);
                    ts.push(t_arg);
                    geom.push((alpha, pq_sep));
                }
            }
            table.eval_batch(l_tot, ts, boys);

            // Bra/ket E blocks rounded at the frozen group scale: served from
            // the batch-wide pair cache when the caller provides one (same
            // bits — the cache memoizes exactly this computation), rebuilt
            // into thread-local scratch otherwise.
            let (bra_flat, bra_off): (&[f64], &[usize]) = match rounded {
                Some((rp, _)) => (&rp.flat, &rp.off),
                None => {
                    ra.clear();
                    ra_off.clear();
                    for bra in &ab.prims {
                        ra_off.push(ra.len());
                        round_into_extend(cfg.precision, e_scale, bra.e_sph.as_slice(), ra);
                    }
                    (ra.as_slice(), ra_off.as_slice())
                }
            };

            let (m, hb, hk, ncd) = (ab.nsph_pair, ab.nherm, cd.nherm, cd.nsph_pair);

            if l_tot == 0 {
                // Degenerate (00|00) class: every operand is a 1×1 matrix, so
                // each "GEMM" is a single multiply. This branch performs the
                // same FP operations in the same order as the general loop
                // below (assemble [p|q] → per-group scale → round → f32-acc
                // multiply → descale) and is therefore bitwise inert — it
                // only skips the per-combination call/dispatch plumbing,
                // which for this class costs more than the arithmetic. It
                // matters because s-only quartets dominate real workloads
                // (~half the population for an STO-3G water cluster).
                debug_assert!(m == 1 && hb == 1 && hk == 1 && ncd == 1);
                let mut row = 0usize;
                let out0 = &mut out.as_mut_slice()[0];
                for (ki, ket) in cd.prims.iter().enumerate() {
                    let mut abq0 = 0.0f64;
                    for (bi, bra) in ab.prims.iter().enumerate() {
                        let f0 = boys[row];
                        row += 1;
                        let prefac = 2.0 * std::f64::consts::PI.powf(2.5)
                            / (bra.p * ket.p * (bra.p + ket.p).sqrt());
                        let pq0 = prefac * idx.ket_sign[0] * f0;
                        let sb = scale_for_scalar(cfg, pq0, target);
                        let rb0 = cfg.precision.round(pq0 * sb);
                        let ra0 = bra_flat[bra_off[bi]];
                        abq0 += ((ra0 * rb0) as f32) as f64 * (1.0 / (e_scale * sb));
                    }
                    let sa = scale_for_scalar(cfg, abq0, target);
                    let rabq0 = cfg.precision.round(abq0 * sa);
                    let rcd0 = match rounded {
                        Some((_, rk)) => rk.flat[rk.off[ki]],
                        None => cfg.precision.round(ket.e_sph.as_slice()[0] * e_scale),
                    };
                    *out0 += ((rabq0 * rcd0) as f32) as f64 * (1.0 / (sa * e_scale));
                }
                t.reset([na, nb, nc, nd]);
                t.set(0, 0, 0, 0, out[(0, 0)]);
                return;
            }

            let mut row = 0usize;
            for (ki, ket) in cd.prims.iter().enumerate() {
                for x in abq.as_mut_slice() {
                    *x = 0.0;
                }
                for (bi, bra) in ab.prims.iter().enumerate() {
                    let boys_row = &boys[row * stride..(row + 1) * stride];
                    let (alpha, pq_sep) = geom[row];
                    row += 1;
                    pq_matrix_from_boys_geom(
                        bra,
                        ket,
                        ab.l_total(),
                        cd.l_total(),
                        idx,
                        alpha,
                        pq_sep,
                        boys_row,
                        pqs,
                        pq,
                    );
                    let sb = scale_for(cfg, pq, target);
                    round_into(cfg.precision, sb, pq.as_slice(), rb);
                    gemm_rounded_engine(
                        m,
                        hb,
                        hk,
                        &bra_flat[bra_off[bi]..],
                        rb,
                        Transpose::No,
                        true,
                        1.0 / (e_scale * sb),
                        abq.as_mut_slice(),
                    );
                }
                // Second transform: (ab|cd) += (ab|q] · E_CDᵀ.
                let sa = scale_for(cfg, abq, target);
                round_into(cfg.precision, sa, abq.as_slice(), rabq);
                let ket_block: &[f64] = match rounded {
                    Some((_, rk)) => &rk.flat[rk.off[ki]..],
                    None => {
                        round_into(cfg.precision, e_scale, ket.e_sph.as_slice(), rcd);
                        rcd.as_slice()
                    }
                };
                gemm_rounded_engine(
                    m,
                    hk,
                    ncd,
                    rabq,
                    ket_block,
                    Transpose::Yes,
                    true,
                    1.0 / (sa * e_scale),
                    out.as_mut_slice(),
                );
            }
        }

        t.reset([na, nb, nc, nd]);
        for ia in 0..na {
            for ib in 0..nb {
                for ic in 0..nc {
                    for id in 0..nd {
                        t.set(ia, ib, ic, id, out[(ia * nb + ib, ic * nd + id)]);
                    }
                }
            }
        }
    });
}

/// [`scale_for`] of a 1×1 matrix, without materializing it. `0.0.max(|v|)`
/// reproduces `Matrix::max_abs`'s fold over the single element exactly.
fn scale_for_scalar(cfg: &PipelineConfig, v: f64, target: f64) -> f64 {
    match cfg.scale_policy {
        ScalePolicy::PerGroup => {
            let mx = 0.0f64.max(v.abs());
            if mx > 0.0 {
                target / mx
            } else {
                1.0
            }
        }
        _ => 1.0,
    }
}

fn scale_for(cfg: &PipelineConfig, m: &Matrix, target: f64) -> f64 {
    match cfg.scale_policy {
        ScalePolicy::PerGroup => {
            let mx = m.max_abs();
            if mx > 0.0 {
                target / mx
            } else {
                1.0
            }
        }
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mako_accel::DeviceSpec;
    use mako_eri::batch::batch_quartets;
    use mako_eri::mmd::eri_quartet_mmd;
    use mako_eri::screening::build_screened_pairs;
    use mako_chem::basis::ShellDef;
    use mako_chem::Shell;

    fn shell(l: usize, center: [f64; 3], exp: f64) -> Shell {
        ShellDef {
            l,
            exps: vec![exp],
            coefs: vec![1.0],
        }
        .at(0, center)
    }

    fn small_system() -> (Vec<ScreenedPair>, Vec<QuartetBatch>) {
        let shells = vec![
            shell(0, [0.0; 3], 1.1),
            shell(1, [0.8, 0.1, -0.2], 0.7),
            shell(2, [-0.4, 0.6, 0.3], 0.5),
        ];
        let pairs = build_screened_pairs(&shells, 1e-12);
        let batches = batch_quartets(&pairs, 1e-12);
        (pairs, batches)
    }

    #[test]
    fn fp64_pipeline_matches_reference_exactly() {
        let (pairs, batches) = small_system();
        let model = CostModel::new(DeviceSpec::a100());
        let cfg = PipelineConfig::kernel_mako_fp64();
        for b in &batches {
            let out = run_batch(b, &pairs, &cfg, &model);
            for (k, &(pi, qi)) in b.quartets.iter().enumerate() {
                let reference = eri_quartet_mmd(&pairs[pi].data, &pairs[qi].data);
                let d = out.tensors[k].max_abs_diff(&reference);
                assert!(d < 1e-13, "class {} diff {d}", b.class.label());
            }
            assert!(out.seconds > 0.0 && out.seconds.is_finite());
        }
    }

    #[test]
    fn quantized_pipeline_small_relative_error() {
        let (pairs, batches) = small_system();
        let model = CostModel::new(DeviceSpec::a100());
        let quant = PipelineConfig::quant_mako();
        for b in &batches {
            let out = run_batch(b, &pairs, &quant, &model);
            for (k, &(pi, qi)) in b.quartets.iter().enumerate() {
                let reference = eri_quartet_mmd(&pairs[pi].data, &pairs[qi].data);
                let scale = reference.max_abs().max(1e-6);
                let d = out.tensors[k].max_abs_diff(&reference);
                assert!(
                    d / scale < 5e-3,
                    "class {} relative error {}",
                    b.class.label(),
                    d / scale
                );
                assert!(d > 0.0, "quantized path must differ from FP64");
            }
        }
    }

    #[test]
    fn group_scaling_beats_unscaled_fp16() {
        // Tight, high-l shells: normalization makes the E operands large,
        // so the unscaled FP16 path overflows/saturates while group scaling
        // keeps operands in range.
        let shells = vec![
            shell(2, [0.0; 3], 60.0),
            shell(2, [0.3, 0.1, -0.2], 45.0),
        ];
        let pairs = build_screened_pairs(&shells, 0.0);
        let batches = batch_quartets(&pairs, 0.0);
        let model = CostModel::new(DeviceSpec::a100());
        let scaled = PipelineConfig::quant_mako();
        let unscaled = PipelineConfig::baseline_low_precision(Precision::Fp16);
        let mut err_scaled = 0.0f64;
        let mut err_unscaled = 0.0f64;
        for b in &batches {
            let so = run_batch(b, &pairs, &scaled, &model);
            let uo = run_batch(b, &pairs, &unscaled, &model);
            for (k, &(pi, qi)) in b.quartets.iter().enumerate() {
                let reference = eri_quartet_mmd(&pairs[pi].data, &pairs[qi].data);
                err_scaled += so.tensors[k].max_abs_diff(&reference);
                err_unscaled += uo.tensors[k].max_abs_diff(&reference);
            }
        }
        assert!(
            err_scaled < err_unscaled,
            "scaled {err_scaled} vs unscaled {err_unscaled}"
        );
    }

    #[test]
    fn fused_is_faster_than_unfused() {
        let model = CostModel::new(DeviceSpec::a100());
        let class = EriClass {
            la: 2,
            lb: 2,
            lc: 2,
            ld: 2,
            kab: 1,
            kcd: 1,
        };
        let unfused = simulate_batch_cost(
            &class,
            100_000,
            &PipelineConfig {
                fusion: FusionStrategy::Unfused,
                layout: SmemLayout::Linear,
                ilp: 1,
                ..PipelineConfig::kernel_mako_fp64()
            },
            &model,
        );
        let fused = simulate_batch_cost(&class, 100_000, &PipelineConfig::kernel_mako_fp64(), &model);
        assert!(fused < unfused, "fused {fused} unfused {unfused}");
        assert!(unfused / fused > 1.5, "speedup {}", unfused / fused);
    }

    #[test]
    fn quantized_is_faster_than_fp64() {
        let model = CostModel::new(DeviceSpec::a100());
        let class = EriClass {
            la: 3,
            lb: 3,
            lc: 3,
            ld: 3,
            kab: 1,
            kcd: 1,
        };
        let f = simulate_batch_cost(&class, 100_000, &PipelineConfig::kernel_mako_fp64(), &model);
        let q = simulate_batch_cost(&class, 100_000, &PipelineConfig::quant_mako(), &model);
        let speedup = f / q;
        assert!(speedup > 2.0, "quantization speedup {speedup}");
        assert!(speedup < 16.0, "bounded by the tensor-core ratio");
    }

    #[test]
    fn coalescing_requires_k1() {
        let model = CostModel::new(DeviceSpec::a100());
        let cfg = PipelineConfig {
            fusion: FusionStrategy::FuseAllCoalesced,
            ..PipelineConfig::kernel_mako_fp64()
        };
        let k5 = EriClass {
            la: 1,
            lb: 1,
            lc: 1,
            ld: 1,
            kab: 5,
            kcd: 5,
        };
        assert!(simulate_batch_cost(&k5, 10, &cfg, &model).is_infinite());
        let k1 = EriClass { kab: 1, kcd: 1, ..k5 };
        assert!(simulate_batch_cost(&k1, 10, &cfg, &model).is_finite());
    }

    #[test]
    fn gggg_fusion_needs_tiling_and_quantization_shrinks_it() {
        // Untiled, the (gg|gg) FP64 pq operand alone is 165·165·8 B ≈
        // 218 KB > 164 KB: full fusion cannot launch. The Figure 4 N-dim
        // tiling brings the footprint back under the SM budget, and
        // quantization shrinks it further (enabling higher occupancy).
        let class = EriClass {
            la: 4,
            lb: 4,
            lc: 4,
            ld: 4,
            kab: 1,
            kcd: 1,
        };
        let model = CostModel::new(DeviceSpec::a100());
        let untiled = PipelineConfig {
            tile: usize::MAX,
            ..PipelineConfig::kernel_mako_fp64()
        };
        assert!(
            simulate_batch_cost(&class, 10, &untiled, &model).is_infinite(),
            "untiled FP64 (gg|gg) full fusion must not fit"
        );
        let tiled = PipelineConfig::kernel_mako_fp64();
        assert!(simulate_batch_cost(&class, 10, &tiled, &model).is_finite());
        let f64_foot = smem_footprint(&class, &tiled);
        let f16_foot = smem_footprint(&class, &PipelineConfig::quant_mako());
        assert!(f16_foot < f64_foot, "{f16_foot} !< {f64_foot}");
    }

    #[test]
    fn fused_launch_never_costs_more_than_per_molecule_launches() {
        // total_s = launches·latency + max(compute, memory) with compute and
        // memory linear in n, so fusing k sub-batches into one launch saves
        // at least (k−1) launch latencies — the amortization the ensemble
        // driver measures.
        let model = CostModel::new(DeviceSpec::a100());
        let class = EriClass {
            la: 1,
            lb: 0,
            lc: 1,
            ld: 0,
            kab: 3,
            kcd: 3,
        };
        for cfg in [PipelineConfig::kernel_mako_fp64(), PipelineConfig::quant_mako()] {
            for counts in [vec![7usize], vec![7, 13], vec![4, 4, 4, 4, 4, 4, 4, 4]] {
                let (fused, solo) = fused_batch_device_seconds(&class, &counts, &cfg, &model);
                assert!(fused > 0.0 && fused.is_finite());
                assert!(fused <= solo, "fused {fused} > solo {solo} for {counts:?}");
                if counts.len() > 1 {
                    let latency = model.device.launch_latency;
                    assert!(
                        solo - fused >= (counts.len() - 1) as f64 * latency * 0.99,
                        "amortization below the launch-latency floor: {} < {}",
                        solo - fused,
                        (counts.len() - 1) as f64 * latency
                    );
                }
            }
        }
    }

    #[test]
    fn ilp_efficiency_peaks_in_midrange() {
        let f = |i| ilp_efficiency(FusionStrategy::FuseAll, i);
        assert!(f(1) < f(4));
        assert!(f(4) <= f(8));
        assert!(f(32) < f(8), "register pressure: {} vs {}", f(32), f(8));
        assert_eq!(ilp_efficiency(FusionStrategy::Unfused, 1), 1.0);
    }
}
