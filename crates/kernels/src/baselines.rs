//! Performance models of the paper's comparison systems.
//!
//! * **LibintX-like** — the same MMD math as Mako but executed as unfused
//!   per-stage kernels in FP64 with an unswizzled transpose (what LibintX's
//!   BLAS-backed formulation pays relative to a fused pipeline). Its
//!   *numerics* are exact (it is the FP64 MMD engine); only its cost profile
//!   differs.
//! * **QUICK-like** — recursion-based evaluation on CUDA cores: FLOP count
//!   estimated from the Obara–Saika recursion volume, poor ILP from deep
//!   register-pressure-bound recursion (worsening with angular momentum),
//!   no tensor-core work at all, and no g-function support.
//! * **GPU4PySCF-like** — MMD-style evaluation on CUDA cores in FP64 with
//!   partial batching: better than QUICK on high angular momentum but no
//!   tensor cores, no fusion, no quantization.

use crate::pipeline::{FusionStrategy, PipelineConfig};
use mako_accel::{CostModel, KernelProfile, SmemLayout};
use mako_precision::{Precision, ScalePolicy};
use mako_eri::batch::EriClass;
use mako_eri::os::OS_MAX_L;

/// The LibintX-like configuration: unfused FP64 stages, linear layout,
/// no implicit-ILP restructuring.
pub const LIBINTX_CONFIG: PipelineConfig = PipelineConfig {
    fusion: FusionStrategy::Unfused,
    layout: SmemLayout::Linear,
    ilp: 1,
    threads_per_block: 256,
    precision: Precision::Fp64,
    scale_policy: ScalePolicy::Unscaled,
    tile: 16,
};

/// Simulated seconds for a QUICK-like recursive evaluation of `n` quartets
/// of `class`. Returns `None` for g functions and beyond (QUICK supports
/// l ≤ 3 only).
pub fn quick_like_cost(class: &EriClass, n: usize, model: &CostModel) -> Option<f64> {
    if [class.la, class.lb, class.lc, class.ld]
        .iter()
        .any(|&l| l > OS_MAX_L)
    {
        return None;
    }
    // Recursion term count grows roughly with the Cartesian quartet volume
    // times the recursion depth; every term is a handful of FMAs with
    // serial dependencies.
    let l_sum = (class.l_bra() + class.l_ket()) as f64;
    let cart = (mako_chem::cart::ncart(class.la)
        * mako_chem::cart::ncart(class.lb)
        * mako_chem::cart::ncart(class.lc)
        * mako_chem::cart::ncart(class.ld)) as f64;
    let kprod = (class.kab * class.kcd) as f64;
    let flops = n as f64 * kprod * cart * (l_sum + 1.0) * 48.0;

    let mut p = KernelProfile::named(format!("quick_like {}", class.label()));
    p.cuda_flops.push((Precision::Fp64, flops));
    // Register pressure and branch divergence worsen with angular momentum.
    p.ilp_efficiency = (0.6 / (1.0 + 0.35 * l_sum)).clamp(0.05, 1.0);
    p.global_read = n as f64 * 128.0;
    p.global_write = n as f64 * class.out_size() as f64 * 8.0;
    p.threads_per_block = 256;
    p.smem_per_block = 8 * 1024;
    Some(model.evaluate(&p).total_s)
}

/// Simulated seconds for a GPU4PySCF-like evaluation of `n` quartets:
/// Mako's own MMD FLOP counts, but on CUDA cores (FP64, no tensor path),
/// with the transform GEMMs and r/pq stages as separate kernels.
pub fn gpu4pyscf_like_cost(class: &EriClass, n: usize, model: &CostModel) -> f64 {
    let nf = n as f64;
    let mut total = 0.0;

    let l_sum = (class.l_bra() + class.l_ket()) as f64;
    let mut stages = KernelProfile::named(format!("gpu4pyscf_rpq {}", class.label()));
    stages
        .cuda_flops
        .push((Precision::Fp64, class.rpq_flops() * nf));
    // Production CUDA-core ERI kernels fall well below the compute roofline
    // as angular momentum raises register pressure and divergence (the gap
    // the paper measures against GPU4PySCF's high-l kernels).
    stages.ilp_efficiency = (0.7 / (1.0 + 0.15 * l_sum)).clamp(0.05, 1.0);
    stages.global_read = nf * 128.0;
    let (hb, hk) = class.herm_dims();
    let pq_bytes = nf * (class.kab * class.kcd * hb * hk) as f64 * 8.0;
    stages.global_write = pq_bytes;
    stages.threads_per_block = 256;
    total += model.evaluate(&stages).total_s;

    let mut gemms = KernelProfile::named(format!("gpu4pyscf_transform {}", class.label()));
    // Same GEMM FLOPs, but issued to the CUDA FP64 pipes.
    gemms
        .cuda_flops
        .push((Precision::Fp64, class.transform_flops() * nf));
    gemms.ilp_efficiency = (0.85 / (1.0 + 0.25 * l_sum)).clamp(0.05, 1.0);
    gemms.global_read = pq_bytes;
    gemms.global_write = nf * class.out_size() as f64 * 8.0;
    gemms.threads_per_block = 256;
    gemms.smem_per_block = 32 * 1024;
    total += model.evaluate(&gemms).total_s;

    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::best_config_cost;
    use mako_accel::DeviceSpec;

    fn class(l: usize, k: usize) -> EriClass {
        EriClass {
            la: l,
            lb: l,
            lc: l,
            ld: l,
            kab: k,
            kcd: k,
        }
    }

    #[test]
    fn quick_rejects_g_functions() {
        let model = CostModel::new(DeviceSpec::a100());
        assert!(quick_like_cost(&class(4, 1), 100, &model).is_none());
        assert!(quick_like_cost(&class(3, 1), 100, &model).is_some());
    }

    #[test]
    fn mako_beats_libintx_on_every_class() {
        let model = CostModel::new(DeviceSpec::a100());
        for l in 0..=3usize {
            for &k in &[1usize, 5] {
                let c = class(l, k);
                let lib = crate::pipeline::simulate_batch_cost(&c, 50_000, &LIBINTX_CONFIG, &model);
                let (_, mako) =
                    best_config_cost(&c, 50_000, Precision::Fp64, ScalePolicy::Unscaled, &model);
                assert!(
                    mako < lib,
                    "l={l} k={k}: mako {mako} libintx {lib}"
                );
            }
        }
    }

    #[test]
    fn mako_advantage_over_gpu4pyscf_grows_with_l() {
        // The Figure 9 trend: the tensor-core GEMM share grows with angular
        // momentum, so Mako's edge over a CUDA-core FP64 code widens.
        let model = CostModel::new(DeviceSpec::a100());
        let mut prev = 0.0;
        for l in 1..=4usize {
            let c = class(l, 1);
            let g = gpu4pyscf_like_cost(&c, 20_000, &model);
            let (_, q) = best_config_cost(&c, 20_000, Precision::Fp16, ScalePolicy::PerGroup, &model);
            let speedup = g / q;
            assert!(
                speedup > prev * 0.9,
                "speedup should broadly grow: l={l} {speedup} (prev {prev})"
            );
            prev = speedup;
        }
        assert!(prev > 5.0, "high-l speedup should be large, got {prev}");
    }

    #[test]
    fn quick_degrades_faster_than_gpu4pyscf_with_l() {
        let model = CostModel::new(DeviceSpec::a100());
        let r1 = quick_like_cost(&class(1, 1), 10_000, &model).unwrap()
            / gpu4pyscf_like_cost(&class(1, 1), 10_000, &model);
        let r3 = quick_like_cost(&class(3, 1), 10_000, &model).unwrap()
            / gpu4pyscf_like_cost(&class(3, 1), 10_000, &model);
        assert!(r3 > r1, "QUICK's relative cost grows with l: {r1} → {r3}");
    }
}
