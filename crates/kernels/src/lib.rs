//! # mako-kernels
//!
//! KernelMako: the matrix-aligned ERI execution pipelines of the paper's
//! §3.1, running on the simulated accelerator of `mako-accel`.
//!
//! Every pipeline does two things at once:
//!
//! 1. **real numerics** — shell-quartet ERIs are actually computed (through
//!    the MMD machinery of `mako-eri`), with operand rounding applied
//!    wherever the modeled pipeline would store data in a reduced-precision
//!    register (so quantization error in the results is genuine);
//! 2. **cost accounting** — each batch emits [`mako_accel::KernelProfile`]s
//!    describing the launches, FLOPs per pipe/precision, global traffic,
//!    shared-memory footprint, ILP efficiency and bank-conflict factor the
//!    equivalent CUDA kernels would have, which the device model turns into
//!    simulated time.
//!
//! The pipeline variants reproduce the paper's design space:
//!
//! * [`FusionStrategy::Unfused`] — per-stage kernels with global-memory
//!   intermediates (the LibintX-like baseline of Figure 6);
//! * [`FusionStrategy::FuseRPq`] — r-integrals and `[p|q]` assembly fused,
//!   transforms separate;
//! * [`FusionStrategy::FuseAll`] — single fused kernel (KernelMako);
//! * [`FusionStrategy::FuseAllCoalesced`] — additionally coalesces the two
//!   back-to-back transform GEMMs when `K_AB = K_CD = 1` (§3.1.3, the
//!   high-angular-momentum case).
#![deny(rust_2018_idioms)]


pub mod baselines;
pub mod mixed_gemm;
pub mod pipeline;

pub use baselines::{gpu4pyscf_like_cost, quick_like_cost, LIBINTX_CONFIG};
pub use mixed_gemm::{gemm_rounded, round_into, round_into_extend, QuantizedGemmSpec};
pub use pipeline::{
    run_batch, simulate_batch_cost, BatchOutput, FusionStrategy, PipelineConfig,
};
