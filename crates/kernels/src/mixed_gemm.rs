//! Precision-parameterized GEMM: the numerical model of a tensor-core MMA.
//!
//! A tensor core rounds its *operands* to the input format (FP16/BF16/TF32)
//! and accumulates the products in FP32 (or FP64 for the FP64 MMA). That is
//! exactly what [`gemm_rounded`] does in software: inputs pass through
//! [`mako_precision::Precision::round`] (optionally pre-scaled per
//! QuantMako's fine-grained quantization), products accumulate in the
//! accumulator precision, and the result is de-scaled back — the first stage
//! of the paper's Dual-Stage Accumulation.

use mako_linalg::Matrix;
use mako_precision::Precision;
use std::cell::RefCell;

thread_local! {
    /// Per-thread rounded-operand buffers so the quartet hot loop never
    /// allocates inside [`gemm_rounded`].
    static ROUND_SCRATCH: RefCell<(Vec<f64>, Vec<f64>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Round `src`, pre-scaled by `scale`, into `dst` (overwritten) — the
/// "load into tensor-core registers" step, split out so pipelines can
/// pre-round loop-invariant operands once per quartet.
pub fn round_into(input: Precision, scale: f64, src: &[f64], dst: &mut Vec<f64>) {
    dst.clear();
    round_into_extend(input, scale, src, dst);
}

/// [`round_into`] that appends to `dst` instead of overwriting — used to
/// concatenate the pre-rounded per-primitive operand blocks of a quartet.
/// Delegates to the batched converter in `mako-precision` (hardware F16C on
/// hosts that have it, bit-identical to the scalar path).
pub fn round_into_extend(input: Precision, scale: f64, src: &[f64], dst: &mut Vec<f64>) {
    input.round_scaled_extend(scale, src, dst);
}

/// How a quantized GEMM treats its operands.
#[derive(Debug, Clone, Copy)]
pub struct QuantizedGemmSpec {
    /// Operand storage precision.
    pub input: Precision,
    /// Accumulator precision (FP32 for FP16/BF16/TF32 MMAs, FP64 for FP64).
    pub accumulate: Precision,
    /// Scale applied to the A operand before rounding (1.0 = none).
    pub scale_a: f64,
    /// Scale applied to the B operand before rounding.
    pub scale_b: f64,
}

impl QuantizedGemmSpec {
    /// Full-precision FP64 MMA.
    pub fn fp64() -> QuantizedGemmSpec {
        QuantizedGemmSpec {
            input: Precision::Fp64,
            accumulate: Precision::Fp64,
            scale_a: 1.0,
            scale_b: 1.0,
        }
    }

    /// Unscaled reduced-precision MMA (the "Baseline FP16/FP32" rows of
    /// Table 2).
    pub fn unscaled(input: Precision) -> QuantizedGemmSpec {
        QuantizedGemmSpec {
            input,
            accumulate: if input == Precision::Fp64 {
                Precision::Fp64
            } else {
                Precision::Fp32
            },
            scale_a: 1.0,
            scale_b: 1.0,
        }
    }

    /// Scaled FP16 MMA with FP32 accumulation — QuantMako's quantized
    /// kernel.
    pub fn quantized_fp16(scale_a: f64, scale_b: f64) -> QuantizedGemmSpec {
        QuantizedGemmSpec {
            input: Precision::Fp16,
            accumulate: Precision::Fp32,
            scale_a,
            scale_b,
        }
    }
}

/// `C += de-scale( round(A·sa) × round(B·sb) )` with the accumulation carried
/// in the spec's accumulator precision. `C` stays FP64 (the second stage of
/// dual-stage accumulation happens at the caller's Fock buffer).
pub fn gemm_rounded(a: &Matrix, b: &Matrix, spec: &QuantizedGemmSpec, c: &mut Matrix) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k, "gemm_rounded inner dimension");
    assert_eq!((c.rows(), c.cols()), (m, n), "gemm_rounded output shape");

    if spec.input == Precision::Fp64 {
        // Exact path — no rounding, plain FP64 MMA.
        mako_linalg::gemm_tiled(
            1.0,
            a,
            mako_linalg::Transpose::No,
            b,
            mako_linalg::Transpose::No,
            1.0,
            c,
        );
        return;
    }

    // Round operands once (as the load into tensor-core registers does),
    // then hand the rounded slices to the packed microkernel engine. For
    // FP32 accumulation each product is rounded to f32 and summed in f32
    // per element in ascending k (products of two ≤11-bit-mantissa values
    // are exact in f32; accumulation rounds per step, as hardware does).
    let descale = 1.0 / (spec.scale_a * spec.scale_b);
    let fp32_acc = spec.accumulate == Precision::Fp32;
    ROUND_SCRATCH.with(|s| {
        let mut s = s.borrow_mut();
        let (ra, rb) = &mut *s;
        round_into(spec.input, spec.scale_a, a.as_slice(), ra);
        round_into(spec.input, spec.scale_b, b.as_slice(), rb);
        mako_linalg::gemm_rounded_engine(
            m,
            k,
            n,
            ra,
            rb,
            mako_linalg::Transpose::No,
            fp32_acc,
            descale,
            c.as_mut_slice(),
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut s = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn fp64_path_is_exact() {
        let a = mat(9, 13, 1);
        let b = mat(13, 7, 2);
        let mut c1 = Matrix::zeros(9, 7);
        let mut c2 = Matrix::zeros(9, 7);
        gemm_rounded(&a, &b, &QuantizedGemmSpec::fp64(), &mut c1);
        mako_linalg::gemm_tiled(
            1.0,
            &a,
            mako_linalg::Transpose::No,
            &b,
            mako_linalg::Transpose::No,
            0.0,
            &mut c2,
        );
        assert!(c1.sub(&c2).max_abs() < 1e-15);
    }

    #[test]
    fn fp16_error_is_bounded_and_nonzero() {
        let a = mat(16, 16, 3);
        let b = mat(16, 16, 4);
        let mut exact = Matrix::zeros(16, 16);
        let mut quant = Matrix::zeros(16, 16);
        gemm_rounded(&a, &b, &QuantizedGemmSpec::fp64(), &mut exact);
        gemm_rounded(&a, &b, &QuantizedGemmSpec::unscaled(Precision::Fp16), &mut quant);
        let err = exact.sub(&quant).max_abs();
        assert!(err > 0.0, "fp16 must actually lose bits");
        // Inputs in [−1,1], k=16: worst case ≈ k · 2⁻¹¹ ≈ 8e-3.
        assert!(err < 1e-2, "err = {err}");
    }

    #[test]
    fn precision_ladder_orders_errors() {
        let a = mat(24, 24, 5);
        let b = mat(24, 24, 6);
        let mut exact = Matrix::zeros(24, 24);
        gemm_rounded(&a, &b, &QuantizedGemmSpec::fp64(), &mut exact);
        let err_of = |p: Precision| {
            let mut c = Matrix::zeros(24, 24);
            gemm_rounded(&a, &b, &QuantizedGemmSpec::unscaled(p), &mut c);
            exact.sub(&c).norm_fro()
        };
        let e32 = err_of(Precision::Fp32);
        let etf = err_of(Precision::Tf32);
        let e16 = err_of(Precision::Fp16);
        let eb16 = err_of(Precision::Bf16);
        assert!(e32 < etf && etf <= e16 && e16 < eb16, "{e32} {etf} {e16} {eb16}");
    }

    #[test]
    fn scaling_rescues_small_magnitudes() {
        // Data around 1e-6 underflows f16 subnormals badly; scaling by 1e6
        // recovers full relative accuracy.
        let a = mat(8, 8, 7).scale(1e-6);
        let b = mat(8, 8, 8).scale(1e-6);
        let mut exact = Matrix::zeros(8, 8);
        gemm_rounded(&a, &b, &QuantizedGemmSpec::fp64(), &mut exact);

        let mut raw = Matrix::zeros(8, 8);
        gemm_rounded(&a, &b, &QuantizedGemmSpec::unscaled(Precision::Fp16), &mut raw);
        let mut scaled = Matrix::zeros(8, 8);
        gemm_rounded(
            &a,
            &b,
            &QuantizedGemmSpec::quantized_fp16(1e6, 1e6),
            &mut scaled,
        );
        let err_raw = exact.sub(&raw).norm_fro() / exact.norm_fro();
        let err_scaled = exact.sub(&scaled).norm_fro() / exact.norm_fro();
        assert!(
            err_scaled * 10.0 < err_raw,
            "scaled {err_scaled} vs raw {err_raw}"
        );
    }

    /// The engine-backed quantized path must reproduce the pre-engine
    /// scalar loop bit for bit (k ≤ KC, which covers every ERI transform).
    #[test]
    fn engine_path_matches_scalar_loop_bitwise() {
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 4), (9, 10, 10), (16, 33, 12)] {
            let a = mat(m, k, 11);
            let b = mat(k, n, 12);
            for spec in [
                QuantizedGemmSpec::quantized_fp16(4.0, 0.5),
                QuantizedGemmSpec::unscaled(Precision::Bf16),
                QuantizedGemmSpec::unscaled(Precision::Tf32),
            ] {
                let ra: Vec<f64> = a.as_slice().iter().map(|&x| spec.input.round(x * spec.scale_a)).collect();
                let rb: Vec<f64> = b.as_slice().iter().map(|&x| spec.input.round(x * spec.scale_b)).collect();
                let descale = 1.0 / (spec.scale_a * spec.scale_b);
                let mut c_ref = mat(m, n, 13);
                let mut c_new = c_ref.clone();
                for i in 0..m {
                    for j in 0..n {
                        let mut acc: f32 = 0.0;
                        for kk in 0..k {
                            acc += (ra[i * k + kk] * rb[kk * n + j]) as f32;
                        }
                        c_ref[(i, j)] += acc as f64 * descale;
                    }
                }
                gemm_rounded(&a, &b, &spec, &mut c_new);
                assert_eq!(c_ref.as_slice(), c_new.as_slice(), "({m},{k},{n}) {:?}", spec.input);
            }
        }
    }

    #[test]
    fn accumulates_into_c() {
        let a = mat(4, 4, 9);
        let b = mat(4, 4, 10);
        let mut c = Matrix::identity(4);
        gemm_rounded(&a, &b, &QuantizedGemmSpec::fp64(), &mut c);
        let mut expect = Matrix::identity(4);
        mako_linalg::gemm_tiled(
            1.0,
            &a,
            mako_linalg::Transpose::No,
            &b,
            mako_linalg::Transpose::No,
            1.0,
            &mut expect,
        );
        assert!(c.sub(&expect).max_abs() < 1e-15);
    }
}
