//! JSON-lines schema validation for trace files.
//!
//! The tier-2 trace smoke (`scripts/tier2.sh` → `trace_validate`) and the
//! crate's own round-trip tests need to check emitted traces against the
//! schema documented in DESIGN.md §11 without a JSON dependency, so this
//! module carries a minimal recursive-descent JSON parser (objects, arrays,
//! strings with escapes, numbers, booleans, null) and the per-line checks.

use std::collections::BTreeSet;

/// A parsed JSON value (just enough structure for validation).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// Object as an ordered key/value list (duplicate keys preserved).
    Object(Vec<(String, Json)>),
    /// Array.
    Array(Vec<Json>),
    /// String.
    Str(String),
    /// Number (all JSON numbers parse to f64).
    Num(f64),
    /// Boolean.
    Bool(bool),
    /// Null.
    Null,
}

impl Json {
    /// The key/value pairs if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(kv) => Some(kv),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut kv = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(kv));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            kv.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(kv));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(v));
        }
        loop {
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(v));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-UTF8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not emitted by our exporter;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    if (ch as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("invalid number '{text}'")))
    }
}

/// Parse a complete JSON document (used by the validator and the Chrome
/// export test). Rejects trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after JSON value"));
    }
    Ok(v)
}

/// The documented `cat.name` identifiers of DESIGN.md §11. The validator
/// itself is name-agnostic (new subsystems may emit new events before the
/// docs catch up); this registry is for smoke tests that want to assert a
/// specific producer ran — e.g. that a rescue run emitted `scf.rescue`.
pub const KNOWN_EVENTS: &[&str] = &[
    "scf.setup",
    "scf.iteration",
    "scf.rescue",
    "scf.non_finite",
    "fock.screen",
    "fock.launch",
    "fock.assemble",
    "rij.build",
    "rij.pick",
    "rij.solve",
    "rij.contract",
    "dist.build_jk_ft",
    "ensemble.run",
    "ensemble.iteration",
    "ensemble.launch",
    "ensemble.member",
    "compiler.tune_class",
    "compiler.kernel_cache.hits",
    "compiler.kernel_cache.tunes",
    "compiler.kernel_cache.duplicates_avoided",
    "compiler.kernel_cache.evictions",
    "server.run",
    "server.admission",
    "server.state",
    "server.quantum",
    "server.preempt",
    "server.fault",
    "server.screen_cache.hits",
    "server.screen_cache.evictions",
    "job.submit",
    "job.start",
    "job.retry",
    "job.outcome",
    "store.append",
    "store.artifact",
    "store.quarantine",
    "store.truncate",
    "store.crash",
    "recover.replay",
    "recover.salvage",
    "recover.serve",
    "accel.clock",
    "clock.iteration",
    "clock.recovery",
    "kernel.dispatch",
    "gemm.pack",
    "gemm.microkernel",
];

/// Whether a `cat.name` identifier is part of the documented schema.
pub fn is_known_event(name: &str) -> bool {
    KNOWN_EVENTS.contains(&name)
}

/// What a validated JSON-lines trace contained.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Span events.
    pub spans: usize,
    /// Instant events.
    pub instants: usize,
    /// Counter events.
    pub counters: usize,
    /// Distinct `cat.name` identifiers and bare names seen.
    pub names: BTreeSet<String>,
    /// Events recorded per the meta footer.
    pub recorded: u64,
    /// Events dropped by ring overflow per the meta footer.
    pub dropped: u64,
}

fn require_num(obj: &Json, key: &str, line: usize) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("line {line}: missing numeric field '{key}'"))
}

fn require_str<'a>(obj: &'a Json, key: &str, line: usize) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("line {line}: missing string field '{key}'"))
}

/// Validate a JSON-lines trace file against the DESIGN.md §11 schema:
/// every line is a JSON object whose `type` is one of
/// `span`/`instant`/`counter`/`meta`; spans carry `cat`, `name`, `ts_us`,
/// `dur_us`, `tid` and an `args` object; instants the same minus `dur_us`;
/// counters carry `value`; the single `meta` footer is the last line and
/// carries `schema: "mako-trace/1"` plus the recorded/dropped totals.
pub fn validate_jsonl(text: &str) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    let mut meta_seen = false;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        return Err("empty trace file".to_string());
    }
    for (i, line) in lines.iter().enumerate() {
        let lineno = i + 1;
        if meta_seen {
            return Err(format!("line {lineno}: events after the meta footer"));
        }
        let v = parse_json(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let ty = require_str(&v, "type", lineno)?;
        match ty {
            "span" | "instant" | "counter" => {
                let cat = require_str(&v, "cat", lineno)?.to_string();
                let name = require_str(&v, "name", lineno)?.to_string();
                require_num(&v, "ts_us", lineno)?;
                require_num(&v, "tid", lineno)?;
                match ty {
                    "span" => {
                        require_num(&v, "dur_us", lineno)?;
                        v.get("args")
                            .and_then(Json::as_object)
                            .ok_or_else(|| format!("line {lineno}: span needs an args object"))?;
                        summary.spans += 1;
                    }
                    "instant" => {
                        v.get("args")
                            .and_then(Json::as_object)
                            .ok_or_else(|| format!("line {lineno}: instant needs an args object"))?;
                        summary.instants += 1;
                    }
                    _ => {
                        require_num(&v, "value", lineno)?;
                        summary.counters += 1;
                    }
                }
                summary.names.insert(format!("{cat}.{name}"));
                summary.names.insert(name);
            }
            "meta" => {
                let schema = require_str(&v, "schema", lineno)?;
                if schema != "mako-trace/1" {
                    return Err(format!("line {lineno}: unknown schema '{schema}'"));
                }
                summary.recorded = require_num(&v, "recorded", lineno)? as u64;
                summary.dropped = require_num(&v, "dropped", lineno)? as u64;
                meta_seen = true;
            }
            other => return Err(format!("line {lineno}: unknown event type '{other}'")),
        }
    }
    if !meta_seen {
        return Err("trace file has no meta footer".to_string());
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_values() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny"},"d":null,"e":true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
        assert!((v.get("a").unwrap().as_array().unwrap()[2].as_num().unwrap() + 300.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("{\"a\":1} extra").is_err());
        assert!(validate_jsonl("{\"type\":\"span\"}\n").is_err());
        assert!(validate_jsonl("").is_err());
    }

    #[test]
    fn validates_a_wellformed_trace() {
        let text = concat!(
            "{\"type\":\"span\",\"cat\":\"scf\",\"name\":\"iteration\",\"ts_us\":1,\"tid\":0,\"dur_us\":2,\"args\":{\"iter\":0}}\n",
            "{\"type\":\"counter\",\"cat\":\"compiler\",\"name\":\"cache_hits\",\"ts_us\":2,\"tid\":0,\"value\":3}\n",
            "{\"type\":\"meta\",\"schema\":\"mako-trace/1\",\"recorded\":2,\"dropped\":0}\n",
        );
        let s = validate_jsonl(text).unwrap();
        assert_eq!((s.spans, s.counters), (1, 1));
        assert!(s.names.contains("scf.iteration"));
        assert_eq!(s.recorded, 2);
    }

    #[test]
    fn known_event_registry_covers_the_rescue_events() {
        for name in ["scf.setup", "scf.rescue", "scf.non_finite", "scf.iteration"] {
            assert!(is_known_event(name), "{name} missing from KNOWN_EVENTS");
        }
        assert!(!is_known_event("scf.unheard_of"));
    }

    #[test]
    fn known_event_registry_covers_the_serving_events() {
        for name in [
            "server.run",
            "server.admission",
            "server.state",
            "server.quantum",
            "server.preempt",
            "server.fault",
            "server.screen_cache.hits",
            "server.screen_cache.evictions",
            "job.submit",
            "job.start",
            "job.retry",
            "job.outcome",
            "compiler.kernel_cache.evictions",
        ] {
            assert!(is_known_event(name), "{name} missing from KNOWN_EVENTS");
        }
    }

    #[test]
    fn known_event_registry_covers_the_durability_events() {
        for name in [
            "store.append",
            "store.artifact",
            "store.quarantine",
            "store.truncate",
            "store.crash",
            "recover.replay",
            "recover.salvage",
            "recover.serve",
        ] {
            assert!(is_known_event(name), "{name} missing from KNOWN_EVENTS");
        }
        assert!(!is_known_event("store.unheard_of"));
    }

    #[test]
    fn known_event_registry_covers_the_rij_events() {
        for name in ["rij.build", "rij.pick", "rij.solve", "rij.contract"] {
            assert!(is_known_event(name), "{name} missing from KNOWN_EVENTS");
        }
        assert!(!is_known_event("rij.unheard_of"));
    }

    #[test]
    fn meta_must_be_last_and_known() {
        let bad = concat!(
            "{\"type\":\"meta\",\"schema\":\"mako-trace/1\",\"recorded\":0,\"dropped\":0}\n",
            "{\"type\":\"counter\",\"cat\":\"c\",\"name\":\"n\",\"ts_us\":1,\"tid\":0,\"value\":1}\n",
        );
        assert!(validate_jsonl(bad).is_err());
        let unknown = "{\"type\":\"meta\",\"schema\":\"mako-trace/9\",\"recorded\":0,\"dropped\":0}\n";
        assert!(validate_jsonl(unknown).is_err());
    }
}
