//! # mako-trace — structured tracing and metrics for the Mako stack
//!
//! A zero-dependency (std-only) observability layer: every other Mako crate
//! may depend on it without dragging in cycles or external crates, and the
//! vendored offline workspace stays self-contained.
//!
//! ## Model
//!
//! Three event kinds, recorded into a process-wide lock-cheap ring buffer:
//!
//! * **spans** — a named region with a wall-clock duration and typed
//!   key/value fields (`scf.iteration`, `fock.build`, `tuner.tune_class`);
//! * **instants** — a point event with fields (`fock.launch`,
//!   `dist.share`, `clock.iteration`);
//! * **counters** — a named running total (`tuner.cache_hits`).
//!
//! The collector is off by default and every recording call starts with one
//! relaxed atomic load, so a disabled trace costs a branch. Crucially the
//! layer is **numerically inert by construction**: it only ever *reads*
//! values the numerics already produced and never feeds anything back, so
//! J/K/energies are bitwise identical with tracing on or off at any thread
//! count (pinned by `tests/tests/trace.rs`).
//!
//! ## Activation
//!
//! * `MAKO_TRACE=<path>` + [`init_from_env`] (called by `mako-cli` and the
//!   bench bins), or a `--trace <path>` flag on those binaries;
//! * `MAKO_TRACE_FORMAT=chrome` (or a path ending in `.chrome.json`) selects
//!   the Chrome-trace exporter (`chrome://tracing` / Perfetto); the default
//!   is JSON-lines (one event per line, schema in DESIGN.md §11);
//! * `MAKO_TRACE_CAP=<n>` sizes the ring (default 65536 events; overflow
//!   drops the *oldest* events and counts them in the `meta` footer).
//!
//! Binaries call [`flush`] once at exit; libraries only record.

#![deny(rust_2018_idioms)]

pub mod schema;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (counts, iteration numbers, ranks).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (energies, residuals, simulated seconds).
    F64(f64),
    /// Boolean (rebuild decisions, convergence flags).
    Bool(bool),
    /// Short string (class labels, device kinds, precisions).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// One key/value field.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name (static: all call sites use literals).
    pub key: &'static str,
    /// Typed value.
    pub value: FieldValue,
}

/// Build a [`Field`] from anything convertible to a [`FieldValue`].
pub fn field(key: &'static str, value: impl Into<FieldValue>) -> Field {
    Field {
        key,
        value: value.into(),
    }
}

/// What kind of event a record is.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A region with a duration.
    Span {
        /// Wall-clock duration in microseconds.
        dur_us: f64,
    },
    /// A point event.
    Instant,
    /// A named running total.
    Counter {
        /// Current value of the counter.
        value: f64,
    },
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the collector's epoch.
    pub ts_us: f64,
    /// Stable per-thread id (assigned on first record from a thread).
    pub tid: u64,
    /// Category (crate/subsystem: `"scf"`, `"fock"`, `"compiler"`, ...).
    pub cat: &'static str,
    /// Event name (`"iteration"`, `"tune_class"`, ...).
    pub name: &'static str,
    /// Span / instant / counter.
    pub kind: EventKind,
    /// Typed fields (serialized as the JSON `args` object).
    pub fields: Vec<Field>,
}

/// Fixed-capacity ring: overflow drops the oldest events, counted.
struct Ring {
    buf: Vec<Event>,
    start: usize,
    cap: usize,
    recorded: u64,
    dropped: u64,
}

impl Ring {
    fn new(cap: usize) -> Ring {
        Ring {
            buf: Vec::new(),
            start: 0,
            cap: cap.max(1),
            recorded: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, e: Event) {
        self.recorded += 1;
        if self.buf.len() < self.cap {
            self.buf.push(e);
        } else {
            self.buf[self.start] = e;
            self.start = (self.start + 1) % self.cap;
            self.dropped += 1;
        }
    }

    fn in_order(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.start..]);
        out.extend_from_slice(&self.buf[..self.start]);
        out
    }
}

/// Everything a collector held at snapshot time.
#[derive(Debug, Clone)]
pub struct TraceDump {
    /// Events in recording order (oldest surviving first).
    pub events: Vec<Event>,
    /// Total events recorded, including dropped ones.
    pub recorded: u64,
    /// Events overwritten by ring overflow.
    pub dropped: u64,
}

/// An event collector: a mutex-guarded ring buffer. Recording takes the
/// lock for one push — the events themselves are built outside it.
pub struct Collector {
    ring: Mutex<Ring>,
    epoch: Instant,
}

impl Collector {
    /// Collector holding at most `capacity` events.
    pub fn new(capacity: usize) -> Collector {
        Collector {
            ring: Mutex::new(Ring::new(capacity)),
            epoch: Instant::now(),
        }
    }

    /// Microseconds since this collector was created.
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Append one event.
    pub fn record(&self, e: Event) {
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        ring.push(e);
    }

    /// Copy out everything recorded so far (non-destructive).
    pub fn snapshot(&self) -> TraceDump {
        let ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        TraceDump {
            events: ring.in_order(),
            recorded: ring.recorded,
            dropped: ring.dropped,
        }
    }

    /// Take everything recorded so far and reset the ring (counters too).
    pub fn drain(&self) -> TraceDump {
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        let dump = TraceDump {
            events: ring.in_order(),
            recorded: ring.recorded,
            dropped: ring.dropped,
        };
        *ring = Ring::new(ring.cap);
        dump
    }
}

// ---------------------------------------------------------------------------
// Global collector
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Collector> = OnceLock::new();
static SINK: Mutex<Option<(String, TraceFormat)>> = Mutex::new(None);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn tid() -> u64 {
    TID.with(|t| *t)
}

/// Export format of the configured sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per line (schema in DESIGN.md §11).
    Jsonl,
    /// `chrome://tracing` / Perfetto `traceEvents` JSON.
    Chrome,
}

const DEFAULT_CAPACITY: usize = 65_536;

/// Whether the global collector is recording. One relaxed atomic load —
/// this is the *only* cost tracing adds when disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the global collector on (default ring capacity). Idempotent; once
/// on it stays on for the life of the process.
pub fn enable() {
    enable_with_capacity(DEFAULT_CAPACITY);
}

/// Turn the global collector on with an explicit ring capacity (only
/// honored by the first call that initializes the collector).
pub fn enable_with_capacity(capacity: usize) {
    GLOBAL.get_or_init(|| Collector::new(capacity));
    ENABLED.store(true, Ordering::Relaxed);
}

/// Route [`flush`] to a file. Enables collection as a side effect.
pub fn set_sink(path: impl Into<String>, format: TraceFormat) {
    enable();
    *SINK.lock().unwrap_or_else(|p| p.into_inner()) = Some((path.into(), format));
}

/// Activate from the environment: `MAKO_TRACE=<path>` turns collection on,
/// `MAKO_TRACE_FORMAT=chrome` (or a `.chrome.json` path suffix) selects the
/// Chrome exporter, `MAKO_TRACE_CAP=<n>` sizes the ring. Returns whether
/// tracing was activated. Binaries call this once at startup.
pub fn init_from_env() -> bool {
    let Ok(path) = std::env::var("MAKO_TRACE") else {
        return false;
    };
    if path.is_empty() {
        return false;
    }
    let cap = std::env::var("MAKO_TRACE_CAP")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(DEFAULT_CAPACITY);
    enable_with_capacity(cap);
    let chrome = std::env::var("MAKO_TRACE_FORMAT").is_ok_and(|v| v.eq_ignore_ascii_case("chrome"))
        || path.ends_with(".chrome.json");
    set_sink(
        path,
        if chrome {
            TraceFormat::Chrome
        } else {
            TraceFormat::Jsonl
        },
    );
    true
}

/// Where a [`flush`] failed, for error reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushStage {
    /// Creating the temporary sibling file.
    Create,
    /// Writing the serialized events (short write / ENOSPC land here).
    Write,
    /// Fsyncing the temporary file.
    Sync,
    /// Renaming the temporary file over the sink path.
    Rename,
}

impl FlushStage {
    fn label(self) -> &'static str {
        match self {
            FlushStage::Create => "create",
            FlushStage::Write => "write",
            FlushStage::Sync => "sync",
            FlushStage::Rename => "rename",
        }
    }
}

/// A typed [`flush`] failure: which stage of the atomic write broke, on
/// which path, and the underlying I/O error. Whatever the stage, the sink
/// path itself is untouched — it still holds the previous complete flush
/// (or nothing), never a torn file.
#[derive(Debug)]
pub struct FlushError {
    /// The sink path the flush was writing toward.
    pub path: String,
    /// The stage that failed.
    pub stage: FlushStage,
    /// The underlying I/O error.
    pub source: std::io::Error,
}

impl std::fmt::Display for FlushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} failed for trace sink {}: {} (sink left untouched)",
            self.stage.label(),
            self.path,
            self.source
        )
    }
}

impl std::error::Error for FlushError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Write the collected events to the configured sink. Returns the path
/// written, `None` when no sink is configured. Non-destructive, so a binary
/// may flush more than once (each flush rewrites the whole file).
///
/// The write is atomic: events are serialized to a temporary sibling
/// (`<path>.tmp`), fsynced, and renamed over the sink. A short write or
/// ENOSPC therefore surfaces as a typed [`FlushError`] and leaves the sink
/// holding its previous complete contents — readers never observe a
/// truncated mid-record file, and the failed temporary is removed rather
/// than leaked.
pub fn flush() -> Option<Result<String, FlushError>> {
    let sink = SINK.lock().unwrap_or_else(|p| p.into_inner()).clone();
    let (path, format) = sink?;
    let collector = GLOBAL.get()?;
    let dump = collector.snapshot();
    let text = match format {
        TraceFormat::Jsonl => dump.to_jsonl(),
        TraceFormat::Chrome => dump.to_chrome(),
    };
    Some(write_atomic(&path, text.as_bytes()).map(|()| path))
}

fn write_atomic(path: &str, bytes: &[u8]) -> Result<(), FlushError> {
    use std::io::Write as _;
    let fail = |stage: FlushStage, source: std::io::Error| FlushError {
        path: path.to_string(),
        stage,
        source,
    };
    let tmp = format!("{path}.tmp");
    let mut file = std::fs::File::create(&tmp).map_err(|e| fail(FlushStage::Create, e))?;
    let staged = file
        .write_all(bytes)
        .map_err(|e| fail(FlushStage::Write, e))
        .and_then(|()| file.sync_all().map_err(|e| fail(FlushStage::Sync, e)));
    drop(file);
    staged
        .and_then(|()| std::fs::rename(&tmp, path).map_err(|e| fail(FlushStage::Rename, e)))
        .inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
}

/// Take (and clear) everything the global collector holds — the test hook.
pub fn drain() -> TraceDump {
    match GLOBAL.get() {
        Some(c) => c.drain(),
        None => TraceDump {
            events: Vec::new(),
            recorded: 0,
            dropped: 0,
        },
    }
}

fn record(cat: &'static str, name: &'static str, kind: EventKind, fields: Vec<Field>) {
    if let Some(c) = GLOBAL.get() {
        let e = Event {
            ts_us: c.now_us(),
            tid: tid(),
            cat,
            name,
            kind,
            fields,
        };
        c.record(e);
    }
}

/// Record a point event with fields. No-op when disabled.
pub fn instant(cat: &'static str, name: &'static str, fields: Vec<Field>) {
    if enabled() {
        record(cat, name, EventKind::Instant, fields);
    }
}

/// Record a counter's current value. No-op when disabled.
pub fn counter(cat: &'static str, name: &'static str, value: f64) {
    if enabled() {
        record(cat, name, EventKind::Counter { value }, Vec::new());
    }
}

/// An in-flight span. Created by [`span`]; records itself (with wall-clock
/// duration) when dropped or explicitly [`Span::end`]ed. When tracing is
/// disabled at creation the span is fully inert — no clock reads, no
/// allocation beyond the empty struct.
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    cat: &'static str,
    name: &'static str,
    t0: Instant,
    fields: Vec<Field>,
}

/// Open a span. Attach fields as results become known with
/// [`Span::add_field`]; the span records on drop.
pub fn span(cat: &'static str, name: &'static str) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    Span {
        inner: Some(SpanInner {
            cat,
            name,
            t0: Instant::now(),
            fields: Vec::new(),
        }),
    }
}

impl Span {
    /// Whether this span will record (tracing was enabled at creation).
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Attach a field (no-op on an inert span).
    pub fn add_field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push(field(key, value));
        }
    }

    /// Close and record the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let dur_us = inner.t0.elapsed().as_secs_f64() * 1e6;
            record(
                inner.cat,
                inner.name,
                EventKind::Span { dur_us },
                inner.fields,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// Escape a string for inclusion in a JSON string literal.
fn escape_json(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Format an f64 as a JSON number (`null` for non-finite values, which JSON
/// cannot represent).
fn json_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn json_value(v: &FieldValue, out: &mut String) {
    match v {
        FieldValue::U64(x) => out.push_str(&format!("{x}")),
        FieldValue::I64(x) => out.push_str(&format!("{x}")),
        FieldValue::F64(x) => json_f64(*x, out),
        FieldValue::Bool(x) => out.push_str(if *x { "true" } else { "false" }),
        FieldValue::Str(x) => {
            out.push('"');
            escape_json(x, out);
            out.push('"');
        }
    }
}

fn json_args(fields: &[Field], out: &mut String) {
    out.push('{');
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(f.key, out);
        out.push_str("\":");
        json_value(&f.value, out);
    }
    out.push('}');
}

impl TraceDump {
    /// JSON-lines export: one event object per line plus a trailing `meta`
    /// footer with the recorded/dropped totals (schema: DESIGN.md §11).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 96);
        for e in &self.events {
            let ty = match e.kind {
                EventKind::Span { .. } => "span",
                EventKind::Instant => "instant",
                EventKind::Counter { .. } => "counter",
            };
            out.push_str("{\"type\":\"");
            out.push_str(ty);
            out.push_str("\",\"cat\":\"");
            escape_json(e.cat, &mut out);
            out.push_str("\",\"name\":\"");
            escape_json(e.name, &mut out);
            out.push_str("\",\"ts_us\":");
            json_f64(e.ts_us, &mut out);
            out.push_str(",\"tid\":");
            out.push_str(&format!("{}", e.tid));
            match &e.kind {
                EventKind::Span { dur_us } => {
                    out.push_str(",\"dur_us\":");
                    json_f64(*dur_us, &mut out);
                    out.push_str(",\"args\":");
                    json_args(&e.fields, &mut out);
                }
                EventKind::Instant => {
                    out.push_str(",\"args\":");
                    json_args(&e.fields, &mut out);
                }
                EventKind::Counter { value } => {
                    out.push_str(",\"value\":");
                    json_f64(*value, &mut out);
                }
            }
            out.push_str("}\n");
        }
        out.push_str(&format!(
            "{{\"type\":\"meta\",\"schema\":\"mako-trace/1\",\"recorded\":{},\"dropped\":{}}}\n",
            self.recorded, self.dropped
        ));
        out
    }

    /// Chrome-trace export (`chrome://tracing`, Perfetto): complete spans
    /// (`ph:"X"`), thread-scoped instants (`ph:"i"`), counters (`ph:"C"`).
    pub fn to_chrome(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 112 + 64);
        out.push_str("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"pid\":1,\"tid\":");
            out.push_str(&format!("{}", e.tid));
            out.push_str(",\"cat\":\"");
            escape_json(e.cat, &mut out);
            out.push_str("\",\"name\":\"");
            escape_json(e.name, &mut out);
            out.push_str("\",\"ts\":");
            json_f64(e.ts_us, &mut out);
            match &e.kind {
                EventKind::Span { dur_us } => {
                    out.push_str(",\"ph\":\"X\",\"dur\":");
                    json_f64(*dur_us, &mut out);
                    out.push_str(",\"args\":");
                    json_args(&e.fields, &mut out);
                }
                EventKind::Instant => {
                    out.push_str(",\"ph\":\"i\",\"s\":\"t\",\"args\":");
                    json_args(&e.fields, &mut out);
                }
                EventKind::Counter { value } => {
                    out.push_str(",\"ph\":\"C\",\"args\":{\"value\":");
                    json_f64(*value, &mut out);
                    out.push('}');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, kind: EventKind) -> Event {
        Event {
            ts_us: 1.5,
            tid: 0,
            cat: "test",
            name,
            kind,
            fields: vec![field("n", 3usize), field("label", "a\"b")],
        }
    }

    #[test]
    fn ring_overflow_drops_oldest() {
        let c = Collector::new(3);
        for i in 0..5u64 {
            let mut e = ev("x", EventKind::Instant);
            e.tid = i;
            c.record(e);
        }
        let dump = c.snapshot();
        assert_eq!(dump.recorded, 5);
        assert_eq!(dump.dropped, 2);
        let tids: Vec<u64> = dump.events.iter().map(|e| e.tid).collect();
        assert_eq!(tids, vec![2, 3, 4], "oldest events must be the dropped ones");
    }

    #[test]
    fn drain_resets() {
        let c = Collector::new(8);
        c.record(ev("x", EventKind::Instant));
        assert_eq!(c.drain().events.len(), 1);
        assert_eq!(c.snapshot().recorded, 0);
    }

    #[test]
    fn jsonl_roundtrips_through_validator() {
        let dump = TraceDump {
            events: vec![
                ev("alpha", EventKind::Span { dur_us: 12.25 }),
                ev("beta", EventKind::Instant),
                ev("gamma", EventKind::Counter { value: 7.0 }),
            ],
            recorded: 3,
            dropped: 0,
        };
        let text = dump.to_jsonl();
        let summary = schema::validate_jsonl(&text).expect("schema-valid");
        assert_eq!(summary.spans, 1);
        assert_eq!(summary.instants, 1);
        assert_eq!(summary.counters, 1);
        assert!(summary.names.contains("alpha"));
        assert_eq!(summary.dropped, 0);
    }

    #[test]
    fn chrome_export_is_valid_json() {
        let dump = TraceDump {
            events: vec![
                ev("alpha", EventKind::Span { dur_us: 12.25 }),
                ev("beta", EventKind::Counter { value: f64::INFINITY }),
            ],
            recorded: 2,
            dropped: 0,
        };
        let v = schema::parse_json(&dump.to_chrome()).expect("valid JSON");
        let obj = v.as_object().expect("top-level object");
        let events = obj
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .and_then(|(_, v)| v.as_array())
            .expect("traceEvents array");
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn escaping_survives_hostile_strings() {
        let mut e = ev("weird", EventKind::Instant);
        e.fields = vec![field("s", "line\nbreak\t\"quote\"\\slash\u{1}")];
        let dump = TraceDump {
            events: vec![e],
            recorded: 1,
            dropped: 0,
        };
        schema::validate_jsonl(&dump.to_jsonl()).expect("escaped output must stay valid");
    }

    #[test]
    fn atomic_flush_never_leaves_a_torn_or_temporary_file() {
        let dir = std::env::temp_dir().join(format!("mako-trace-flush-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sink = dir.join("out.jsonl");
        let sink_str = sink.to_str().unwrap();

        // A successful write replaces the sink wholesale and cleans up the
        // temporary.
        std::fs::write(&sink, "stale previous flush").unwrap();
        write_atomic(sink_str, b"{\"type\":\"meta\"}\n").unwrap();
        assert_eq!(
            std::fs::read(&sink).unwrap(),
            b"{\"type\":\"meta\"}\n".to_vec()
        );
        assert!(!std::path::Path::new(&format!("{sink_str}.tmp")).exists());

        // A failed write (unwritable directory for the temp file) reports a
        // typed error and leaves the existing sink byte-identical.
        std::fs::write(&sink, "the complete previous flush").unwrap();
        let bad = dir.join("no-such-subdir").join("out.jsonl");
        let err = write_atomic(bad.to_str().unwrap(), b"x").unwrap_err();
        assert_eq!(err.stage, FlushStage::Create);
        assert!(err.to_string().contains("create"), "{err}");
        assert_eq!(
            std::fs::read(&sink).unwrap(),
            b"the complete previous flush".to_vec(),
            "a failed flush must not touch the sink"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_span_is_inert_and_global_records_when_enabled() {
        // The one test that touches the global collector in this crate.
        let s = span("test", "before_enable");
        assert!(!s.is_recording() || enabled(), "off unless another path enabled it");
        drop(s);
        enable_with_capacity(64);
        let mut s = span("test", "after_enable");
        assert!(s.is_recording());
        s.add_field("k", 1u64);
        drop(s);
        instant("test", "inst", vec![field("a", true)]);
        counter("test", "ctr", 2.0);
        let dump = drain();
        assert!(dump.events.iter().any(|e| e.name == "after_enable"));
        assert!(dump.events.iter().any(|e| e.name == "ctr"));
    }
}
