//! Threadblock occupancy model.
//!
//! CompilerMako's Reuse-Guided Planning enforces `S(F) ≤ SMEM_max / 2` so at
//! least two threadblocks stay resident per SM (paper Eq. 13), preserving the
//! warp-scheduler's ability to hide latency. This module computes residency
//! and the throughput fraction the cost model applies.

use crate::device::DeviceSpec;

/// Number of threadblocks resident per SM given the block's shared-memory
/// footprint and thread count. Returns 0 when the block cannot launch at all
/// (footprint exceeds the SM).
pub fn blocks_per_sm(device: &DeviceSpec, smem_per_block: usize, threads_per_block: usize) -> usize {
    if smem_per_block > device.smem_per_sm || threads_per_block == 0 {
        return 0;
    }
    let by_smem = device
        .smem_per_sm
        .checked_div(smem_per_block)
        .unwrap_or(usize::MAX);
    let by_threads = device.max_threads_per_sm / threads_per_block.max(1);
    by_smem.min(by_threads).min(32)
}

/// Occupancy as the fraction of the SM's thread capacity kept busy.
pub fn occupancy_fraction(device: &DeviceSpec, smem_per_block: usize, threads_per_block: usize) -> f64 {
    let blocks = blocks_per_sm(device, smem_per_block, threads_per_block);
    if blocks == 0 {
        return 0.0;
    }
    ((blocks * threads_per_block) as f64 / device.max_threads_per_sm as f64).min(1.0)
}

/// Throughput fraction achieved at a given occupancy.
///
/// Empirically, tensor-core GEMMs reach near-peak throughput once ~50%
/// occupancy provides enough warps to hide latency; below that, throughput
/// degrades roughly linearly. This is the mapping the cost model applies.
pub fn throughput_fraction(occupancy: f64) -> f64 {
    if occupancy <= 0.0 {
        0.0
    } else if occupancy >= 0.5 {
        1.0
    } else {
        0.25 + 1.5 * occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    #[test]
    fn half_smem_gives_two_blocks() {
        let d = DeviceSpec::a100();
        // Exactly the paper's constraint: S(F) = SMEM/2 → 2 resident blocks.
        let b = blocks_per_sm(&d, d.smem_per_sm / 2, 256);
        assert_eq!(b, 2);
    }

    #[test]
    fn oversized_block_cannot_launch() {
        let d = DeviceSpec::a100();
        assert_eq!(blocks_per_sm(&d, d.smem_per_sm + 1, 256), 0);
        assert_eq!(occupancy_fraction(&d, d.smem_per_sm + 1, 256), 0.0);
    }

    #[test]
    fn zero_smem_is_thread_limited() {
        let d = DeviceSpec::a100();
        assert_eq!(blocks_per_sm(&d, 0, 256), 8); // 2048 / 256
        assert_eq!(occupancy_fraction(&d, 0, 256), 1.0);
    }

    #[test]
    fn occupancy_monotone_in_smem() {
        let d = DeviceSpec::a100();
        let mut prev = f64::INFINITY;
        for smem in [8 * 1024, 32 * 1024, 64 * 1024, 128 * 1024] {
            let o = occupancy_fraction(&d, smem, 128);
            assert!(o <= prev + 1e-12);
            prev = o;
        }
    }

    #[test]
    fn throughput_saturates_at_half_occupancy() {
        assert_eq!(throughput_fraction(0.5), 1.0);
        assert_eq!(throughput_fraction(0.9), 1.0);
        assert!(throughput_fraction(0.1) < throughput_fraction(0.3));
        assert_eq!(throughput_fraction(0.0), 0.0);
    }
}
