//! The XOR layout swizzle of KernelMako §3.1.2 and a shared-memory
//! bank-conflict model.
//!
//! KernelMako needs the `pq` integrals in a *blocked layout* for the GEMM
//! while they are produced in a *striped layout* for coalescing. The paper's
//! lightweight fix transposes in shared memory using the bijection
//! `(x_p, y_p) = (x_l ⊕ y_l, y_l)` (Eq. 10), which places every column of a
//! tile in distinct banks so that both row-wise and column-wise accesses are
//! conflict-free.
//!
//! This module implements the mapping and a bank-conflict *counter*: given an
//! access pattern over a tile, it reports the conflict degree (max number of
//! simultaneous accesses hitting one bank within a warp), which the cost
//! model turns into a shared-memory stage slowdown for unswizzled kernels.

/// The XOR swizzle bijection of Eq. (10): logical `(x, y)` → physical
/// `(x ⊕ y, y)`. `width` must be a power of two; the XOR is taken modulo the
/// row width so the mapping stays within the tile.
#[inline]
pub fn swizzle_xor(x_logical: usize, y_logical: usize, width: usize) -> (usize, usize) {
    debug_assert!(width.is_power_of_two(), "swizzle width must be a power of two");
    ((x_logical ^ y_logical) & (width - 1), y_logical)
}

/// Shared-memory layouts a tile can use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SmemLayout {
    /// Row-major as produced (striped across threads).
    Linear,
    /// XOR-swizzled per Eq. (10).
    Swizzled,
}

/// Conflict degree for a warp of `warp` threads accessing *column* `col` of a
/// `width`-wide tile of `elem_bytes`-sized elements under the given layout,
/// on hardware with `banks` 4-byte banks.
///
/// Returns the maximum number of threads mapped to the same bank — 1 means
/// conflict-free, `warp` means fully serialized.
pub fn bank_conflict_degree(
    layout: SmemLayout,
    width: usize,
    col: usize,
    warp: usize,
    elem_bytes: usize,
    banks: usize,
) -> usize {
    let words_per_elem = elem_bytes.div_ceil(4);
    let mut counts = vec![0usize; banks];
    for row in 0..warp {
        let (x, y) = match layout {
            SmemLayout::Linear => (col, row),
            SmemLayout::Swizzled => swizzle_xor(col, row, width),
        };
        // Address of element (x, y) in a row-major tile, in 4-byte words.
        let word = (y * width + x) * words_per_elem;
        // An f64 element occupies two consecutive banks; count the first
        // (hardware broadcasts across the pair in the same transaction).
        counts[word % banks] += 1;
    }
    counts.into_iter().max().unwrap_or(1).max(1)
}

/// Average conflict degree over all columns of a tile — the factor by which
/// an unswizzled transpose stage slows down relative to conflict-free access.
pub fn avg_column_conflict(layout: SmemLayout, width: usize, warp: usize, elem_bytes: usize, banks: usize) -> f64 {
    let total: usize = (0..width)
        .map(|c| bank_conflict_degree(layout, width, c, warp, elem_bytes, banks))
        .sum();
    total as f64 / width as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn swizzle_is_bijective() {
        for &w in &[8usize, 16, 32, 64] {
            let mut seen = HashSet::new();
            for y in 0..w {
                for x in 0..w {
                    let p = swizzle_xor(x, y, w);
                    assert!(p.0 < w && p.1 < w, "stays in domain");
                    assert!(seen.insert(p), "collision at {:?}", (x, y));
                }
            }
            assert_eq!(seen.len(), w * w);
        }
    }

    #[test]
    fn swizzle_preserves_rows() {
        // Condition (2) of the paper: y is unchanged, so row membership (and
        // thus row-wise coalescing) is preserved.
        for y in 0..32 {
            for x in 0..32 {
                assert_eq!(swizzle_xor(x, y, 32).1, y);
            }
        }
    }

    #[test]
    fn swizzle_is_involutive_on_x() {
        // Applying the map twice restores the logical coordinate.
        for y in 0..16 {
            for x in 0..16 {
                let (xp, yp) = swizzle_xor(x, y, 16);
                let (xb, yb) = swizzle_xor(xp, yp, 16);
                assert_eq!((xb, yb), (x, y));
            }
        }
    }

    #[test]
    fn linear_column_access_conflicts_heavily() {
        // A 32-wide f64 tile: column access with stride 32*2 words hits a
        // 64-word period → every other bank → degree 2 per 32 banks... in
        // fact stride 64 words ≡ 0 mod 32 banks: all 32 threads hit the SAME
        // bank → degree 32? stride 64 % 32 = 0 → degree = warp.
        let d = bank_conflict_degree(SmemLayout::Linear, 32, 0, 32, 8, 32);
        assert_eq!(d, 32, "fully serialized column reads");
    }

    #[test]
    fn swizzled_column_access_is_conflict_free_fp32() {
        // 32-wide f32 tile (one word per element): swizzle spreads a column
        // across all 32 banks.
        for col in 0..32 {
            let d = bank_conflict_degree(SmemLayout::Swizzled, 32, col, 32, 4, 32);
            assert_eq!(d, 1, "col {col}");
        }
    }

    #[test]
    fn swizzled_column_access_fp64() {
        // f64 elements span 2 words; with 32 banks a 32-row column touches
        // each bank pair once → degree ≤ 2 (hardware issues 2 phases for
        // 64-bit accesses anyway, so 2 is the conflict-free optimum here).
        for col in 0..32 {
            let d = bank_conflict_degree(SmemLayout::Swizzled, 32, col, 32, 8, 32);
            assert!(d <= 2, "col {col} degree {d}");
        }
    }

    #[test]
    fn average_conflict_orders_layouts() {
        let lin = avg_column_conflict(SmemLayout::Linear, 32, 32, 8, 32);
        let swz = avg_column_conflict(SmemLayout::Swizzled, 32, 32, 8, 32);
        assert!(
            swz * 4.0 < lin,
            "swizzle should slash conflicts: linear {lin}, swizzled {swz}"
        );
    }

    #[test]
    fn row_access_is_conflict_free_in_both_layouts() {
        // Row-major row access: consecutive words → distinct banks.
        for &layout in &[SmemLayout::Linear, SmemLayout::Swizzled] {
            let mut counts = vec![0usize; 32];
            for x in 0..32usize {
                let (xp, yp) = match layout {
                    SmemLayout::Linear => (x, 5),
                    SmemLayout::Swizzled => swizzle_xor(x, 5, 32),
                };
                counts[(yp * 32 + xp) % 32] += 1;
            }
            assert_eq!(*counts.iter().max().unwrap(), 1, "{layout:?}");
        }
    }
}
