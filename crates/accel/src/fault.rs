//! Deterministic fault injection for the simulated multi-GPU cluster.
//!
//! At 64-GPU scale (the paper's Figure 10 platform) transient kernel
//! failures, straggler GPUs, and outright rank loss are routine, and
//! practical stacks wrap the Fock build in retry and recovery machinery.
//! This module supplies the *fault model* for exercising that machinery
//! without real hardware: a [`FaultPlan`] is a pure function of a seed, so
//! any chaos run can be replayed bit-for-bit, and every injected anomaly is
//! charged to the simulated device clock so degraded runs cost realistic
//! simulated seconds.
//!
//! Four anomaly classes are modeled, mirroring what multi-GPU SCF codes
//! actually see:
//!
//! * **transient kernel failures** — a batched ERI launch fails (ECC error,
//!   sticky kernel timeout) and succeeds on retry; decided per
//!   `(rank, batch, attempt)` so retries are independent events;
//! * **stragglers** — a rank runs every launch `slowdown ≥ 1` times slower
//!   (thermal throttling, a bad NVLink lane);
//! * **permanent rank loss** — a rank dies partway through its share and
//!   never comes back (Xid error, node eviction); the death point is a
//!   fraction of the rank's assigned work so plans stay meaningful for any
//!   share size;
//! * **allreduce timeouts** — a collective hangs and must be retried.
//!
//! The plan only *describes* faults. Recovery — retries with capped
//! exponential backoff, work stealing, re-running a dead rank's batches on
//! survivors — lives in the distributed Fock driver (`mako-scf`), which
//! reports what it did through a [`RecoveryLedger`].

/// SplitMix64: the standard 64-bit finalizer used to derive independent,
/// reproducible decision streams from (seed, tag, indices).
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Hash a decision coordinate into [0, 1).
#[inline]
fn unit(seed: u64, tag: u64, a: u64, b: u64, c: u64) -> f64 {
    let mut h = splitmix64(seed ^ tag.wrapping_mul(0xd1b54a32d192ed03));
    h = splitmix64(h ^ a.wrapping_mul(0x9e3779b97f4a7c15));
    h = splitmix64(h ^ b.wrapping_mul(0xc2b2ae3d27d4eb4f));
    h = splitmix64(h ^ c.wrapping_mul(0x165667b19e3779f9));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

const TAG_STRAGGLER: u64 = 1;
const TAG_STRAGGLER_MAG: u64 = 2;
const TAG_LOSS: u64 = 3;
const TAG_LOSS_POINT: u64 = 4;
const TAG_TRANSIENT: u64 = 5;
const TAG_ALLREDUCE: u64 = 6;

/// Fault rates and magnitudes used to generate a seeded [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Probability a given `(rank, batch, attempt)` launch fails
    /// transiently. Must stay below 1 or a launch could fail forever.
    pub transient_rate: f64,
    /// First retry backoff, simulated seconds.
    pub backoff_base: f64,
    /// Cap on the exponential backoff, simulated seconds.
    pub backoff_cap: f64,
    /// Probability a rank is a straggler.
    pub straggler_rate: f64,
    /// Straggler slowdown multiplier range `[lo, hi)`, clamped to ≥ 1.
    pub straggler_slowdown: (f64, f64),
    /// Probability a rank is permanently lost mid-run. The generated plan
    /// always leaves at least one survivor.
    pub loss_rate: f64,
    /// Probability one allreduce attempt times out.
    pub allreduce_timeout_rate: f64,
    /// Simulated seconds charged per allreduce timeout.
    pub allreduce_timeout_seconds: f64,
}

impl Default for FaultConfig {
    /// A quiet cluster: no faults of any kind.
    fn default() -> FaultConfig {
        FaultConfig {
            transient_rate: 0.0,
            backoff_base: 1e-3,
            backoff_cap: 0.25,
            straggler_rate: 0.0,
            straggler_slowdown: (1.0, 1.0),
            loss_rate: 0.0,
            allreduce_timeout_rate: 0.0,
            allreduce_timeout_seconds: 0.5,
        }
    }
}

impl FaultConfig {
    /// A representative "bad day" at cluster scale: occasional transient
    /// launch failures, a minority of stragglers, rare rank loss, and
    /// occasional collective timeouts.
    pub fn chaotic() -> FaultConfig {
        FaultConfig {
            transient_rate: 0.05,
            straggler_rate: 0.25,
            straggler_slowdown: (2.0, 6.0),
            loss_rate: 0.15,
            allreduce_timeout_rate: 0.1,
            ..FaultConfig::default()
        }
    }
}

/// Static per-rank fault assignment of one plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankFaults {
    /// Execution slowdown multiplier, ≥ 1 (1 = healthy).
    pub slowdown: f64,
    /// If `Some(f)`, the rank dies after completing fraction `f ∈ [0, 1)`
    /// of its assigned batches; its partial results are lost.
    pub death_fraction: Option<f64>,
}

impl RankFaults {
    /// A healthy rank.
    pub fn healthy() -> RankFaults {
        RankFaults {
            slowdown: 1.0,
            death_fraction: None,
        }
    }
}

/// A fully deterministic fault schedule for one distributed build (or one
/// SCF trajectory): pure function of the seed, replayable bit-for-bit.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    ranks: Vec<RankFaults>,
    transient_rate: f64,
    backoff_base: f64,
    backoff_cap: f64,
    allreduce_timeout_rate: f64,
    allreduce_timeout_seconds: f64,
}

impl FaultPlan {
    /// A plan with no faults at all — the fault-tolerant driver under a
    /// quiet plan must match the fault-free driver exactly.
    pub fn quiet(ranks: usize) -> FaultPlan {
        FaultPlan {
            seed: 0,
            ranks: vec![RankFaults::healthy(); ranks],
            transient_rate: 0.0,
            backoff_base: 1e-3,
            backoff_cap: 0.25,
            allreduce_timeout_rate: 0.0,
            allreduce_timeout_seconds: 0.5,
        }
    }

    /// Draw a plan for `ranks` ranks from `seed` under `cfg`. Guaranteed to
    /// leave at least one rank alive: if every rank draws a death, the
    /// lowest-index rank is revived (deterministically).
    pub fn seeded(seed: u64, ranks: usize, cfg: &FaultConfig) -> FaultPlan {
        assert!(ranks > 0, "a cluster needs at least one rank");
        assert!(
            cfg.transient_rate < 1.0,
            "transient_rate must be < 1 or a launch can fail forever"
        );
        let mut per_rank = Vec::with_capacity(ranks);
        for r in 0..ranks as u64 {
            let slowdown = if unit(seed, TAG_STRAGGLER, r, 0, 0) < cfg.straggler_rate {
                let (lo, hi) = cfg.straggler_slowdown;
                let (lo, hi) = (lo.max(1.0), hi.max(1.0));
                lo + (hi - lo) * unit(seed, TAG_STRAGGLER_MAG, r, 0, 0)
            } else {
                1.0
            };
            let death_fraction = if unit(seed, TAG_LOSS, r, 0, 0) < cfg.loss_rate {
                Some(unit(seed, TAG_LOSS_POINT, r, 0, 0))
            } else {
                None
            };
            per_rank.push(RankFaults {
                slowdown,
                death_fraction,
            });
        }
        if per_rank.iter().all(|f| f.death_fraction.is_some()) {
            per_rank[0].death_fraction = None;
        }
        FaultPlan {
            seed,
            ranks: per_rank,
            transient_rate: cfg.transient_rate.clamp(0.0, 0.999),
            backoff_base: cfg.backoff_base.max(0.0),
            backoff_cap: cfg.backoff_cap.max(0.0),
            allreduce_timeout_rate: cfg.allreduce_timeout_rate.clamp(0.0, 0.999),
            allreduce_timeout_seconds: cfg.allreduce_timeout_seconds.max(0.0),
        }
    }

    /// Builder: kill `rank` after completing `fraction ∈ [0, 1)` of its
    /// share (targeted-loss tests; the golden suite pins one of these).
    pub fn kill_rank(mut self, rank: usize, fraction: f64) -> FaultPlan {
        self.ranks[rank].death_fraction = Some(fraction.clamp(0.0, 0.999_999));
        assert!(
            self.ranks.iter().any(|f| f.death_fraction.is_none()),
            "a plan must leave at least one survivor"
        );
        self
    }

    /// Builder: make `rank` a straggler with the given slowdown (≥ 1).
    pub fn slow_rank(mut self, rank: usize, slowdown: f64) -> FaultPlan {
        self.ranks[rank].slowdown = slowdown.max(1.0);
        self
    }

    /// Builder: set the per-attempt transient-failure rate.
    pub fn with_transients(mut self, rate: f64) -> FaultPlan {
        self.transient_rate = rate.clamp(0.0, 0.999);
        self
    }

    /// Number of ranks this plan covers.
    pub fn ranks(&self) -> usize {
        self.ranks.len()
    }

    /// The static fault assignment of one rank.
    pub fn rank(&self, rank: usize) -> RankFaults {
        self.ranks[rank]
    }

    /// Straggler slowdown multiplier of a rank (1 = healthy).
    pub fn slowdown(&self, rank: usize) -> f64 {
        self.ranks[rank].slowdown
    }

    /// Whether any rank in this plan is doomed to die.
    pub fn lossy(&self) -> bool {
        self.ranks.iter().any(|f| f.death_fraction.is_some())
    }

    /// Resolve a rank's death fraction against its actual share size:
    /// `Some(k)` means the rank dies while executing batch `k` (0-based) of
    /// its share and completes only batches `0..k`. A doomed rank with an
    /// empty share still counts as lost (it just has nothing to re-run).
    pub fn death_point(&self, rank: usize, share_len: usize) -> Option<usize> {
        self.ranks[rank].death_fraction.map(|f| {
            if share_len == 0 {
                0
            } else {
                ((f * share_len as f64) as usize).min(share_len - 1)
            }
        })
    }

    /// Whether attempt `attempt` of `batch` on `rank` fails transiently.
    /// Pure function of the plan seed — replay gives the same answer.
    pub fn transient_fails(&self, rank: usize, batch: usize, attempt: u32) -> bool {
        self.transient_rate > 0.0
            && unit(
                self.seed,
                TAG_TRANSIENT,
                rank as u64,
                batch as u64,
                attempt as u64,
            ) < self.transient_rate
    }

    /// Capped exponential backoff charged before retry `attempt` (0-based:
    /// the delay after the first failure is `backoff_base`).
    pub fn backoff_seconds(&self, attempt: u32) -> f64 {
        let shift = attempt.min(52);
        (self.backoff_base * (1u64 << shift) as f64).min(self.backoff_cap)
    }

    /// Whether attempt `attempt` of allreduce call `call` times out.
    pub fn allreduce_times_out(&self, call: u64, attempt: u32) -> bool {
        self.allreduce_timeout_rate > 0.0
            && unit(self.seed, TAG_ALLREDUCE, call, attempt as u64, 0)
                < self.allreduce_timeout_rate
    }

    /// Simulated seconds one allreduce timeout costs before the retry.
    pub fn allreduce_timeout_seconds(&self) -> f64 {
        self.allreduce_timeout_seconds
    }
}

/// What the recovery machinery actually did during one fault-tolerant
/// build (or one SCF iteration), and what it cost on the simulated clock.
///
/// Surfaced next to [`crate::IterationLedger`] by the SCF driver and
/// serialized into `BENCH_chaos.json`. All counters are additive so
/// per-iteration ledgers roll up into a run total via [`Self::absorb`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryLedger {
    /// Transient launch failures retried (each retry re-ran one batch).
    pub transient_retries: usize,
    /// Simulated seconds spent in retry backoff delays.
    pub backoff_seconds: f64,
    /// Ranks flagged as stragglers by the load-model detector.
    pub straggler_ranks: usize,
    /// Batches re-partitioned away from stragglers (work stealing).
    pub stolen_batches: usize,
    /// Batches of dead ranks re-run on survivors.
    pub rerun_batches: usize,
    /// Ranks permanently lost.
    pub ranks_lost: usize,
    /// Allreduce attempts that timed out and were retried.
    pub allreduce_retries: usize,
    /// Checkpoint files written (SCF driver).
    pub checkpoint_saves: usize,
    /// Checkpoint files restored from (SCF driver).
    pub checkpoint_loads: usize,
    /// Load-model makespan of the fault-free execution (max rank load plus
    /// the base collective), simulated seconds.
    pub fault_free_seconds: f64,
    /// Load-model makespan with every fault charged: straggler slowdowns,
    /// wasted attempts, backoff, stolen/re-run work, collective retries.
    pub degraded_seconds: f64,
}

impl RecoveryLedger {
    /// Extra simulated seconds the faults cost over the fault-free plan.
    /// Can be negative in one corner: work stealing may beat the *static*
    /// LPT plan when it offloads a straggler early.
    pub fn overhead_seconds(&self) -> f64 {
        self.degraded_seconds - self.fault_free_seconds
    }

    /// Whether any recovery action fired at all.
    pub fn quiet(&self) -> bool {
        self.transient_retries == 0
            && self.stolen_batches == 0
            && self.rerun_batches == 0
            && self.ranks_lost == 0
            && self.straggler_ranks == 0
            && self.allreduce_retries == 0
            && self.checkpoint_loads == 0
    }

    /// Merge another ledger's counters and clocks (run totals).
    pub fn absorb(&mut self, other: &RecoveryLedger) {
        self.transient_retries += other.transient_retries;
        self.backoff_seconds += other.backoff_seconds;
        self.straggler_ranks += other.straggler_ranks;
        self.stolen_batches += other.stolen_batches;
        self.rerun_batches += other.rerun_batches;
        self.ranks_lost += other.ranks_lost;
        self.allreduce_retries += other.allreduce_retries;
        self.checkpoint_saves += other.checkpoint_saves;
        self.checkpoint_loads += other.checkpoint_loads;
        self.fault_free_seconds += other.fault_free_seconds;
        self.degraded_seconds += other.degraded_seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_injects_nothing() {
        let p = FaultPlan::quiet(8);
        assert_eq!(p.ranks(), 8);
        assert!(!p.lossy());
        for r in 0..8 {
            assert_eq!(p.slowdown(r), 1.0);
            assert_eq!(p.death_point(r, 100), None);
            for b in 0..50 {
                assert!(!p.transient_fails(r, b, 0));
            }
        }
        assert!(!p.allreduce_times_out(0, 0));
    }

    #[test]
    fn seeded_plan_is_replayable() {
        let cfg = FaultConfig::chaotic();
        let a = FaultPlan::seeded(42, 8, &cfg);
        let b = FaultPlan::seeded(42, 8, &cfg);
        for r in 0..8 {
            assert_eq!(a.rank(r), b.rank(r));
            for batch in 0..64 {
                for attempt in 0..4 {
                    assert_eq!(
                        a.transient_fails(r, batch, attempt),
                        b.transient_fails(r, batch, attempt)
                    );
                }
            }
        }
        // Different seeds decorrelate.
        let c = FaultPlan::seeded(43, 8, &cfg);
        let same = (0..8).all(|r| a.rank(r) == c.rank(r));
        assert!(!same, "seeds 42 and 43 produced identical rank faults");
    }

    #[test]
    fn seeded_plan_always_leaves_a_survivor() {
        let cfg = FaultConfig {
            loss_rate: 1.0,
            ..FaultConfig::default()
        };
        for seed in 0..64 {
            let p = FaultPlan::seeded(seed, 4, &cfg);
            let survivors = (0..4).filter(|&r| p.rank(r).death_fraction.is_none()).count();
            assert!(survivors >= 1, "seed {seed} killed every rank");
        }
    }

    #[test]
    fn transient_rate_is_roughly_honored() {
        let p = FaultPlan::seeded(7, 2, &FaultConfig {
            transient_rate: 0.3,
            ..FaultConfig::default()
        });
        let n = 20_000;
        let fails = (0..n).filter(|&b| p.transient_fails(0, b, 0)).count();
        let rate = fails as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "empirical rate {rate}");
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let p = FaultPlan::quiet(1); // base 1e-3, cap 0.25
        assert_eq!(p.backoff_seconds(0), 1e-3);
        assert_eq!(p.backoff_seconds(1), 2e-3);
        assert_eq!(p.backoff_seconds(2), 4e-3);
        assert_eq!(p.backoff_seconds(20), 0.25);
        assert_eq!(p.backoff_seconds(60), 0.25);
    }

    #[test]
    fn death_point_resolves_against_share_size() {
        let p = FaultPlan::quiet(2).kill_rank(1, 0.5);
        assert_eq!(p.death_point(0, 10), None);
        assert_eq!(p.death_point(1, 10), Some(5));
        assert_eq!(p.death_point(1, 1), Some(0));
        assert_eq!(p.death_point(1, 0), Some(0));
        assert!(p.lossy());
    }

    #[test]
    #[should_panic(expected = "survivor")]
    fn killing_every_rank_is_rejected() {
        let _ = FaultPlan::quiet(2).kill_rank(0, 0.1).kill_rank(1, 0.1);
    }

    #[test]
    fn ledger_absorb_sums() {
        let a = RecoveryLedger {
            transient_retries: 2,
            backoff_seconds: 0.25,
            stolen_batches: 3,
            rerun_batches: 5,
            ranks_lost: 1,
            fault_free_seconds: 1.0,
            degraded_seconds: 2.5,
            ..RecoveryLedger::default()
        };
        let mut total = RecoveryLedger::default();
        total.absorb(&a);
        total.absorb(&a);
        assert_eq!(total.transient_retries, 4);
        assert_eq!(total.rerun_batches, 10);
        assert_eq!(total.ranks_lost, 2);
        assert!((total.overhead_seconds() - 3.0).abs() < 1e-12);
        assert!(!total.quiet());
        assert!(RecoveryLedger::default().quiet());
    }
}
