//! Per-iteration device-clock ledger.
//!
//! The simulated `device_seconds` is part of the numerical output of every
//! experiment (see DESIGN.md §7 "Two clocks"), and with the incremental
//! (ΔD) SCF engine the *amount of work priced* changes from iteration to
//! iteration: quartets skipped by the difference-density Schwarz screen are
//! removed from their sub-batches **before** the cost model prices the
//! batched launches, so they never reach the device clock — smaller
//! sub-batches also amortize launch overhead differently, which the pricing
//! reflects honestly rather than charging `full_cost × fraction`.
//!
//! [`DeviceClock`] records that trajectory: one [`IterationLedger`] per SCF
//! iteration with the simulated seconds actually charged and the
//! evaluated / skipped / pruned quartet populations, so benchmarks
//! (`incremental_scf_bench` → `BENCH_scf.json`) can report quartets per
//! iteration alongside the clock, and tests can assert the two stay
//! consistent (no seconds charged for skipped work).

/// What one SCF iteration cost on the simulated device, and how much quartet
/// work it actually ran.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IterationLedger {
    /// Simulated device seconds of the ERI/Fock stage (the part the
    /// incremental screen shrinks).
    pub eri_seconds: f64,
    /// Total simulated device seconds of the iteration (ERI + XC +
    /// diagonalization).
    pub total_seconds: f64,
    /// Quartets evaluated (FP64 + quantized pipelines).
    pub evaluated_quartets: usize,
    /// Quartets skipped by the incremental ΔD Schwarz screen — never priced
    /// on the device clock.
    pub skipped_quartets: usize,
    /// Quartets pruned by the convergence-aware scheduler.
    pub pruned_quartets: usize,
    /// Accumulated analytic bound on the Fock perturbation of everything
    /// skipped this iteration (the drift the rebuild policy caps).
    pub skipped_bound: f64,
    /// Whether this iteration was a full rebuild (ΔD = D, fresh
    /// accumulators).
    pub rebuild: bool,
}

/// The device-clock ledger of a whole SCF run: one entry per iteration,
/// appended in order. Fault-tolerant runs also record one
/// [`RecoveryLedger`](crate::fault::RecoveryLedger) per iteration with the
/// retries / steals / re-runs the recovery machinery performed and their
/// simulated-seconds cost.
#[derive(Debug, Clone, Default)]
pub struct DeviceClock {
    iterations: Vec<IterationLedger>,
    recoveries: Vec<crate::fault::RecoveryLedger>,
}

impl DeviceClock {
    /// Fresh, empty clock.
    pub fn new() -> DeviceClock {
        DeviceClock::default()
    }

    /// Append one completed iteration.
    pub fn push(&mut self, ledger: IterationLedger) {
        if mako_trace::enabled() {
            mako_trace::instant(
                "clock",
                "iteration",
                vec![
                    mako_trace::field("iter", self.iterations.len()),
                    mako_trace::field("eri_seconds", ledger.eri_seconds),
                    mako_trace::field("total_seconds", ledger.total_seconds),
                    mako_trace::field("evaluated_quartets", ledger.evaluated_quartets),
                    mako_trace::field("skipped_quartets", ledger.skipped_quartets),
                    mako_trace::field("pruned_quartets", ledger.pruned_quartets),
                    mako_trace::field("rebuild", ledger.rebuild),
                ],
            );
        }
        self.iterations.push(ledger);
    }

    /// Append the recovery ledger of one completed iteration (fault-tolerant
    /// runs push one per iteration, quiet iterations push a default ledger so
    /// indices line up with [`Self::iterations`]).
    pub fn push_recovery(&mut self, ledger: crate::fault::RecoveryLedger) {
        if mako_trace::enabled() {
            mako_trace::instant(
                "clock",
                "recovery",
                vec![
                    mako_trace::field("iter", self.recoveries.len()),
                    mako_trace::field("transient_retries", ledger.transient_retries),
                    mako_trace::field("straggler_ranks", ledger.straggler_ranks),
                    mako_trace::field("stolen_batches", ledger.stolen_batches),
                    mako_trace::field("rerun_batches", ledger.rerun_batches),
                    mako_trace::field("ranks_lost", ledger.ranks_lost),
                    mako_trace::field("allreduce_retries", ledger.allreduce_retries),
                    mako_trace::field("backoff_seconds", ledger.backoff_seconds),
                    mako_trace::field("degraded_seconds", ledger.degraded_seconds),
                ],
            );
        }
        self.recoveries.push(ledger);
    }

    /// All iterations, in execution order.
    pub fn iterations(&self) -> &[IterationLedger] {
        &self.iterations
    }

    /// Per-iteration recovery ledgers (empty for runs that never went
    /// through the fault-tolerant driver).
    pub fn recoveries(&self) -> &[crate::fault::RecoveryLedger] {
        &self.recoveries
    }

    /// Roll-up of all per-iteration recovery ledgers.
    pub fn total_recovery(&self) -> crate::fault::RecoveryLedger {
        let mut total = crate::fault::RecoveryLedger::default();
        for r in &self.recoveries {
            total.absorb(r);
        }
        total
    }

    /// Total simulated device seconds across all iterations.
    pub fn total_seconds(&self) -> f64 {
        self.iterations.iter().map(|l| l.total_seconds).sum()
    }

    /// Total quartets evaluated across all iterations.
    pub fn total_evaluated(&self) -> usize {
        self.iterations.iter().map(|l| l.evaluated_quartets).sum()
    }

    /// Total quartets the ΔD screen skipped across all iterations.
    pub fn total_skipped(&self) -> usize {
        self.iterations.iter().map(|l| l.skipped_quartets).sum()
    }

    /// Whether evaluated-quartet counts decline monotonically (weakly) from
    /// iteration `from` on — the signature of a converging incremental SCF.
    /// Full-rebuild iterations restart the accumulators but still ride the
    /// shrinking ΔD of the *screen* only when the build density is ΔD; they
    /// are excluded from the monotonicity check.
    pub fn monotone_decline_from(&self, from: usize) -> bool {
        let mut prev: Option<usize> = None;
        for l in self.iterations.iter().skip(from) {
            if l.rebuild {
                prev = None;
                continue;
            }
            if let Some(p) = prev {
                if l.evaluated_quartets > p {
                    return false;
                }
            }
            prev = Some(l.evaluated_quartets);
        }
        true
    }
}

/// Fleet-level accounting of an ensemble (lockstep multi-molecule) run.
///
/// Cross-molecule launch fusion changes *pricing only*: each member keeps
/// its own [`DeviceClock`] trajectory, while the ensemble driver records
/// here what the fusion saved — per super-iteration launch counts and the
/// fused-vs-solo device seconds — plus the shared [`RecoveryLedger`] of the
/// ensemble's fault-tolerant dispatch (faults hit *launches*, which belong
/// to the fleet, so their accounting lives at the fleet level too; member
/// results stay fault-silent by design).
#[derive(Debug, Clone, Default)]
pub struct EnsembleLedger {
    /// Lockstep super-iterations executed (max member iteration count).
    pub super_iterations: usize,
    /// Fused cross-molecule launches actually priced.
    pub fused_launches: usize,
    /// Launches the same work would have cost one-molecule-at-a-time.
    pub solo_launches: usize,
    /// ERI device seconds as priced through the fused launches.
    pub fused_device_seconds: f64,
    /// ERI device seconds the same sub-batches would have been priced at
    /// with per-molecule launches.
    pub solo_device_seconds: f64,
    /// Roll-up of the recovery machinery's work across the whole run.
    pub recovery: crate::fault::RecoveryLedger,
}

impl EnsembleLedger {
    /// Device seconds saved by fusing launches across molecules.
    pub fn fusion_savings_seconds(&self) -> f64 {
        self.solo_device_seconds - self.fused_device_seconds
    }

    /// Launches avoided by the fusion.
    pub fn launches_avoided(&self) -> usize {
        self.solo_launches.saturating_sub(self.fused_launches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger(evaluated: usize, rebuild: bool) -> IterationLedger {
        IterationLedger {
            eri_seconds: 1e-3,
            total_seconds: 2e-3,
            evaluated_quartets: evaluated,
            skipped_quartets: 10,
            pruned_quartets: 1,
            skipped_bound: 1e-12,
            rebuild,
        }
    }

    #[test]
    fn totals_accumulate() {
        let mut c = DeviceClock::new();
        c.push(ledger(100, true));
        c.push(ledger(60, false));
        c.push(ledger(30, false));
        assert_eq!(c.iterations().len(), 3);
        assert_eq!(c.total_evaluated(), 190);
        assert_eq!(c.total_skipped(), 30);
        assert!((c.total_seconds() - 6e-3).abs() < 1e-15);
    }

    #[test]
    fn monotone_decline_detection() {
        let mut c = DeviceClock::new();
        c.push(ledger(100, true));
        c.push(ledger(60, false));
        c.push(ledger(30, false));
        c.push(ledger(90, true)); // rebuild resets the baseline
        c.push(ledger(20, false));
        assert!(c.monotone_decline_from(0));
        let mut bad = DeviceClock::new();
        bad.push(ledger(10, false));
        bad.push(ledger(50, false));
        assert!(!bad.monotone_decline_from(0));
        // But ignored when the rise is before `from`.
        assert!(bad.monotone_decline_from(1));
    }
}
