//! Analytical kernel cost model.
//!
//! Every simulated kernel launch is described by a [`KernelProfile`]: how
//! many FLOPs it issues on the tensor pipes and the CUDA pipes (per
//! precision), how many bytes it moves to/from global memory, its
//! shared-memory footprint, threadblock geometry, ILP efficiency and
//! bank-conflict factor. The [`CostModel`] converts a profile into simulated
//! time with a roofline rule:
//!
//! ```text
//! t = launches · t_launch + max(t_compute, t_memory)
//! ```
//!
//! where compute and memory overlap inside one kernel (the paper's Figure 1b:
//! fusion "enables the overlap of computation and memory loading"). Unfused
//! pipelines are expressed as *several* profiles whose times add, so they pay
//! both the extra launches and the non-overlapped global traffic of their
//! intermediates.

use crate::device::DeviceSpec;
use crate::occupancy::{occupancy_fraction, throughput_fraction};
use mako_precision::Precision;

/// Work issued by one simulated kernel launch (or one batch of identical
/// launches).
#[derive(Debug, Clone)]
pub struct KernelProfile {
    /// Human-readable label ("mmd_fused_dddd", "libintx_pq_stage", …).
    pub name: String,
    /// FLOPs executed on tensor cores, per precision.
    pub tensor_flops: Vec<(Precision, f64)>,
    /// FLOPs executed on CUDA cores, per precision.
    pub cuda_flops: Vec<(Precision, f64)>,
    /// Bytes read from global memory.
    pub global_read: f64,
    /// Bytes written to global memory.
    pub global_write: f64,
    /// Shared memory per threadblock, bytes.
    pub smem_per_block: usize,
    /// Threads per threadblock.
    pub threads_per_block: usize,
    /// Number of kernel launches this profile represents.
    pub launches: usize,
    /// Effective instruction-level-parallelism efficiency in (0, 1]:
    /// `BLP·TLP·ILP / (BLP·TLP)_optimal` of Eq. (8). Applied to CUDA-core
    /// work only (the non-MatMul operators that needed restructuring).
    pub ilp_efficiency: f64,
    /// Shared-memory bank-conflict slowdown (≥ 1) for the non-MatMul stages;
    /// 1.0 when the layout is swizzled.
    pub bank_conflict_factor: f64,
}

impl KernelProfile {
    /// A minimal profile with sane defaults (fully efficient, no traffic).
    pub fn named(name: impl Into<String>) -> KernelProfile {
        KernelProfile {
            name: name.into(),
            tensor_flops: Vec::new(),
            cuda_flops: Vec::new(),
            global_read: 0.0,
            global_write: 0.0,
            smem_per_block: 0,
            threads_per_block: 128,
            launches: 1,
            ilp_efficiency: 1.0,
            bank_conflict_factor: 1.0,
        }
    }

    /// Total FLOPs across all pipes and precisions.
    pub fn total_flops(&self) -> f64 {
        self.tensor_flops.iter().map(|&(_, f)| f).sum::<f64>()
            + self.cuda_flops.iter().map(|&(_, f)| f).sum::<f64>()
    }

    /// Total global-memory traffic in bytes.
    pub fn total_bytes(&self) -> f64 {
        self.global_read + self.global_write
    }
}

/// Timing breakdown of a simulated launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchRecord {
    /// Seconds spent in arithmetic (after efficiency factors).
    pub compute_s: f64,
    /// Seconds spent on global-memory traffic.
    pub memory_s: f64,
    /// Seconds of launch overhead.
    pub launch_s: f64,
    /// Simulated wall time: `launch + max(compute, memory)`.
    pub total_s: f64,
    /// Occupancy the launch achieved.
    pub occupancy: f64,
}

/// The roofline cost model bound to a device.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Device being modeled.
    pub device: DeviceSpec,
    /// Fraction of peak a well-tuned kernel reaches (CUTLASS-class kernels
    /// hit 85–95% of peak on large GEMMs; irregular code much less — callers
    /// encode that through `ilp_efficiency`).
    pub tuned_peak_fraction: f64,
}

impl CostModel {
    /// Cost model for a device with the default achievable-peak fraction.
    pub fn new(device: DeviceSpec) -> CostModel {
        CostModel {
            device,
            tuned_peak_fraction: 0.90,
        }
    }

    /// Evaluate a profile into a timing record.
    pub fn evaluate(&self, p: &KernelProfile) -> LaunchRecord {
        let occ = occupancy_fraction(&self.device, p.smem_per_block, p.threads_per_block);
        let tput = throughput_fraction(occ) * self.tuned_peak_fraction;

        let mut compute = 0.0f64;
        if tput > 0.0 {
            for &(prec, flops) in &p.tensor_flops {
                let peak = self.device.tensor_peak(prec);
                // Work routed to tensor cores on a device that lacks them
                // falls back to the CUDA pipes (what CUTLASS does on Volta
                // for FP64), at CUDA-core rates.
                let rate = if peak > 0.0 {
                    peak
                } else {
                    self.device.cuda_peak(prec)
                };
                compute += flops / (rate * tput);
            }
            for &(prec, flops) in &p.cuda_flops {
                let rate = self.device.cuda_peak(prec);
                let eff = p.ilp_efficiency.clamp(1e-3, 1.0);
                compute += flops * p.bank_conflict_factor / (rate * tput * eff);
            }
        } else {
            compute = f64::INFINITY;
        }

        let memory = p.total_bytes() / self.device.mem_bandwidth;
        let launch = p.launches as f64 * self.device.launch_latency;
        LaunchRecord {
            compute_s: compute,
            memory_s: memory,
            launch_s: launch,
            total_s: launch + compute.max(memory),
            occupancy: occ,
        }
    }
}

/// Accumulator for simulated time across many launches — each SCF iteration,
/// microbenchmark batch, or MPI rank owns one.
#[derive(Debug, Clone, Default)]
pub struct SimTimer {
    total_s: f64,
    compute_s: f64,
    memory_s: f64,
    launch_s: f64,
    launches: u64,
    flops: f64,
    bytes: f64,
}

impl SimTimer {
    /// Fresh, zeroed timer.
    pub fn new() -> SimTimer {
        SimTimer::default()
    }

    /// Record a launch evaluated by a [`CostModel`].
    pub fn record(&mut self, profile: &KernelProfile, rec: &LaunchRecord) {
        self.total_s += rec.total_s;
        self.compute_s += rec.compute_s;
        self.memory_s += rec.memory_s;
        self.launch_s += rec.launch_s;
        self.launches += profile.launches as u64;
        self.flops += profile.total_flops();
        self.bytes += profile.total_bytes();
    }

    /// Evaluate and record in one step; returns the record.
    pub fn run(&mut self, model: &CostModel, profile: &KernelProfile) -> LaunchRecord {
        let rec = model.evaluate(profile);
        self.record(profile, &rec);
        rec
    }

    /// Add a raw amount of simulated seconds (e.g. host-side or
    /// communication time computed elsewhere).
    pub fn add_seconds(&mut self, s: f64) {
        self.total_s += s;
    }

    /// Merge another timer (parallel reduction across worker threads).
    pub fn merge(&mut self, other: &SimTimer) {
        self.total_s += other.total_s;
        self.compute_s += other.compute_s;
        self.memory_s += other.memory_s;
        self.launch_s += other.launch_s;
        self.launches += other.launches;
        self.flops += other.flops;
        self.bytes += other.bytes;
    }

    /// Total simulated seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_s
    }

    /// Seconds attributable to arithmetic.
    pub fn compute_seconds(&self) -> f64 {
        self.compute_s
    }

    /// Seconds attributable to global-memory traffic.
    pub fn memory_seconds(&self) -> f64 {
        self.memory_s
    }

    /// Seconds of launch overhead.
    pub fn launch_seconds(&self) -> f64 {
        self.launch_s
    }

    /// Number of kernel launches recorded.
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Total FLOPs recorded.
    pub fn flops(&self) -> f64 {
        self.flops
    }

    /// Total global bytes recorded.
    pub fn bytes(&self) -> f64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm_profile(flops: f64, prec: Precision, bytes: f64) -> KernelProfile {
        let mut p = KernelProfile::named("test_gemm");
        p.tensor_flops.push((prec, flops));
        p.global_read = bytes * 0.75;
        p.global_write = bytes * 0.25;
        p.smem_per_block = 32 * 1024;
        p.threads_per_block = 256;
        p
    }

    #[test]
    fn compute_bound_large_gemm() {
        let m = CostModel::new(DeviceSpec::a100());
        // 1 TFLOP of FP64 tensor work, tiny traffic → compute bound ≈
        // 1e12 / (19.5e12 * 0.9) ≈ 57 ms.
        let p = gemm_profile(1e12, Precision::Fp64, 1e6);
        let r = m.evaluate(&p);
        assert!(r.compute_s > r.memory_s);
        assert!((r.compute_s - 1e12 / (19.5e12 * 0.9)).abs() / r.compute_s < 1e-9);
    }

    #[test]
    fn fp16_is_16x_faster_than_fp64_tensor() {
        let m = CostModel::new(DeviceSpec::a100());
        let p64 = gemm_profile(1e12, Precision::Fp64, 0.0);
        let p16 = gemm_profile(1e12, Precision::Fp16, 0.0);
        let r = m.evaluate(&p64).compute_s / m.evaluate(&p16).compute_s;
        assert!((r - 16.0).abs() < 1e-6);
    }

    #[test]
    fn memory_bound_kernel() {
        let m = CostModel::new(DeviceSpec::a100());
        let p = gemm_profile(1e6, Precision::Fp64, 1e9); // 1 GB traffic
        let r = m.evaluate(&p);
        assert!(r.memory_s > r.compute_s);
        assert!((r.memory_s - 1e9 / 1.555e12).abs() < 1e-12);
        assert!(r.total_s >= r.memory_s);
    }

    #[test]
    fn launch_overhead_accumulates() {
        let m = CostModel::new(DeviceSpec::a100());
        let mut p = gemm_profile(0.0, Precision::Fp64, 0.0);
        p.launches = 1000;
        let r = m.evaluate(&p);
        assert!((r.launch_s - 1000.0 * 4.0e-6).abs() < 1e-12);
    }

    #[test]
    fn bank_conflicts_slow_cuda_work_only() {
        let m = CostModel::new(DeviceSpec::a100());
        let mut p = KernelProfile::named("transpose");
        p.cuda_flops.push((Precision::Fp64, 1e11));
        p.smem_per_block = 32 * 1024;
        let fast = m.evaluate(&p).compute_s;
        p.bank_conflict_factor = 8.0;
        let slow = m.evaluate(&p).compute_s;
        assert!((slow / fast - 8.0).abs() < 1e-9);
    }

    #[test]
    fn ilp_efficiency_scales_cuda_time() {
        let m = CostModel::new(DeviceSpec::a100());
        let mut p = KernelProfile::named("pq_integrals");
        p.cuda_flops.push((Precision::Fp64, 1e11));
        let full = m.evaluate(&p).compute_s;
        p.ilp_efficiency = 0.25;
        let degraded = m.evaluate(&p).compute_s;
        assert!((degraded / full - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fused_beats_unfused_pipeline() {
        // Three-stage pipeline: unfused pays 3 launches and writes/reads the
        // intermediate twice; fused keeps it on chip.
        let m = CostModel::new(DeviceSpec::a100());
        let inter = 2e8; // 200 MB intermediate
        let stage = |extra_rw: f64| {
            let mut p = gemm_profile(5e8, Precision::Fp64, 1e7 + extra_rw);
            p.launches = 1;
            p
        };
        let unfused: f64 = [stage(inter), stage(2.0 * inter), stage(inter)]
            .iter()
            .map(|p| m.evaluate(p).total_s)
            .sum();
        let mut fusedp = gemm_profile(1.5e9, Precision::Fp64, 3e7);
        fusedp.launches = 1;
        let fused = m.evaluate(&fusedp).total_s;
        assert!(fused * 2.0 < unfused, "fused {fused} unfused {unfused}");
    }

    #[test]
    fn v100_runs_fp64_tensor_work_on_cuda_pipes() {
        let m = CostModel::new(DeviceSpec::new(crate::DeviceKind::V100));
        let mut p = gemm_profile(1e12, Precision::Fp64, 0.0);
        // V100 has 96 KiB SMEM: widen threads so occupancy stays >= 50%.
        p.threads_per_block = 512;
        let r = m.evaluate(&p);
        assert!(r.compute_s.is_finite());
        // 7.8 TFLOPS CUDA FP64 at 90% → ≈ 0.1424 s
        assert!((r.compute_s - 1e12 / (7.8e12 * 0.9)).abs() / r.compute_s < 1e-9);
    }

    #[test]
    fn timer_accumulates_and_merges() {
        let m = CostModel::new(DeviceSpec::a100());
        let p = gemm_profile(1e10, Precision::Fp16, 1e6);
        let mut t1 = SimTimer::new();
        let mut t2 = SimTimer::new();
        t1.run(&m, &p);
        t2.run(&m, &p);
        t2.run(&m, &p);
        let mut sum = SimTimer::new();
        sum.merge(&t1);
        sum.merge(&t2);
        assert_eq!(sum.launches(), 3);
        assert!((sum.total_seconds() - 3.0 * t1.total_seconds()).abs() < 1e-12);
    }
}
