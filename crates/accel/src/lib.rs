//! # mako-accel
//!
//! A simulated tensor-core AI accelerator and multi-GPU cluster.
//!
//! The Mako paper measures its kernels on NVIDIA A100 GPUs (single-GPU
//! microbenchmarks, 8-GPU nodes, and a 64-GPU InfiniBand cluster). This
//! reproduction has no GPU, so this crate supplies the **device model** that
//! stands in for the hardware:
//!
//! * [`device::DeviceSpec`] — per-precision peak throughput of tensor cores
//!   vs CUDA cores (the paper's Table 1), SM count, shared-memory capacity,
//!   HBM bandwidth, and kernel-launch latency;
//! * [`kernel::KernelProfile`] + [`kernel::CostModel`] — an analytical
//!   roofline-style cost model: each simulated kernel declares its FLOPs per
//!   precision, its global-memory traffic, its shared-memory footprint and
//!   its launch count, and the model converts that into simulated time,
//!   applying occupancy, instruction-level-parallelism and bank-conflict
//!   efficiency factors;
//! * [`swizzle`] — the XOR layout-swizzle bijection of KernelMako §3.1.2 and
//!   a shared-memory bank-conflict counter used to price unswizzled layouts;
//! * [`occupancy`] — threadblock residency derived from the shared-memory
//!   constraint `S(F) ≤ SMEM_max/2` of CompilerMako §3.3.1;
//! * [`clock`] — the per-iteration device-clock ledger: simulated seconds
//!   charged per SCF iteration next to the evaluated / skipped / pruned
//!   quartet populations, so incremental-SCF savings are accounted honestly;
//! * [`cluster`] — the multi-GPU execution model: worklist partitioning,
//!   NVLink/InfiniBand ring-allreduce timing, and parallel-efficiency
//!   accounting for Figure 10;
//! * [`fault`] — deterministic fault injection for the simulated cluster:
//!   seeded [`fault::FaultPlan`]s (transient kernel failures, stragglers,
//!   permanent rank loss, allreduce timeouts) charged to the device clock,
//!   plus the [`fault::RecoveryLedger`] the recovery machinery reports.
//!
//! Numerical results never come from this crate — kernels execute their math
//! on the CPU; this crate only answers "how long would that launch have taken
//! on the modeled device".

pub mod clock;
pub mod cluster;
pub mod device;
pub mod fault;
pub mod kernel;
pub mod occupancy;
pub mod swizzle;

pub use clock::{DeviceClock, EnsembleLedger, IterationLedger};
pub use fault::{FaultConfig, FaultPlan, RankFaults, RecoveryLedger};
pub use cluster::{ClusterSpec, InterconnectTier, RingAllreduce};
pub use device::{DeviceKind, DeviceSpec};
pub use kernel::{CostModel, KernelProfile, LaunchRecord, SimTimer};
pub use occupancy::{blocks_per_sm, occupancy_fraction};
pub use swizzle::{avg_column_conflict, bank_conflict_degree, swizzle_xor, SmemLayout};
