//! Multi-GPU cluster model: work partitioning and collective-communication
//! timing for the scalability experiments (paper Figure 10).
//!
//! The paper runs ubiquitin/def2-TZVP on Azure ND A100 v4 nodes — 8 A100s
//! per node with NVLink, nodes coupled by 200 Gb/s HDR InfiniBand, one MPI
//! rank per GPU, Fock contributions allreduced each SCF iteration. Parallel
//! efficiency there is governed by (a) load balance of the screened
//! shell-quartet batches, (b) the allreduce of the Fock/density matrices,
//! and (c) the replicated serial work (diagonalization). This module models
//! exactly those three terms.


/// Link classes inside the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterconnectTier {
    /// Intra-node NVLink fabric.
    NvLink,
    /// Inter-node InfiniBand.
    InfiniBand,
}

/// Geometry and link performance of the simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// GPUs per node (8 on ND A100 v4).
    pub gpus_per_node: usize,
    /// NVLink bandwidth per GPU, bytes/s (A100 NVLink3: 600 GB/s aggregate,
    /// ~300 GB/s effective per direction for collectives).
    pub nvlink_bw: f64,
    /// Inter-node bandwidth per node, bytes/s (HDR InfiniBand 200 Gb/s).
    pub ib_bw: f64,
    /// Per-message NVLink latency, seconds.
    pub nvlink_latency: f64,
    /// Per-message InfiniBand latency, seconds.
    pub ib_latency: f64,
}

impl ClusterSpec {
    /// The paper's evaluation platform: Azure ND A100 v4.
    pub fn azure_nd_a100_v4() -> ClusterSpec {
        ClusterSpec {
            gpus_per_node: 8,
            nvlink_bw: 300.0e9,
            ib_bw: 25.0e9, // 200 Gb/s
            nvlink_latency: 2.0e-6,
            ib_latency: 6.0e-6,
        }
    }

    /// Number of nodes needed for `ranks` GPUs.
    pub fn nodes_for(&self, ranks: usize) -> usize {
        ranks.div_ceil(self.gpus_per_node)
    }

    /// The slowest link class a ring over `ranks` GPUs must traverse.
    pub fn bottleneck_tier(&self, ranks: usize) -> InterconnectTier {
        if ranks <= self.gpus_per_node {
            InterconnectTier::NvLink
        } else {
            InterconnectTier::InfiniBand
        }
    }
}

/// Ring-allreduce timing model.
///
/// A ring allreduce over `n` ranks moves `2 (n−1)/n · bytes` through the
/// slowest link and pays `2 (n−1)` hop latencies. For multi-node rings the
/// bottleneck is the InfiniBand hop; intra-node rings ride NVLink.
#[derive(Debug, Clone)]
pub struct RingAllreduce {
    /// The cluster this collective runs on.
    pub spec: ClusterSpec,
}

impl RingAllreduce {
    /// Build for a cluster.
    pub fn new(spec: ClusterSpec) -> RingAllreduce {
        RingAllreduce { spec }
    }

    /// Simulated seconds to allreduce `bytes` across `ranks` GPUs.
    pub fn time(&self, bytes: f64, ranks: usize) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let n = ranks as f64;
        let volume_factor = 2.0 * (n - 1.0) / n;
        let (bw, lat) = match self.spec.bottleneck_tier(ranks) {
            InterconnectTier::NvLink => (self.spec.nvlink_bw, self.spec.nvlink_latency),
            InterconnectTier::InfiniBand => (self.spec.ib_bw, self.spec.ib_latency),
        };
        volume_factor * bytes / bw + 2.0 * (n - 1.0) * lat
    }
}

/// Greedy longest-processing-time partition of weighted work items over
/// `ranks` bins. Returns the bin index for each item.
///
/// This is the static load balancer used to distribute screened shell-quartet
/// batches across GPUs; LPT is within 4/3 of optimal and mirrors the
/// cost-sorted round-robin practical codes use.
///
/// Non-finite weights (NaN, ±∞) can reach this function when a cost model
/// divides by a zero bandwidth or overflows; they are sanitized to 0.0 —
/// the item is still assigned a rank (every batch must run somewhere) but
/// contributes nothing to the load it joins. All comparisons use
/// [`f64::total_cmp`], so this function never panics.
pub fn partition_lpt(weights: &[f64], ranks: usize) -> Vec<usize> {
    assert!(ranks > 0);
    let weights: Vec<f64> = weights
        .iter()
        .map(|&w| if w.is_finite() { w } else { 0.0 })
        .collect();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]));
    let mut loads = vec![0.0f64; ranks];
    let mut assign = vec![0usize; weights.len()];
    for &i in &order {
        let (best, _) = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("ranks > 0 guarantees a non-empty load vector");
        assign[i] = best;
        loads[best] += weights[i];
    }
    assign
}

/// Per-rank load totals for an assignment.
pub fn rank_loads(weights: &[f64], assign: &[usize], ranks: usize) -> Vec<f64> {
    let mut loads = vec![0.0f64; ranks];
    for (i, &r) in assign.iter().enumerate() {
        loads[r] += weights[i];
    }
    loads
}

/// Outcome of simulating one distributed iteration.
#[derive(Debug, Clone, Copy)]
pub struct ParallelTiming {
    /// Slowest rank's compute seconds.
    pub max_rank_compute: f64,
    /// Allreduce seconds.
    pub comm: f64,
    /// Replicated (serial) seconds every rank repeats.
    pub serial: f64,
    /// Total iteration seconds.
    pub total: f64,
}

/// Simulate one distributed iteration: quartet-batch `weights` (seconds per
/// batch), an allreduce of `allreduce_bytes`, and `serial_seconds` of
/// replicated host/diagonalization work.
pub fn simulate_iteration(
    weights: &[f64],
    ranks: usize,
    allreduce_bytes: f64,
    serial_seconds: f64,
    spec: &ClusterSpec,
) -> ParallelTiming {
    let assign = partition_lpt(weights, ranks);
    let loads = rank_loads(weights, &assign, ranks);
    let max_rank_compute = loads.iter().cloned().fold(0.0f64, f64::max);
    let comm = RingAllreduce::new(spec.clone()).time(allreduce_bytes, ranks);
    ParallelTiming {
        max_rank_compute,
        comm,
        serial: serial_seconds,
        total: max_rank_compute + comm + serial_seconds,
    }
}

/// Parallel efficiency of an `n`-rank run against the 1-rank run:
/// `t(1) / (n · t(n))`.
pub fn parallel_efficiency(t1: f64, tn: f64, n: usize) -> f64 {
    t1 / (n as f64 * tn)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_zero_for_single_rank() {
        let r = RingAllreduce::new(ClusterSpec::azure_nd_a100_v4());
        assert_eq!(r.time(1e9, 1), 0.0);
    }

    #[test]
    fn allreduce_intra_node_uses_nvlink() {
        let spec = ClusterSpec::azure_nd_a100_v4();
        let r = RingAllreduce::new(spec);
        let t8 = r.time(1e9, 8);
        let t16 = r.time(1e9, 16);
        // Crossing the node boundary switches to IB and gets much slower.
        assert!(t16 > 5.0 * t8, "t8={t8} t16={t16}");
    }

    #[test]
    fn allreduce_volume_term_saturates() {
        let r = RingAllreduce::new(ClusterSpec::azure_nd_a100_v4());
        // 2(n-1)/n → 2: doubling ranks beyond a node barely changes the
        // bandwidth term; latency term grows linearly.
        let t16 = r.time(1e6, 16);
        let t64 = r.time(1e6, 64);
        assert!(t64 > t16);
        assert!(t64 < 5.0 * t16);
    }

    #[test]
    fn lpt_balances_uniform_work() {
        let weights = vec![1.0; 64];
        let assign = partition_lpt(&weights, 8);
        let loads = rank_loads(&weights, &assign, 8);
        for l in loads {
            assert_eq!(l, 8.0);
        }
    }

    #[test]
    fn lpt_handles_skewed_work() {
        let mut weights = vec![1.0; 31];
        weights.push(8.0); // one heavy batch
        let assign = partition_lpt(&weights, 4);
        let loads = rank_loads(&weights, &assign, 4);
        let max = loads.iter().cloned().fold(0.0f64, f64::max);
        let sum: f64 = loads.iter().sum();
        assert!((sum - 39.0).abs() < 1e-12);
        // Perfect balance would be 9.75; LPT must stay within 4/3.
        assert!(max <= 9.75 * 4.0 / 3.0 + 1e-9);
    }

    #[test]
    fn lpt_survives_non_finite_weights() {
        // Regression: `partial_cmp().unwrap()` used to panic on NaN here.
        let weights = vec![1.0, f64::NAN, 2.0, f64::INFINITY, f64::NEG_INFINITY, 0.5];
        let assign = partition_lpt(&weights, 3);
        assert_eq!(assign.len(), weights.len());
        assert!(assign.iter().all(|&r| r < 3), "every item gets a valid rank");
        // Sanitized weights: non-finite → 0.0, so assignments must match the
        // explicitly sanitized run (determinism of the fix).
        let sanitized = vec![1.0, 0.0, 2.0, 0.0, 0.0, 0.5];
        assert_eq!(assign, partition_lpt(&sanitized, 3));
        // And the finite weights still balance: the two heavy items land on
        // different ranks.
        assert_ne!(assign[0], assign[2]);
    }

    #[test]
    fn lpt_all_nan_weights_do_not_panic() {
        let weights = vec![f64::NAN; 7];
        let assign = partition_lpt(&weights, 2);
        assert_eq!(assign.len(), 7);
        assert!(assign.iter().all(|&r| r < 2));
    }

    #[test]
    fn efficiency_decreases_with_ranks_under_fixed_overheads() {
        let spec = ClusterSpec::azure_nd_a100_v4();
        let weights: Vec<f64> = (0..4096).map(|i| 0.001 + 0.0005 * ((i % 7) as f64)).collect();
        let t1 = simulate_iteration(&weights, 1, 3e8, 0.4, &spec).total;
        let t8 = simulate_iteration(&weights, 8, 3e8, 0.4, &spec).total;
        let t64 = simulate_iteration(&weights, 64, 3e8, 0.4, &spec).total;
        let e8 = parallel_efficiency(t1, t8, 8);
        let e64 = parallel_efficiency(t1, t64, 64);
        assert!(e8 > e64, "e8={e8} e64={e64}");
        assert!(e8 <= 1.0 + 1e-9);
        assert!(t64 < t8, "more ranks still reduce wall time");
    }

    #[test]
    fn nodes_for_counts() {
        let spec = ClusterSpec::azure_nd_a100_v4();
        assert_eq!(spec.nodes_for(1), 1);
        assert_eq!(spec.nodes_for(8), 1);
        assert_eq!(spec.nodes_for(9), 2);
        assert_eq!(spec.nodes_for(64), 8);
    }
}
