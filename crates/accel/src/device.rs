//! Device specifications for the simulated accelerators.
//!
//! The A100 numbers reproduce Table 1 of the paper plus public datasheet
//! values for memory bandwidth, SM count and shared memory. Other devices are
//! included to exercise CompilerMako's architecture portability story.

use mako_precision::Precision;

/// Well-known device models the simulator ships with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// NVIDIA A100-SXM4-40GB (Ampere, CC 8.0) — the paper's test vehicle.
    A100_40G,
    /// NVIDIA A100-SXM4-80GB (Ampere, CC 8.0).
    A100_80G,
    /// NVIDIA V100-SXM2-16GB (Volta, CC 7.0) — no FP64 tensor cores, no TF32.
    V100,
    /// NVIDIA H100-SXM5-80GB (Hopper, CC 9.0).
    H100,
}

/// Peak arithmetic throughput and machine geometry of a simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Device family tag.
    pub kind: DeviceKind,
    /// Streaming multiprocessors.
    pub num_sms: usize,
    /// Shared memory usable per SM, bytes (A100: 164 KiB configurable).
    pub smem_per_sm: usize,
    /// Maximum threads resident per SM.
    pub max_threads_per_sm: usize,
    /// Shared-memory banks (32 on all NVIDIA parts).
    pub smem_banks: usize,
    /// HBM bandwidth, bytes/second.
    pub mem_bandwidth: f64,
    /// Kernel launch latency, seconds.
    pub launch_latency: f64,
    /// Peak tensor-core throughput per precision, FLOP/s. Zero where the
    /// architecture has no tensor path for that format.
    tensor_tflops: [f64; 5],
    /// Peak CUDA-core (general SIMT) throughput per precision, FLOP/s.
    cuda_tflops: [f64; 5],
}

const fn idx(p: Precision) -> usize {
    match p {
        Precision::Fp64 => 0,
        Precision::Fp32 => 1,
        Precision::Tf32 => 2,
        Precision::Bf16 => 3,
        Precision::Fp16 => 4,
    }
}

const T: f64 = 1.0e12;

impl DeviceSpec {
    /// Construct the spec for a known device.
    pub fn new(kind: DeviceKind) -> DeviceSpec {
        match kind {
            DeviceKind::A100_40G | DeviceKind::A100_80G => DeviceSpec {
                name: if kind == DeviceKind::A100_40G {
                    "NVIDIA A100-SXM4-40GB"
                } else {
                    "NVIDIA A100-SXM4-80GB"
                },
                kind,
                num_sms: 108,
                smem_per_sm: 164 * 1024,
                max_threads_per_sm: 2048,
                smem_banks: 32,
                mem_bandwidth: if kind == DeviceKind::A100_40G {
                    1.555e12
                } else {
                    2.039e12
                },
                launch_latency: 4.0e-6,
                // Table 1: FP64 19.5 / FP32(TF32) 156 / BF16 312 / FP16 312.
                tensor_tflops: [19.5 * T, 156.0 * T, 156.0 * T, 312.0 * T, 312.0 * T],
                // Table 1: FP64 9.7 / FP32 19.5 / BF16 78 / FP16 78.
                cuda_tflops: [9.7 * T, 19.5 * T, 19.5 * T, 78.0 * T, 78.0 * T],
            },
            DeviceKind::V100 => DeviceSpec {
                name: "NVIDIA V100-SXM2-16GB",
                kind,
                num_sms: 80,
                smem_per_sm: 96 * 1024,
                max_threads_per_sm: 2048,
                smem_banks: 32,
                mem_bandwidth: 0.9e12,
                launch_latency: 5.0e-6,
                // Volta tensor cores: FP16 only (125 TFLOPS).
                tensor_tflops: [0.0, 0.0, 0.0, 0.0, 125.0 * T],
                cuda_tflops: [7.8 * T, 15.7 * T, 15.7 * T, 31.4 * T, 31.4 * T],
            },
            DeviceKind::H100 => DeviceSpec {
                name: "NVIDIA H100-SXM5-80GB",
                kind,
                num_sms: 132,
                smem_per_sm: 228 * 1024,
                max_threads_per_sm: 2048,
                smem_banks: 32,
                mem_bandwidth: 3.35e12,
                launch_latency: 3.0e-6,
                // Dense (no sparsity) datasheet numbers.
                tensor_tflops: [67.0 * T, 494.0 * T, 494.0 * T, 989.0 * T, 989.0 * T],
                cuda_tflops: [34.0 * T, 67.0 * T, 67.0 * T, 134.0 * T, 134.0 * T],
            },
        }
    }

    /// The paper's baseline device.
    pub fn a100() -> DeviceSpec {
        DeviceSpec::new(DeviceKind::A100_40G)
    }

    /// Peak tensor-core FLOP/s for a precision (0.0 if unsupported).
    pub fn tensor_peak(&self, p: Precision) -> f64 {
        self.tensor_tflops[idx(p)]
    }

    /// Peak CUDA-core FLOP/s for a precision.
    pub fn cuda_peak(&self, p: Precision) -> f64 {
        self.cuda_tflops[idx(p)]
    }

    /// Peak int8 tensor-core throughput (OP/s). Datasheets across Turing,
    /// Ampere, and Hopper list INT8 IMMA at exactly twice the FP16 tensor
    /// rate (A100: 624 TOPS vs 312 TFLOPS), so the model derives it rather
    /// than carrying a sixth column; 0.0 where the architecture has no
    /// tensor path at all.
    pub fn int8_tensor_peak(&self) -> f64 {
        2.0 * self.tensor_peak(Precision::Fp16)
    }

    /// Tensor-over-CUDA speedup factor for a precision (Table 1's last
    /// column).
    pub fn tensor_speedup(&self, p: Precision) -> f64 {
        let c = self.cuda_peak(p);
        if c == 0.0 {
            0.0
        } else {
            self.tensor_peak(p) / c
        }
    }

    /// Render the Table 1 rows for this device (precision, tensor, CUDA,
    /// speedup) — consumed by the `table1_device_specs` bench target.
    pub fn table1_rows(&self) -> Vec<(String, f64, f64, f64)> {
        [
            (Precision::Fp64, "FP64"),
            (Precision::Fp32, "FP32/TF32"),
            (Precision::Bf16, "BF16"),
            (Precision::Fp16, "FP16"),
        ]
        .iter()
        .map(|&(p, label)| {
            let tensor = if p == Precision::Fp32 {
                self.tensor_peak(Precision::Tf32)
            } else {
                self.tensor_peak(p)
            };
            (
                label.to_string(),
                tensor / T,
                self.cuda_peak(p) / T,
                if self.cuda_peak(p) > 0.0 {
                    tensor / self.cuda_peak(p)
                } else {
                    0.0
                },
            )
        })
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_matches_paper_table1() {
        let d = DeviceSpec::a100();
        assert_eq!(d.tensor_peak(Precision::Fp64), 19.5e12);
        assert_eq!(d.cuda_peak(Precision::Fp64), 9.7e12);
        assert_eq!(d.tensor_peak(Precision::Tf32), 156.0e12);
        assert_eq!(d.cuda_peak(Precision::Fp32), 19.5e12);
        assert_eq!(d.tensor_peak(Precision::Fp16), 312.0e12);
        assert_eq!(d.cuda_peak(Precision::Fp16), 78.0e12);
        // Speedup column: 2x, 8x, 4x, 4x.
        assert!((d.tensor_speedup(Precision::Fp64) - 2.0).abs() < 0.02);
        assert!((d.tensor_peak(Precision::Tf32) / d.cuda_peak(Precision::Fp32) - 8.0).abs() < 1e-9);
        assert!((d.tensor_speedup(Precision::Fp16) - 4.0).abs() < 1e-9);
        assert!((d.tensor_speedup(Precision::Bf16) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn int8_peak_doubles_fp16() {
        // A100 datasheet: 624 TOPS INT8 = 2 × 312 TFLOPS FP16.
        assert_eq!(DeviceSpec::a100().int8_tensor_peak(), 624.0e12);
        // H100 dense: 1979 TOPS ≈ 2 × 989 TFLOPS.
        assert_eq!(DeviceSpec::new(DeviceKind::H100).int8_tensor_peak(), 1978.0e12);
        // V100 has no IMMA path worth modeling beyond its FP16 cores, but
        // the derived ratio still holds (2 × 125).
        assert_eq!(DeviceSpec::new(DeviceKind::V100).int8_tensor_peak(), 250.0e12);
    }

    #[test]
    fn table1_rows_shape() {
        let rows = DeviceSpec::a100().table1_rows();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].0, "FP64");
        assert_eq!(rows[1].3, 8.0);
    }

    #[test]
    fn v100_lacks_fp64_tensor_cores() {
        let d = DeviceSpec::new(DeviceKind::V100);
        assert_eq!(d.tensor_peak(Precision::Fp64), 0.0);
        assert_eq!(d.tensor_peak(Precision::Tf32), 0.0);
        assert!(d.tensor_peak(Precision::Fp16) > 0.0);
    }

    #[test]
    fn h100_outruns_a100_everywhere() {
        let a = DeviceSpec::a100();
        let h = DeviceSpec::new(DeviceKind::H100);
        for &p in &[
            Precision::Fp64,
            Precision::Tf32,
            Precision::Bf16,
            Precision::Fp16,
        ] {
            assert!(h.tensor_peak(p) > a.tensor_peak(p), "{p}");
        }
        assert!(h.mem_bandwidth > a.mem_bandwidth);
    }

    #[test]
    fn fp16_tensor_vs_fp64_cuda_is_32x() {
        // The headline ratio motivating QuantMako: FP16 tensor ops are 32x
        // faster than FP64 CUDA ops (312 / 9.7).
        let d = DeviceSpec::a100();
        let r = d.tensor_peak(Precision::Fp16) / d.cuda_peak(Precision::Fp64);
        assert!(r > 30.0 && r < 34.0);
    }
}
