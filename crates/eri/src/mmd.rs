//! Matrix-aligned McMurchie–Davidson ERI evaluation — the paper's
//! Algorithm 1.
//!
//! Per shell pair, the Hermite expansion matrices `E` are precomputed for
//! every surviving primitive pair, with the Cartesian→spherical transform
//! *folded in* so the two basis-transformation GEMMs emit spherical-AO
//! integrals directly. A shell quartet is then evaluated as
//!
//! ```text
//! for each ket primitive pair i:
//!     (ab|q]   = Σ_j  E_AB^(j) · [p|q]^(ji)      // GEMM accumulate
//!     (ab|cd) += (ab|q] · (E_CD^(i))ᵀ            // GEMM
//! ```
//!
//! where `[p|q]_{tuv,τνφ} = (−1)^{τ+ν+φ} · 2π^{5/2}/(pq√(p+q)) ·
//! R^{(0)}_{t+τ, u+ν, v+φ}` and the `R` tensor comes from the Boys-seeded
//! recursion in [`crate::hermite`].
//!
//! This module is the *numerical* engine; `mako-kernels` wraps the same
//! math in simulated-device pipelines (fused/unfused, quantized, batched).

use crate::boys::boys_reference;
use crate::hermite::{e_matrix, r_integrals_into};
use crate::tensor::Tensor4;
use mako_chem::cart::{hermite_components, hermite_index_map, ncart, nherm, nsph};
use mako_chem::harmonics::cart_to_sph;
use mako_chem::Shell;
use mako_linalg::{gemm_tiled, Matrix, Transpose};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Primitive-pair data of a shell pair: composite exponent, Gaussian-product
/// center, and the spherical-folded Hermite expansion matrix (contraction
/// coefficients included).
#[derive(Debug, Clone)]
pub struct PrimPair {
    /// Composite exponent p = a + b.
    pub p: f64,
    /// Gaussian product center P = (aA + bB)/p.
    pub center: [f64; 3],
    /// `(nsph_a · nsph_b) × nherm(la+lb)` spherical E matrix with the
    /// contraction coefficient folded in.
    pub e_sph: Matrix,
}

/// Precomputed shell-pair data — the static intermediate CompilerMako's
/// Reuse-Guided Planning treats as a cacheable tensor.
#[derive(Debug, Clone)]
pub struct ShellPairData {
    /// Bra/ket angular momenta.
    pub la: usize,
    /// Angular momentum of the second shell.
    pub lb: usize,
    /// Surviving primitive pairs.
    pub prims: Vec<PrimPair>,
    /// Spherical pair dimension `nsph(la)·nsph(lb)`.
    pub nsph_pair: usize,
    /// Hermite dimension `nherm(la+lb)`.
    pub nherm: usize,
}

impl ShellPairData {
    /// Combined angular momentum `la + lb`.
    pub fn l_total(&self) -> usize {
        self.la + self.lb
    }

    /// Contraction degree surviving screening (the K of the paper).
    pub fn degree(&self) -> usize {
        self.prims.len()
    }
}

/// Negligibility threshold for primitive-pair prefactors.
const PRIM_SCREEN: f64 = 1e-16;

/// Cached Kronecker products `C_a ⊗ C_b` of the cart→sph matrices, shared
/// by every engine that folds the spherical transform into its GEMMs.
pub fn sph_pair_transform(la: usize, lb: usize) -> &'static Matrix {
    static CACHE: OnceLock<parking::Cache> = OnceLock::new();
    mod parking {
        use super::Matrix;
        use std::collections::HashMap;
        use std::sync::Mutex;
        #[derive(Default)]
        pub struct Cache {
            pub map: Mutex<HashMap<(usize, usize), &'static Matrix>>,
        }
    }
    let cache = CACHE.get_or_init(Default::default);
    let mut map = cache.map.lock().unwrap();
    if let Some(m) = map.get(&(la, lb)) {
        return m;
    }
    let ca = cart_to_sph(la);
    let cb = cart_to_sph(lb);
    let (ra, ca_n) = (ca.rows(), ca.cols());
    let (rb, cb_n) = (cb.rows(), cb.cols());
    let mut kron = Matrix::zeros(ra * rb, ca_n * cb_n);
    for i in 0..ra {
        for j in 0..rb {
            for k in 0..ca_n {
                for l in 0..cb_n {
                    kron[(i * rb + j, k * cb_n + l)] = ca[(i, k)] * cb[(j, l)];
                }
            }
        }
    }
    let leaked: &'static Matrix = Box::leak(Box::new(kron));
    map.insert((la, lb), leaked);
    leaked
}

/// Build the precomputed pair data for two shells.
pub fn shell_pair(sa: &Shell, sb: &Shell) -> ShellPairData {
    let la = sa.l;
    let lb = sb.l;
    let ab = [
        sa.center[0] - sb.center[0],
        sa.center[1] - sb.center[1],
        sa.center[2] - sb.center[2],
    ];
    let ab2 = ab[0] * ab[0] + ab[1] * ab[1] + ab[2] * ab[2];
    let ncart_pair = ncart(la) * ncart(lb);
    let nh = nherm(la + lb);
    let transform = sph_pair_transform(la, lb);
    let mut prims = Vec::new();
    for (i, &a) in sa.exps.iter().enumerate() {
        for (j, &b) in sb.exps.iter().enumerate() {
            let coef = sa.coefs[i] * sb.coefs[j];
            let mu = a * b / (a + b);
            if coef.abs() * (-mu * ab2).exp() < PRIM_SCREEN {
                continue;
            }
            let p = a + b;
            let center = [
                (a * sa.center[0] + b * sb.center[0]) / p,
                (a * sa.center[1] + b * sb.center[1]) / p,
                (a * sa.center[2] + b * sb.center[2]) / p,
            ];
            let e_cart = Matrix::from_vec(ncart_pair, nh, e_matrix(la, lb, a, b, ab));
            let mut e_sph = Matrix::zeros(transform.rows(), nh);
            gemm_tiled(coef, transform, Transpose::No, &e_cart, Transpose::No, 0.0, &mut e_sph);
            prims.push(PrimPair { p, center, e_sph });
        }
    }
    ShellPairData {
        la,
        lb,
        prims,
        nsph_pair: nsph(la) * nsph(lb),
        nherm: nh,
    }
}

/// Hermite pair-combination table for `[p|q]` assembly: for bra Hermite
/// order `l_bra` and ket order `l_ket`, maps `(bra index, ket index)` to
/// `(combined hermite index, ket sign)`.
pub struct PqIndex {
    /// Flat `(nherm_bra × nherm_ket)` table of combined indices into the
    /// `hermite_components(l_bra + l_ket)` ordering.
    pub combined: Vec<usize>,
    /// `(−1)^{τ+ν+φ}` per ket index.
    pub ket_sign: Vec<f64>,
    nherm_ket: usize,
}

impl PqIndex {
    /// Build the table for the given bra/ket Hermite orders.
    pub fn new(l_bra: usize, l_ket: usize) -> PqIndex {
        let bra = hermite_components(l_bra);
        let ket = hermite_components(l_ket);
        let map: HashMap<(usize, usize, usize), usize> = hermite_index_map(l_bra + l_ket);
        let mut combined = Vec::with_capacity(bra.len() * ket.len());
        for &(t, u, v) in &bra {
            for &(tt, uu, vv) in &ket {
                combined.push(map[&(t + tt, u + uu, v + vv)]);
            }
        }
        let ket_sign = ket
            .iter()
            .map(|&(t, u, v)| if (t + u + v) % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        PqIndex {
            combined,
            ket_sign,
            nherm_ket: ket.len(),
        }
    }
}

/// Reusable workspace for repeated `[p|q]` assembly: Boys values, the
/// Hermite recursion buffer, and the `R_tuv` result. One instance per
/// worker thread amortizes every allocation in the per-primitive hot loop.
#[derive(Default)]
pub struct PqScratch {
    /// `F_0..F_l` for the current primitive pair.
    pub boys: Vec<f64>,
    /// Hermite `R` recursion workspace (see [`r_integrals_into`]).
    pub rbuf: Vec<f64>,
    /// Hermite Coulomb integrals `R_tuv` in component order.
    pub r: Vec<f64>,
}

/// Geometric precursors of one primitive-pair combination: the reduced
/// exponent `α = pq/(p+q)`, the separation `P − Q`, and the Boys argument
/// `T = α|P−Q|²`.
#[inline]
pub fn pq_geometry(bra: &PrimPair, ket: &PrimPair) -> (f64, [f64; 3], f64) {
    let alpha = bra.p * ket.p / (bra.p + ket.p);
    let pq = [
        bra.center[0] - ket.center[0],
        bra.center[1] - ket.center[1],
        bra.center[2] - ket.center[2],
    ];
    let t = alpha * (pq[0] * pq[0] + pq[1] * pq[1] + pq[2] * pq[2]);
    (alpha, pq, t)
}

/// Assemble the `[p|q]` matrix for one primitive-pair × primitive-pair
/// combination.
pub fn pq_matrix(bra: &PrimPair, ket: &PrimPair, l_bra: usize, l_ket: usize, idx: &PqIndex) -> Matrix {
    let mut scratch = PqScratch::default();
    let mut m = Matrix::zeros(nherm(l_bra), nherm(l_ket));
    pq_matrix_into(bra, ket, l_bra, l_ket, idx, &mut scratch, &mut m);
    m
}

/// Allocation-free [`pq_matrix`]: full-precision Boys values via
/// [`boys_reference`], result written into `out` (reshaped in place). This
/// is the FP64-path workhorse.
pub fn pq_matrix_into(
    bra: &PrimPair,
    ket: &PrimPair,
    l_bra: usize,
    l_ket: usize,
    idx: &PqIndex,
    scratch: &mut PqScratch,
    out: &mut Matrix,
) {
    let l_tot = l_bra + l_ket;
    let (_, _, t) = pq_geometry(bra, ket);
    scratch.boys.clear();
    scratch.boys.resize(l_tot + 1, 0.0);
    boys_reference(l_tot, t, &mut scratch.boys);
    let boys = std::mem::take(&mut scratch.boys);
    pq_matrix_from_boys(bra, ket, l_bra, l_ket, idx, &boys, scratch, out);
    scratch.boys = boys;
}

/// Assemble `[p|q]` from caller-provided Boys values `F_0..F_{l_bra+l_ket}`
/// — the quantized pipeline evaluates them in bulk per quartet through
/// [`crate::boys::BoysTable::eval_batch`] and feeds each row here.
#[allow(clippy::too_many_arguments)]
pub fn pq_matrix_from_boys(
    bra: &PrimPair,
    ket: &PrimPair,
    l_bra: usize,
    l_ket: usize,
    idx: &PqIndex,
    boys: &[f64],
    scratch: &mut PqScratch,
    out: &mut Matrix,
) {
    let (alpha, pq, _) = pq_geometry(bra, ket);
    pq_matrix_from_boys_geom(bra, ket, l_bra, l_ket, idx, alpha, pq, boys, scratch, out);
}

/// [`pq_matrix_from_boys`] with the [`pq_geometry`] precursors supplied by
/// the caller — the quantized pipeline already computes them while gathering
/// the quartet's Boys arguments, so the hot loop passes them back in instead
/// of re-deriving the same `(α, P−Q)` per combination.
#[allow(clippy::too_many_arguments)]
pub fn pq_matrix_from_boys_geom(
    bra: &PrimPair,
    ket: &PrimPair,
    l_bra: usize,
    l_ket: usize,
    idx: &PqIndex,
    alpha: f64,
    pq: [f64; 3],
    boys: &[f64],
    scratch: &mut PqScratch,
    out: &mut Matrix,
) {
    let p = bra.p;
    let q = ket.p;
    let l_tot = l_bra + l_ket;
    r_integrals_into(l_tot, alpha, pq, boys, &mut scratch.rbuf, &mut scratch.r);

    let prefac = 2.0 * std::f64::consts::PI.powf(2.5) / (p * q * (p + q).sqrt());
    let nb = nherm(l_bra);
    let nk = nherm(l_ket);
    debug_assert_eq!(idx.nherm_ket, nk);
    out.reset(nb, nk);
    let data = out.as_mut_slice();
    let r = &scratch.r;
    for (flat, &ci) in idx.combined.iter().enumerate() {
        let kj = flat % nk;
        data[flat] = prefac * idx.ket_sign[kj] * r[ci];
    }
}

/// Evaluate a shell quartet `(ab|cd)` in the spherical AO basis via the
/// matrix-aligned MMD pipeline. This is the FP64 reference every other
/// pipeline (quantized, fused, baseline) is validated against.
pub fn eri_quartet_mmd(pab: &ShellPairData, pcd: &ShellPairData) -> Tensor4 {
    let idx = PqIndex::new(pab.l_total(), pcd.l_total());
    eri_quartet_mmd_with(pab, pcd, &idx)
}

/// Same as [`eri_quartet_mmd`] but with a caller-provided [`PqIndex`]
/// (batched pipelines reuse it across every quartet of an ERI class).
pub fn eri_quartet_mmd_with(pab: &ShellPairData, pcd: &ShellPairData, idx: &PqIndex) -> Tensor4 {
    let na = nsph(pab.la);
    let nb = nsph(pab.lb);
    let nc = nsph(pcd.la);
    let nd = nsph(pcd.lb);
    let mut out = Matrix::zeros(pab.nsph_pair, pcd.nsph_pair);

    let mut abq = Matrix::zeros(pab.nsph_pair, pcd.nherm);
    let mut scratch = PqScratch::default();
    let mut pq = Matrix::zeros(nherm(pab.l_total()), nherm(pcd.l_total()));
    for ket in &pcd.prims {
        // Reset the (ab|q] accumulator for this ket primitive.
        for x in abq.as_mut_slice() {
            *x = 0.0;
        }
        for bra in &pab.prims {
            pq_matrix_into(bra, ket, pab.l_total(), pcd.l_total(), idx, &mut scratch, &mut pq);
            gemm_tiled(1.0, &bra.e_sph, Transpose::No, &pq, Transpose::No, 1.0, &mut abq);
        }
        gemm_tiled(1.0, &abq, Transpose::No, &ket.e_sph, Transpose::Yes, 1.0, &mut out);
    }

    let mut t = Tensor4::zeros([na, nb, nc, nd]);
    for ia in 0..na {
        for ib in 0..nb {
            for ic in 0..nc {
                for id in 0..nd {
                    t.set(ia, ib, ic, id, out[(ia * nb + ib, ic * nd + id)]);
                }
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use mako_chem::Shell;

    fn s_shell(center: [f64; 3], exp: f64) -> Shell {
        let def = mako_chem::basis::ShellDef {
            l: 0,
            exps: vec![exp],
            coefs: vec![1.0],
        };
        def.at(0, center)
    }

    fn shell_l(l: usize, center: [f64; 3], exp: f64) -> Shell {
        let def = mako_chem::basis::ShellDef {
            l,
            exps: vec![exp],
            coefs: vec![1.0],
        };
        def.at(0, center)
    }

    #[test]
    fn ssss_same_center_analytic() {
        // For four *normalized* s Gaussians with exponent α on one center:
        // (ss|ss) = 2π^{5/2}/(pq√(p+q)) · N⁴ with p = q = 2α, F_0(0)=1.
        let alpha = 0.9;
        let s = s_shell([0.0; 3], alpha);
        let n = s.coefs[0]; // normalized coefficient
        let pab = shell_pair(&s, &s);
        let t = eri_quartet_mmd(&pab, &pab);
        let p = 2.0 * alpha;
        let expect = 2.0 * std::f64::consts::PI.powf(2.5) / (p * p * (2.0 * p).sqrt()) * n.powi(4);
        assert!(
            ((t.get(0, 0, 0, 0) - expect) / expect).abs() < 1e-12,
            "{} vs {}",
            t.get(0, 0, 0, 0),
            expect
        );
    }

    #[test]
    fn ssss_known_value_hydrogen_like() {
        // (ss|ss) for a normalized 1s Gaussian α=1: analytic
        // 2 π^{5/2} / (4 · √8) · (2/π)^{3}·(4·1)^{0}… easier: compare to the
        // closed form √(2/π)·√α·2/√π? Use self-consistency: the value equals
        // sqrt(2/pi)*... Known result: (ss|ss) = √(2α/π) · 2/√π? Empirically
        // the Coulomb self-energy of a normalized Gaussian of exponent α is
        // √(2α/π)·2/… — instead assert positivity and exponent scaling:
        // (ss|ss)(α) scales as √α for normalized Gaussians.
        let v1 = {
            let s = s_shell([0.0; 3], 1.0);
            let p = shell_pair(&s, &s);
            eri_quartet_mmd(&p, &p).get(0, 0, 0, 0)
        };
        let v4 = {
            let s = s_shell([0.0; 3], 4.0);
            let p = shell_pair(&s, &s);
            eri_quartet_mmd(&p, &p).get(0, 0, 0, 0)
        };
        assert!(v1 > 0.0);
        assert!(((v4 / v1) - 2.0).abs() < 1e-12, "√α scaling: {}", v4 / v1);
    }

    #[test]
    fn permutation_symmetry_bra_ket() {
        // (ab|cd) = (cd|ab).
        let sa = shell_l(1, [0.0, 0.0, 0.0], 1.1);
        let sb = shell_l(0, [0.0, 0.5, 0.3], 0.7);
        let sc = shell_l(2, [0.4, -0.2, 0.0], 0.9);
        let sd = shell_l(0, [-0.3, 0.2, 0.6], 1.4);
        let pab = shell_pair(&sa, &sb);
        let pcd = shell_pair(&sc, &sd);
        let t1 = eri_quartet_mmd(&pab, &pcd);
        let t2 = eri_quartet_mmd(&pcd, &pab);
        let mut worst = 0.0f64;
        for a in 0..t1.dims[0] {
            for b in 0..t1.dims[1] {
                for c in 0..t1.dims[2] {
                    for d in 0..t1.dims[3] {
                        worst = worst.max((t1.get(a, b, c, d) - t2.get(c, d, a, b)).abs());
                    }
                }
            }
        }
        assert!(worst < 1e-12, "bra-ket symmetry violated by {worst}");
    }

    #[test]
    fn permutation_symmetry_within_pair() {
        // (ab|cd) = (ba|cd) with indices swapped.
        let sa = shell_l(1, [0.1, 0.0, 0.0], 1.3);
        let sb = shell_l(1, [0.0, 0.4, 0.2], 0.6);
        let sc = shell_l(0, [0.5, 0.5, 0.5], 2.0);
        let pab = shell_pair(&sa, &sb);
        let pba = shell_pair(&sb, &sa);
        let pcc = shell_pair(&sc, &sc);
        let t1 = eri_quartet_mmd(&pab, &pcc);
        let t2 = eri_quartet_mmd(&pba, &pcc);
        for a in 0..3 {
            for b in 0..3 {
                assert!(
                    (t1.get(a, b, 0, 0) - t2.get(b, a, 0, 0)).abs() < 1e-12,
                    "a={a} b={b}"
                );
            }
        }
    }

    #[test]
    fn translation_invariance() {
        let shift = [1.7, -2.3, 0.9];
        let mk = |c: [f64; 3], off: bool| {
            let cc = if off {
                [c[0] + shift[0], c[1] + shift[1], c[2] + shift[2]]
            } else {
                c
            };
            shell_l(2, cc, 0.8)
        };
        let (a, b) = ([0.0, 0.0, 0.0], [0.7, 0.2, -0.4]);
        let t1 = {
            let p1 = shell_pair(&mk(a, false), &mk(b, false));
            eri_quartet_mmd(&p1, &p1)
        };
        let t2 = {
            let p2 = shell_pair(&mk(a, true), &mk(b, true));
            eri_quartet_mmd(&p2, &p2)
        };
        assert!(t1.max_abs_diff(&t2) < 1e-12);
    }

    #[test]
    fn distant_charges_coulomb_limit() {
        // Two well-separated normalized s distributions interact like point
        // charges: (aa|bb) → 1/R.
        let r = 20.0;
        let sa = s_shell([0.0; 3], 1.2);
        let sb = s_shell([0.0, 0.0, r], 1.2);
        let paa = shell_pair(&sa, &sa);
        let pbb = shell_pair(&sb, &sb);
        let v = eri_quartet_mmd(&paa, &pbb).get(0, 0, 0, 0);
        assert!((v - 1.0 / r).abs() < 1e-10, "v = {v}, 1/R = {}", 1.0 / r);
    }

    #[test]
    fn contraction_linearity() {
        // A two-primitive contracted shell must equal the coefficient-
        // weighted sum of primitive quartets. Use unnormalized raw shells to
        // dodge normalization differences.
        let mk_raw = |exps: Vec<f64>, coefs: Vec<f64>| Shell {
            l: 0,
            center: [0.0, 0.1, 0.2],
            atom: 0,
            exps,
            coefs,
        };
        let contracted = mk_raw(vec![1.0, 0.4], vec![0.3, 0.7]);
        let p1 = mk_raw(vec![1.0], vec![1.0]);
        let p2 = mk_raw(vec![0.4], vec![1.0]);
        let other = mk_raw(vec![0.9], vec![1.0]);
        let pother = shell_pair(&other, &other);

        let vc = eri_quartet_mmd(&shell_pair(&contracted, &contracted), &pother).get(0, 0, 0, 0);
        let v11 = eri_quartet_mmd(&shell_pair(&p1, &p1), &pother).get(0, 0, 0, 0);
        let v12 = eri_quartet_mmd(&shell_pair(&p1, &p2), &pother).get(0, 0, 0, 0);
        let v22 = eri_quartet_mmd(&shell_pair(&p2, &p2), &pother).get(0, 0, 0, 0);
        let expect = 0.09 * v11 + 2.0 * 0.21 * v12 + 0.49 * v22;
        assert!((vc - expect).abs() < 1e-12, "{vc} vs {expect}");
    }

    #[test]
    fn high_angular_momentum_runs() {
        // (gg|gg): the class the paper's GEMM coalescing targets. Just
        // exercise it and check symmetry + finiteness.
        let sa = shell_l(4, [0.0, 0.0, 0.0], 0.5);
        let sb = shell_l(4, [0.4, 0.1, -0.2], 0.6);
        let pab = shell_pair(&sa, &sb);
        let t = eri_quartet_mmd(&pab, &pab);
        assert_eq!(t.dims, [9, 9, 9, 9]);
        assert!(t.data.iter().all(|x| x.is_finite()));
        // (ab|ab) diagonal elements are positive (Schwarz inner products).
        for a in 0..9 {
            for b in 0..9 {
                assert!(t.get(a, b, a, b) > 0.0, "diagonal ({a},{b})");
            }
        }
    }

    #[test]
    fn exponent_scaling_law() {
        // Scaling all exponents by s and all coordinates by 1/√s leaves
        // normalized-shell ERIs scaled by √s (Coulomb operator is 1/r).
        let s = 2.37;
        let base = |scale: f64| {
            let f = 1.0 / scale.sqrt();
            let sa = shell_l(1, [0.0, 0.0, 0.0], 1.1 * scale);
            let sb = shell_l(1, [0.5 * f, 0.2 * f, 0.0], 0.8 * scale);
            let p = shell_pair(&sa, &sb);
            eri_quartet_mmd(&p, &p)
        };
        let t1 = base(1.0);
        let t2 = base(s);
        for i in 0..t1.data.len() {
            let expect = t1.data[i] * s.sqrt();
            assert!(
                (t2.data[i] - expect).abs() < 1e-10 * (1.0 + expect.abs()),
                "i={i}: {} vs {}",
                t2.data[i],
                expect
            );
        }
    }
}
