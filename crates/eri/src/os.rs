//! Obara–Saika recursive ERI evaluation — the "QUICK-like" baseline.
//!
//! This is a genuinely independent second implementation of the two-electron
//! integrals: vertical recursions (Obara & Saika 1986) build the
//! `(e0|f0)^(m)` primitives, contraction happens at the `(e0|f0)` level, and
//! the Head-Gordon–Pople horizontal recursions shift angular momentum onto
//! the b/d centers. It serves two roles:
//!
//! 1. **Numerical cross-check** of the matrix-aligned MMD engine — two
//!    algorithms agreeing to 1e-10 on random quartets is this
//!    reproduction's substitute for comparing against external packages;
//! 2. **Performance baseline**: like QUICK, the recursion supports angular
//!    momentum only up to f (l = 3) and its irregular, branch-heavy
//!    execution is priced accordingly by the device model (deep recursion →
//!    poor ILP, register pressure growing with l).

use crate::boys::boys_reference;
use crate::mmd::sph_pair_transform;
use crate::tensor::Tensor4;
use mako_chem::cart::{cart_components, ncart, nsph};
use mako_chem::Shell;
use mako_linalg::{gemm, Matrix, Transpose};
use std::collections::HashMap;

/// Errors from the baseline engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EriError {
    /// Angular momentum beyond the engine's support (QUICK caps at f).
    UnsupportedAngularMomentum {
        /// The offending l.
        l: usize,
    },
}

impl std::fmt::Display for EriError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EriError::UnsupportedAngularMomentum { l } => {
                write!(f, "Obara-Saika baseline supports l ≤ 3, got {l}")
            }
        }
    }
}

impl std::error::Error for EriError {}

/// Highest angular momentum the baseline supports (f functions), mirroring
/// QUICK's published limitation — g-type shells return an error.
pub const OS_MAX_L: usize = 3;

type Tri = [i32; 3];

struct VrrCtx {
    x_pa: [f64; 3],
    x_qc: [f64; 3],
    x_pq: [f64; 3],
    p: f64,
    q: f64,
    alpha: f64,
    ssss: Vec<f64>,
}

fn dec(t: Tri, axis: usize) -> Tri {
    let mut o = t;
    o[axis] -= 1;
    o
}

fn vrr(e: Tri, f: Tri, m: usize, ctx: &VrrCtx, memo: &mut HashMap<(Tri, Tri, usize), f64>) -> f64 {
    if e.iter().any(|&x| x < 0) || f.iter().any(|&x| x < 0) {
        return 0.0;
    }
    if e == [0, 0, 0] && f == [0, 0, 0] {
        return ctx.ssss[m];
    }
    if let Some(&v) = memo.get(&(e, f, m)) {
        return v;
    }
    let val = if let Some(axis) = (0..3).find(|&i| e[i] > 0) {
        // Lower the bra index along `axis`.
        let e1 = dec(e, axis);
        let mut v = ctx.x_pa[axis] * vrr(e1, f, m, ctx, memo)
            - (ctx.alpha / ctx.p) * ctx.x_pq[axis] * vrr(e1, f, m + 1, ctx, memo);
        if e1[axis] > 0 {
            let e2 = dec(e1, axis);
            v += e1[axis] as f64 / (2.0 * ctx.p)
                * (vrr(e2, f, m, ctx, memo) - (ctx.alpha / ctx.p) * vrr(e2, f, m + 1, ctx, memo));
        }
        if f[axis] > 0 {
            v += f[axis] as f64 / (2.0 * (ctx.p + ctx.q)) * vrr(e1, dec(f, axis), m + 1, ctx, memo);
        }
        v
    } else {
        // e = 0: lower the ket index.
        let axis = (0..3).find(|&i| f[i] > 0).expect("f nonzero here");
        let f1 = dec(f, axis);
        let mut v = ctx.x_qc[axis] * vrr(e, f1, m, ctx, memo)
            + (ctx.alpha / ctx.q) * ctx.x_pq[axis] * vrr(e, f1, m + 1, ctx, memo);
        if f1[axis] > 0 {
            let f2 = dec(f1, axis);
            v += f1[axis] as f64 / (2.0 * ctx.q)
                * (vrr(e, f2, m, ctx, memo) - (ctx.alpha / ctx.q) * vrr(e, f2, m + 1, ctx, memo));
        }
        // The bra-coupling term vanishes because e = 0.
        v
    };
    memo.insert((e, f, m), val);
    val
}

/// Evaluate a shell quartet via Obara–Saika + HRR, in the spherical AO
/// basis. Returns [`EriError::UnsupportedAngularMomentum`] when any shell
/// exceeds f.
pub fn eri_quartet_os(sa: &Shell, sb: &Shell, sc: &Shell, sd: &Shell) -> Result<Tensor4, EriError> {
    for s in [sa, sb, sc, sd] {
        if s.l > OS_MAX_L {
            return Err(EriError::UnsupportedAngularMomentum { l: s.l });
        }
    }
    let (la, lb, lc, ld) = (sa.l, sb.l, sc.l, sd.l);
    let eab = la + lb;
    let ecd = lc + ld;
    let l_tot = eab + ecd;

    let ab = sub(sa.center, sb.center);
    let cd = sub(sc.center, sd.center);
    let ab2 = norm2(ab);
    let cd2 = norm2(cd);

    // Contracted (e0|f0) integrals over all needed Cartesian degrees.
    let mut e0f0: HashMap<(Tri, Tri), f64> = HashMap::new();
    let mut boys = vec![0.0f64; l_tot + 1];
    for (ia, &a) in sa.exps.iter().enumerate() {
        for (ib, &b) in sb.exps.iter().enumerate() {
            let p = a + b;
            let mu_ab = a * b / p;
            let k_ab = (-mu_ab * ab2).exp();
            let pc = combine(a, sa.center, b, sb.center, p);
            for (ic, &c) in sc.exps.iter().enumerate() {
                for (id, &d) in sd.exps.iter().enumerate() {
                    let q = c + d;
                    let mu_cd = c * d / q;
                    let k_cd = (-mu_cd * cd2).exp();
                    let qc = combine(c, sc.center, d, sd.center, q);
                    let coef =
                        sa.coefs[ia] * sb.coefs[ib] * sc.coefs[ic] * sd.coefs[id];
                    let alpha = p * q / (p + q);
                    let pq = sub(pc, qc);
                    let t = alpha * norm2(pq);
                    boys_reference(l_tot, t, &mut boys);
                    let pref =
                        2.0 * std::f64::consts::PI.powf(2.5) / (p * q * (p + q).sqrt()) * k_ab * k_cd;
                    let ssss: Vec<f64> = boys.iter().map(|&f| pref * f).collect();
                    let ctx = VrrCtx {
                        x_pa: sub(pc, sa.center),
                        x_qc: sub(qc, sc.center),
                        x_pq: pq,
                        p,
                        q,
                        alpha,
                        ssss,
                    };
                    let mut memo = HashMap::new();
                    for de in 0..=eab {
                        for e in cart_tris(de) {
                            for df in 0..=ecd {
                                for f in cart_tris(df) {
                                    let v = vrr(e, f, 0, &ctx, &mut memo);
                                    *e0f0.entry((e, f)).or_insert(0.0) += coef * v;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Horizontal recursions at the contracted level.
    let mut bra_memo: HashMap<(Tri, Tri, Tri), f64> = HashMap::new();
    let mut quartet_memo: HashMap<(Tri, Tri, Tri, Tri), f64> = HashMap::new();

    fn hrr_bra(
        a: Tri,
        b: Tri,
        f: Tri,
        ab: [f64; 3],
        e0f0: &HashMap<(Tri, Tri), f64>,
        memo: &mut HashMap<(Tri, Tri, Tri), f64>,
    ) -> f64 {
        if b == [0, 0, 0] {
            return *e0f0.get(&(a, f)).unwrap_or(&0.0);
        }
        if let Some(&v) = memo.get(&(a, b, f)) {
            return v;
        }
        let axis = (0..3).find(|&i| b[i] > 0).unwrap();
        let b1 = dec(b, axis);
        let mut a1 = a;
        a1[axis] += 1;
        let v = hrr_bra(a1, b1, f, ab, e0f0, memo) + ab[axis] * hrr_bra(a, b1, f, ab, e0f0, memo);
        memo.insert((a, b, f), v);
        v
    }

    #[allow(clippy::too_many_arguments)]
    fn hrr_ket(
        a: Tri,
        b: Tri,
        c: Tri,
        d: Tri,
        ab: [f64; 3],
        cd: [f64; 3],
        e0f0: &HashMap<(Tri, Tri), f64>,
        bra_memo: &mut HashMap<(Tri, Tri, Tri), f64>,
        memo: &mut HashMap<(Tri, Tri, Tri, Tri), f64>,
    ) -> f64 {
        if d == [0, 0, 0] {
            return hrr_bra(a, b, c, ab, e0f0, bra_memo);
        }
        if let Some(&v) = memo.get(&(a, b, c, d)) {
            return v;
        }
        let axis = (0..3).find(|&i| d[i] > 0).unwrap();
        let d1 = dec(d, axis);
        let mut c1 = c;
        c1[axis] += 1;
        let v = hrr_ket(a, b, c1, d1, ab, cd, e0f0, bra_memo, memo)
            + cd[axis] * hrr_ket(a, b, c, d1, ab, cd, e0f0, bra_memo, memo);
        memo.insert((a, b, c, d), v);
        v
    }

    // Assemble the Cartesian quartet, then spherical-transform both sides.
    let (na, nb, nc, nd) = (ncart(la), ncart(lb), ncart(lc), ncart(ld));
    let comps_a = cart_components(la);
    let comps_b = cart_components(lb);
    let comps_c = cart_components(lc);
    let comps_d = cart_components(ld);
    let mut cart = Matrix::zeros(na * nb, nc * nd);
    for (i, &ta) in comps_a.iter().enumerate() {
        for (j, &tb) in comps_b.iter().enumerate() {
            for (k, &tc) in comps_c.iter().enumerate() {
                for (l, &td) in comps_d.iter().enumerate() {
                    let v = hrr_ket(
                        tri(ta),
                        tri(tb),
                        tri(tc),
                        tri(td),
                        ab,
                        cd,
                        &e0f0,
                        &mut bra_memo,
                        &mut quartet_memo,
                    );
                    cart[(i * nb + j, k * nd + l)] = v;
                }
            }
        }
    }

    let t_ab = sph_pair_transform(la, lb);
    let t_cd = sph_pair_transform(lc, ld);
    let half = gemm(t_ab, Transpose::No, &cart, Transpose::No);
    let sph = gemm(&half, Transpose::No, t_cd, Transpose::Yes);

    let (sa_n, sb_n, sc_n, sd_n) = (nsph(la), nsph(lb), nsph(lc), nsph(ld));
    let mut out = Tensor4::zeros([sa_n, sb_n, sc_n, sd_n]);
    for i in 0..sa_n {
        for j in 0..sb_n {
            for k in 0..sc_n {
                for l in 0..sd_n {
                    out.set(i, j, k, l, sph[(i * sb_n + j, k * sd_n + l)]);
                }
            }
        }
    }
    Ok(out)
}

fn tri(t: (usize, usize, usize)) -> Tri {
    [t.0 as i32, t.1 as i32, t.2 as i32]
}

fn cart_tris(l: usize) -> Vec<Tri> {
    cart_components(l).into_iter().map(tri).collect()
}

fn sub(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn norm2(a: [f64; 3]) -> f64 {
    a[0] * a[0] + a[1] * a[1] + a[2] * a[2]
}

fn combine(a: f64, ca: [f64; 3], b: f64, cb: [f64; 3], p: f64) -> [f64; 3] {
    [
        (a * ca[0] + b * cb[0]) / p,
        (a * ca[1] + b * cb[1]) / p,
        (a * ca[2] + b * cb[2]) / p,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmd::{eri_quartet_mmd, shell_pair};
    use mako_chem::basis::ShellDef;

    fn shell(l: usize, center: [f64; 3], exps: Vec<f64>, coefs: Vec<f64>) -> Shell {
        ShellDef { l, exps, coefs }.at(0, center)
    }

    #[test]
    fn rejects_g_functions_like_quick() {
        let g = shell(4, [0.0; 3], vec![0.5], vec![1.0]);
        let s = shell(0, [0.0; 3], vec![1.0], vec![1.0]);
        assert_eq!(
            eri_quartet_os(&g, &s, &s, &s),
            Err(EriError::UnsupportedAngularMomentum { l: 4 })
        );
    }

    #[test]
    fn ssss_matches_mmd() {
        let s1 = shell(0, [0.0, 0.0, 0.0], vec![1.3], vec![1.0]);
        let s2 = shell(0, [0.8, -0.4, 0.2], vec![0.6], vec![1.0]);
        let os = eri_quartet_os(&s1, &s2, &s2, &s1).unwrap();
        let mmd = eri_quartet_mmd(&shell_pair(&s1, &s2), &shell_pair(&s2, &s1));
        assert!(os.max_abs_diff(&mmd) < 1e-13, "diff {}", os.max_abs_diff(&mmd));
    }

    #[test]
    fn cross_validation_all_classes_up_to_f() {
        // The core cross-check of the reproduction: two independent ERI
        // algorithms agree on every class up to (ff|ff)-containing quartets.
        let centers = [
            [0.0, 0.0, 0.0],
            [0.7, 0.1, -0.3],
            [-0.4, 0.5, 0.6],
            [0.2, -0.6, 0.4],
        ];
        let exps = [1.1, 0.7, 1.7, 0.5];
        for la in 0..=3usize {
            for lb in 0..=la {
                for lc in 0..=la {
                    for ld in 0..=lc {
                        let sa = shell(la, centers[0], vec![exps[0]], vec![1.0]);
                        let sb = shell(lb, centers[1], vec![exps[1]], vec![1.0]);
                        let sc = shell(lc, centers[2], vec![exps[2]], vec![1.0]);
                        let sd = shell(ld, centers[3], vec![exps[3]], vec![1.0]);
                        let os = eri_quartet_os(&sa, &sb, &sc, &sd).unwrap();
                        let mmd =
                            eri_quartet_mmd(&shell_pair(&sa, &sb), &shell_pair(&sc, &sd));
                        let diff = os.max_abs_diff(&mmd);
                        let scale = 1.0 + mmd.max_abs();
                        assert!(
                            diff < 1e-10 * scale,
                            "class ({la}{lb}|{lc}{ld}) diff {diff}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn contracted_quartets_match_mmd() {
        let sa = shell(1, [0.0, 0.0, 0.0], vec![2.0, 0.5], vec![0.4, 0.7]);
        let sb = shell(0, [0.9, 0.0, 0.1], vec![1.1, 0.3], vec![0.6, 0.5]);
        let sc = shell(2, [0.0, 0.8, -0.2], vec![0.9], vec![1.0]);
        let sd = shell(1, [-0.5, 0.3, 0.7], vec![0.7, 0.2], vec![0.8, 0.3]);
        let os = eri_quartet_os(&sa, &sb, &sc, &sd).unwrap();
        let mmd = eri_quartet_mmd(&shell_pair(&sa, &sb), &shell_pair(&sc, &sd));
        let diff = os.max_abs_diff(&mmd);
        assert!(diff < 1e-11, "contracted diff {diff}");
    }
}
