//! 3-center `(μν|P)` and 2-center `(P|Q)` Coulomb integrals for RI-J
//! density fitting, reusing the MMD/Hermite + Boys quartet machinery.
//!
//! The trick is the standard *dummy-shell* reduction: a Gaussian with
//! exponent 0 and coefficient 1 is the constant function 1, so pairing an
//! auxiliary shell `P` with such a unit s shell at its own center turns the
//! 4-index quartet engine into a 3- or 2-index one,
//!
//! ```text
//! (μν|P) = (μν | P·1)      (P|Q) = (P·1 | Q·1)
//! ```
//!
//! with **zero** new integral code: [`crate::mmd::shell_pair`] on
//! `(P, dummy)` yields a single primitive pair with `p = α_P`, product
//! center at the aux center, and the exact `E` expansion of the aux shell
//! (the `μ = α·0/(α+0) = 0` screening factor is 1, so the pair always
//! survives primitive screening). Everything downstream — Hermite `R`
//! recursion, Boys evaluation, spherical transforms, batching and device
//! pricing by [`crate::batch::EriClass`] — is the unchanged quartet path.

use crate::mmd::{eri_quartet_mmd_with, shell_pair, PqIndex, ShellPairData};
use crate::screening::schwarz_bound;
use mako_chem::{AoLayout, Shell};
use mako_linalg::Matrix;
use rayon::prelude::*;

/// The raw unit s "shell": exponent 0, coefficient 1 — the constant
/// function 1. Constructed directly (not through `ShellDef::at`, whose
/// normalization would divide by zero for a zero exponent).
fn unit_shell(center: [f64; 3]) -> Shell {
    Shell {
        l: 0,
        center,
        atom: usize::MAX,
        exps: vec![0.0],
        coefs: vec![1.0],
    }
}

/// Pair data of one auxiliary shell against the unit dummy at its own
/// center: the ket (or bra) half of every 3-/2-center integral involving
/// that shell.
pub fn aux_shell_pair(aux: &Shell) -> ShellPairData {
    shell_pair(aux, &unit_shell(aux.center))
}

/// An auxiliary basis prepared for RI-J integral evaluation: per-shell
/// dummy pairs, Schwarz bounds `√(P|P)`, and the AO layout of the aux
/// functions.
#[derive(Debug, Clone)]
pub struct AuxBasis {
    /// One `(P, dummy)` pair per aux shell, in shell order.
    pub pairs: Vec<ShellPairData>,
    /// `√((P·1|P·1))` per aux shell — `|(μν|P)| ≤ Q_μν · Q_P`.
    pub bounds: Vec<f64>,
    /// Function layout of the aux shells (offsets, l, total count).
    pub layout: AoLayout,
}

impl AuxBasis {
    /// Prepare `aux_shells` (bounds in parallel; deterministic order).
    pub fn new(aux_shells: &[Shell]) -> AuxBasis {
        let pairs: Vec<ShellPairData> =
            aux_shells.par_iter().map(aux_shell_pair).collect();
        let bounds: Vec<f64> = pairs.par_iter().map(schwarz_bound).collect();
        AuxBasis {
            pairs,
            bounds,
            layout: AoLayout::new(aux_shells),
        }
    }

    /// Number of auxiliary functions.
    pub fn naux(&self) -> usize {
        self.layout.nao
    }

    /// Number of auxiliary shells.
    pub fn nshells(&self) -> usize {
        self.pairs.len()
    }
}

/// One 3-center shell block `(μν|P)` as an `(nsph_μ·nsph_ν) × nsph_P`
/// matrix (row `= μ_local · nsph_ν + ν_local`), evaluated through the
/// quartet engine with `idx = PqIndex::new(lμ + lν, l_P)`.
pub fn three_center_block(
    pab: &ShellPairData,
    aux_pair: &ShellPairData,
    idx: &PqIndex,
) -> Matrix {
    let t = eri_quartet_mmd_with(pab, aux_pair, idx);
    let [na, nb, np, _] = t.dims;
    Matrix::from_fn(na * nb, np, |row, p| t.get(row / nb, row % nb, p, 0))
}

/// The full 2-center Coulomb metric `(P|Q)`, symmetric `naux × naux`.
/// Shell-block rows are evaluated in parallel; the result is deterministic
/// (disjoint writes, values independent of thread count).
pub fn two_center_metric(aux: &AuxBasis) -> Matrix {
    let n = aux.naux();
    let nshell = aux.nshells();
    // Evaluate the lower triangle of shell blocks (P ≥ Q), then mirror.
    let blocks: Vec<(usize, usize, Matrix)> = (0..nshell)
        .flat_map(|p| (0..=p).map(move |q| (p, q)))
        .collect::<Vec<_>>()
        .par_iter()
        .map(|&(p, q)| {
            let lp = aux.layout.shell_l[p];
            let lq = aux.layout.shell_l[q];
            let idx = PqIndex::new(lp, lq);
            (p, q, three_center_block(&aux.pairs[p], &aux.pairs[q], &idx))
        })
        .collect();
    let mut m = Matrix::zeros(n, n);
    for (p, q, block) in blocks {
        let prange = aux.layout.range(p);
        let qrange = aux.layout.range(q);
        for (pi, pg) in prange.clone().enumerate() {
            for (qi, qg) in qrange.clone().enumerate() {
                let v = block[(pi, qi)];
                m[(pg, qg)] = v;
                m[(qg, pg)] = v;
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boys::boys_single;
    use mako_chem::basis::{rij_universal, ShellDef};
    use mako_chem::builders::water;
    use mako_chem::Element;
    use mako_linalg::cholesky;
    use std::f64::consts::PI;

    fn raw_s(center: [f64; 3], exp: f64) -> Shell {
        Shell {
            l: 0,
            center,
            atom: 0,
            exps: vec![exp],
            coefs: vec![1.0],
        }
    }

    /// Analytic 3-center (ab|c) over unnormalized s Gaussians:
    /// `2π^{5/2}/(p·q·√(p+q)) · exp(−μ_ab·AB²) · F₀(pq/(p+q)·|P−C|²)`
    /// with p = a+b, q = c (the dummy contributes exponent 0).
    fn analytic_sss(
        a: f64,
        ca: [f64; 3],
        b: f64,
        cb: [f64; 3],
        c: f64,
        cc: [f64; 3],
    ) -> f64 {
        let p = a + b;
        let q = c;
        let mu = a * b / p;
        let ab2: f64 = (0..3).map(|k| (ca[k] - cb[k]).powi(2)).sum();
        let pc: [f64; 3] =
            std::array::from_fn(|k| (a * ca[k] + b * cb[k]) / p - cc[k]);
        let r2: f64 = pc.iter().map(|x| x * x).sum();
        let alpha = p * q / (p + q);
        2.0 * PI.powf(2.5) / (p * q * (p + q).sqrt())
            * (-mu * ab2).exp()
            * boys_single(0, alpha * r2)
    }

    #[test]
    fn dummy_pair_has_expected_geometry() {
        let aux = ShellDef {
            l: 2,
            exps: vec![0.8],
            coefs: vec![1.0],
        }
        .at(3, [1.0, -2.0, 0.5]);
        let pair = aux_shell_pair(&aux);
        assert_eq!(pair.degree(), 1, "one primitive pair, never screened");
        assert_eq!(pair.la, 2);
        assert_eq!(pair.lb, 0);
        let prim = &pair.prims[0];
        assert_eq!(prim.p, 0.8, "composite exponent is the aux exponent");
        assert_eq!(prim.center, [1.0, -2.0, 0.5], "product center = aux center");
    }

    #[test]
    fn three_center_sss_matches_analytic() {
        let geoms: [([f64; 3], [f64; 3], [f64; 3]); 3] = [
            ([0.0; 3], [0.0; 3], [0.0; 3]),
            ([0.0; 3], [1.1, 0.0, 0.0], [0.3, 0.7, -0.2]),
            ([0.5, -0.5, 0.0], [-0.4, 0.8, 1.0], [2.0, 0.0, -1.0]),
        ];
        for (ca, cb, cc) in geoms {
            let (a, b, c) = (1.3, 0.6, 0.9);
            let pab = shell_pair(&raw_s(ca, a), &raw_s(cb, b));
            let paux = aux_shell_pair(&raw_s(cc, c));
            let idx = PqIndex::new(0, 0);
            let got = three_center_block(&pab, &paux, &idx)[(0, 0)];
            let want = analytic_sss(a, ca, b, cb, c, cc);
            assert!(
                (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                "ca={ca:?}: got {got}, want {want}"
            );
        }
    }

    /// The exponent-0 dummy is the exact ε→0 limit of a real 4th shell:
    /// a quartet against a raw s shell with a tiny exponent converges to
    /// the 3-center value.
    #[test]
    fn dummy_is_the_small_exponent_limit() {
        let pab = shell_pair(
            &ShellDef {
                l: 1,
                exps: vec![0.9],
                coefs: vec![1.0],
            }
            .at(0, [0.0; 3]),
            &raw_s([0.8, 0.3, 0.0], 1.1),
        );
        let aux = ShellDef {
            l: 0,
            exps: vec![0.7],
            coefs: vec![1.0],
        }
        .at(1, [0.0, 1.0, 0.4]);
        let exact = three_center_block(&pab, &aux_shell_pair(&aux), &PqIndex::new(1, 0));
        let mut prev_err = f64::INFINITY;
        for eps in [1e-6, 1e-8, 1e-10] {
            let soft = shell_pair(&aux, &raw_s(aux.center, eps));
            let t = crate::mmd::eri_quartet_mmd(&pab, &soft);
            let mut err = 0.0f64;
            let nb = t.dims[1];
            for row in 0..exact.rows() {
                err = err.max((t.get(row / nb, row % nb, 0, 0) - exact[(row, 0)]).abs());
            }
            assert!(err < prev_err * 1.01, "eps={eps}: {err} vs {prev_err}");
            prev_err = err;
        }
        assert!(prev_err < 1e-5, "limit error {prev_err}");
    }

    #[test]
    fn three_center_block_is_pair_symmetric() {
        // (μν|P) must equal (νμ|P) with the bra shells swapped.
        let sa = ShellDef {
            l: 1,
            exps: vec![0.9, 0.4],
            coefs: vec![0.6, 0.5],
        }
        .at(0, [0.0; 3]);
        let sb = ShellDef {
            l: 2,
            exps: vec![0.7],
            coefs: vec![1.0],
        }
        .at(1, [1.0, 0.2, -0.4]);
        let aux = raw_s([0.3, -0.6, 0.9], 1.4);
        let paux = aux_shell_pair(&aux);
        let ab = three_center_block(&shell_pair(&sa, &sb), &paux, &PqIndex::new(3, 0));
        let ba = three_center_block(&shell_pair(&sb, &sa), &paux, &PqIndex::new(3, 0));
        let (na, nb) = (3usize, 5usize);
        for mu in 0..na {
            for nu in 0..nb {
                let x = ab[(mu * nb + nu, 0)];
                let y = ba[(nu * na + mu, 0)];
                assert!((x - y).abs() <= 1e-13 * x.abs().max(1.0));
            }
        }
    }

    #[test]
    fn water_metric_is_symmetric_positive_definite() {
        let mol = water();
        let shells = rij_universal(&[Element::H, Element::O]).shells_for(&mol);
        let aux = AuxBasis::new(&shells);
        assert_eq!(aux.naux(), 28);
        let m = two_center_metric(&aux);
        assert_eq!(m.rows(), 28);
        for i in 0..m.rows() {
            for j in 0..i {
                assert_eq!(m[(i, j)].to_bits(), m[(j, i)].to_bits(), "exact symmetry");
            }
            assert!(m[(i, i)] > 0.0, "diagonal (P|P) positive");
        }
        cholesky(&m).expect("Coulomb metric must be positive definite");
        // Bounds are consistent: (P|Q) ≤ Q_P · Q_Q elementwise by Schwarz.
        for (si, &bi) in aux.bounds.iter().enumerate() {
            for (sj, &bj) in aux.bounds.iter().enumerate() {
                for p in aux.layout.range(si) {
                    for q in aux.layout.range(sj) {
                        assert!(m[(p, q)].abs() <= bi * bj * (1.0 + 1e-10));
                    }
                }
            }
        }
    }
}
