//! The Boys function `F_m(T) = ∫₀¹ t^{2m} exp(−T t²) dt`.
//!
//! Every Coulomb-type Gaussian integral bottoms out in Boys values. Two
//! evaluators are provided:
//!
//! * [`boys_reference`] — series seed + stable downward recursion (small T)
//!   and asymptotic + upward recursion (large T); accurate to ~1e-14 and used
//!   wherever FP64 integrals are produced;
//! * [`BoysTable`] — the Gill-style pre-tabulated interpolation path the
//!   paper uses on the GPU (cubic interpolation on a dense T grid with
//!   downward recursion), accurate to ~1e-10 and much cheaper per call.

/// Largest Boys order the engine ever needs: (gg|gg) quartets require
/// `m ≤ 4·4 = 16`; +4 headroom for derivatives/tests.
pub const M_MAX: usize = 20;

/// Crossover between the series/downward branch and the asymptotic/upward
/// branch.
const T_LARGE: f64 = 35.0;

/// Evaluate `F_0..=F_m` into `out[0..=m]` with full double precision.
pub fn boys_reference(m: usize, t: f64, out: &mut [f64]) {
    assert!(out.len() > m, "output buffer too small");
    debug_assert!(t >= 0.0, "Boys argument must be non-negative");
    if t > T_LARGE {
        // Asymptotic F_0 plus upward recursion (stable for large T):
        // F_{m+1} = ((2m+1) F_m − e^{−T}) / (2T).
        let et = (-t).exp();
        out[0] = 0.5 * (std::f64::consts::PI / t).sqrt();
        for k in 0..m {
            out[k + 1] = ((2 * k + 1) as f64 * out[k] - et) / (2.0 * t);
        }
        return;
    }
    // Series for the highest order:
    // F_m(T) = e^{−T} Σ_{k≥0} (2T)^k / (2m+1)(2m+3)…(2m+2k+1).
    let et = (-t).exp();
    let two_t = 2.0 * t;
    let mut term = 1.0 / (2 * m + 1) as f64;
    let mut sum = term;
    let mut k = 0usize;
    loop {
        k += 1;
        term *= two_t / (2 * m + 2 * k + 1) as f64;
        sum += term;
        if term < sum * 1e-17 || k > 200 {
            break;
        }
    }
    out[m] = et * sum;
    // Stable downward recursion: F_k = (2T F_{k+1} + e^{−T}) / (2k+1).
    for k in (0..m).rev() {
        out[k] = (two_t * out[k + 1] + et) / (2 * k + 1) as f64;
    }
}

/// Convenience: a single `F_m(T)`.
pub fn boys_single(m: usize, t: f64) -> f64 {
    let mut buf = [0.0f64; M_MAX + 1];
    boys_reference(m, t, &mut buf);
    buf[m]
}

/// Pre-tabulated Boys evaluator: dense grid + 4-point (cubic Lagrange)
/// interpolation of `F_{m_max}`, then downward recursion for the lower
/// orders — the structure of the Gill et al. lookup-table scheme the paper
/// adopts (§3.1, "improved cubic Chebyshev interpolation … stored in a
/// lookup table").
pub struct BoysTable {
    m_max: usize,
    h: f64,
    t_max: f64,
    /// `values[i]` = F_{m_max+1}(i·h)? No — F at grid point i for order
    /// `m_max + 3` (headroom so interpolation error is attenuated by the
    /// downward recursion before reaching the requested orders).
    values: Vec<f64>,
    order: usize,
}

impl BoysTable {
    /// Build a table serving orders `0..=m_max` for arguments in
    /// `[0, t_max]`; larger arguments transparently use the asymptotic
    /// branch.
    pub fn new(m_max: usize) -> BoysTable {
        let order = m_max + 3;
        let h = 1.0 / 64.0;
        let t_max = T_LARGE;
        let n = (t_max / h) as usize + 8;
        let mut values = Vec::with_capacity(n);
        let mut buf = vec![0.0f64; order + 1];
        for i in 0..n {
            boys_reference(order, i as f64 * h, &mut buf);
            values.push(buf[order]);
        }
        BoysTable {
            m_max,
            h,
            t_max,
            values,
            order,
        }
    }

    /// Evaluate `F_0..=F_m` (m ≤ m_max) into `out`.
    pub fn eval(&self, m: usize, t: f64, out: &mut [f64]) {
        assert!(m <= self.m_max, "order exceeds table");
        self.eval_one(m, t, out);
    }

    /// Evaluate `F_0..=F_m` for a batch of arguments: row `i` of `out`
    /// (stride `m + 1`) receives `F_0..=F_m` at `ts[i]`.
    ///
    /// This is the vectorizable hot-loop entry: unlike [`boys_reference`],
    /// whose series loop runs a data-dependent number of iterations, every
    /// trip count here is fixed by `(m, self.order)` — the in-table branch
    /// is a cubic interpolation plus a fixed-length downward recursion, the
    /// out-of-table branch a closed-form asymptotic seed plus a fixed-length
    /// upward recursion, and the split between them is a single predictable
    /// comparison against the grid edge.
    pub fn eval_batch(&self, m: usize, ts: &[f64], out: &mut Vec<f64>) {
        assert!(m <= self.m_max, "order exceeds table");
        let stride = m + 1;
        out.clear();
        out.resize(ts.len() * stride, 0.0);
        for (row, &t) in out.chunks_exact_mut(stride).zip(ts) {
            self.eval_one(m, t, row);
        }
    }

    /// Shared per-argument core of [`BoysTable::eval`] / `eval_batch`.
    #[inline]
    fn eval_one(&self, m: usize, t: f64, out: &mut [f64]) {
        if t > self.t_max - 4.0 * self.h {
            // Beyond the grid: asymptotic F_0 plus upward recursion (the
            // same fixed-trip branch `boys_reference` uses for large T; at
            // the grid edge T ≈ 35 the neglected erfc tail is ~1e-16).
            let et = (-t).exp();
            out[0] = 0.5 * (std::f64::consts::PI / t).sqrt();
            for k in 0..m {
                out[k + 1] = ((2 * k + 1) as f64 * out[k] - et) / (2.0 * t);
            }
            return;
        }
        // Cubic Lagrange on the 4 nearest grid points.
        let x = t / self.h;
        let i1 = (x.floor() as usize).clamp(1, self.values.len() - 3);
        let f = x - i1 as f64; // in [-?, 1+?] near [0,1]
        let (fm1, f0, f1, f2) = (
            self.values[i1 - 1],
            self.values[i1],
            self.values[i1 + 1],
            self.values[i1 + 2],
        );
        let top = {
            // Lagrange weights for nodes -1, 0, 1, 2 at offset f.
            let a = -f * (f - 1.0) * (f - 2.0) / 6.0;
            let b = (f + 1.0) * (f - 1.0) * (f - 2.0) / 2.0;
            let c = -(f + 1.0) * f * (f - 2.0) / 2.0;
            let d = (f + 1.0) * f * (f - 1.0) / 6.0;
            a * fm1 + b * f0 + c * f1 + d * f2
        };
        // Downward recursion from the headroom order to the requested range.
        let et = (-t).exp();
        let two_t = 2.0 * t;
        let mut cur = top;
        for k in (m..self.order).rev() {
            cur = (two_t * cur + et) / (2 * k + 1) as f64;
        }
        out[m] = cur;
        for k in (0..m).rev() {
            out[k] = (two_t * out[k + 1] + et) / (2 * k + 1) as f64;
        }
    }
}

/// Process-wide shared [`BoysTable`] for orders `0..=m_max`, built lazily
/// per `m_max` so low-angular-momentum classes pay only a short downward
/// recursion (the table's headroom order is `m_max + 3`).
///
/// The quantized ERI pipeline routes every quartet's Boys batch through
/// this; the FP64 reference path keeps [`boys_reference`] so golden
/// energies are untouched by the ~1e-10 interpolation error.
pub fn shared_table(m_max: usize) -> &'static BoysTable {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Vec<OnceLock<BoysTable>>> = OnceLock::new();
    assert!(m_max <= M_MAX, "order exceeds table capacity");
    let slots = TABLES.get_or_init(|| (0..=M_MAX).map(|_| OnceLock::new()).collect());
    slots[m_max].get_or_init(|| BoysTable::new(m_max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Slow but independent check: adaptive Simpson on the defining
    /// integral.
    fn boys_quadrature(m: usize, t: f64) -> f64 {
        let f = |x: f64| x.powi(2 * m as i32) * (-t * x * x).exp();
        let n = 20_000;
        let h = 1.0 / n as f64;
        let mut s = f(0.0) + f(1.0);
        for i in 1..n {
            let x = i as f64 * h;
            s += if i % 2 == 1 { 4.0 } else { 2.0 } * f(x);
        }
        s * h / 3.0
    }

    #[test]
    fn matches_quadrature() {
        for &m in &[0usize, 1, 2, 5, 10, 16] {
            for &t in &[0.0, 0.01, 0.5, 1.0, 5.0, 20.0, 34.0] {
                let v = boys_single(m, t);
                let q = boys_quadrature(m, t);
                assert!(
                    (v - q).abs() < 1e-11,
                    "m={m} t={t}: {v} vs quadrature {q}"
                );
            }
        }
    }

    #[test]
    fn zero_argument_closed_form() {
        // F_m(0) = 1/(2m+1).
        let mut out = [0.0; M_MAX + 1];
        boys_reference(M_MAX, 0.0, &mut out);
        for (m, &f) in out.iter().enumerate() {
            assert!((f - 1.0 / (2 * m + 1) as f64).abs() < 1e-15, "m={m}");
        }
    }

    #[test]
    fn large_argument_asymptotic() {
        // F_0(T) → √(π/T)/2 as T → ∞.
        let v = boys_single(0, 400.0);
        let asym = 0.5 * (std::f64::consts::PI / 400.0).sqrt();
        assert!((v - asym).abs() < 1e-15);
    }

    #[test]
    fn recursion_identity_holds() {
        // 2T F_{m+1} = (2m+1) F_m − e^{−T} for every branch.
        for &t in &[0.3, 5.0, 34.0, 50.0, 200.0] {
            let mut out = [0.0; M_MAX + 1];
            boys_reference(M_MAX, t, &mut out);
            for m in 0..M_MAX {
                let lhs = 2.0 * t * out[m + 1];
                let rhs = (2 * m + 1) as f64 * out[m] - (-t).exp();
                assert!(
                    (lhs - rhs).abs() < 1e-13 * (1.0 + lhs.abs()),
                    "t={t} m={m}: {lhs} vs {rhs}"
                );
            }
        }
    }

    #[test]
    fn monotone_decreasing_in_m_and_t() {
        let mut out = [0.0; M_MAX + 1];
        let mut prev_f0 = f64::INFINITY;
        for &t in &[0.0, 0.5, 1.0, 2.0, 10.0, 40.0] {
            boys_reference(8, t, &mut out);
            for m in 0..8 {
                assert!(out[m + 1] <= out[m], "F decreasing in m");
                assert!(out[m] > 0.0);
            }
            assert!(out[0] <= prev_f0);
            prev_f0 = out[0];
        }
    }

    #[test]
    fn table_matches_reference() {
        let table = BoysTable::new(16);
        let mut fast = [0.0f64; M_MAX + 1];
        let mut refv = [0.0f64; M_MAX + 1];
        let mut worst = 0.0f64;
        let mut t = 0.0;
        while t < 60.0 {
            table.eval(16, t, &mut fast);
            boys_reference(16, t, &mut refv);
            for m in 0..=16 {
                worst = worst.max((fast[m] - refv[m]).abs());
            }
            t += 0.0371;
        }
        assert!(worst < 5e-10, "table worst-case error {worst}");
    }

    #[test]
    fn batch_matches_eval_bitwise() {
        let table = shared_table(10);
        let ts: Vec<f64> = (0..600).map(|i| i as f64 * 0.1).collect();
        let mut batch = Vec::new();
        table.eval_batch(10, &ts, &mut batch);
        assert_eq!(batch.len(), ts.len() * 11);
        let mut single = [0.0f64; 11];
        for (row, &t) in batch.chunks_exact(11).zip(&ts) {
            table.eval(10, t, &mut single);
            for m in 0..=10 {
                assert_eq!(
                    row[m].to_bits(),
                    single[m].to_bits(),
                    "batch vs eval diverge at t={t} m={m}"
                );
            }
        }
    }

    proptest! {
        /// `eval_batch` stays within the table's accuracy envelope of the
        /// full-precision reference over the whole argument range (grid
        /// interior, grid edge, and asymptotic tail) at every order.
        #[test]
        fn batch_matches_reference(
            m in 0usize..17,
            ts in proptest::collection::vec(0.0f64..80.0, 1..40)
        ) {
            let table = shared_table(16);
            let mut batch = Vec::new();
            table.eval_batch(m, &ts, &mut batch);
            let mut refv = [0.0f64; M_MAX + 1];
            for (row, &t) in batch.chunks_exact(m + 1).zip(&ts) {
                boys_reference(m, t, &mut refv);
                for k in 0..=m {
                    prop_assert!(
                        (row[k] - refv[k]).abs() < 5e-10,
                        "t={} m={} k={}: {} vs {}", t, m, k, row[k], refv[k]
                    );
                }
            }
        }
    }

    #[test]
    fn table_rejects_orders_beyond_capacity() {
        let table = BoysTable::new(4);
        let mut out = [0.0f64; 8];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            table.eval(6, 1.0, &mut out)
        }));
        assert!(r.is_err());
    }
}
