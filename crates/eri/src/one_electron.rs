//! One-electron integrals over contracted spherical Gaussian shells:
//! overlap `S`, kinetic energy `T`, and nuclear attraction `V`.
//!
//! All three fall out of the same Hermite machinery as the ERIs:
//! `S` from `E_0` coefficients, `T` from the standard 1D kinetic relation on
//! shifted overlaps, and `V` from the Hermite Coulomb integrals with a single
//! composite exponent (`V_ab = −Z · 2π/p · Σ_tuv E^{ab}_{tuv} R_tuv(p, P−C)`).

use crate::boys::boys_reference;
use crate::hermite::{r_integrals, ETable};
use crate::mmd::sph_pair_transform;
use mako_chem::cart::{cart_components, hermite_components, ncart};
use mako_chem::molecule::Molecule;
use mako_chem::Shell;
use mako_linalg::{gemm, Matrix, Transpose};

/// Spherical overlap block `S_{ab}` for a shell pair, shape
/// `nsph(la) × nsph(lb)`.
pub fn overlap_block(sa: &Shell, sb: &Shell) -> Matrix {
    pair_block(sa, sb, |la, lb, a, b, ab| {
        let p = a + b;
        let pref = (std::f64::consts::PI / p).powf(1.5);
        let ex = ETable::new(la, lb, a, b, ab[0]);
        let ey = ETable::new(la, lb, a, b, ab[1]);
        let ez = ETable::new(la, lb, a, b, ab[2]);
        let ca = cart_components(la);
        let cb = cart_components(lb);
        let mut m = Matrix::zeros(ca.len(), cb.len());
        for (ia, &(ax, ay, az)) in ca.iter().enumerate() {
            for (ib, &(bx, by, bz)) in cb.iter().enumerate() {
                m[(ia, ib)] = pref * ex.get(ax, bx, 0) * ey.get(ay, by, 0) * ez.get(az, bz, 0);
            }
        }
        m
    })
}

/// Spherical kinetic-energy block `T_{ab} = ⟨a| −∇²/2 |b⟩`.
pub fn kinetic_block(sa: &Shell, sb: &Shell) -> Matrix {
    pair_block(sa, sb, |la, lb, a, b, ab| {
        let p = a + b;
        let pref = (std::f64::consts::PI / p).powf(1.5);
        // 1D tables reaching j+2.
        let ex = ETable::new(la, lb + 2, a, b, ab[0]);
        let ey = ETable::new(la, lb + 2, a, b, ab[1]);
        let ez = ETable::new(la, lb + 2, a, b, ab[2]);
        let s1 = |e: &ETable, i: usize, j: i32| -> f64 {
            if j < 0 {
                0.0
            } else {
                e.get(i, j as usize, 0)
            }
        };
        // T_ij = −½[j(j−1) S_{i,j−2} − 2b(2j+1) S_{i,j} + 4b² S_{i,j+2}].
        let t1 = |e: &ETable, i: usize, j: usize| -> f64 {
            let jj = j as f64;
            -0.5 * (jj * (jj - 1.0) * s1(e, i, j as i32 - 2)
                - 2.0 * b * (2.0 * jj + 1.0) * s1(e, i, j as i32)
                + 4.0 * b * b * s1(e, i, j as i32 + 2))
        };
        let ca = cart_components(la);
        let cb = cart_components(lb);
        let mut m = Matrix::zeros(ca.len(), cb.len());
        for (ia, &(ax, ay, az)) in ca.iter().enumerate() {
            for (ib, &(bx, by, bz)) in cb.iter().enumerate() {
                let sx = s1(&ex, ax, bx as i32);
                let sy = s1(&ey, ay, by as i32);
                let sz = s1(&ez, az, bz as i32);
                let tx = t1(&ex, ax, bx);
                let ty = t1(&ey, ay, by);
                let tz = t1(&ez, az, bz);
                m[(ia, ib)] = pref * (tx * sy * sz + sx * ty * sz + sx * sy * tz);
            }
        }
        m
    })
}

/// Spherical nuclear-attraction block
/// `V_{ab} = Σ_C (−Z_C) ⟨a| 1/|r−C| |b⟩` over all nuclei of `mol`.
pub fn nuclear_block(sa: &Shell, sb: &Shell, mol: &Molecule) -> Matrix {
    pair_block(sa, sb, |la, lb, a, b, ab| {
        let p = a + b;
        let ex = ETable::new(la, lb, a, b, ab[0]);
        let ey = ETable::new(la, lb, a, b, ab[1]);
        let ez = ETable::new(la, lb, a, b, ab[2]);
        let l_tot = la + lb;
        let herm = hermite_components(l_tot);
        let ca = cart_components(la);
        let cb = cart_components(lb);
        // Gaussian product center.
        let pc = [
            (a * sa.center[0] + b * sb.center[0]) / p,
            (a * sa.center[1] + b * sb.center[1]) / p,
            (a * sa.center[2] + b * sb.center[2]) / p,
        ];
        let mut m = Matrix::zeros(ca.len(), cb.len());
        let mut boys = vec![0.0f64; l_tot + 1];
        for atom in &mol.atoms {
            let pcx = [
                pc[0] - atom.position[0],
                pc[1] - atom.position[1],
                pc[2] - atom.position[2],
            ];
            let t = p * (pcx[0] * pcx[0] + pcx[1] * pcx[1] + pcx[2] * pcx[2]);
            boys_reference(l_tot, t, &mut boys);
            let r = r_integrals(l_tot, p, pcx, &boys);
            let pref = -atom.element.charge() * 2.0 * std::f64::consts::PI / p;
            for (ia, &(ax, ay, az)) in ca.iter().enumerate() {
                for (ib, &(bx, by, bz)) in cb.iter().enumerate() {
                    let mut s = 0.0;
                    for (hi, &(t_, u, v)) in herm.iter().enumerate() {
                        if t_ <= ax + bx && u <= ay + by && v <= az + bz {
                            s += ex.get(ax, bx, t_) * ey.get(ay, by, u) * ez.get(az, bz, v) * r[hi];
                        }
                    }
                    m[(ia, ib)] += pref * s;
                }
            }
        }
        m
    })
}

/// Shared contraction + spherical-folding driver for one-electron blocks.
fn pair_block(
    sa: &Shell,
    sb: &Shell,
    mut prim_block: impl FnMut(usize, usize, f64, f64, [f64; 3]) -> Matrix,
) -> Matrix {
    let (la, lb) = (sa.l, sb.l);
    let ab = [
        sa.center[0] - sb.center[0],
        sa.center[1] - sb.center[1],
        sa.center[2] - sb.center[2],
    ];
    let mut cart = Matrix::zeros(ncart(la), ncart(lb));
    for (i, &a) in sa.exps.iter().enumerate() {
        for (j, &b) in sb.exps.iter().enumerate() {
            let coef = sa.coefs[i] * sb.coefs[j];
            let block = prim_block(la, lb, a, b, ab);
            cart.axpy(coef, &block);
        }
    }
    // Spherical transform: C_a · cart · C_bᵀ.
    let ca = mako_chem::harmonics::cart_to_sph(la);
    let cb = mako_chem::harmonics::cart_to_sph(lb);
    let half = gemm(&ca, Transpose::No, &cart, Transpose::No);
    gemm(&half, Transpose::No, &cb, Transpose::Yes)
}

/// Assemble the full AO-basis `S`, `T`, `V` matrices for a shell list.
pub fn one_electron_matrices(shells: &[Shell], mol: &Molecule) -> (Matrix, Matrix, Matrix) {
    let layout = mako_chem::AoLayout::new(shells);
    let n = layout.nao;
    let mut s = Matrix::zeros(n, n);
    let mut t = Matrix::zeros(n, n);
    let mut v = Matrix::zeros(n, n);
    for i in 0..shells.len() {
        for j in 0..=i {
            let sb = overlap_block(&shells[i], &shells[j]);
            let tb = kinetic_block(&shells[i], &shells[j]);
            let vb = nuclear_block(&shells[i], &shells[j], mol);
            let (oi, oj) = (layout.shell_offsets[i], layout.shell_offsets[j]);
            for a in 0..sb.rows() {
                for b in 0..sb.cols() {
                    s[(oi + a, oj + b)] = sb[(a, b)];
                    s[(oj + b, oi + a)] = sb[(a, b)];
                    t[(oi + a, oj + b)] = tb[(a, b)];
                    t[(oj + b, oi + a)] = tb[(a, b)];
                    v[(oi + a, oj + b)] = vb[(a, b)];
                    v[(oj + b, oi + a)] = vb[(a, b)];
                }
            }
        }
    }
    let _ = sph_pair_transform(0, 0); // keep the cache warm for callers
    (s, t, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mako_chem::basis::sto3g::sto3g;
    use mako_chem::basis::ShellDef;
    use mako_chem::builders;

    fn shell(l: usize, center: [f64; 3], exps: Vec<f64>, coefs: Vec<f64>) -> Shell {
        ShellDef { l, exps, coefs }.at(0, center)
    }

    #[test]
    fn normalized_shells_have_unit_diagonal_overlap() {
        // Validates the analytic normalization in mako-chem through a
        // completely different code path (E-coefficient overlaps).
        for l in 0..=4 {
            let s = shell(l, [0.3, -0.2, 0.5], vec![1.7, 0.5], vec![0.4, 0.7]);
            let block = overlap_block(&s, &s);
            for m in 0..s.nfunc() {
                assert!(
                    (block[(m, m)] - 1.0).abs() < 1e-12,
                    "l={l} m={m}: {}",
                    block[(m, m)]
                );
            }
        }
    }

    #[test]
    fn water_sto3g_overlap_properties() {
        let mol = builders::water();
        let shells = sto3g().shells_for(&mol);
        let (s, t, v) = one_electron_matrices(&shells, &mol);
        assert_eq!(s.rows(), 7);
        assert!(s.asymmetry() < 1e-12);
        assert!(t.asymmetry() < 1e-12);
        assert!(v.asymmetry() < 1e-12);
        for i in 0..7 {
            assert!((s[(i, i)] - 1.0).abs() < 1e-10, "S[{i}{i}] = {}", s[(i, i)]);
            assert!(t[(i, i)] > 0.0, "kinetic diagonal positive");
            assert!(v[(i, i)] < 0.0, "nuclear attraction negative");
        }
        // S must be positive definite.
        assert!(mako_linalg::cholesky(&s).is_ok());
    }

    #[test]
    fn hydrogen_atom_sto3g_energy() {
        // ⟨φ|T+V|φ⟩ for the STO-3G hydrogen 1s on a bare proton is the
        // STO-3G H-atom HF energy, −0.46658 Ha (textbook value).
        let mut mol = mako_chem::Molecule::new("H");
        mol.atoms.push(mako_chem::Atom {
            element: mako_chem::Element::H,
            position: [0.0; 3],
        });
        let shells = sto3g().shells_for(&mol);
        let (s, t, v) = one_electron_matrices(&shells, &mol);
        assert!((s[(0, 0)] - 1.0).abs() < 1e-10);
        let e = t[(0, 0)] + v[(0, 0)];
        assert!((e - (-0.46658)).abs() < 2e-4, "E(H, STO-3G) = {e}");
    }

    #[test]
    fn kinetic_via_exponent_derivative() {
        // For a normalized primitive s Gaussian: ⟨T⟩ = 3α/2.
        let alpha = 0.9;
        let s = shell(0, [0.0; 3], vec![alpha], vec![1.0]);
        let t = kinetic_block(&s, &s);
        assert!((t[(0, 0)] - 1.5 * alpha).abs() < 1e-12, "{}", t[(0, 0)]);
    }

    #[test]
    fn nuclear_attraction_point_charge_limit() {
        // An s distribution far from a unit charge sees −1/R.
        let mut mol = mako_chem::Molecule::new("H");
        mol.atoms.push(mako_chem::Atom {
            element: mako_chem::Element::H,
            position: [0.0, 0.0, 30.0],
        });
        let s = shell(0, [0.0; 3], vec![1.2], vec![1.0]);
        let v = nuclear_block(&s, &s, &mol);
        assert!((v[(0, 0)] + 1.0 / 30.0).abs() < 1e-10, "{}", v[(0, 0)]);
    }

    #[test]
    fn overlap_decays_with_distance() {
        let s0 = shell(0, [0.0; 3], vec![1.0], vec![1.0]);
        let mut prev = 1.0;
        for r in [0.5, 1.0, 2.0, 4.0] {
            let sr = shell(0, [0.0, 0.0, r], vec![1.0], vec![1.0]);
            let o = overlap_block(&s0, &sr)[(0, 0)];
            assert!(o < prev && o > 0.0);
            prev = o;
        }
    }

    #[test]
    fn p_shell_overlap_orthogonal_components() {
        // ⟨p_x | p_y⟩ on the same center vanishes.
        let p = shell(1, [0.0; 3], vec![0.8], vec![1.0]);
        let block = overlap_block(&p, &p);
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    assert!(block[(i, j)].abs() < 1e-13);
                }
            }
        }
    }
}
