//! A minimal dense rank-4 tensor for shell-quartet ERI blocks.

/// Dense rank-4 tensor, row-major in the order `(i, j, k, l)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor4 {
    /// Extents of the four axes.
    pub dims: [usize; 4],
    /// Row-major storage.
    pub data: Vec<f64>,
}

impl Tensor4 {
    /// Zero tensor of the given shape.
    pub fn zeros(dims: [usize; 4]) -> Tensor4 {
        Tensor4 {
            dims,
            data: vec![0.0; dims.iter().product()],
        }
    }

    /// Reshape in place to `dims` and zero the contents, reusing the
    /// existing allocation when it is large enough — the buffer-reuse hook
    /// of the batched pipelines.
    pub fn reset(&mut self, dims: [usize; 4]) {
        self.dims = dims;
        self.data.clear();
        self.data.resize(dims.iter().product(), 0.0);
    }

    /// Flat index of `(i, j, k, l)`.
    #[inline]
    pub fn index(&self, i: usize, j: usize, k: usize, l: usize) -> usize {
        debug_assert!(i < self.dims[0] && j < self.dims[1] && k < self.dims[2] && l < self.dims[3]);
        ((i * self.dims[1] + j) * self.dims[2] + k) * self.dims[3] + l
    }

    /// Read element `(i, j, k, l)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize, l: usize) -> f64 {
        self.data[self.index(i, j, k, l)]
    }

    /// Write element `(i, j, k, l)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, l: usize, v: f64) {
        let idx = self.index(i, j, k, l);
        self.data[idx] = v;
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, x| m.max(x.abs()))
    }

    /// Largest absolute difference against another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor4) -> f64 {
        assert_eq!(self.dims, other.dims);
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_roundtrip() {
        let mut t = Tensor4::zeros([2, 3, 4, 5]);
        assert_eq!(t.data.len(), 120);
        t.set(1, 2, 3, 4, 7.5);
        assert_eq!(t.get(1, 2, 3, 4), 7.5);
        assert_eq!(t.get(0, 0, 0, 0), 0.0);
        assert_eq!(t.index(1, 2, 3, 4), 119);
    }

    #[test]
    fn diff_and_max() {
        let mut a = Tensor4::zeros([2, 2, 2, 2]);
        let b = Tensor4::zeros([2, 2, 2, 2]);
        a.set(0, 1, 0, 1, -3.0);
        assert_eq!(a.max_abs(), 3.0);
        assert_eq!(a.max_abs_diff(&b), 3.0);
    }
}
