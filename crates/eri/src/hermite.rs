//! Hermite Gaussian machinery of the McMurchie–Davidson (MMD) scheme:
//! the expansion coefficients `E_t^{ij}` and the Hermite Coulomb integrals
//! `R^{(n)}_{tuv}` (the paper's r-integrals, Eqs. 4–5).

use mako_chem::cart::{cart_components, hermite_components, nherm};

/// One-dimensional Hermite expansion coefficients `E_t^{i,j}` for a pair of
/// Gaussians with exponents `a`, `b` separated by `x_ab = A_x − B_x`.
///
/// Returned as a flat table indexed by `[i][j][t]` with `i ≤ la`, `j ≤ lb`,
/// `t ≤ i + j` (entries with `t > i + j` are zero).
#[derive(Debug, Clone)]
pub struct ETable {
    la: usize,
    lb: usize,
    data: Vec<f64>,
}

impl ETable {
    /// Build the table by the standard two-term recursions:
    ///
    /// ```text
    /// E_0^{00}     = exp(−μ x_AB²),  μ = ab/(a+b)
    /// E_t^{i+1,j}  = E_{t−1}^{ij}/(2p) + X_PA E_t^{ij} + (t+1) E_{t+1}^{ij}
    /// E_t^{i,j+1}  = E_{t−1}^{ij}/(2p) + X_PB E_t^{ij} + (t+1) E_{t+1}^{ij}
    /// ```
    pub fn new(la: usize, lb: usize, a: f64, b: f64, x_ab: f64) -> ETable {
        let p = a + b;
        let mu = a * b / p;
        let x_pa = -b * x_ab / p; // P − A
        let x_pb = a * x_ab / p; // P − B
        let tdim = la + lb + 1;
        let mut t_buf = vec![0.0f64; (la + 1) * (lb + 1) * (tdim + 1)];
        let idx = |i: usize, j: usize, t: usize| (i * (lb + 1) + j) * (tdim + 1) + t;

        t_buf[idx(0, 0, 0)] = (-mu * x_ab * x_ab).exp();
        // Raise i with j = 0.
        for i in 0..la {
            for t in 0..=(i + 1) {
                let mut v = 0.0;
                if t > 0 {
                    v += t_buf[idx(i, 0, t - 1)] / (2.0 * p);
                }
                v += x_pa * t_buf[idx(i, 0, t)];
                v += (t + 1) as f64 * t_buf[idx(i, 0, t + 1)];
                t_buf[idx(i + 1, 0, t)] = v;
            }
        }
        // Raise j for every i.
        for i in 0..=la {
            for j in 0..lb {
                for t in 0..=(i + j + 1) {
                    let mut v = 0.0;
                    if t > 0 {
                        v += t_buf[idx(i, j, t - 1)] / (2.0 * p);
                    }
                    v += x_pb * t_buf[idx(i, j, t)];
                    if t < i + j {
                        v += (t + 1) as f64 * t_buf[idx(i, j, t + 1)];
                    }
                    t_buf[idx(i, j + 1, t)] = v;
                }
            }
        }
        ETable {
            la,
            lb,
            data: t_buf,
        }
    }

    /// `E_t^{i,j}` (zero outside the valid triangle).
    #[inline]
    pub fn get(&self, i: usize, j: usize, t: usize) -> f64 {
        if t > i + j || i > self.la || j > self.lb {
            return 0.0;
        }
        let tdim = self.la + self.lb + 1;
        self.data[(i * (self.lb + 1) + j) * (tdim + 1) + t]
    }
}

/// The 3D Hermite expansion matrix `E^{ab}_{(cart pair) × (tuv)}` for a
/// primitive pair: rows run over Cartesian component pairs of shells
/// `(la, lb)` (row = ca · ncart(lb) + cb), columns over Hermite components
/// `(t,u,v)` with `t+u+v ≤ la+lb`.
///
/// `E^{ab}_{tuv} = E_t^{i i'} · E_u^{j j'} · E_v^{k k'}`.
pub fn e_matrix(la: usize, lb: usize, a: f64, b: f64, ab: [f64; 3]) -> Vec<f64> {
    let ex = ETable::new(la, lb, a, b, ab[0]);
    let ey = ETable::new(la, lb, a, b, ab[1]);
    let ez = ETable::new(la, lb, a, b, ab[2]);
    let ca = cart_components(la);
    let cb = cart_components(lb);
    let herm = hermite_components(la + lb);
    let ncols = herm.len();
    let mut m = vec![0.0f64; ca.len() * cb.len() * ncols];
    for (ia, &(ax, ay, az)) in ca.iter().enumerate() {
        for (ib, &(bx, by, bz)) in cb.iter().enumerate() {
            let row = ia * cb.len() + ib;
            for (hc, &(t, u, v)) in herm.iter().enumerate() {
                if t <= ax + bx && u <= ay + by && v <= az + bz {
                    m[row * ncols + hc] = ex.get(ax, bx, t) * ey.get(ay, by, u) * ez.get(az, bz, v);
                }
            }
        }
    }
    m
}

/// Hermite Coulomb integrals `R^{(0)}_{tuv}` for all `t+u+v ≤ l`, given the
/// Boys values `F_0..F_l` at `T = α |PQ|²` and the separation `pq = P − Q`.
///
/// Built by the paper's Eq. (5) recursion:
/// `R^{(n)}_{t+1,u,v} = t R^{(n+1)}_{t−1,u,v} + X_PQ R^{(n+1)}_{t,u,v}` (and
/// cyclically for u, v), seeded by `R^{(n)}_{000} = (−2α)^n F_n(T)`.
///
/// Returns a flat vector over [`hermite_components`]`(l)` ordering.
pub fn r_integrals(l: usize, alpha: f64, pq: [f64; 3], boys: &[f64]) -> Vec<f64> {
    let mut buf = Vec::new();
    let mut out = Vec::new();
    r_integrals_into(l, alpha, pq, boys, &mut buf, &mut out);
    out
}

/// Allocation-free [`r_integrals`]: the recursion workspace `buf` and the
/// result `out` are caller-provided and reused across the per-primitive hot
/// loop of the quantized pipeline. `out` is overwritten with the
/// [`nherm`]`(l)` values in [`hermite_components`] ordering.
pub fn r_integrals_into(
    l: usize,
    alpha: f64,
    pq: [f64; 3],
    boys: &[f64],
    buf: &mut Vec<f64>,
    out: &mut Vec<f64>,
) {
    assert!(boys.len() > l, "need F_0..F_l");
    let dim = l + 1;
    let stride_n = dim * dim * dim;
    let idx = |n: usize, t: usize, u: usize, v: usize| n * stride_n + (t * dim + u) * dim + v;
    // The recursion only ever reads entries it has already written this
    // call (seeds, then strictly lower total degrees), so the workspace can
    // be reused without re-zeroing.
    let need = (l + 1) * stride_n;
    if buf.len() < need {
        buf.resize(need, 0.0);
    }

    let mut pow = 1.0;
    for n in 0..=l {
        buf[idx(n, 0, 0, 0)] = pow * boys[n];
        pow *= -2.0 * alpha;
    }

    // Ascending total degree; for each target we need degree−1 and degree−2
    // entries at auxiliary order n+1, which are already present.
    for deg in 1..=l {
        for t in 0..=deg {
            for u in 0..=(deg - t) {
                let v = deg - t - u;
                for n in 0..=(l - deg) {
                    let val = if t > 0 {
                        let mut s = pq[0] * buf[idx(n + 1, t - 1, u, v)];
                        if t > 1 {
                            s += (t - 1) as f64 * buf[idx(n + 1, t - 2, u, v)];
                        }
                        s
                    } else if u > 0 {
                        let mut s = pq[1] * buf[idx(n + 1, t, u - 1, v)];
                        if u > 1 {
                            s += (u - 1) as f64 * buf[idx(n + 1, t, u - 2, v)];
                        }
                        s
                    } else {
                        let mut s = pq[2] * buf[idx(n + 1, t, u, v - 1)];
                        if v > 1 {
                            s += (v - 1) as f64 * buf[idx(n + 1, t, u, v - 2)];
                        }
                        s
                    };
                    buf[idx(n, t, u, v)] = val;
                }
            }
        }
    }

    let herm = mako_chem::cart::hermite_components_cached(l);
    out.clear();
    out.reserve(nherm(l));
    for &(t, u, v) in herm {
        out.push(buf[idx(0, t, u, v)]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boys::boys_reference;

    #[test]
    fn e00_is_gaussian_product_prefactor() {
        let (a, b, x) = (1.3, 0.7, 0.9);
        let e = ETable::new(0, 0, a, b, x);
        let mu = a * b / (a + b);
        assert!((e.get(0, 0, 0) - (-mu * x * x).exp()).abs() < 1e-15);
    }

    #[test]
    fn e_sum_rule_overlap() {
        // The 1D overlap ∫ G_i G_j dx = E_0^{ij} √(π/p). Check i=j=0 and the
        // translation-invariance property E_t^{ij}(x_ab) = parity flip under
        // x_ab → −x_ab with (i ↔ j).
        let (a, b, x) = (0.8, 1.9, -0.63);
        let e1 = ETable::new(3, 2, a, b, x);
        let e2 = ETable::new(2, 3, b, a, -x);
        for i in 0..=3 {
            for j in 0..=2 {
                for t in 0..=(i + j) {
                    assert!(
                        (e1.get(i, j, t) - e2.get(j, i, t)).abs() < 1e-13,
                        "swap symmetry i={i} j={j} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn e_derivative_consistency() {
        // d/dA_x E_0^{00} = 2a E_0^{10}? The first Hermite relation gives
        // E_0^{10} = X_PA E_0^{00}; check against finite differences of the
        // Gaussian product prefactor moment:
        // ∫ (x − A) e^{−a(x−A)²} e^{−b(x−B)²} dx = E_0^{10} √(π/p) with the
        // origin at A… instead verify the simplest analytic case directly:
        // for i=1, j=0: E_0^{10} = X_PA e^{−μ x²}, E_1^{10} = e^{−μ x²}/(2p).
        let (a, b, x) = (1.1, 0.4, 0.77);
        let p = a + b;
        let e = ETable::new(1, 0, a, b, x);
        let k = (-(a * b / p) * x * x).exp();
        let x_pa = -b * x / p;
        assert!((e.get(1, 0, 0) - x_pa * k).abs() < 1e-14);
        assert!((e.get(1, 0, 1) - k / (2.0 * p)).abs() < 1e-14);
    }

    #[test]
    fn e_matrix_shape_and_s_content() {
        let m = e_matrix(1, 1, 0.9, 1.4, [0.3, -0.2, 0.5]);
        // 3×3 cart pairs × nherm(2)=10 columns.
        assert_eq!(m.len(), 9 * 10);
        // Row (x,x): only t-components along x and the scalar can be nonzero.
        // Column for (0,1,0) (index 2 in hermite ordering of l=2:
        // degree0:(000); degree1:(100),(010),(001) → index 2 is (010)).
        let row_xx = 0usize;
        assert_eq!(m[row_xx * 10 + 2], 0.0);
        assert_eq!(m[row_xx * 10 + 3], 0.0);
        assert!(m[row_xx * 10] != 0.0);
    }

    #[test]
    fn r000_seed_and_symmetry() {
        let l = 4;
        let alpha = 0.8;
        let pq = [0.0, 0.0, 0.0];
        let mut boys = vec![0.0; l + 1];
        boys_reference(l, 0.0, &mut boys);
        let r = r_integrals(l, alpha, pq, &boys);
        // At PQ = 0, odd-degree R vanish.
        let herm = mako_chem::cart::hermite_components(l);
        for (i, &(t, u, v)) in herm.iter().enumerate() {
            if (t + u + v) % 2 == 1 {
                assert_eq!(r[i], 0.0, "odd component ({t},{u},{v})");
            }
        }
        assert!((r[0] - 1.0).abs() < 1e-15); // F_0(0) = 1
    }

    #[test]
    fn r_matches_finite_difference_derivative() {
        // R_{100} = ∂/∂PQ_x R_{000} evaluated as a derivative of
        // F_0(α|PQ|²) — check with central differences.
        let l = 2;
        let alpha = 0.9;
        let pq = [0.4, -0.3, 0.8];
        let t_of = |q: [f64; 3]| alpha * (q[0] * q[0] + q[1] * q[1] + q[2] * q[2]);
        let f0 = |q: [f64; 3]| {
            let mut b = vec![0.0; 1];
            boys_reference(0, t_of(q), &mut b);
            b[0]
        };
        let h = 1e-5;
        let mut qp = pq;
        qp[0] += h;
        let mut qm = pq;
        qm[0] -= h;
        let fd = (f0(qp) - f0(qm)) / (2.0 * h);

        let mut boys = vec![0.0; l + 1];
        boys_reference(l, t_of(pq), &mut boys);
        let r = r_integrals(l, alpha, pq, &boys);
        // hermite ordering for l=2: index 1 = (100).
        assert!((r[1] - fd).abs() < 1e-8, "R100 {} vs fd {}", r[1], fd);
    }

    #[test]
    fn r_second_derivative() {
        // R_{200} = ∂²/∂PQ_x² F_0.
        let alpha = 1.2;
        let pq = [0.25, 0.6, -0.45];
        let t_of = |q: [f64; 3]| alpha * (q[0] * q[0] + q[1] * q[1] + q[2] * q[2]);
        let f0 = |q: [f64; 3]| {
            let mut b = [0.0];
            boys_reference(0, t_of(q), &mut b);
            b[0]
        };
        let h = 1e-4;
        let mut qp = pq;
        qp[0] += h;
        let mut qm = pq;
        qm[0] -= h;
        let fd2 = (f0(qp) - 2.0 * f0(pq) + f0(qm)) / (h * h);
        let mut boys = vec![0.0; 3];
        boys_reference(2, t_of(pq), &mut boys);
        let r = r_integrals(2, alpha, pq, &boys);
        // l=2 hermite ordering: degree2 starts at index 4: (200),(110),(101),(020),(011),(002)
        assert!((r[4] - fd2).abs() < 1e-5, "R200 {} vs fd {}", r[4], fd2);
    }
}
