//! # mako-eri
//!
//! The electron-repulsion-integral engine of the Mako reproduction.
//!
//! Two independent algorithms are implemented from scratch:
//!
//! * the **matrix-aligned McMurchie–Davidson** scheme of the paper's
//!   Algorithm 1 ([`mmd`]) — Boys function → r-integrals (Hermite Coulomb
//!   recursion) → `[p|q]` assembly → two basis-transformation GEMMs with the
//!   Cartesian→spherical transform folded in; and
//! * the **Obara–Saika / Head-Gordon–Pople** recursive scheme ([`os`]) — the
//!   "QUICK-like" baseline, capped at f functions, used both as a
//!   performance baseline and as an independent numerical cross-check.
//!
//! Supporting machinery: the Boys function with a Gill-style lookup table
//! ([`boys`]), Hermite expansion coefficients and Coulomb integrals
//! ([`hermite`]), one-electron integrals ([`one_electron`]), Schwarz
//! screening ([`screening`]), ERI-class batching ([`batch`]), and the
//! 3-/2-center RI-J integrals via the dummy-shell reduction ([`rij`]).
#![deny(rust_2018_idioms)]


pub mod batch;
pub mod boys;
pub mod hermite;
pub mod mmd;
pub mod one_electron;
pub mod os;
pub mod rij;
pub mod screening;
pub mod tensor;

pub use batch::{batch_quartets, EriClass, QuartetBatch};
pub use boys::{boys_reference, boys_single, shared_table, BoysTable};
pub use mmd::{
    eri_quartet_mmd, eri_quartet_mmd_with, pq_geometry, pq_matrix, pq_matrix_from_boys,
    pq_matrix_into, shell_pair, PqIndex, PqScratch, PrimPair, ShellPairData,
};
pub use one_electron::{kinetic_block, nuclear_block, one_electron_matrices, overlap_block};
pub use os::{eri_quartet_os, EriError, OS_MAX_L};
pub use rij::{aux_shell_pair, three_center_block, two_center_metric, AuxBasis};
pub use screening::{
    build_screened_pairs, classify, schwarz_bound, schwarz_estimate, DensityBlockMax,
    ImportanceClass, ScreenedPair,
};
pub use tensor::Tensor4;
