//! ERI-class bookkeeping and quartet batching.
//!
//! Quartets sharing angular momenta and contraction degrees follow the same
//! execution pattern (paper §2.1) — the key observation behind CompilerMako:
//! group them into batches, plan one fused kernel per class, run the batch as
//! batched GEMMs. [`EriClass`] is the planning key; [`QuartetBatch`] is the
//! work unit the simulated pipelines and the distributed driver schedule.

use crate::screening::ScreenedPair;
use mako_chem::cart::{l_letter, nherm, nsph};
use std::collections::HashMap;

/// The static execution-pattern key of a shell quartet: four angular momenta
/// plus bra/ket contraction degrees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EriClass {
    /// Bra angular momenta.
    pub la: usize,
    /// Second bra angular momentum.
    pub lb: usize,
    /// Ket angular momenta.
    pub lc: usize,
    /// Second ket angular momentum.
    pub ld: usize,
    /// Bra contraction degree `K_AB` (primitive-pair count).
    pub kab: usize,
    /// Ket contraction degree `K_CD`.
    pub kcd: usize,
}

impl EriClass {
    /// Combined bra angular momentum.
    pub fn l_bra(&self) -> usize {
        self.la + self.lb
    }

    /// Combined ket angular momentum.
    pub fn l_ket(&self) -> usize {
        self.lc + self.ld
    }

    /// Spherical output size per quartet.
    pub fn out_size(&self) -> usize {
        nsph(self.la) * nsph(self.lb) * nsph(self.lc) * nsph(self.ld)
    }

    /// Hermite dimensions (bra, ket).
    pub fn herm_dims(&self) -> (usize, usize) {
        (nherm(self.l_bra()), nherm(self.l_ket()))
    }

    /// FLOPs of the two basis-transformation GEMMs for ONE quartet:
    /// `(ab|q] = E_AB · [p|q]` is `(nsph_ab × H_ab × H_cd)` MACs per bra
    /// primitive, and `(ab|cd) = (ab|q] · E_CDᵀ` is
    /// `(nsph_ab × H_cd × nsph_cd)` per ket primitive. One MAC = 2 FLOPs.
    pub fn transform_flops(&self) -> f64 {
        let (hb, hk) = self.herm_dims();
        let nab = (nsph(self.la) * nsph(self.lb)) as f64;
        let ncd = (nsph(self.lc) * nsph(self.ld)) as f64;
        let first = nab * hb as f64 * hk as f64 * (self.kab * self.kcd) as f64;
        let second = nab * hk as f64 * ncd * self.kcd as f64;
        2.0 * (first + second)
    }

    /// FLOPs of the non-GEMM stages for one quartet: Boys-function
    /// evaluation (exp + table interpolation + downward recursion, ~80 FLOPs
    /// plus ~12 per order), the r-integral recursion, and `[p|q]` assembly —
    /// all per primitive-pair product. For low-l, high-K classes the Boys
    /// term dominates, which is what makes (ss|ss)-type quartets far from
    /// free even though their GEMMs are trivial.
    pub fn rpq_flops(&self) -> f64 {
        let l = self.l_bra() + self.l_ket();
        let boys = 80.0 + 12.0 * (l + 1) as f64;
        let prim_setup = 40.0; // centers, prefactors, screening compare
        let r_terms = ((l + 1) * (l + 2) * (l + 3) / 6) as f64 * (l + 1) as f64;
        let (hb, hk) = self.herm_dims();
        let pq_terms = (hb * hk) as f64;
        (boys + prim_setup + 3.0 * r_terms + 2.0 * pq_terms) * (self.kab * self.kcd) as f64
    }

    /// Display label like `(dd|dd) K={5,1}`.
    pub fn label(&self) -> String {
        format!(
            "({}{}|{}{}) K={{{},{}}}",
            l_letter(self.la),
            l_letter(self.lb),
            l_letter(self.lc),
            l_letter(self.ld),
            self.kab,
            self.kcd
        )
    }
}

/// A batch of shell quartets sharing one [`EriClass`]: indices into a
/// screened-pair list, as (bra pair, ket pair).
#[derive(Debug, Clone)]
pub struct QuartetBatch {
    /// The shared class.
    pub class: EriClass,
    /// (bra pair index, ket pair index) into the screened-pair list.
    pub quartets: Vec<(usize, usize)>,
}

impl QuartetBatch {
    /// Quartets in the batch.
    pub fn len(&self) -> usize {
        self.quartets.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.quartets.is_empty()
    }
}

/// Group all unique pair-of-pairs combinations `(bra ≥ ket)` whose Schwarz
/// product exceeds `threshold` into per-class batches.
pub fn batch_quartets(pairs: &[ScreenedPair], threshold: f64) -> Vec<QuartetBatch> {
    let mut map: HashMap<EriClass, Vec<(usize, usize)>> = HashMap::new();
    for (pi, pab) in pairs.iter().enumerate() {
        for (qi, pcd) in pairs.iter().enumerate().take(pi + 1) {
            if pab.bound * pcd.bound < threshold {
                continue;
            }
            let class = EriClass {
                la: pab.data.la,
                lb: pab.data.lb,
                lc: pcd.data.la,
                ld: pcd.data.lb,
                kab: pab.data.degree(),
                kcd: pcd.data.degree(),
            };
            map.entry(class).or_default().push((pi, qi));
        }
    }
    let mut batches: Vec<QuartetBatch> = map
        .into_iter()
        .map(|(class, quartets)| QuartetBatch { class, quartets })
        .collect();
    batches.sort_by_key(|b| b.class);
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::screening::build_screened_pairs;
    use mako_chem::basis::ShellDef;
    use mako_chem::Shell;

    fn shell(l: usize, center: [f64; 3], nprim: usize) -> Shell {
        let exps: Vec<f64> = (0..nprim).map(|i| 2.0 / (i + 1) as f64).collect();
        let coefs = vec![1.0 / nprim as f64; nprim];
        ShellDef { l, exps, coefs }.at(0, center)
    }

    #[test]
    fn class_labels() {
        let c = EriClass {
            la: 2,
            lb: 2,
            lc: 4,
            ld: 4,
            kab: 5,
            kcd: 1,
        };
        assert_eq!(c.label(), "(dd|gg) K={5,1}");
        assert_eq!(c.out_size(), 25 * 81);
        assert_eq!(c.herm_dims(), (nherm(4), nherm(8)));
    }

    #[test]
    fn flops_grow_with_angular_momentum() {
        let mk = |l: usize| EriClass {
            la: l,
            lb: l,
            lc: l,
            ld: l,
            kab: 1,
            kcd: 1,
        };
        let mut prev = 0.0;
        for l in 0..=4 {
            let f = mk(l).transform_flops();
            assert!(f > prev, "l={l}");
            prev = f;
        }
        // (gg|gg) transform cost is dominated by the first GEMM:
        // 81 × 165 × 165 × 2 ≈ 4.4 MFLOP.
        assert!(mk(4).transform_flops() > 4.0e6);
    }

    #[test]
    fn batching_groups_by_class() {
        let shells = vec![
            shell(0, [0.0; 3], 3),
            shell(0, [1.0, 0.0, 0.0], 3),
            shell(1, [0.0, 1.0, 0.0], 1),
        ];
        let pairs = build_screened_pairs(&shells, 0.0);
        assert_eq!(pairs.len(), 6);
        let batches = batch_quartets(&pairs, 0.0);
        // Total quartets = 6·7/2 = 21 across all classes.
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 21);
        // All members of a batch share the class key.
        for b in &batches {
            for &(pi, qi) in &b.quartets {
                assert_eq!(pairs[pi].data.la, b.class.la);
                assert_eq!(pairs[qi].data.lb, b.class.ld);
            }
        }
    }

    #[test]
    fn batch_screening_threshold_prunes() {
        // 4 Bohr apart: the cross pair survives primitive screening but its
        // Schwarz bound is ~1e-7, so cross×cross quartets prune at 1e-8.
        let shells = vec![shell(0, [0.0; 3], 1), shell(0, [4.0, 0.0, 0.0], 1)];
        let pairs = build_screened_pairs(&shells, 0.0);
        assert_eq!(pairs.len(), 3, "cross pair must survive");
        let all = batch_quartets(&pairs, 0.0);
        let pruned = batch_quartets(&pairs, 1e-8);
        let n_all: usize = all.iter().map(|b| b.len()).sum();
        let n_pruned: usize = pruned.iter().map(|b| b.len()).sum();
        assert!(n_pruned < n_all);
    }
}
