//! Schwarz screening: rigorous Cauchy–Schwarz bounds on ERI magnitudes.
//!
//! `|(ab|cd)| ≤ √(ab|ab) · √(cd|cd)` — the inequality behind both integral
//! pruning and QuantMako's *Convergence-Aware Scheduling*, which classifies
//! quartets as FP64 / quantized / negligible by comparing density-weighted
//! bounds against per-iteration thresholds (paper §3.2.3).

use crate::mmd::{eri_quartet_mmd, shell_pair, ShellPairData};
use mako_chem::{AoLayout, Shell};
use mako_linalg::Matrix;
use rayon::prelude::*;

/// A shell pair with its Schwarz bound and originating shell indices.
#[derive(Debug, Clone)]
pub struct ScreenedPair {
    /// Index of the first shell.
    pub i: usize,
    /// Index of the second shell.
    pub j: usize,
    /// Precomputed pair data.
    pub data: ShellPairData,
    /// `√(max_ab (ab|ab))`.
    pub bound: f64,
}

/// Schwarz bound of a shell pair: `√(max_{a∈A, b∈B} (ab|ab))`.
pub fn schwarz_bound(pair: &ShellPairData) -> f64 {
    let t = eri_quartet_mmd(pair, pair);
    let (na, nb) = (t.dims[0], t.dims[1]);
    let mut m = 0.0f64;
    for a in 0..na {
        for b in 0..nb {
            m = m.max(t.get(a, b, a, b));
        }
    }
    m.max(0.0).sqrt()
}

/// Build all shell pairs `(i, j)` with `i ≥ j`, dropping those whose Schwarz
/// bound falls below `threshold` (no quartet containing them can matter).
///
/// Pair construction and the O(nshell²) Schwarz bounds are embarrassingly
/// parallel, so the (i, j) list fans out over the rayon pool; the output
/// order is exactly the serial `i ≥ j` enumeration regardless of thread
/// count (indexed parallel collect preserves ordering).
pub fn build_screened_pairs(shells: &[Shell], threshold: f64) -> Vec<ScreenedPair> {
    let ij: Vec<(usize, usize)> = (0..shells.len())
        .flat_map(|i| (0..=i).map(move |j| (i, j)))
        .collect();
    ij.par_iter()
        .filter_map(|&(i, j)| {
            let data = shell_pair(&shells[i], &shells[j]);
            if data.prims.is_empty() {
                return None;
            }
            let bound = schwarz_bound(&data);
            (bound >= threshold).then_some(ScreenedPair { i, j, data, bound })
        })
        .collect()
}

/// Density-weighted Schwarz estimate of a quartet:
/// `Q_ab · Q_cd · max(|D|, 1e-30)` — the quantity the incremental (ΔD)
/// screen and the convergence-aware scheduler both compare against their
/// thresholds. The `1e-30` density floor keeps the estimate nonzero (and
/// threshold comparisons meaningful) for all-zero density blocks, and is
/// the **single** definition every caller shares — [`classify`], the fock
/// phase-0 ΔD screen, and the quantization scheduler all see identical
/// estimates for identical inputs.
#[inline]
pub fn schwarz_estimate(bound_ab: f64, bound_cd: f64, density_max: f64) -> f64 {
    bound_ab * bound_cd * density_max.max(1e-30)
}

/// Per-shell-block magnitudes of a density matrix: `max |D_{μν}|` over the
/// AO block of every (shell, shell) pair.
///
/// This is the density side of *density-weighted* Schwarz screening: for a
/// quartet `(ab|cd)`, the J/K scatter only ever multiplies integrals against
/// the six blocks `D_cd, D_ab, D_ac, D_ad, D_bc, D_bd`, so
/// `Q_ab · Q_cd · max(those blocks)` bounds every contribution the quartet
/// can make. Built once per Fock build in O(nao²), it turns the per-quartet
/// screen into six table lookups. With a *difference* density ΔD = D − D_ref
/// the block maxima shrink as the SCF converges, which is what makes the
/// incremental screen dynamic.
#[derive(Debug, Clone)]
pub struct DensityBlockMax {
    nshell: usize,
    maxes: Vec<f64>,
}

impl DensityBlockMax {
    /// Scan `density` once, recording the max magnitude of every shell-pair
    /// AO block under `layout`.
    pub fn build(density: &Matrix, layout: &AoLayout) -> DensityBlockMax {
        let nshell = layout.shell_offsets.len();
        let nao = layout.nao;
        let mut maxes = vec![0.0f64; nshell * nshell];
        // Shell extents: offset..offset+nsph(l).
        let ext: Vec<(usize, usize)> = (0..nshell)
            .map(|s| {
                let lo = layout.shell_offsets[s];
                let hi = if s + 1 < nshell {
                    layout.shell_offsets[s + 1]
                } else {
                    nao
                };
                (lo, hi)
            })
            .collect();
        for si in 0..nshell {
            for sj in 0..=si {
                let (ilo, ihi) = ext[si];
                let (jlo, jhi) = ext[sj];
                let mut m = 0.0f64;
                for mu in ilo..ihi {
                    for nu in jlo..jhi {
                        m = m.max(density[(mu, nu)].abs());
                    }
                }
                maxes[si * nshell + sj] = m;
                maxes[sj * nshell + si] = m;
            }
        }
        DensityBlockMax { nshell, maxes }
    }

    /// `max |D|` over the AO block of shells `(i, j)`.
    #[inline]
    pub fn block(&self, i: usize, j: usize) -> f64 {
        self.maxes[i * self.nshell + j]
    }

    /// The largest relevant density magnitude for quartet `(ab|cd)`: the max
    /// over the six blocks the J/K scatter contracts against.
    #[inline]
    pub fn quartet_max(&self, sa: usize, sb: usize, sc: usize, sd: usize) -> f64 {
        self.block(sc, sd)
            .max(self.block(sa, sb))
            .max(self.block(sa, sc))
            .max(self.block(sa, sd))
            .max(self.block(sb, sc))
            .max(self.block(sb, sd))
    }

    /// Global max magnitude (the coarse screen older call sites use).
    pub fn global_max(&self) -> f64 {
        self.maxes.iter().cloned().fold(0.0, f64::max)
    }
}

/// Importance classes for quartet batches (QuantMako §3.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImportanceClass {
    /// Must be evaluated in FP64.
    Critical,
    /// Safe for the quantized kernels.
    Moderate,
    /// May be pruned entirely.
    Negligible,
}

/// Classify a quartet by its density-weighted [`schwarz_estimate`] against
/// `(fp64_threshold, prune_threshold)`.
///
/// **Boundary convention (pinned):** an estimate that lands *exactly on* a
/// threshold always takes the more conservative branch —
///
/// * `estimate == prune_threshold` → **not** pruned (pruning is strict `<`),
/// * `estimate == fp64_threshold`  → **Critical** (the FP64 bar is `>=`).
///
/// The same rule holds for every other screening comparison in the
/// workspace: `build_screened_pairs` keeps pairs with `bound >= threshold`,
/// `batch_quartets` drops only `bound_ab·bound_cd < threshold`, and the
/// fock phase-0 ΔD screen skips only `estimate < τ`. Equality never loses
/// work or precision, so perturbing a threshold to exactly an estimate's
/// value can only make the calculation *more* accurate.
pub fn classify(
    bound_ab: f64,
    bound_cd: f64,
    density_max: f64,
    fp64_threshold: f64,
    prune_threshold: f64,
) -> ImportanceClass {
    let estimate = schwarz_estimate(bound_ab, bound_cd, density_max);
    if estimate < prune_threshold {
        ImportanceClass::Negligible
    } else if estimate >= fp64_threshold {
        ImportanceClass::Critical
    } else {
        ImportanceClass::Moderate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mako_chem::basis::ShellDef;

    fn shell(l: usize, center: [f64; 3], exp: f64) -> Shell {
        ShellDef {
            l,
            exps: vec![exp],
            coefs: vec![1.0],
        }
        .at(0, center)
    }

    #[test]
    fn schwarz_bound_is_conservative() {
        // |(ab|cd)| ≤ Q_ab · Q_cd for a grid of random-ish quartets.
        let shells = [
            shell(0, [0.0, 0.0, 0.0], 1.2),
            shell(1, [1.0, 0.2, -0.3], 0.8),
            shell(2, [-0.6, 0.9, 0.4], 0.6),
            shell(0, [0.3, -0.8, 1.1], 2.0),
        ];
        let pairs: Vec<ShellPairData> = (0..4)
            .flat_map(|i| (0..4).map(move |j| (i, j)))
            .map(|(i, j)| shell_pair(&shells[i], &shells[j]))
            .collect();
        let bounds: Vec<f64> = pairs.iter().map(schwarz_bound).collect();
        for (pi, pab) in pairs.iter().enumerate() {
            for (qi, pcd) in pairs.iter().enumerate() {
                let t = eri_quartet_mmd(pab, pcd);
                assert!(
                    t.max_abs() <= bounds[pi] * bounds[qi] * (1.0 + 1e-10),
                    "pair {pi},{qi}: {} > {}",
                    t.max_abs(),
                    bounds[pi] * bounds[qi]
                );
            }
        }
    }

    #[test]
    fn distant_pairs_are_screened_out() {
        let shells = vec![
            shell(0, [0.0; 3], 1.5),
            shell(0, [40.0, 0.0, 0.0], 1.5), // 40 Bohr away
        ];
        let pairs = build_screened_pairs(&shells, 1e-10);
        // (0,0) and (1,1) survive; the distant cross pair is dropped.
        assert_eq!(pairs.len(), 2);
        assert!(pairs.iter().all(|p| p.i == p.j));
    }

    #[test]
    fn zero_threshold_keeps_everything() {
        let shells = vec![shell(0, [0.0; 3], 1.0), shell(1, [1.0, 0.0, 0.0], 0.7)];
        let pairs = build_screened_pairs(&shells, 0.0);
        assert_eq!(pairs.len(), 3);
    }

    #[test]
    fn density_block_max_matches_brute_force() {
        // Two s shells + one p shell: blocks of size 1×1, 1×3, 3×3.
        let shells = vec![
            shell(0, [0.0; 3], 1.0),
            shell(0, [1.0, 0.0, 0.0], 0.7),
            shell(1, [0.0, 1.0, 0.0], 0.9),
        ];
        let layout = AoLayout::new(&shells);
        assert_eq!(layout.nao, 5);
        let d = Matrix::from_fn(5, 5, |i, j| ((i * 5 + j) as f64 - 12.0) / 7.0);
        let bm = DensityBlockMax::build(&d, &layout);
        // Block (2,2) covers AOs 2..5 × 2..5 of the symmetrized scan; the
        // builder reads the raw matrix, max over both triangles.
        let mut expect = 0.0f64;
        for mu in 2..5 {
            for nu in 2..5 {
                expect = expect.max(d[(mu, nu)].abs());
            }
        }
        assert_eq!(bm.block(2, 2), expect);
        assert_eq!(bm.block(0, 2), bm.block(2, 0), "symmetric lookup");
        assert!((bm.global_max() - d.max_abs()).abs() < 1e-15);
        // quartet_max dominates each of its six blocks.
        let q = bm.quartet_max(0, 1, 2, 2);
        for &(i, j) in &[(2, 2), (0, 1), (0, 2), (1, 2)] {
            assert!(q >= bm.block(i, j));
        }
    }

    #[test]
    fn classify_thresholds() {
        assert_eq!(
            classify(1.0, 1.0, 1.0, 1e-4, 1e-10),
            ImportanceClass::Critical
        );
        assert_eq!(
            classify(1e-3, 1e-3, 1.0, 1e-4, 1e-10),
            ImportanceClass::Moderate
        );
        assert_eq!(
            classify(1e-6, 1e-6, 1.0, 1e-4, 1e-10),
            ImportanceClass::Negligible
        );
    }

    /// The pinned boundary convention: equality with a threshold always takes
    /// the conservative branch (survives pruning; promotes to FP64).
    #[test]
    fn classify_boundary_values() {
        // estimate exactly equal to prune_threshold: NOT pruned.
        let prune = schwarz_estimate(1e-5, 1e-5, 1.0);
        assert_eq!(
            classify(1e-5, 1e-5, 1.0, 1.0, prune),
            ImportanceClass::Moderate,
            "estimate == prune_threshold must survive pruning"
        );
        // Next representable value below: pruned.
        assert_eq!(
            classify(1e-5, 1e-5, 1.0, 1.0, f64::from_bits(prune.to_bits() + 1)),
            ImportanceClass::Negligible
        );

        // estimate exactly equal to fp64_threshold: Critical.
        let fp64 = schwarz_estimate(1e-2, 1e-2, 1.0);
        assert_eq!(
            classify(1e-2, 1e-2, 1.0, fp64, 1e-30),
            ImportanceClass::Critical,
            "estimate == fp64_threshold must promote to FP64"
        );
        // Next representable value above the estimate: quantized.
        assert_eq!(
            classify(1e-2, 1e-2, 1.0, f64::from_bits(fp64.to_bits() + 1), 1e-30),
            ImportanceClass::Moderate
        );

        // Degenerate ordering: with fp64_threshold == prune_threshold every
        // surviving quartet is Critical (never silently quantized).
        assert_eq!(
            classify(1e-3, 1e-3, 1.0, prune, prune),
            ImportanceClass::Critical
        );
    }

    /// `classify` and `schwarz_estimate` agree for all-zero density blocks:
    /// the shared 1e-30 floor keeps the estimate nonzero, so a zero density
    /// still prunes against any realistic threshold but never produces a
    /// 0-vs-0 threshold comparison.
    #[test]
    fn zero_density_floor_is_shared() {
        let est = schwarz_estimate(1.0, 1.0, 0.0);
        assert_eq!(est, 1e-30);
        assert_eq!(
            classify(1.0, 1.0, 0.0, 1e-4, 1e-14),
            ImportanceClass::Negligible
        );
        // ...and exactly at the floor the conservative branch wins again.
        assert_eq!(
            classify(1.0, 1.0, 0.0, 1e-4, est),
            ImportanceClass::Moderate
        );
    }

    #[test]
    fn pair_threshold_boundary_keeps_equal_bound() {
        // build_screened_pairs keeps bound >= threshold: feed it the exact
        // bound of an on-center s pair as the threshold and it must survive.
        let shells = vec![shell(0, [0.0; 3], 1.5)];
        let pairs = build_screened_pairs(&shells, 0.0);
        assert_eq!(pairs.len(), 1);
        let exact = pairs[0].bound;
        assert_eq!(build_screened_pairs(&shells, exact).len(), 1);
        assert_eq!(
            build_screened_pairs(&shells, f64::from_bits(exact.to_bits() + 1)).len(),
            0
        );
    }
}
